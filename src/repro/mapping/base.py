"""Rank-to-node mappings.

A mapping assigns every MPI rank to a physical node of a topology.  The
paper's system-level studies use **consecutive** mapping — rank ``r`` on
node ``r // cores_per_node`` — with one rank per node for the topology
analyses (§6.2) and a cores-per-socket sweep for the multi-core study
(§6.1).  Optimized mappings (the improvement the paper motivates) live in
:mod:`repro.mapping.optimized`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Mapping"]


@dataclass(frozen=True)
class Mapping:
    """An immutable rank→node assignment.

    ``nodes[r]`` is the physical node of rank ``r``.  Multiple ranks may
    share a node (multi-core); traffic between co-located ranks never enters
    the network.
    """

    nodes: np.ndarray  # int64[num_ranks]
    num_nodes: int

    def __post_init__(self) -> None:
        nodes = np.asarray(self.nodes, dtype=np.int64)
        object.__setattr__(self, "nodes", nodes)
        if nodes.ndim != 1 or nodes.size == 0:
            raise ValueError("mapping needs a non-empty 1D node array")
        if nodes.min() < 0 or nodes.max() >= self.num_nodes:
            raise ValueError(
                f"mapped nodes out of range [0, {self.num_nodes}) "
                f"(got {nodes.min()}..{nodes.max()})"
            )

    # -- constructors ------------------------------------------------------

    @staticmethod
    def consecutive(
        num_ranks: int, num_nodes: int, ranks_per_node: int = 1
    ) -> "Mapping":
        """Paper-style consecutive mapping: rank r -> node r // ranks_per_node."""
        if ranks_per_node < 1:
            raise ValueError("ranks_per_node must be >= 1")
        nodes = np.arange(num_ranks, dtype=np.int64) // ranks_per_node
        needed = int(nodes.max()) + 1 if num_ranks else 0
        if needed > num_nodes:
            raise ValueError(
                f"{num_ranks} ranks at {ranks_per_node}/node need {needed} nodes, "
                f"topology has {num_nodes}"
            )
        return Mapping(nodes, num_nodes)

    @staticmethod
    def from_permutation(
        permutation: np.ndarray, num_nodes: int, ranks_per_node: int = 1
    ) -> "Mapping":
        """Place ranks in a given order, consecutively, ranks_per_node at a time.

        ``permutation[i]`` is the rank placed at slot ``i``; slot ``i`` lives
        on node ``i // ranks_per_node``.
        """
        perm = np.asarray(permutation, dtype=np.int64)
        n = len(perm)
        if not np.array_equal(np.sort(perm), np.arange(n)):
            raise ValueError("permutation must be a bijection on rank IDs")
        slots = np.empty(n, dtype=np.int64)
        slots[perm] = np.arange(n, dtype=np.int64)
        return Mapping(slots // ranks_per_node, num_nodes)

    @staticmethod
    def random(
        num_ranks: int,
        num_nodes: int,
        ranks_per_node: int = 1,
        seed: int = 0,
    ) -> "Mapping":
        """Random placement baseline: a shuffled consecutive mapping."""
        rng = np.random.default_rng(seed)
        return Mapping.from_permutation(
            rng.permutation(num_ranks), num_nodes, ranks_per_node
        )

    # -- queries ------------------------------------------------------------

    @property
    def num_ranks(self) -> int:
        return len(self.nodes)

    def node_of(self, ranks: np.ndarray) -> np.ndarray:
        """Vectorized rank→node lookup."""
        return self.nodes[np.asarray(ranks, dtype=np.int64)]

    def used_nodes(self) -> np.ndarray:
        """Sorted unique nodes that host at least one rank."""
        return np.unique(self.nodes)

    @property
    def num_used_nodes(self) -> int:
        return len(self.used_nodes())

    def ranks_on_node(self, node: int) -> np.ndarray:
        """Ranks hosted by one node."""
        return np.flatnonzero(self.nodes == node)

    def max_ranks_per_node(self) -> int:
        _, counts = np.unique(self.nodes, return_counts=True)
        return int(counts.max())
