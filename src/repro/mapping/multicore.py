"""Multi-core scaling study (paper §6.1, Figure 5).

With ``c`` cores per socket, consecutive mapping places ranks
``c*k .. c*k + c - 1`` on node ``k``.  Traffic between co-located ranks
stays on-chip; everything else crosses the interconnect.  The study is
topology-independent — it only asks *how much* traffic remains inter-node,
relative to the one-rank-per-node configuration, as ``c`` sweeps 1 → 48.

Both point-to-point and (flattened) collective traffic count, per the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..comm.matrix import CommMatrix
from .base import Mapping

__all__ = ["MulticorePoint", "inter_node_bytes", "multicore_sweep", "DEFAULT_CORES"]

#: Cores-per-socket values swept in Figure 5.
DEFAULT_CORES: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 48)


@dataclass(frozen=True)
class MulticorePoint:
    """One x-position of Figure 5."""

    cores_per_node: int
    inter_node_bytes: int
    relative_traffic: float  # vs. the 1-core configuration


def inter_node_bytes(matrix: CommMatrix, mapping: Mapping) -> int:
    """Bytes that cross the network under a mapping (co-located pairs excluded)."""
    if mapping.num_ranks < matrix.num_ranks:
        raise ValueError(
            f"mapping covers {mapping.num_ranks} ranks, matrix has {matrix.num_ranks}"
        )
    src_nodes = mapping.node_of(matrix.src)
    dst_nodes = mapping.node_of(matrix.dst)
    crossing = src_nodes != dst_nodes
    return int(matrix.nbytes[crossing].sum())


def multicore_sweep(
    matrix: CommMatrix,
    cores: tuple[int, ...] = DEFAULT_CORES,
) -> list[MulticorePoint]:
    """Relative inter-node traffic for each cores-per-socket value.

    The relative value of the 1-core point is 1.0 by construction; the curve
    typically saturates around 8–16 cores (paper §6.1).  Node counts are
    sized to fit each configuration, which is all the study needs — it never
    routes, it only separates on-node from off-node traffic.
    """
    if not cores or cores[0] != 1:
        raise ValueError("the sweep must start at 1 core per node (the baseline)")
    n = matrix.num_ranks
    points: list[MulticorePoint] = []
    baseline: int | None = None
    for c in cores:
        if c < 1:
            raise ValueError(f"cores per node must be >= 1, got {c}")
        num_nodes = -(-n // c)
        mapping = Mapping.consecutive(n, num_nodes, ranks_per_node=c)
        crossing = inter_node_bytes(matrix, mapping)
        if baseline is None:
            baseline = crossing
        rel = crossing / baseline if baseline else 0.0
        points.append(MulticorePoint(c, crossing, rel))
    return points
