"""Rank-to-node mapping strategies and the multi-core study."""

from .base import Mapping
from .multicore import DEFAULT_CORES, MulticorePoint, inter_node_bytes, multicore_sweep
from .optimized import (
    bisection_mapping,
    greedy_ordering,
    optimize_mapping,
    place_ordering,
    refine_mapping,
    spectral_ordering,
    weighted_hop_cost,
)

__all__ = [
    "Mapping",
    "bisection_mapping",
    "DEFAULT_CORES",
    "MulticorePoint",
    "inter_node_bytes",
    "multicore_sweep",
    "greedy_ordering",
    "optimize_mapping",
    "place_ordering",
    "refine_mapping",
    "spectral_ordering",
    "weighted_hop_cost",
]
