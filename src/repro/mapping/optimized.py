"""Locality-aware mapping optimization.

The paper's discussion (§7) argues that the low selectivity of most
workloads means "a significant traffic reduction is possible only by using
an optimized mapping" that places heavily-communicating rank groups on
nearby physical entities.  This module implements that suggested
optimization so its benefit can be quantified (see the mapping ablation
benchmark):

- :func:`greedy_ordering` — heavy-edge traversal: repeatedly append the
  unplaced rank most strongly connected to the already-placed prefix.
- :func:`spectral_ordering` — Fiedler-vector ordering of the symmetrized
  traffic graph (a classic 1D locality embedding).
- :func:`refine_mapping` — pairwise-swap hill climbing on the byte-weighted
  hop objective.
- :func:`optimize_mapping` — the composed entry point.

The kernels run on a CSR adjacency of the symmetrized traffic graph built
with array operations; the original dict-of-lists/heap implementations are
kept as module-private ``*_reference`` functions because they define the
semantics — the vectorized kernels are pinned against them output-for-output
by the equivalence suite (identical orderings, identical swap decisions,
identical splits).

Orderings are placed on physical nodes via :func:`place_ordering`: on fat
trees and dragonflies consecutive node numbering is already
locality-friendly (leaves/groups are contiguous), while on a 3D torus the
ordering follows a boustrophedon (snake) traversal so that 1D-adjacent ranks
land on physically adjacent nodes in *every* dimension.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..comm.matrix import CommMatrix
from ..topology.base import Topology
from ..topology.torus import Torus3D
from .base import Mapping

__all__ = [
    "greedy_ordering",
    "spectral_ordering",
    "weighted_hop_cost",
    "refine_mapping",
    "optimize_mapping",
    "place_ordering",
    "bisection_mapping",
]


def _symmetric_coo(matrix: CommMatrix) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Aggregated symmetric COO ``(u, v, bytes)`` of the traffic graph.

    Self-pairs and zero-byte pairs are dropped; both directions of every
    remaining pair are present, weights summed over duplicates, entries
    sorted by ``(u, v)``.
    """
    n = matrix.num_ranks
    mask = (matrix.src != matrix.dst) & (matrix.nbytes > 0)
    s = matrix.src[mask]
    d = matrix.dst[mask]
    b = matrix.nbytes[mask]
    uu = np.concatenate([s, d])
    vv = np.concatenate([d, s])
    ww = np.concatenate([b, b])
    key = uu * n + vv
    unique_keys, inverse = np.unique(key, return_inverse=True)
    w = np.zeros(len(unique_keys), dtype=np.int64)
    np.add.at(w, inverse, ww)
    return unique_keys // n, unique_keys % n, w


def _symmetric_csr(
    matrix: CommMatrix,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR adjacency ``(indptr, indices, weights)`` of the symmetrized graph.

    Row ``u``'s neighbours are ``indices[indptr[u]:indptr[u+1]]``, ascending,
    with summed byte weights — the array form of the reference
    :func:`_symmetric_weights` dict-of-sorted-lists.
    """
    n = matrix.num_ranks
    uu, vv, ww = _symmetric_coo(matrix)
    indptr = np.zeros(n + 1, dtype=np.int64)
    indptr[1:] = np.cumsum(np.bincount(uu, minlength=n))
    return indptr, vv, ww


def _symmetric_weights(matrix: CommMatrix) -> dict[int, list[tuple[int, int]]]:
    """Adjacency (neighbour, bytes) lists of the symmetrized traffic graph.

    Reference (dict-of-sorted-lists) form of :func:`_symmetric_csr`; used by
    the ``*_reference`` kernels below.
    """
    adj: dict[int, dict[int, int]] = {}
    for s, d, b in zip(matrix.src, matrix.dst, matrix.nbytes):
        s, d, b = int(s), int(d), int(b)
        if s == d or b == 0:
            continue
        adj.setdefault(s, {}).setdefault(d, 0)
        adj.setdefault(d, {}).setdefault(s, 0)
        adj[s][d] += b
        adj[d][s] += b
    return {u: sorted(nbrs.items()) for u, nbrs in adj.items()}


def greedy_ordering(matrix: CommMatrix) -> np.ndarray:
    """Heavy-edge greedy rank ordering.

    Starts from the rank with the highest total traffic; repeatedly appends
    the unplaced rank with the largest byte volume to the placed set
    (ties broken toward the smallest rank ID).  Disconnected ranks are
    appended in ID order.  Vectorized frontier selection: attraction only
    ever grows, so an argmax over the unplaced frontier reproduces the
    reference max-heap pop exactly.
    """
    n = matrix.num_ranks
    indptr, indices, weights = _symmetric_csr(matrix)
    totals = np.zeros(n, dtype=np.int64)
    nonempty = np.diff(indptr) > 0
    if weights.size:
        totals[nonempty] = np.add.reduceat(weights, indptr[:-1][nonempty])

    placed = np.zeros(n, dtype=bool)
    # attraction[r]: bytes from r to the placed set (grown incrementally)
    attraction = np.zeros(n, dtype=np.int64)
    order = np.empty(n, dtype=np.int64)
    seeds = np.argsort(-totals, kind="stable")
    seed_pos = 0

    for pos in range(n):
        # frontier: unplaced ranks attracted to the placed prefix; argmax
        # returns the first (= smallest-ID) maximum, matching the heap's
        # (-attraction, rank) tie-break
        masked = np.where(placed, np.int64(-1), attraction)
        cand = int(masked.argmax())
        if masked[cand] <= 0:
            while placed[seeds[seed_pos]]:
                seed_pos += 1
            cand = int(seeds[seed_pos])
        placed[cand] = True
        order[pos] = cand
        lo, hi = indptr[cand], indptr[cand + 1]
        # growing attraction of already-placed neighbours is harmless: they
        # are masked out of every future argmax
        np.add.at(attraction, indices[lo:hi], weights[lo:hi])
    return order


def _greedy_ordering_reference(matrix: CommMatrix) -> np.ndarray:
    """Reference heap implementation of :func:`greedy_ordering` (O(E log E))."""
    n = matrix.num_ranks
    adj = _symmetric_weights(matrix)
    totals = np.zeros(n, dtype=np.int64)
    for u, nbrs in adj.items():
        totals[u] = sum(w for _, w in nbrs)

    placed = np.zeros(n, dtype=bool)
    order: list[int] = []
    attraction = np.zeros(n, dtype=np.int64)
    heap: list[tuple[int, int]] = []  # (-attraction snapshot, rank)

    def place(rank: int) -> None:
        placed[rank] = True
        order.append(rank)
        for nbr, w in adj.get(rank, ()):  # grow the frontier
            if not placed[nbr]:
                attraction[nbr] += w
                heapq.heappush(heap, (-int(attraction[nbr]), nbr))

    remaining = list(np.argsort(-totals, kind="stable"))
    for seed in remaining:
        seed = int(seed)
        if placed[seed]:
            continue
        place(seed)
        while heap:
            neg_snap, cand = heapq.heappop(heap)
            if placed[cand] or -neg_snap != attraction[cand]:
                continue  # stale entry; a fresher one exists (lazy deletion)
            place(cand)
    return np.array(order, dtype=np.int64)


def spectral_ordering(matrix: CommMatrix) -> np.ndarray:
    """Order ranks by the Fiedler vector of the traffic Laplacian.

    The second-smallest Laplacian eigenvector is the classic relaxation of
    the minimum-linear-arrangement problem: sorting ranks by it places
    heavily-communicating ranks at nearby positions.  Uses SciPy's sparse
    eigensolver when available, dense NumPy otherwise.
    """
    n = matrix.num_ranks
    if n == 1:
        return np.zeros(1, dtype=np.int64)
    mask = matrix.src != matrix.dst
    src = matrix.src[mask]
    dst = matrix.dst[mask]
    w = matrix.nbytes[mask].astype(np.float64)
    if len(src) == 0:
        return np.arange(n, dtype=np.int64)
    # Scale weights to avoid overflow in the Laplacian.
    w = w / w.max()

    try:
        import scipy.sparse as sp
        import scipy.sparse.linalg as spla

        W = sp.coo_matrix((w, (src, dst)), shape=(n, n))
        W = (W + W.T).tocsr()
        degrees = np.asarray(W.sum(axis=1)).ravel()
        L = sp.diags(degrees) - W
        # Smallest two eigenpairs; sigma shift for robustness near zero.
        _, vecs = spla.eigsh(L.asfptype(), k=2, sigma=-1e-3, which="LM")
        fiedler = vecs[:, 1]
    except Exception:  # pragma: no cover - fallback path
        W = np.zeros((n, n), dtype=np.float64)
        np.add.at(W, (src, dst), w)
        W = W + W.T
        L = np.diag(W.sum(axis=1)) - W
        _, vecs = np.linalg.eigh(L)
        fiedler = vecs[:, 1]
    return np.argsort(fiedler, kind="stable").astype(np.int64)


def weighted_hop_cost(
    matrix: CommMatrix, topology: Topology, mapping: Mapping
) -> float:
    """Total byte-weighted hop count: the objective optimized mappings minimize."""
    src_nodes = mapping.node_of(matrix.src)
    dst_nodes = mapping.node_of(matrix.dst)
    hops = topology.hops_array(src_nodes, dst_nodes)
    return float((hops * matrix.nbytes).sum())


def refine_mapping(
    matrix: CommMatrix,
    topology: Topology,
    mapping: Mapping,
    max_passes: int = 2,
    seed: int = 0,
) -> Mapping:
    """Pairwise-swap hill climbing on :func:`weighted_hop_cost`.

    Visits rank pairs in random order and commits a node swap whenever it
    lowers the cost contributed by the two swapped ranks.  Intended as a
    cheap polish after an ordering-based placement; each pass is
    O(num_ranks * sample * partners).  The per-rank cost reads CSR slices
    directly (same neighbour order, hence the same float sums and the same
    swap decisions as the reference).
    """
    n = matrix.num_ranks
    nodes = mapping.nodes.copy()
    rng = np.random.default_rng(seed)

    indptr, indices, weights = _symmetric_csr(matrix)
    weights_f = weights.astype(np.float64)

    def rank_cost(rank: int, node_of: np.ndarray) -> float:
        lo, hi = indptr[rank], indptr[rank + 1]
        if lo == hi:
            return 0.0
        others = indices[lo:hi]
        hops = topology.hops_array(
            np.full(hi - lo, node_of[rank], dtype=np.int64), node_of[others]
        )
        return float((hops * weights_f[lo:hi]).sum())

    for _ in range(max_passes):
        improved = False
        candidates = rng.permutation(n)
        for r1 in candidates:
            r1 = int(r1)
            r2 = int(rng.integers(n))
            if r1 == r2 or nodes[r1] == nodes[r2]:
                continue
            before = rank_cost(r1, nodes) + rank_cost(r2, nodes)
            nodes[r1], nodes[r2] = nodes[r2], nodes[r1]
            after = rank_cost(r1, nodes) + rank_cost(r2, nodes)
            if after < before:
                improved = True
            else:
                nodes[r1], nodes[r2] = nodes[r2], nodes[r1]
        if not improved:
            break
    return Mapping(nodes, mapping.num_nodes)


def _refine_mapping_reference(
    matrix: CommMatrix,
    topology: Topology,
    mapping: Mapping,
    max_passes: int = 2,
    seed: int = 0,
) -> Mapping:
    """Reference dict-adjacency implementation of :func:`refine_mapping`."""
    n = matrix.num_ranks
    nodes = mapping.nodes.copy()
    rng = np.random.default_rng(seed)
    adj = _symmetric_weights(matrix)

    def rank_cost(rank: int, node_of: np.ndarray) -> float:
        nbrs = adj.get(rank)
        if not nbrs:
            return 0.0
        others = np.array([x for x, _ in nbrs], dtype=np.int64)
        weights = np.array([w for _, w in nbrs], dtype=np.float64)
        hops = topology.hops_array(
            np.full(len(others), node_of[rank], dtype=np.int64), node_of[others]
        )
        return float((hops * weights).sum())

    for _ in range(max_passes):
        improved = False
        candidates = rng.permutation(n)
        for r1 in candidates:
            r1 = int(r1)
            r2 = int(rng.integers(n))
            if r1 == r2 or nodes[r1] == nodes[r2]:
                continue
            before = rank_cost(r1, nodes) + rank_cost(r2, nodes)
            nodes[r1], nodes[r2] = nodes[r2], nodes[r1]
            after = rank_cost(r1, nodes) + rank_cost(r2, nodes)
            if after < before:
                improved = True
            else:
                nodes[r1], nodes[r2] = nodes[r2], nodes[r1]
        if not improved:
            break
    return Mapping(nodes, mapping.num_nodes)


def place_ordering(
    order: np.ndarray,
    topology: Topology,
    ranks_per_node: int = 1,
) -> Mapping:
    """Place a rank ordering onto physical nodes, locality-preserving.

    ``order[i]`` is the rank at slot ``i``; slots fill nodes
    ``ranks_per_node`` at a time.  On a :class:`Torus3D` slots follow the
    snake traversal (consecutive slots physically adjacent); on other
    topologies they follow node numbering, which is already contiguous per
    leaf switch / dragonfly group.
    """
    order = np.asarray(order, dtype=np.int64)
    n = len(order)
    if not np.array_equal(np.sort(order), np.arange(n)):
        raise ValueError("ordering must be a bijection on rank IDs")
    slots = np.empty(n, dtype=np.int64)
    slots[order] = np.arange(n, dtype=np.int64)
    node_index = slots // ranks_per_node
    if isinstance(topology, Torus3D):
        sequence = topology.snake_order()
    else:
        sequence = np.arange(topology.num_nodes, dtype=np.int64)
    if int(node_index.max()) >= len(sequence):
        raise ValueError(
            f"{n} ranks at {ranks_per_node}/node exceed "
            f"{topology.num_nodes} nodes"
        )
    return Mapping(sequence[node_index], topology.num_nodes)


def optimize_mapping(
    matrix: CommMatrix,
    topology: Topology,
    method: str = "greedy",
    ranks_per_node: int = 1,
    refine: bool = False,
    seed: int = 0,
    fallback: bool = False,
) -> Mapping:
    """Build a locality-optimized mapping.

    Parameters
    ----------
    method:
        ``"greedy"`` (heavy-edge ordering), ``"spectral"`` (Fiedler
        ordering), ``"bisection"`` (recursive spectral bisection — the
        strongest), or ``"consecutive"`` (the paper's baseline).
    refine:
        Apply :func:`refine_mapping` hill climbing afterwards.
    fallback:
        Compare against the consecutive baseline on the byte-weighted hop
        objective and keep the cheaper of the two.  Applications whose rank
        numbering already matches the topology (aligned stencils, Morton
        curves) are best left alone — graph optimizers can only disturb
        them, and this guard makes the optimizer safe to apply blindly.
    """
    n = matrix.num_ranks
    if method == "consecutive":
        mapping = Mapping.consecutive(n, topology.num_nodes, ranks_per_node)
    elif method == "greedy":
        mapping = place_ordering(greedy_ordering(matrix), topology, ranks_per_node)
    elif method == "spectral":
        mapping = place_ordering(spectral_ordering(matrix), topology, ranks_per_node)
    elif method == "bisection":
        mapping = bisection_mapping(matrix, topology, ranks_per_node, seed=seed)
    else:
        raise ValueError(f"unknown mapping method {method!r}")
    if refine:
        mapping = refine_mapping(matrix, topology, mapping, seed=seed)
    if fallback and method != "consecutive":
        baseline = Mapping.consecutive(n, topology.num_nodes, ranks_per_node)
        if weighted_hop_cost(matrix, topology, baseline) <= weighted_hop_cost(
            matrix, topology, mapping
        ):
            return baseline
    return mapping


def _fiedler_split(
    ranks: np.ndarray,
    coo: tuple[np.ndarray, np.ndarray, np.ndarray],
    num_ranks: int,
    left_size: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Split ``ranks`` into (left, right) with ``left_size`` on the left,
    minimizing the byte-weighted cut via a Fiedler-vector ordering of the
    induced subgraph.  Falls back to the given order for tiny or
    disconnected parts."""
    n = len(ranks)
    uu, vv, ww = coo
    index = np.full(num_ranks, -1, dtype=np.int64)
    index[ranks] = np.arange(n, dtype=np.int64)
    sel = (index[uu] >= 0) & (index[vv] >= 0)
    W = np.zeros((n, n), dtype=np.float64)
    # symmetric COO entries are unique per (u, v), so assignment == accumulate
    W[index[uu[sel]], index[vv[sel]]] = ww[sel]
    total = W.sum()
    if total == 0 or n <= 2:
        return ranks[:left_size], ranks[left_size:]
    W /= W.max()
    L = np.diag(W.sum(axis=1)) - W
    # deterministic dense solve; parts shrink geometrically so this is the
    # dominant cost only at the first level
    _, vecs = np.linalg.eigh(L)
    fiedler = vecs[:, 1]
    order = np.argsort(fiedler, kind="stable")
    ordered = ranks[order]
    return ordered[:left_size], ordered[left_size:]


def bisection_mapping(
    matrix: CommMatrix,
    topology: Topology,
    ranks_per_node: int = 1,
    seed: int = 0,
) -> Mapping:
    """Recursive spectral-bisection co-mapping (the classic 'smart mapping').

    Both sides are halved recursively: the rank graph by a cut-minimizing
    Fiedler split, the machine by contiguous halves of its hierarchical
    placement sequence (snake curve on tori — geometric halves; numeric
    order on fat trees/dragonflies — pod/leaf/group halves).  Unlike a
    single 1D ordering, the recursion preserves *multidimensional*
    structure: each communicating cluster lands in a compact machine region.
    """
    n = matrix.num_ranks
    coo = _symmetric_coo(matrix)
    rng = np.random.default_rng(seed)
    if isinstance(topology, Torus3D):
        sequence = topology.snake_order()
    else:
        sequence = np.arange(topology.num_nodes, dtype=np.int64)
    num_slots = -(-n // ranks_per_node)
    if num_slots > len(sequence):
        raise ValueError(
            f"{n} ranks at {ranks_per_node}/node exceed {topology.num_nodes} nodes"
        )

    nodes = np.empty(n, dtype=np.int64)
    stack: list[tuple[np.ndarray, int, int]] = [
        (np.arange(n, dtype=np.int64), 0, num_slots)
    ]
    while stack:
        ranks, slot_lo, slot_hi = stack.pop()
        width = slot_hi - slot_lo
        if width == 1 or len(ranks) <= ranks_per_node:
            nodes[ranks] = sequence[slot_lo]
            continue
        left_slots = width // 2
        left_size = min(len(ranks), left_slots * ranks_per_node)
        left, right = _fiedler_split(ranks, coo, n, left_size, rng)
        stack.append((left, slot_lo, slot_lo + left_slots))
        if len(right):
            stack.append((right, slot_lo + left_slots, slot_hi))
    return Mapping(nodes, topology.num_nodes)
