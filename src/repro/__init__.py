"""repro — reproduction of *On Network Locality in MPI-Based HPC Applications*
(Zahn & Fröning, ICPP 2020).

The library has four layers:

1. **Traces** (:mod:`repro.core`, :mod:`repro.dumpi`, :mod:`repro.apps`) —
   an MPI call-record model, a dumpi-like ASCII serialization, and
   deterministic synthetic generators for the paper's 16 proxy-app
   configurations (calibrated to Table 1).
2. **Traffic** (:mod:`repro.collectives`, :mod:`repro.comm`) — flat
   collective→p2p translation (§4.4) and sparse rank-pair traffic matrices.
3. **Metrics** (:mod:`repro.metrics`) — the paper's hardware-agnostic
   contributions: rank locality, selectivity, peers, and the 1D/2D/3D
   dimensionality analysis.
4. **Network model** (:mod:`repro.topology`, :mod:`repro.mapping`,
   :mod:`repro.routing`, :mod:`repro.model`) — static 3D-torus / fat-tree /
   dragonfly models, pluggable routing policies (minimal, ECMP, Valiant,
   d-mod-k, UGAL), rank→node mappings (consecutive, multi-core, optimized),
   and the packet-hops / average-hops / utilization analyses of §6.

Quick start::

    import repro

    trace = repro.generate_trace("LULESH", 64)
    m_p2p = repro.matrix_from_trace(trace, include_collectives=False)
    print(repro.peers(m_p2p), repro.rank_distance(m_p2p), repro.selectivity(m_p2p))

    m_all = repro.matrix_from_trace(trace)
    topo = repro.config_for(64).build_torus()
    result = repro.analyze_network(m_all, topo, execution_time=trace.meta.execution_time)
    print(result.avg_hops, result.utilization_percent)
"""

from .apps import APPS, app_names, generate_trace, get_app, iter_configurations
from .collectives import expand_collective, iter_send_groups
from .comm import CommMatrix, CommMatrixBuilder, TraceStats, matrix_from_trace, trace_stats
from .core import (
    CollectiveEvent,
    CollectiveOp,
    Communicator,
    DatatypeRegistry,
    MAX_PAYLOAD_BYTES,
    MPIDatatype,
    P2PEvent,
    Trace,
    TraceMetadata,
)
from .dumpi import TraceKey, TraceRepository, dump_trace, load_trace
from .mapping import Mapping, multicore_sweep, optimize_mapping, weighted_hop_cost
from .metrics import (
    MPILevelMetrics,
    grid_shape,
    locality_by_dimension,
    mean_selectivity_curve,
    mpi_level_metrics,
    partner_volumes,
    peers,
    rank_distance,
    rank_locality,
    selectivity,
    selectivity_curve,
)
from .paper import compare_table3, deviation_summary, table1_row, table3_row
from .routing import ROUTINGS, RoutingPolicy, get_policy
from .sim import SimulationResult, simulate_network
from .telemetry import TelemetryConfig, TelemetryReport, congestion_summary
from .model import (
    BANDWIDTH_BYTES_PER_S,
    EnergyModel,
    LatencyModel,
    NetworkAnalysis,
    analyze_network,
    bandwidth_slack,
    link_load_stats,
)
from .topology import (
    Dragonfly,
    FatTree,
    Mesh3D,
    TABLE2,
    TopologyConfig,
    Torus3D,
    build_all,
    config_for,
)

__version__ = "1.0.0"

__all__ = [
    "APPS",
    "app_names",
    "generate_trace",
    "get_app",
    "iter_configurations",
    "expand_collective",
    "iter_send_groups",
    "CommMatrix",
    "CommMatrixBuilder",
    "TraceStats",
    "matrix_from_trace",
    "trace_stats",
    "CollectiveEvent",
    "CollectiveOp",
    "Communicator",
    "DatatypeRegistry",
    "MAX_PAYLOAD_BYTES",
    "MPIDatatype",
    "P2PEvent",
    "Trace",
    "TraceMetadata",
    "TraceKey",
    "TraceRepository",
    "dump_trace",
    "load_trace",
    "Mapping",
    "multicore_sweep",
    "optimize_mapping",
    "weighted_hop_cost",
    "MPILevelMetrics",
    "grid_shape",
    "locality_by_dimension",
    "mean_selectivity_curve",
    "mpi_level_metrics",
    "partner_volumes",
    "peers",
    "rank_distance",
    "rank_locality",
    "selectivity",
    "selectivity_curve",
    "BANDWIDTH_BYTES_PER_S",
    "EnergyModel",
    "NetworkAnalysis",
    "analyze_network",
    "bandwidth_slack",
    "LatencyModel",
    "link_load_stats",
    "SimulationResult",
    "simulate_network",
    "TelemetryConfig",
    "TelemetryReport",
    "congestion_summary",
    "ROUTINGS",
    "RoutingPolicy",
    "get_policy",
    "compare_table3",
    "deviation_summary",
    "table1_row",
    "table3_row",
    "Dragonfly",
    "FatTree",
    "Mesh3D",
    "TABLE2",
    "TopologyConfig",
    "Torus3D",
    "build_all",
    "config_for",
    "__version__",
]
