"""BigFFT (medium) — distributed 3D FFT.

A pencil-decomposed FFT is a sequence of global transposes, i.e. pure
``MPI_Alltoallv`` traffic — BigFFT is the only app in the study with **zero**
point-to-point volume (peers/rank-distance/selectivity are N/A at the MPI
level) and the only one whose network utilization exceeds 1%: an alltoall
among N ranks puts ~N times the per-call logical volume on the wire.

Under the paper's vector-collective convention the per-rank send volume is
split evenly across all ranks, which is also what a transpose does.
"""

from __future__ import annotations

import numpy as np

from ..core.events import CollectiveOp
from .base import AppPattern, CalibrationPoint, Channels, CollectivePhase, SyntheticApp

__all__ = ["BigFFT"]


class BigFFT(SyntheticApp):
    name = "BigFFT"
    calibration = (
        CalibrationPoint(9, 0.1804, 299.2, 0.0, iterations=30),
        CalibrationPoint(100, 0.4999, 3169.0, 0.0, iterations=8),
        CalibrationPoint(1024, 1.8858, 32064.0, 0.0, iterations=30),
    )

    def pattern(self, ranks: int, rng: np.random.Generator) -> AppPattern:
        empty = np.zeros(0)
        return AppPattern(
            channels=Channels(empty, empty.copy(), empty.copy()),
            collectives=[
                # two transpose phases per FFT step (forward + return); the
                # trace-level count is per destination (MPI_Alltoall
                # signature), so the wire volume is ~N x the logical volume
                # -- the paper's Table-1 volume for BigFFT behaves the same
                # way, which is what pushes its utilization past 1%.
                CollectivePhase(CollectiveOp.ALLTOALL, 0.5),
                CollectivePhase(CollectiveOp.ALLTOALL, 0.5),
            ],
        )
