"""Application registry: the paper's full workload set, by name.

Iteration order follows the paper's Table 1.  Every generator is
deterministic: ``generate_trace(name, ranks, variant, seed)`` always returns
the same trace for the same arguments.
"""

from __future__ import annotations

from typing import Iterator

from .. import timings
from ..core.trace import Trace
from .amg import AMG
from .amr import AMRMiniapp
from .base import CalibrationPoint, SyntheticApp
from .bigfft import BigFFT
from .boxlib import BoxlibCNS, BoxlibMultiGridC, FillBoundary
from .cesar import MOCFE, Nekbone
from .crystal_router import CrystalRouter
from .exmatex import CMC2D, LULESH
from .minife import MiniFE
from .multigrid_c import MultiGridC
from .noise import HotspotNoise, UniformNoise
from .scalehalo import ScaleHalo3D
from .transport import PARTISN, SNAP

__all__ = [
    "APPS",
    "SCALE_APPS",
    "NOISE_APPS",
    "app_names",
    "get_app",
    "generate_trace",
    "stream_trace",
    "iter_configurations",
]

#: All applications in Table-1 order, keyed by name.
APPS: dict[str, SyntheticApp] = {
    app.name: app
    for app in (
        AMG(),
        AMRMiniapp(),
        BigFFT(),
        BoxlibCNS(),
        BoxlibMultiGridC(),
        MOCFE(),
        Nekbone(),
        CrystalRouter(),
        CMC2D(),
        LULESH(),
        FillBoundary(),
        MiniFE(),
        MultiGridC(),
        PARTISN(),
        SNAP(),
    )
}

#: Scaling workloads calibrated out of band from Table 1: resolvable via
#: :func:`get_app` but excluded from :func:`iter_configurations`, so the
#: paper-facing tables and claims never sweep them.
SCALE_APPS: dict[str, SyntheticApp] = {
    app.name: app for app in (ScaleHalo3D(),)
}

#: Background-noise aggressors for multi-tenant composition
#: (:mod:`repro.tenancy`): default-tuned instances resolvable via
#: :func:`get_app`, excluded from :func:`iter_configurations` like the
#: scale tier.  Custom-tuned instances go straight into a
#: :class:`~repro.tenancy.compose.TenantSpec` without registration.
NOISE_APPS: dict[str, SyntheticApp] = {
    app.name: app for app in (UniformNoise(), HotspotNoise())
}


def app_names() -> list[str]:
    """All application names, Table-1 order."""
    return list(APPS)


def get_app(name: str) -> SyntheticApp:
    try:
        return APPS[name]
    except KeyError:
        pass
    try:
        return SCALE_APPS[name]
    except KeyError:
        pass
    try:
        return NOISE_APPS[name]
    except KeyError:
        known = app_names() + list(SCALE_APPS) + list(NOISE_APPS)
        raise KeyError(f"unknown application {name!r}; known: {known}") from None


def generate_trace(
    name: str,
    ranks: int,
    variant: str = "",
    seed: int = 0,
    emit_receives: bool = False,
) -> Trace:
    """Generate one calibrated synthetic trace."""
    with timings.stage("trace"):
        return get_app(name).generate(
            ranks, variant=variant, seed=seed, emit_receives=emit_receives
        )


def stream_trace(
    name: str,
    ranks: int,
    variant: str = "",
    seed: int = 0,
    emit_receives: bool = False,
    chunk_bytes: int | None = None,
):
    """Chunked, re-iterable view of one calibrated synthetic trace.

    Returns a :class:`~repro.core.stream.BlockStream` whose chunks
    concatenate bit-identically to :func:`generate_trace`'s blocks; peak
    memory is bounded by the calibration plan plus one chunk.
    """
    from ..core.stream import DEFAULT_CHUNK_BYTES

    with timings.stage("trace"):
        return get_app(name).stream(
            ranks,
            variant=variant,
            seed=seed,
            emit_receives=emit_receives,
            chunk_bytes=DEFAULT_CHUNK_BYTES if chunk_bytes is None else chunk_bytes,
        )


def iter_configurations(
    max_ranks: int | None = None,
) -> Iterator[tuple[SyntheticApp, CalibrationPoint]]:
    """Every (app, configuration) pair of the study, Table-1 order.

    ``max_ranks`` restricts to small configurations (useful for quick runs
    and tests; the full set peaks at 1728 ranks).
    """
    for app in APPS.values():
        for point in app.configurations():
            if max_ranks is None or point.ranks <= max_ranks:
                yield app, point
