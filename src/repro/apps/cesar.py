"""CESAR proxies: MOCFE and Nekbone.

- **MOCFE** — method-of-characteristics neutron transport.  Its volume is
  ~94% collective (dominated by alltoall-style angular/energy redistribution
  plus allreduce convergence checks), with a small unstructured
  point-to-point part whose partners are scattered nearly uniformly over the
  rank space — MOCFE has the *worst* rank locality in the study
  (90% distance ≈ 0.75 × ranks).  Uses MPI derived datatypes.

- **Nekbone** — the Nek5000 spectral-element CG kernel: a 27-point halo
  (gather-scatter of shared element faces) plus allreduce dot products.
  The collective share swings wildly with configuration (0% at 64 ranks,
  49% at 256, 0.02% at 1024 in Table 1) because the per-element work and
  iteration counts differ per published trace; the calibration pins each.
  At 1024 ranks extra unstructured partners from the ragged element
  distribution lift peers to 36 and selectivity to ~10.
"""

from __future__ import annotations

import numpy as np

from ..core.events import CollectiveOp
from ..metrics.dimensionality import grid_shape
from .base import AppPattern, CalibrationPoint, Channels, CollectivePhase, SyntheticApp
from .patterns import (
    biased_scattered_channels,
    halo_channels,
    scaled_channels,
    scattered_channels,
)

__all__ = ["MOCFE", "Nekbone"]


class MOCFE(SyntheticApp):
    name = "MOCFE"
    uses_derived_types = True
    calibration = (
        CalibrationPoint(64, 0.3777, 19.0, 0.0501, iterations=45),
        CalibrationPoint(256, 1.101, 81.6, 0.0551, iterations=170),
        CalibrationPoint(1024, 3.946, 686.2, 0.0696, iterations=370),
    )

    _partners = {64: 12, 256: 20, 1024: 20}

    def pattern(self, ranks: int, rng: np.random.Generator) -> AppPattern:
        partners = self._partners.get(ranks, 16)
        channels = biased_scattered_channels(
            ranks,
            partners,
            rng,
            distance="uniform",
            weight_decay="zipf",
            zipf_exponent=1.0,
        )
        return AppPattern(
            channels=channels,
            collectives=[
                CollectivePhase(CollectiveOp.ALLTOALL, 0.85),
                CollectivePhase(CollectiveOp.ALLREDUCE, 0.15),
            ],
        )


class Nekbone(SyntheticApp):
    name = "Nekbone"
    uses_derived_types = True
    # Iteration counts chosen so per-message sizes match the paper's packet
    # counts (Table 3 packet hops / avg hops): Nekbone's CG loop sends very
    # many tiny messages (a few bytes to a few hundred bytes each).
    calibration = (
        CalibrationPoint(64, 11.83, 5307.0, 1.0, iterations=15000),
        CalibrationPoint(256, 3.166, 1272.0, 0.5066, iterations=83000),
        CalibrationPoint(1024, 5.151, 13232.0, 0.9998, iterations=128000),
    )

    def pattern(self, ranks: int, rng: np.random.Generator) -> AppPattern:
        shape = grid_shape(ranks, 3)
        parts = [
            scaled_channels(
                halo_channels(
                    shape, face_weight=1.0, edge_weight=0.06, corner_weight=0.01
                ),
                0.92 if ranks >= 1024 else 1.0,
            )
        ]
        if ranks >= 1024:
            # ragged element distribution: extra unstructured CG partners
            parts.append(
                scattered_channels(
                    ranks,
                    10,
                    rng,
                    weight_decay="zipf",
                    zipf_exponent=1.2,
                    total_weight=0.08,
                )
            )
        return AppPattern(
            channels=Channels.concatenate(parts),
            collectives=[CollectivePhase(CollectiveOp.ALLREDUCE, 1.0)],
        )
