"""ScaleHalo3D — synthetic scaling workload for the out-of-core pipeline.

The paper's workloads stop at 1,728 ranks; the streaming front-end targets
the 10^5–10^6-rank regime where networks actually hurt.  ScaleHalo3D is a
deliberately simple stand-in for that regime: a face-only 6-point halo
exchange on a 3-D Cartesian decomposition (the communication skeleton
shared by most of the Table-1 stencil apps) plus a tiny allreduce phase for
residual norms.  Channel count grows as ``6 * ranks``, so the 262,144-rank
configuration exercises a ~1.6M-channel trace — large enough to make an
in-memory build uncomfortable, structured enough that locality metrics
stay meaningful.

It is calibrated out of band from Table 1 and therefore lives in the
registry's :data:`~repro.apps.registry.SCALE_APPS` tier: resolvable by
name, excluded from the paper-facing configuration sweeps.
"""

from __future__ import annotations

import numpy as np

from ..core.events import CollectiveOp
from ..metrics.dimensionality import grid_shape
from .base import AppPattern, CalibrationPoint, CollectivePhase, SyntheticApp
from .patterns import halo_channels

__all__ = ["ScaleHalo3D"]


class ScaleHalo3D(SyntheticApp):
    name = "ScaleHalo3D"
    #: ~2 MB of halo traffic per rank per configuration, ten solver
    #: iterations; message sizes land in the tens-of-KB range typical of
    #: production stencil halos.
    calibration = (
        CalibrationPoint(4_096, 10.0, 8_192.0, 0.97, iterations=10),
        CalibrationPoint(32_768, 10.0, 65_536.0, 0.97, iterations=10),
        CalibrationPoint(262_144, 10.0, 524_288.0, 0.97, iterations=10),
        CalibrationPoint(1_048_576, 10.0, 2_097_152.0, 0.97, iterations=10),
    )

    def pattern(self, ranks: int, rng: np.random.Generator) -> AppPattern:
        shape = grid_shape(ranks, 3)
        channels = halo_channels(shape, face_weight=1.0)
        return AppPattern(
            channels=channels,
            collectives=[CollectivePhase(CollectiveOp.ALLREDUCE, 1.0)],
        )
