"""AMR miniapp — adaptive mesh refinement (ExaCT/DOE proxy).

Block-structured AMR: each rank owns boxes at several refinement levels and
exchanges ghost data with the owners of adjacent boxes.  Load-balancing
scatters adjacent boxes over the rank space, so the heavy neighbourhood of a
rank is a small set of partners at *mixed* linear distances — mostly near,
some far (log-uniform distance profile) — plus a broad, low-volume tail of
partners from coarse/fine interpolation and regrid metadata.  The tail is
widest around heavily-refined regions, which is what drives the peak
*peers* to ~0.28 × ranks (490 of 1728 in the paper) while selectivity stays
near 10.  A small allreduce (timestep reduction) accounts for the <1%
collective share.
"""

from __future__ import annotations

import numpy as np

from ..core.events import CollectiveOp
from .base import AppPattern, CalibrationPoint, Channels, CollectivePhase, SyntheticApp
from .patterns import biased_scattered_channels, scaled_channels

__all__ = ["AMRMiniapp"]


class AMRMiniapp(SyntheticApp):
    name = "AMR_Miniapp"
    calibration = (
        CalibrationPoint(64, 12.93, 3106.0, 0.9966, iterations=240),
        CalibrationPoint(1728, 42.69, 96969.0, 0.9945, iterations=24000),
    )

    #: (heavy partners per rank, tail partners of hot ranks, number of hot ranks)
    _shape_params = {64: (10, 28, 3), 1728: (12, 470, 5)}

    def pattern(self, ranks: int, rng: np.random.Generator) -> AppPattern:
        heavy_p, hot_tail, num_hot = self._shape_params.get(
            ranks, (10, max(8, ranks // 4), 3)
        )
        parts = [
            scaled_channels(
                biased_scattered_channels(
                    ranks,
                    heavy_p,
                    rng,
                    distance="loguniform",
                    weight_decay="zipf",
                    zipf_exponent=1.0,
                    # refinement neighbourhoods cluster within a window of
                    # the rank space (keeps the 90% distance near 0.2 N)
                    max_offset=max(ranks // 4, 32),
                ),
                0.92,
            ),
            # common interpolation tail: a handful of extra partners everywhere
            scaled_channels(
                biased_scattered_channels(ranks, min(8, ranks - 1), rng, distance="uniform"),
                0.05,
            ),
            scaled_channels(self._hot_rank_tails(ranks, hot_tail, num_hot, rng), 0.03),
        ]
        return AppPattern(
            channels=Channels.concatenate(parts),
            collectives=[CollectivePhase(CollectiveOp.ALLREDUCE, 1.0)],
        )

    @staticmethod
    def _hot_rank_tails(
        ranks: int, partners: int, num_hot: int, rng: np.random.Generator
    ) -> Channels:
        """Wide low-volume fan-outs around heavily refined regions."""
        partners = min(partners, ranks - 1)
        hot = rng.choice(ranks, size=min(num_hot, ranks), replace=False)
        srcs, dsts = [], []
        for r in hot:
            r = int(r)
            others = rng.choice(ranks - 1, size=partners, replace=False)
            others = others + (others >= r)
            srcs.append(np.full(partners, r, dtype=np.int64))
            dsts.append(others.astype(np.int64))
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
        return Channels(src, dst, np.full(len(src), 1.0))
