"""Generator self-validation.

Every synthetic generator carries two kinds of promises: **calibration**
(its trace hits the Table-1 aggregates) and **structure** (its pattern has
the documented shape — stencil peer counts, sweep grids, collective mixes).
This module checks both for any configuration and reports violations, so a
change to a generator that silently breaks its contract is caught at the
library level, not just by downstream metric drift.

Used by the test suite and the ``repro-locality validate`` CLI command.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..comm.matrix import matrix_from_trace
from ..comm.stats import trace_stats
from ..metrics.peers import peers
from ..metrics.selectivity import selectivity
from .base import SyntheticApp
from .registry import iter_configurations

__all__ = ["ValidationIssue", "ValidationResult", "validate_app", "validate_all"]

#: Peak-peers expectations per (app, ranks), from the paper's Table 3; a
#: generator is flagged when outside [expected / factor, expected * factor].
_PEERS_EXPECTATIONS: dict[tuple[str, int], int] = {
    ("AMG", 8): 7,
    ("AMG", 27): 26,
    ("AMG", 216): 127,
    ("AMG", 1728): 293,
    ("AMR_Miniapp", 64): 39,
    ("AMR_Miniapp", 1728): 490,
    ("Boxlib_CNS", 64): 63,
    ("Boxlib_CNS", 256): 255,
    ("Boxlib_CNS", 1024): 1023,
    ("Boxlib_MultiGrid_C", 64): 26,
    ("Boxlib_MultiGrid_C", 256): 26,
    ("Boxlib_MultiGrid_C", 1024): 26,
    ("MOCFE", 64): 12,
    ("MOCFE", 256): 20,
    ("MOCFE", 1024): 20,
    ("Nekbone", 64): 27,
    ("Nekbone", 256): 15,
    ("Nekbone", 1024): 36,
    ("CrystalRouter", 10): 4,
    ("CrystalRouter", 100): 8,
    ("CrystalRouter", 1000): 11,
    ("LULESH", 64): 26,
    ("LULESH", 512): 26,
    ("FillBoundary", 125): 26,
    ("FillBoundary", 1000): 26,
    ("MiniFE", 18): 8,
    ("MiniFE", 144): 22,
    ("MiniFE", 1152): 22,
    ("MultiGrid_C", 125): 22,
    ("MultiGrid_C", 1000): 22,
    ("PARTISN", 168): 167,
    ("SNAP", 168): 48,
}

_PEERS_FACTOR = 2.5


@dataclass(frozen=True)
class ValidationIssue:
    """One violated contract."""

    label: str
    kind: str  # "calibration" | "structure"
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.label}: {self.message}"


@dataclass
class ValidationResult:
    """Validation outcome of one or more configurations."""

    checked: int = 0
    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def merge(self, other: "ValidationResult") -> None:
        self.checked += other.checked
        self.issues.extend(other.issues)

    def summary(self) -> str:
        if self.ok:
            return f"{self.checked} configuration(s) validated, no issues"
        lines = [f"{self.checked} configuration(s) validated, "
                 f"{len(self.issues)} issue(s):"]
        lines += [f"  {issue}" for issue in self.issues]
        return "\n".join(lines)


def validate_app(
    app: SyntheticApp,
    ranks: int,
    variant: str = "",
    seed: int = 0,
) -> ValidationResult:
    """Validate one configuration of one generator."""
    point = app.calibration_for(ranks, variant)
    trace = app.generate(ranks, variant=variant, seed=seed)
    label = trace.meta.label
    result = ValidationResult(checked=1)

    def issue(kind: str, message: str) -> None:
        result.issues.append(ValidationIssue(label, kind, message))

    # -- calibration contracts ------------------------------------------------
    stats = trace_stats(trace)
    if not math.isclose(stats.total_mb, point.volume_mb, rel_tol=0.03):
        issue(
            "calibration",
            f"volume {stats.total_mb:.1f} MB vs target {point.volume_mb:.1f} MB",
        )
    if abs(stats.p2p_share - point.p2p_share) > 0.03:
        issue(
            "calibration",
            f"p2p share {stats.p2p_share:.3f} vs target {point.p2p_share:.3f}",
        )
    if stats.execution_time != point.time_s:
        issue("calibration", "execution time does not match the calibration point")

    # -- structural contracts ----------------------------------------------------
    if trace.active_ranks() and max(trace.active_ranks()) >= ranks:
        issue("structure", "events reference out-of-range ranks")
    if not trace.uses_only_global_communicators:
        issue("structure", "paper requires global communicators only (§4.3)")
    if app.uses_derived_types:
        dtypes = {ev.dtype for ev in trace.events}
        if dtypes != {app.dtype_name}:
            issue("structure", f"derived-type app uses datatypes {sorted(dtypes)}")

    matrix = matrix_from_trace(trace, include_collectives=False)
    expected_peers = _PEERS_EXPECTATIONS.get((app.name, ranks))
    if point.p2p_share == 0.0:
        if matrix.num_pairs:
            issue("structure", "all-collective app emits p2p traffic")
    else:
        got = peers(matrix)
        if got == 0:
            issue("structure", "p2p app has no point-to-point traffic")
        elif expected_peers is not None and not (
            expected_peers / _PEERS_FACTOR <= got <= expected_peers * _PEERS_FACTOR
        ):
            issue(
                "structure",
                f"peers {got} outside band of paper value {expected_peers}",
            )
        sel = selectivity(matrix)
        if not math.isnan(sel) and sel > ranks:
            issue("structure", f"selectivity {sel:.1f} exceeds rank count")

    # determinism
    again = app.generate(ranks, variant=variant, seed=seed)
    if again.events != trace.events:
        issue("structure", "generator is not deterministic for a fixed seed")

    return result


def validate_all(max_ranks: int | None = None, seed: int = 0) -> ValidationResult:
    """Validate every configuration (optionally capped by rank count)."""
    total = ValidationResult()
    for app, point in iter_configurations(max_ranks=max_ranks):
        total.merge(validate_app(app, point.ranks, point.variant, seed=seed))
    return total
