"""Background-noise aggressor traffic generators.

Co-scheduling studies (Jha et al., PAPERS.md) characterise interference
with two canonical aggressor shapes: *uniform* background chatter that
raises the noise floor everywhere, and a *hot-spot* incast that funnels
many sources into a few targets and saturates the links in between.
Both are modeled here as :class:`~repro.apps.base.SyntheticApp`
subclasses, so the multi-tenant composer (:mod:`repro.tenancy.compose`)
treats them exactly like the Table-1 mini-apps.

Noise apps differ from the calibrated apps in one way: they synthesize a
:class:`~repro.apps.base.CalibrationPoint` for **any** rank count from
constructor parameters (total volume, duration, iteration count) instead
of carrying a fixed Table-1 row, and they publish no sweepable
configurations — ``scales()``/``configurations()`` are empty so the
paper-facing tables and sweeps never see them.  Default instances are
registered in :data:`repro.apps.registry.NOISE_APPS`; custom-tuned
instances can be passed directly to
:class:`~repro.tenancy.compose.TenantSpec`.
"""

from __future__ import annotations

import numpy as np

from .base import AppPattern, CalibrationPoint, Channels, SyntheticApp

__all__ = ["NoiseApp", "UniformNoise", "HotspotNoise"]


class NoiseApp(SyntheticApp):
    """Base for background-noise generators: pure p2p, any rank count."""

    def __init__(
        self,
        volume_mb: float = 64.0,
        time_s: float = 1.0,
        iterations: int = 10,
    ) -> None:
        if volume_mb < 0:
            raise ValueError("volume_mb must be >= 0")
        if time_s <= 0:
            raise ValueError("time_s must be positive")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.volume_mb = float(volume_mb)
        self.time_s = float(time_s)
        self.iterations = int(iterations)

    # Noise apps are not calibrated against Table 1: any rank count >= 2 is
    # valid and the aggregates come from the constructor.
    def calibration_for(self, ranks: int, variant: str = "") -> CalibrationPoint:
        if variant:
            raise KeyError(
                f"{self.name} has no variants (requested variant={variant!r})"
            )
        if ranks < 2:
            raise KeyError(f"{self.name} needs at least 2 ranks, got {ranks}")
        return CalibrationPoint(
            ranks,
            self.time_s,
            self.volume_mb,
            1.0,  # pure p2p — noise carries no collectives
            iterations=self.iterations,
        )

    def scales(self) -> list[int]:
        return []

    def configurations(self) -> list[CalibrationPoint]:
        return []


class UniformNoise(NoiseApp):
    """Uniform background chatter: each rank sends to ``fanout`` random peers.

    Destination offsets are drawn uniformly from ``1..ranks-1`` (self-sends
    excluded), so the aggregate load spreads over the whole allocation with
    no structure for routing to exploit — the classic noise floor.
    """

    name = "UniformNoise"

    def __init__(
        self,
        fanout: int = 4,
        volume_mb: float = 64.0,
        time_s: float = 1.0,
        iterations: int = 10,
    ) -> None:
        super().__init__(volume_mb, time_s, iterations)
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.fanout = int(fanout)

    def pattern(self, ranks: int, rng: np.random.Generator) -> AppPattern:
        fanout = min(self.fanout, ranks - 1)
        src = np.repeat(np.arange(ranks, dtype=np.int64), fanout)
        offsets = rng.integers(1, ranks, size=len(src), dtype=np.int64)
        dst = (src + offsets) % ranks
        weight = np.ones(len(src), dtype=np.float64)
        return AppPattern(channels=Channels(src, dst, weight))


class HotspotNoise(NoiseApp):
    """Hot-spot incast: ``src_ranks`` sources flood ``hot_ranks`` targets.

    Targets are the job's lowest local ranks (``0..hot_ranks-1``), sources
    the next ``src_ranks`` ranks; any further ranks in the allocation stay
    idle.  Under a locality-preserving placement the flood concentrates on
    the few links toward the targets' nodes, which is exactly the
    adversarial shape the ``interference_aware`` routing policy and the
    congestion-attribution report are demonstrated against.
    """

    name = "HotspotNoise"

    def __init__(
        self,
        hot_ranks: int = 8,
        src_ranks: int | None = None,
        volume_mb: float = 256.0,
        time_s: float = 1.0,
        iterations: int = 10,
    ) -> None:
        super().__init__(volume_mb, time_s, iterations)
        if hot_ranks < 1:
            raise ValueError("hot_ranks must be >= 1")
        if src_ranks is not None and src_ranks < 1:
            raise ValueError("src_ranks must be >= 1 when given")
        self.hot_ranks = int(hot_ranks)
        self.src_ranks = None if src_ranks is None else int(src_ranks)

    def pattern(self, ranks: int, rng: np.random.Generator) -> AppPattern:
        hot = min(self.hot_ranks, ranks - 1)
        first_src = hot
        if self.src_ranks is None:
            last_src = ranks
        else:
            last_src = min(first_src + self.src_ranks, ranks)
        sources = np.arange(first_src, last_src, dtype=np.int64)
        if not len(sources):
            raise ValueError(
                f"{self.name}: no source ranks left after {hot} hot targets "
                f"in a {ranks}-rank allocation"
            )
        src = np.repeat(sources, hot)
        dst = np.tile(np.arange(hot, dtype=np.int64), len(sources))
        weight = np.ones(len(src), dtype=np.float64)
        return AppPattern(channels=Channels(src, dst, weight))
