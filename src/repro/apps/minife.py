"""MiniFE — implicit finite-element assembly and CG solve (Mantevo).

MiniFE partitions an unstructured-looking (but structurally regular) FE
mesh by recursive coordinate bisection; the resulting halo touches faces,
edges, and *part* of the corner diagonals — the paper's peers column reads
22 at 144 and 1152 ranks, i.e. the 26-point stencil minus a handful of
corners.  Faces dominate the exchanged volume; tiny allreduce dot products
add a <0.05% collective share at scale.
"""

from __future__ import annotations

import numpy as np

from ..core.events import CollectiveOp
from ..metrics.dimensionality import grid_shape
from .base import AppPattern, CalibrationPoint, CollectivePhase, SyntheticApp
from .patterns import halo_channels

__all__ = ["MiniFE"]


class MiniFE(SyntheticApp):
    name = "MiniFE"
    calibration = (
        CalibrationPoint(18, 59.70, 1615.0, 1.0, iterations=220),
        CalibrationPoint(144, 61.06, 16586.0, 0.9999, iterations=3900),
        CalibrationPoint(1152, 84.75, 147264.0, 0.9996, iterations=27000),
    )

    def pattern(self, ranks: int, rng: np.random.Generator) -> AppPattern:
        shape = grid_shape(ranks, 3)
        channels = halo_channels(
            shape,
            face_weight=1.0,
            edge_weight=0.07,
            corner_weight=0.02,
            # bisection partitioning touches only part of the diagonals
            corner_keep=0.35,
            edge_keep=0.85,
            rng=rng,
        )
        return AppPattern(
            channels=channels,
            collectives=[CollectivePhase(CollectiveOp.ALLREDUCE, 1.0)],
        )
