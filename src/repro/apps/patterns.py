"""Reusable communication-pattern builders for the synthetic mini-apps.

Each builder returns a :class:`~repro.apps.base.Channels` set — weighted
point-to-point rank pairs — for one structural ingredient of an
application's pattern: halo stencils on Cartesian decompositions, strided
multigrid coarse levels, KBA-style 2D sweeps, hypercube exchanges
(crystal-router), scattered AMR-style neighbourhoods, and low-volume
metadata fan-outs.  Apps compose these with relative weights.

All grids are row-major (last dimension fastest), matching both MPI's
Cartesian convention and :func:`repro.metrics.grid_shape`, so an app built
on ``grid_shape(n, 3)`` scores 100% 3D rank locality by construction —
exactly the behaviour the paper reports for the 3D-structured apps.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..metrics.dimensionality import grid_shape, rank_coordinates
from .base import Channels

__all__ = [
    "halo_channels",
    "coarsened_halo_channels",
    "strided_face_channels",
    "sweep2d_channels",
    "hypercube_channels",
    "scattered_channels",
    "biased_scattered_channels",
    "fanout_channels",
    "ring_channels",
    "morton_permutation",
    "permute_channels",
    "scaled_channels",
    "background_channels",
]


def _ranks_of_coords(coords: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Row-major rank of each coordinate row."""
    ranks = np.zeros(len(coords), dtype=np.int64)
    for axis, extent in enumerate(shape):
        ranks = ranks * extent + coords[:, axis]
    return ranks


def _offset_channels(
    shape: tuple[int, ...],
    offsets: list[tuple[int, ...]],
    weights: list[float],
    periodic: bool = False,
) -> Channels:
    """Channels from every rank to each in-bounds offset neighbour."""
    n = int(np.prod(shape))
    all_ranks = np.arange(n, dtype=np.int64)
    coords = rank_coordinates(all_ranks, shape)
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    wts: list[np.ndarray] = []
    extents = np.array(shape, dtype=np.int64)
    for off, w in zip(offsets, weights):
        if w <= 0:
            continue
        shifted = coords + np.array(off, dtype=np.int64)
        if periodic:
            shifted = shifted % extents
            valid = np.ones(n, dtype=bool)
        else:
            valid = np.all((shifted >= 0) & (shifted < extents), axis=1)
        if not valid.any():
            continue
        srcs.append(all_ranks[valid])
        dsts.append(_ranks_of_coords(shifted[valid], shape))
        wts.append(np.full(int(valid.sum()), w, dtype=np.float64))
    if not srcs:
        empty = np.zeros(0)
        return Channels(empty, empty.copy(), empty.copy())
    return Channels(np.concatenate(srcs), np.concatenate(dsts), np.concatenate(wts))


def halo_channels(
    shape: tuple[int, ...],
    face_weight: float = 1.0,
    edge_weight: float = 0.0,
    corner_weight: float = 0.0,
    periodic: bool = False,
    corner_keep: float = 1.0,
    edge_keep: float = 1.0,
    rng: np.random.Generator | None = None,
) -> Channels:
    """Nearest-neighbour halo exchange on a Cartesian decomposition.

    Offsets are classified by how many coordinates differ: 1 — faces,
    2 — edges, 3+ — corners; each class gets its own per-message weight
    (in a real stencil halo, faces carry O(n^2) data, edges O(n), corners
    O(1)).  ``corner_keep`` / ``edge_keep`` < 1 randomly drop a fraction of
    corner / edge channels — some apps (e.g. MiniFE's ragged row
    partitioning) only touch part of the full stencil.
    """
    d = len(shape)
    offsets: list[tuple[int, ...]] = []
    weights: list[float] = []
    for off in itertools.product((-1, 0, 1), repeat=d):
        nz = sum(1 for o in off if o)
        if nz == 0:
            continue
        w = {1: face_weight, 2: edge_weight}.get(nz, corner_weight)
        if w <= 0:
            continue
        offsets.append(off)
        weights.append(w)
    ch = _offset_channels(shape, offsets, weights, periodic)
    if corner_keep < 1.0 or edge_keep < 1.0:
        if rng is None:
            raise ValueError("corner_keep/edge_keep < 1 requires an rng")
        coords_s = rank_coordinates(ch.src, shape)
        coords_d = rank_coordinates(ch.dst, shape)
        nz = (coords_s != coords_d).sum(axis=1)
        is_corner = nz >= 3 if d >= 3 else nz >= 2
        is_edge = nz == 2 if d >= 3 else np.zeros(len(ch.src), dtype=bool)
        u = rng.random(len(ch.src))
        drop = (is_corner & (u > corner_keep)) | (is_edge & (u > edge_keep))
        keep = ~drop
        ch = Channels(ch.src[keep], ch.dst[keep], ch.weight[keep])
    return ch


def strided_face_channels(
    shape: tuple[int, ...],
    stride: int,
    weight: float,
    periodic: bool = False,
    axes: tuple[int, ...] | None = None,
) -> Channels:
    """Face-neighbour exchange at a coarse-grid stride (multigrid levels).

    Level ``l`` of a V-cycle exchanges with the rank ``2**l`` positions away
    along each axis; call this once per level with the level's weight.
    ``axes`` restricts the exchange to a subset of dimensions (anisotropic
    coarsening, e.g. semi-coarsening along the slowest axis only).
    """
    if stride < 1:
        raise ValueError("stride must be >= 1")
    d = len(shape)
    use_axes = tuple(range(d)) if axes is None else axes
    offsets = []
    for axis in use_axes:
        if not 0 <= axis < d:
            raise ValueError(f"axis {axis} out of range for shape {shape}")
        for sign in (-1, 1):
            off = [0] * d
            off[axis] = sign * stride
            offsets.append(tuple(off))
    return _offset_channels(shape, offsets, [weight] * len(offsets), periodic)


def sweep2d_channels(
    num_ranks: int,
    weight: float = 1.0,
    shape: tuple[int, int] | None = None,
) -> Channels:
    """KBA-style 2D transport sweep: exchanges with the 4 grid neighbours.

    Sweeps traverse the 2D processor grid in wavefronts from each corner;
    statically that means every rank exchanges with its x/y neighbours in
    both directions (PARTISN, SNAP).
    """
    if shape is None:
        shape = grid_shape(num_ranks, 2)  # type: ignore[assignment]
    return _offset_channels(
        shape, [(-1, 0), (1, 0), (0, -1), (0, 1)], [weight] * 4, periodic=False
    )


def hypercube_channels(
    num_ranks: int,
    dim_weight_decay: float = 0.8,
) -> Channels:
    """Crystal-router / hypercube exchange: partner ``r XOR 2**k``.

    For non-power-of-two rank counts, out-of-range partners are simply
    skipped (the crystal router folds them); dimension ``k`` carries weight
    ``decay**k``, modelling the typical bias toward low dimensions.
    """
    if num_ranks < 2:
        raise ValueError("hypercube needs >= 2 ranks")
    ranks = np.arange(num_ranks, dtype=np.int64)
    srcs, dsts, wts = [], [], []
    k = 0
    while (1 << k) < num_ranks:
        partner = ranks ^ (1 << k)
        valid = partner < num_ranks
        srcs.append(ranks[valid])
        dsts.append(partner[valid])
        wts.append(np.full(int(valid.sum()), dim_weight_decay**k, dtype=np.float64))
        k += 1
    return Channels(np.concatenate(srcs), np.concatenate(dsts), np.concatenate(wts))


def scattered_channels(
    num_ranks: int,
    partners_per_rank: int,
    rng: np.random.Generator,
    weight_decay: str = "uniform",
    zipf_exponent: float = 1.5,
    total_weight: float = 1.0,
) -> Channels:
    """Unstructured neighbourhoods: each rank picks random distinct partners.

    Models AMR/box-based codes whose neighbours are scattered across the
    rank space (Boxlib CNS, MOCFE, AMR miniapp) — the reason their rank
    locality is poor at every dimensionality.

    ``weight_decay``: ``"uniform"`` gives all partners equal weight;
    ``"zipf"`` weights a rank's k-th partner ``(k+1)**-zipf_exponent``
    (a few dominant partners, a long tail — raises selectivity slowly).
    """
    if partners_per_rank < 1:
        raise ValueError("partners_per_rank must be >= 1")
    if partners_per_rank >= num_ranks:
        partners_per_rank = num_ranks - 1
    srcs = np.repeat(np.arange(num_ranks, dtype=np.int64), partners_per_rank)
    dsts = np.empty(num_ranks * partners_per_rank, dtype=np.int64)
    for r in range(num_ranks):
        # sample without replacement, excluding self
        choices = rng.choice(num_ranks - 1, size=partners_per_rank, replace=False)
        choices = choices + (choices >= r)
        dsts[r * partners_per_rank : (r + 1) * partners_per_rank] = choices
    if weight_decay == "uniform":
        w = np.full(len(srcs), 1.0)
    elif weight_decay == "zipf":
        per_rank = (np.arange(partners_per_rank) + 1.0) ** -zipf_exponent
        w = np.tile(per_rank, num_ranks)
    else:
        raise ValueError(f"unknown weight_decay {weight_decay!r}")
    w *= total_weight / w.sum()
    return Channels(srcs, dsts, w)


def fanout_channels(
    num_ranks: int,
    num_hubs: int,
    total_weight: float,
    rng: np.random.Generator | None = None,
) -> Channels:
    """Metadata fan-out through hub ranks.

    ``num_hubs`` evenly-spaced hub ranks exchange a small message with every
    other rank in both directions — the pattern of regridding/IO metadata
    distribution in Boxlib-style codes.  It is what drives the *peers*
    metric to ``ranks − 1`` while contributing almost no volume.
    """
    if not 1 <= num_hubs <= num_ranks:
        raise ValueError("num_hubs must be in [1, num_ranks]")
    hubs = np.linspace(0, num_ranks - 1, num_hubs, dtype=np.int64)
    hubs = np.unique(hubs)
    others = np.arange(num_ranks, dtype=np.int64)
    srcs, dsts = [], []
    for hub in hubs:
        mask = others != hub
        srcs.append(np.full(int(mask.sum()), hub, dtype=np.int64))
        dsts.append(others[mask])
        # and everyone answers the hub
        srcs.append(others[mask])
        dsts.append(np.full(int(mask.sum()), hub, dtype=np.int64))
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    w = np.full(len(src), total_weight / len(src))
    return Channels(src, dst, w)


def ring_channels(num_ranks: int, weight: float = 1.0) -> Channels:
    """Bidirectional open-chain exchange (1D decomposition)."""
    if num_ranks < 2:
        raise ValueError("ring needs >= 2 ranks")
    ranks = np.arange(num_ranks - 1, dtype=np.int64)
    src = np.concatenate([ranks, ranks + 1])
    dst = np.concatenate([ranks + 1, ranks])
    return Channels(src, dst, np.full(len(src), weight))


def coarsened_halo_channels(
    shape: tuple[int, ...],
    stride: int,
    face_weight: float = 1.0,
    edge_weight: float = 0.0,
    corner_weight: float = 0.0,
) -> Channels:
    """Halo exchange among the ranks active on a multigrid coarse level.

    On level ``l`` (``stride = 2**l``) only ranks whose coordinates are all
    multiples of the stride stay active; they halo-exchange with their
    coarse-grid neighbours, i.e. the fine ranks ``stride`` positions away
    per axis.  Returns an empty channel set when the coarse grid degenerates
    to a single rank.
    """
    if stride < 1:
        raise ValueError("stride must be >= 1")
    coarse_shape = tuple(-(-extent // stride) for extent in shape)
    if int(np.prod(coarse_shape)) < 2:
        empty = np.zeros(0)
        return Channels(empty, empty.copy(), empty.copy())
    coarse = halo_channels(coarse_shape, face_weight, edge_weight, corner_weight)
    # map coarse rank -> fine rank at stride * coarse coordinates
    coarse_coords_src = rank_coordinates(coarse.src, coarse_shape) * stride
    coarse_coords_dst = rank_coordinates(coarse.dst, coarse_shape) * stride
    return Channels(
        _ranks_of_coords(coarse_coords_src, shape),
        _ranks_of_coords(coarse_coords_dst, shape),
        coarse.weight,
    )


def morton_permutation(shape: tuple[int, ...]) -> np.ndarray:
    """Space-filling (Z-order) rank renumbering of a Cartesian grid.

    Returns ``perm`` with ``perm[row_major_rank] = morton_position``: the
    rank's position when grid cells are sorted by bit-interleaved (Morton)
    coordinates.  Boxlib-style codes assign boxes to ranks along such curves
    (or by load-balancing knapsack), which is why their 26-neighbour halos
    appear at scattered *linear* rank distances.  Works for arbitrary
    (non-power-of-two) extents via key sorting.
    """
    n = int(np.prod(shape))
    coords = rank_coordinates(np.arange(n, dtype=np.int64), shape)
    bits = max(int(np.ceil(np.log2(max(extent, 2)))) for extent in shape)
    keys = np.zeros(n, dtype=np.int64)
    for bit in range(bits - 1, -1, -1):
        for axis in range(len(shape)):
            keys = (keys << 1) | ((coords[:, axis] >> bit) & 1)
    order = np.argsort(keys, kind="stable")  # order[i] = row-major rank at position i
    perm = np.empty(n, dtype=np.int64)
    perm[order] = np.arange(n, dtype=np.int64)
    return perm


def permute_channels(channels: Channels, permutation: np.ndarray) -> Channels:
    """Renumber channel endpoints through a rank permutation."""
    perm = np.asarray(permutation, dtype=np.int64)
    return Channels(perm[channels.src], perm[channels.dst], channels.weight.copy())


def biased_scattered_channels(
    num_ranks: int,
    partners_per_rank: int,
    rng: np.random.Generator,
    distance: str = "uniform",
    weight_decay: str = "uniform",
    zipf_exponent: float = 1.2,
    total_weight: float = 1.0,
    max_offset: int | None = None,
) -> Channels:
    """Scattered partners with a controllable linear-distance profile.

    ``distance``:

    - ``"uniform"``  — partner offsets uniform in ``[1, num_ranks-1]``
      (byte-weighted 90% rank distance lands near ``0.68 * num_ranks``);
    - ``"loguniform"`` — offsets log-uniform (strong near bias: most
      partners close, a few far — AMR-style refinement neighbourhoods);
    - ``"quadratic"`` — offsets ``~U**2`` (mild near bias).

    Out-of-range destinations are reflected back (``r - d``) so the offset
    magnitude — hence the locality profile — is preserved.  ``max_offset``
    caps the sampled offsets (partner pools clustered in a window around
    each rank, e.g. AMR refinement regions).
    """
    if partners_per_rank < 1:
        raise ValueError("partners_per_rank must be >= 1")
    partners_per_rank = min(partners_per_rank, num_ranks - 1)
    max_off = num_ranks - 1 if max_offset is None else min(max_offset, num_ranks - 1)
    if max_off < 1:
        raise ValueError("max_offset must allow at least distance 1")
    if weight_decay == "uniform":
        partner_w = np.full(partners_per_rank, 1.0)
    elif weight_decay == "zipf":
        partner_w = (np.arange(partners_per_rank) + 1.0) ** -zipf_exponent
    else:
        raise ValueError(f"unknown weight_decay {weight_decay!r}")
    if distance not in ("uniform", "loguniform", "quadratic"):
        raise ValueError(f"unknown distance profile {distance!r}")
    if not hasattr(rng.bit_generator, "advance"):
        # Exotic bit generators without skip-ahead fall back to the
        # draw-by-draw reference (identical output, just slower).
        return _biased_scattered_reference(
            num_ranks, partners_per_rank, rng, distance, partner_w,
            total_weight, max_off,
        )

    # Vectorized rejection sampling with an rng stream identical to the
    # reference loop.  Each reference iteration consumes exactly two
    # `rng.random()` draws (offset, sign), so we bulk-draw candidate chunks,
    # locate the iteration where the partner set fills up, and rewind the
    # bit generator to exactly the draws the reference would have consumed
    # (one PCG64 step per double).  Chunks grow geometrically toward the
    # guard budget; duplicates (common under the near-biased profiles) just
    # trigger another chunk.
    limit = 40 * partners_per_rank
    first_chunk = min(partners_per_rank + (partners_per_rank >> 1) + 32, limit)
    log_max_off = np.log(max_off)
    srcs_parts: list[np.ndarray] = []
    dsts_parts: list[np.ndarray] = []
    wts_parts: list[np.ndarray] = []
    # A shared `seen` bitmap gives the loop-exit distinct count with one
    # scatter-assign per chunk (within-chunk duplicates are harmless); the
    # precise first-appearance bookkeeping runs ONCE on the accumulated
    # stream after the loop, not per chunk.
    seen = np.zeros(num_ranks, dtype=bool)
    # First-appearance positions, computed sort-free: assigning positions in
    # reverse order makes the earliest write win for duplicate destinations.
    _never = np.int64(1) << 62
    first_at = np.full(num_ranks, _never, dtype=np.int64)
    bg = rng.bit_generator
    # Ranks behave alike, so each rank's first chunk is sized to what the
    # previous rank actually needed (rewinding makes overdraw free except
    # for the generation cost of the unused tail).
    est_chunk = first_chunk
    for r in range(num_ranks):
        start_state = bg.state
        total_iters = 0
        chunk = est_chunk
        vidx_parts: list[np.ndarray] = []
        vdst_parts: list[np.ndarray] = []
        while True:
            draws = rng.random(2 * chunk)
            u = draws[0::2]
            if distance == "uniform":
                d = (u * max_off).astype(np.int64) + 1
            elif distance == "loguniform":
                d = np.exp(u * log_max_off).astype(np.int64)
                d[d == 0] = 1
            else:  # quadratic
                d = (u * u * max_off).astype(np.int64) + 1
            np.minimum(d, max_off, out=d)
            signed = np.where(draws[1::2] < 0.5, d, -d)
            dst = r + signed
            outside = (dst < 0) | (dst >= num_ranks)
            dst[outside] = r - signed[outside]
            valid = (dst != r) & (dst >= 0) & (dst < num_ranks)
            vidx = np.nonzero(valid)[0]
            vdst = dst[vidx]
            vidx_parts.append(vidx + total_iters)
            vdst_parts.append(vdst)
            seen[vdst] = True
            total_iters += chunk
            distinct = int(seen.sum())
            if distinct >= partners_per_rank or total_iters >= limit:
                break
            chunk = min(2 * chunk, limit - total_iters)
        est_chunk = min(max(first_chunk, total_iters), limit)
        if distinct >= partners_per_rank:
            # position (within the valid subsequence) at which the
            # partners_per_rank-th distinct destination first appears
            vdst_all = (
                np.concatenate(vdst_parts) if len(vdst_parts) > 1 else vdst_parts[0]
            )
            vidx_all = (
                np.concatenate(vidx_parts) if len(vidx_parts) > 1 else vidx_parts[0]
            )
            m = vdst_all.shape[0]
            first_at[vdst_all[::-1]] = np.arange(m - 1, -1, -1, dtype=np.int64)
            pos = first_at[seen]
            stop_pos = int(
                np.partition(pos, partners_per_rank - 1)[partners_per_rank - 1]
            )
            consumed = 2 * (int(vidx_all[stop_pos]) + 1)
            chosen = np.flatnonzero(first_at <= stop_pos)
            first_at[vdst_all] = _never
        else:
            # guard budget exhausted: every distinct destination sampled so
            # far is kept, and the bitmap is exactly that set, ascending
            consumed = 2 * limit
            chosen = np.flatnonzero(seen).astype(np.int64)
        seen[:] = False
        bg.state = start_state
        bg.advance(consumed)
        k = len(chosen)
        srcs_parts.append(np.full(k, r, dtype=np.int64))
        dsts_parts.append(chosen)
        wts_parts.append(partner_w[np.arange(k) % partners_per_rank])

    w = np.concatenate(wts_parts)
    w *= total_weight / w.sum()
    return Channels(np.concatenate(srcs_parts), np.concatenate(dsts_parts), w)


def _biased_scattered_reference(
    num_ranks: int,
    partners_per_rank: int,
    rng: np.random.Generator,
    distance: str,
    partner_w: np.ndarray,
    total_weight: float,
    max_off: int,
) -> Channels:
    """Draw-by-draw reference implementation of the biased scatter.

    The vectorized path above is pinned against this loop (same channels,
    same rng stream) by the equivalence suite.
    """
    srcs: list[int] = []
    dsts: list[int] = []
    wts: list[float] = []
    for r in range(num_ranks):
        chosen: set[int] = set()
        guard = 0
        while len(chosen) < partners_per_rank and guard < 40 * partners_per_rank:
            guard += 1
            u = rng.random()
            if distance == "uniform":
                d = int(u * max_off) + 1
            elif distance == "loguniform":
                d = int(np.exp(u * np.log(max_off))) or 1
            else:  # quadratic
                d = int(u * u * max_off) + 1
            d = min(d, max_off)
            sign = 1 if rng.random() < 0.5 else -1
            dst = r + sign * d
            if not 0 <= dst < num_ranks:
                dst = r - sign * d
            if dst == r or not 0 <= dst < num_ranks:
                continue
            chosen.add(dst)
        for j, dst in enumerate(sorted(chosen)):
            srcs.append(r)
            dsts.append(dst)
            wts.append(partner_w[j % partners_per_rank])
    w = np.array(wts, dtype=np.float64)
    w *= total_weight / w.sum()
    return Channels(np.array(srcs, dtype=np.int64), np.array(dsts, dtype=np.int64), w)


def background_channels(num_ranks: int, total_weight: float) -> Channels:
    """Uniform all-pairs background: every rank sends a little to everyone.

    Models global metadata exchange; drives *peers* to ``ranks - 1``.
    Quadratic in ranks — only use at modest scale (the fan-out variant,
    :func:`fanout_channels`, covers large configurations).
    """
    if num_ranks < 2:
        raise ValueError("background needs >= 2 ranks")
    src = np.repeat(np.arange(num_ranks, dtype=np.int64), num_ranks - 1)
    dst = np.concatenate(
        [np.delete(np.arange(num_ranks, dtype=np.int64), r) for r in range(num_ranks)]
    )
    w = np.full(len(src), total_weight / len(src))
    return Channels(src, dst, w)


def scaled_channels(channels: Channels, share: float) -> Channels:
    """Normalize a channel set's weights to sum to ``share``.

    Apps compose several pattern ingredients; scaling each part to its
    volume share keeps the relative weights meaningful across builders.
    Empty or zero-weight channel sets pass through unchanged.
    """
    total = channels.weight.sum()
    if total <= 0 or len(channels) == 0:
        return channels
    return Channels(
        channels.src,
        channels.dst,
        channels.weight * (share / total),
        channels.calls_factor,
    )
