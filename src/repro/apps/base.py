"""Synthetic application framework.

The paper analyzes dumpi traces of 16 DOE exascale proxy mini-apps from the
Sandia repository.  Those traces are not redistributable here, so each
application is modeled by a **deterministic synthetic generator** that
reproduces its documented communication structure: the domain decomposition,
the point-to-point pattern (halo stencils, sweeps, hypercube exchanges,
scattered AMR neighbours), and the collective mix.

Generators are calibrated against the paper's Table 1: for every
(application, rank-count) configuration we pin the traced execution time,
the total communication volume, and the point-to-point / collective split.
The generator then scales its per-channel message sizes so the emitted trace
hits those aggregates while the *pattern* — which determines every locality
metric — comes from the communication structure itself.

Volume accounting matches the trace level: the collective volume target is
the **logical** volume (sum over callers of their recorded ``count *
element_size``), which is what a trace-side volume extraction sees; the
flattened wire volume used by the network model is larger for fan-out
collectives (factor ~N for alltoall), exactly as in the paper's utilization
results.
"""

from __future__ import annotations

import abc
import zlib
from dataclasses import dataclass, field

import numpy as np

from ..core.blocks import (
    KIND_COLLECTIVE,
    KIND_P2P_RECV,
    KIND_P2P_SEND,
    OP_CODE,
    EventBlock,
)
from ..core.events import CollectiveEvent, CollectiveOp, Direction, P2PEvent
from ..core.stream import DEFAULT_CHUNK_BYTES, BlockStream, rows_per_chunk
from ..core.trace import Trace, TraceMetadata

__all__ = [
    "MB",
    "CalibrationPoint",
    "Channels",
    "CollectivePhase",
    "AppPattern",
    "SyntheticApp",
]

MB = 1024 * 1024


@dataclass(frozen=True)
class CalibrationPoint:
    """One Table-1 row: the aggregate targets for one configuration.

    ``iterations`` controls how the calibrated volume is spread over
    repeated communication rounds (it fixes message sizes and hence packet
    counts); it is chosen per app so message sizes land in a realistic
    range for that application class.
    """

    ranks: int
    time_s: float
    volume_mb: float
    p2p_share: float
    variant: str = ""
    iterations: int = 100

    def __post_init__(self) -> None:
        if self.ranks <= 0:
            raise ValueError("ranks must be positive")
        if self.time_s <= 0:
            raise ValueError("time_s must be positive")
        if self.volume_mb < 0:
            raise ValueError("volume_mb must be >= 0")
        if not 0.0 <= self.p2p_share <= 1.0:
            raise ValueError("p2p_share must be in [0, 1]")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")

    @property
    def p2p_bytes(self) -> int:
        return int(self.volume_mb * MB * self.p2p_share)

    @property
    def collective_logical_bytes(self) -> int:
        return int(self.volume_mb * MB * (1.0 - self.p2p_share))


@dataclass
class Channels:
    """Weighted point-to-point channels: rank pairs with relative volumes.

    ``weight`` is relative; the generator scales weights so the channel
    volumes sum to the calibrated p2p byte target.

    ``calls_factor`` (optional, default 1.0 per channel) scales how *often*
    a channel fires relative to the app's iteration count: halo channels
    exchange every iteration (1.0), while regrid/metadata channels fire
    rarely (≪ 1), which matters because every message costs at least one
    packet no matter how small.
    """

    src: np.ndarray  # int64[k]
    dst: np.ndarray  # int64[k]
    weight: np.ndarray  # float64[k]
    calls_factor: np.ndarray | None = None  # float64[k], relative call rate

    def __post_init__(self) -> None:
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dst = np.asarray(self.dst, dtype=np.int64)
        self.weight = np.asarray(self.weight, dtype=np.float64)
        if self.calls_factor is not None:
            self.calls_factor = np.asarray(self.calls_factor, dtype=np.float64)
            if len(self.calls_factor) != len(self.src):
                raise ValueError("calls_factor must parallel the channel arrays")
            if np.any(self.calls_factor <= 0):
                raise ValueError("calls_factor must be positive")
        if not (len(self.src) == len(self.dst) == len(self.weight)):
            raise ValueError("channel columns must be parallel arrays")
        if np.any(self.weight < 0):
            raise ValueError("channel weights must be >= 0")
        if np.any(self.src == self.dst):
            raise ValueError("channels must connect distinct ranks")

    def factors(self) -> np.ndarray:
        """Per-channel call-rate factors (1.0 when unset)."""
        if self.calls_factor is None:
            return np.ones(len(self.src), dtype=np.float64)
        return self.calls_factor

    def with_calls_factor(self, factor: float) -> "Channels":
        """Copy with a uniform call-rate factor."""
        return Channels(
            self.src, self.dst, self.weight,
            np.full(len(self.src), factor, dtype=np.float64),
        )

    @staticmethod
    def concatenate(parts: list["Channels"]) -> "Channels":
        parts = [p for p in parts if len(p.src)]
        if not parts:
            empty = np.zeros(0)
            return Channels(empty, empty.copy(), empty.copy())
        return Channels(
            np.concatenate([p.src for p in parts]),
            np.concatenate([p.dst for p in parts]),
            np.concatenate([p.weight for p in parts]),
            np.concatenate([p.factors() for p in parts]),
        )

    def __len__(self) -> int:
        return len(self.src)


@dataclass(frozen=True)
class CollectivePhase:
    """One collective operation in the app's per-iteration schedule.

    ``weight`` is the relative share of the app's collective logical volume
    carried by this phase; ``root`` is the root rank for rooted operations.
    """

    op: CollectiveOp
    weight: float
    root: int = 0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("collective weight must be >= 0")


@dataclass
class AppPattern:
    """The communication structure of one configuration of one app."""

    channels: Channels
    collectives: list[CollectivePhase] = field(default_factory=list)


class SyntheticApp(abc.ABC):
    """Base class for all synthetic mini-app trace generators."""

    #: Application name as it appears in the paper's tables.
    name: str = "app"
    #: True for apps the paper marks with (*): MPI Derived Data Types whose
    #: element size is unrecoverable; modeled as an opaque 1-byte type.
    uses_derived_types: bool = False
    #: Table-1 calibration rows, one per configuration.
    calibration: tuple[CalibrationPoint, ...] = ()

    # -- configuration lookup ------------------------------------------------

    def scales(self) -> list[int]:
        """Distinct rank counts this app is calibrated for, ascending."""
        return sorted({c.ranks for c in self.calibration})

    def configurations(self) -> list[CalibrationPoint]:
        """All calibrated configurations (including duplicate-scale variants)."""
        return list(self.calibration)

    def calibration_for(self, ranks: int, variant: str = "") -> CalibrationPoint:
        for point in self.calibration:
            if point.ranks == ranks and point.variant == variant:
                return point
        have = [(c.ranks, c.variant) for c in self.calibration]
        raise KeyError(
            f"{self.name} has no configuration ranks={ranks} variant={variant!r}; "
            f"available: {have}"
        )

    # -- pattern construction ------------------------------------------------

    @abc.abstractmethod
    def pattern(self, ranks: int, rng: np.random.Generator) -> AppPattern:
        """Build the communication structure for a rank count.

        Must be deterministic given ``rng``; all randomness goes through it.
        """

    @property
    def dtype_name(self) -> str:
        """Datatype of generated events (opaque derived type for (*) apps)."""
        return f"{self.name.upper()}_DERIVED_T" if self.uses_derived_types else "MPI_BYTE"

    # -- trace generation ------------------------------------------------------

    def generate(
        self,
        ranks: int,
        variant: str = "",
        seed: int = 0,
        emit_receives: bool = False,
        columnar: bool = True,
    ) -> Trace:
        """Generate a calibrated synthetic trace for one configuration.

        ``emit_receives`` adds the matching ``MPI_Irecv`` record for every
        point-to-point send, as a real dumpi trace contains.  Receives never
        inject traffic, so every analysis is invariant; the option exists
        for serialization-fidelity tests and for consumers that expect
        two-sided records.

        ``columnar`` (the default) emits the trace as native
        :class:`~repro.core.blocks.EventBlock` columns without allocating a
        Python object per record.  ``columnar=False`` runs the original
        per-event path; both produce bit-identical traces (the equivalence
        suite pins this), so the flag exists only for comparison and
        benchmarking.
        """
        meta, p2p_plan, phases = self._plan(ranks, variant, seed)
        if columnar:
            return Trace.from_blocks(
                meta, list(self._iter_plan_blocks(meta, p2p_plan, phases, emit_receives))
            )
        return self._emit_events(meta, p2p_plan, phases, emit_receives)

    def iter_blocks(
        self,
        ranks: int,
        variant: str = "",
        seed: int = 0,
        emit_receives: bool = False,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ):
        """Yield the trace as bounded-size :class:`EventBlock` chunks.

        Each chunk holds at most ``chunk_bytes`` worth of event rows (at
        least one row), so arbitrarily large configurations stream through
        a fixed working set.  Concatenating the chunks reproduces
        :meth:`generate` row-for-row — timestamps are a pure function of
        the global emission slot, not of chunk boundaries.  With
        ``emit_receives`` the chunk size is rounded to whole send/recv
        pairs so a matched pair never splits across chunks.
        """
        meta, p2p_plan, phases = self._plan(ranks, variant, seed)
        max_rows = rows_per_chunk(chunk_bytes)
        yield from self._iter_plan_blocks(meta, p2p_plan, phases, emit_receives, max_rows)

    def stream(
        self,
        ranks: int,
        variant: str = "",
        seed: int = 0,
        emit_receives: bool = False,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> BlockStream:
        """Re-iterable chunked view of one configuration (see :meth:`iter_blocks`).

        The calibration plan (per-channel arrays) is built once and shared
        across iterations; only the per-chunk columns are materialized per
        pass, so peak memory is ``O(channels + chunk)``, never the full
        trace.
        """
        meta, p2p_plan, phases = self._plan(ranks, variant, seed)
        max_rows = rows_per_chunk(chunk_bytes)

        def blocks_factory():
            return self._iter_plan_blocks(meta, p2p_plan, phases, emit_receives, max_rows)

        return BlockStream(meta, blocks_factory)

    def _plan(self, ranks: int, variant: str, seed: int):
        """Calibration plan for one configuration: metadata + emission arrays."""
        point = self.calibration_for(ranks, variant)
        # Stable across processes (unlike hash()): apps get distinct streams.
        name_key = zlib.crc32(self.name.encode()) & 0xFFFF
        rng = np.random.default_rng(np.random.SeedSequence([name_key, ranks, seed]))
        pat = self.pattern(ranks, rng)

        meta = TraceMetadata(
            app=self.name,
            num_ranks=ranks,
            execution_time=point.time_s,
            variant=variant,
            uses_derived_types=self.uses_derived_types,
        )
        p2p_plan = self._plan_p2p(pat, point)
        phases = self._plan_collectives(pat, point, ranks)
        return meta, p2p_plan, phases

    # -- calibration planning (shared by both emitters) ---------------------

    def _plan_p2p(self, pat: AppPattern, point: CalibrationPoint):
        """Scale channels to the p2p byte target.

        Returns ``(src, dst, bytes_per_msg, calls)`` in emission order
        (lexsorted by ``(src, dst)``), or ``None`` when the configuration
        has no point-to-point traffic.
        """
        ch = pat.channels
        if not (len(ch) and point.p2p_bytes > 0):
            return None
        total_w = ch.weight.sum()
        if total_w <= 0:
            raise ValueError(f"{self.name}: channel weights sum to zero")
        per_channel = ch.weight / total_w * point.p2p_bytes
        calls = np.maximum(np.rint(point.iterations * ch.factors()), 1).astype(np.int64)
        # A channel never sends more messages than it has bytes —
        # otherwise the 1-byte message floor would inflate low-volume
        # channels (visible at very high iteration counts).
        calls = np.minimum(calls, np.maximum(per_channel.astype(np.int64), 1))
        bytes_per_msg = np.maximum(np.rint(per_channel / calls), 1).astype(np.int64)
        # Re-fit the call count to the rounded message size so each
        # channel's total volume stays within half a message of its
        # target (the naive rounding drifts by up to ~20% per channel
        # when messages are only a few bytes).
        calls = np.maximum(np.rint(per_channel / bytes_per_msg), 1).astype(np.int64)
        order = np.lexsort((ch.dst, ch.src))
        return ch.src[order], ch.dst[order], bytes_per_msg[order], calls[order]

    def _plan_collectives(
        self, pat: AppPattern, point: CalibrationPoint, ranks: int
    ) -> list[tuple[CollectiveOp, int, int, int]]:
        """Scale collective phases to the logical byte target.

        Logical volume of one call is N * count (every caller logs
        ``count``), so count = weight_share * target / (N * iters).
        Returns ``(op, root, count, phase_calls)`` per phase.
        """
        target = point.collective_logical_bytes
        if not (pat.collectives and target > 0):
            return []
        total_w = sum(c.weight for c in pat.collectives)
        if total_w <= 0:
            raise ValueError(f"{self.name}: collective weights sum to zero")
        phases: list[tuple[CollectiveOp, int, int, int]] = []
        for phase in pat.collectives:
            share = phase.weight / total_w * target
            count = max(int(round(share / (ranks * point.iterations))), 1)
            # Re-fit the call count to the rounded element count so the
            # phase's logical volume stays on target (matters when the
            # per-call count is a handful of bytes).
            phase_calls = max(int(round(share / (ranks * count))), 1)
            phases.append((phase.op, phase.root, count, phase_calls))
        return phases

    # -- emitters ------------------------------------------------------------

    def _iter_plan_blocks(
        self,
        meta: TraceMetadata,
        p2p_plan,
        phases,
        emit_receives: bool,
        max_rows: int | None = None,
    ):
        """Columnar emission as a block generator.

        With ``max_rows=None`` this yields exactly one block for the p2p
        channels and one for the collectives (the historical in-memory
        layout).  With a row cap it yields bounded slices instead.  Either
        way the concatenated rows are bit-identical: timestamps reproduce
        :class:`_TimeCursor` slot-for-slot (one slot per p2p channel, one
        per collective record), and every chunked column is computed from
        the *global* slot index, so values never depend on where a chunk
        boundary falls.
        """
        ranks = meta.num_ranks
        dtype = self.dtype_name
        step = meta.execution_time / _TIME_SLOTS
        slot = 0

        if p2p_plan is not None:
            src, dst, bytes_per_msg, calls = p2p_plan
            k = len(src)
            if max_rows is None:
                per_chunk = max(k, 1)
            elif emit_receives:
                # Whole send/recv pairs per chunk, so a matched pair
                # never splits across a chunk boundary.
                per_chunk = max(1, max_rows // 2)
            else:
                per_chunk = max_rows
            for a in range(0, k, per_chunk):
                b = min(a + per_chunk, k)
                t0 = np.arange(a, b, dtype=np.float64) * step
                t1 = t0 + 0.5 * step
                n = b - a
                if emit_receives:
                    caller = np.empty(2 * n, dtype=np.int64)
                    peer = np.empty(2 * n, dtype=np.int64)
                    caller[0::2], caller[1::2] = src[a:b], dst[a:b]
                    peer[0::2], peer[1::2] = dst[a:b], src[a:b]
                    kind = np.empty(2 * n, dtype=np.uint8)
                    kind[0::2], kind[1::2] = KIND_P2P_SEND, KIND_P2P_RECV
                    func_id = np.empty(2 * n, dtype=np.int16)
                    func_id[0::2], func_id[1::2] = 0, 1
                    count = np.repeat(bytes_per_msg[a:b], 2)
                    repeat = np.repeat(calls[a:b], 2)
                    t0, t1 = np.repeat(t0, 2), np.repeat(t1, 2)
                    func_names = ("MPI_Isend", "MPI_Irecv")
                else:
                    caller, peer = src[a:b], dst[a:b]
                    count, repeat = bytes_per_msg[a:b], calls[a:b]
                    kind = np.full(n, KIND_P2P_SEND, dtype=np.uint8)
                    func_id = np.zeros(n, dtype=np.int16)
                    func_names = ("MPI_Isend",)
                rows = len(caller)
                yield EventBlock(
                    kind=kind,
                    caller=caller,
                    peer=peer,
                    count=count,
                    dtype_id=np.zeros(rows, dtype=np.int32),
                    op=np.full(rows, -1, dtype=np.int16),
                    root=np.zeros(rows, dtype=np.int64),
                    comm_id=np.zeros(rows, dtype=np.int32),
                    tag=np.zeros(rows, dtype=np.int64),
                    func_id=func_id,
                    repeat=repeat,
                    t_enter=t0,
                    t_leave=t1,
                    dtype_names=(dtype,),
                    func_names=func_names,
                )
            slot = k

        if phases:
            m = len(phases)
            rows = m * ranks
            op_arr = np.array([OP_CODE[op] for op, _, _, _ in phases], dtype=np.int16)
            root_arr = np.array([root for _, root, _, _ in phases], dtype=np.int64)
            count_arr = np.array([count for _, _, count, _ in phases], dtype=np.int64)
            calls_arr = np.array([pc for _, _, _, pc in phases], dtype=np.int64)
            per_chunk = rows if max_rows is None else max_rows
            for a in range(0, rows, per_chunk):
                b = min(a + per_chunk, rows)
                idx = np.arange(a, b, dtype=np.int64)
                phase_i = idx // ranks
                t0 = (slot + idx) * step
                n = b - a
                yield EventBlock(
                    kind=np.full(n, KIND_COLLECTIVE, dtype=np.uint8),
                    caller=idx % ranks,
                    peer=np.full(n, -1, dtype=np.int64),
                    count=count_arr[phase_i],
                    dtype_id=np.zeros(n, dtype=np.int32),
                    op=op_arr[phase_i],
                    root=root_arr[phase_i],
                    comm_id=np.zeros(n, dtype=np.int32),
                    tag=np.zeros(n, dtype=np.int64),
                    func_id=np.full(n, -1, dtype=np.int16),
                    repeat=calls_arr[phase_i],
                    t_enter=t0,
                    t_leave=t0 + 0.5 * step,
                    dtype_names=(dtype,),
                )

    def _emit_events(
        self, meta: TraceMetadata, p2p_plan, phases, emit_receives: bool
    ) -> Trace:
        """Legacy per-event emission (kept as the executable reference)."""
        ranks = meta.num_ranks
        dtype = self.dtype_name
        trace = Trace(meta)
        time_cursor = _TimeCursor(meta.execution_time)

        if p2p_plan is not None:
            src, dst, bytes_per_msg, calls = p2p_plan
            for idx in range(len(src)):
                t0, t1 = time_cursor.next()
                trace.add(
                    P2PEvent(
                        caller=int(src[idx]),
                        peer=int(dst[idx]),
                        count=int(bytes_per_msg[idx]),
                        dtype=dtype,
                        func="MPI_Isend",
                        t_enter=t0,
                        t_leave=t1,
                        repeat=int(calls[idx]),
                    )
                )
                if emit_receives:
                    trace.add(
                        P2PEvent(
                            caller=int(dst[idx]),
                            peer=int(src[idx]),
                            count=int(bytes_per_msg[idx]),
                            dtype=dtype,
                            direction=Direction.RECV,
                            func="MPI_Irecv",
                            t_enter=t0,
                            t_leave=t1,
                            repeat=int(calls[idx]),
                        )
                    )

        for op, root, count, phase_calls in phases:
            for caller in range(ranks):
                t0, t1 = time_cursor.next()
                trace.add(
                    CollectiveEvent(
                        caller=caller,
                        op=op,
                        count=count,
                        dtype=dtype,
                        root=root,
                        t_enter=t0,
                        t_leave=t1,
                        repeat=phase_calls,
                    )
                )
        return trace


#: Timestamp slots spread across the traced execution time; the columnar
#: emitter computes ``slot * (duration / _TIME_SLOTS)`` with the same float
#: arithmetic as :class:`_TimeCursor`, keeping both emitters bit-identical.
_TIME_SLOTS = 1_000_000


class _TimeCursor:
    """Spreads synthetic event timestamps across the traced execution time.

    Timestamps are cosmetic (no analysis reads them except the execution
    time on the metadata), but a monotone spread keeps serialized traces
    realistic and sortable.
    """

    def __init__(self, duration: float, slots: int = _TIME_SLOTS) -> None:
        self._step = duration / slots
        self._i = 0

    def next(self) -> tuple[float, float]:
        t0 = self._i * self._step
        self._i += 1
        return t0, t0 + 0.5 * self._step
