"""Deterministic transport proxies: PARTISN and SNAP.

Both solve the discrete-ordinates (SN) transport equation with
Koch-Baker-Alcouffe (KBA) wavefront sweeps over a **2D** processor grid —
the only 2D-structured workloads in the study (PARTISN's 2D rank locality
is 100% in Table 4).  Both traces span ~10^6 seconds of wall time with
milli-scale throughput: transport is compute-bound, and the network idles
almost always (utilizations of 1e-7).

- **PARTISN** — clean sweeps: virtually all volume on the four 2D grid
  neighbours, plus a tiny global metadata exchange that pushes *peers* to
  ranks − 1 (167 of 168).
- **SNAP** — adds energy-group pipelining and spatial decomposition
  shuffles: a moderate set (~44) of scattered partners with a zipf volume
  profile joins the sweep neighbours, lifting selectivity to ~10 and the
  90% rank distance to ~0.8 × ranks.
"""

from __future__ import annotations

import numpy as np

from ..core.events import CollectiveOp
from ..metrics.dimensionality import grid_shape
from .base import AppPattern, CalibrationPoint, Channels, CollectivePhase, SyntheticApp
from .patterns import (
    background_channels,
    biased_scattered_channels,
    scaled_channels,
    sweep2d_channels,
)

__all__ = ["PARTISN", "SNAP"]


class PARTISN(SyntheticApp):
    name = "PARTISN"
    uses_derived_types = True
    calibration = (
        CalibrationPoint(168, 2.1e6, 42123.0, 0.9996, iterations=13500),
    )

    def pattern(self, ranks: int, rng: np.random.Generator) -> AppPattern:
        shape = grid_shape(ranks, 2)
        parts = [
            scaled_channels(sweep2d_channels(ranks, shape=(shape[0], shape[1])), 0.93),
            # rare global metadata exchange: peers = ranks - 1, tiny volume
            background_channels(ranks, total_weight=0.07).with_calls_factor(0.02),
        ]
        return AppPattern(
            channels=Channels.concatenate(parts),
            collectives=[CollectivePhase(CollectiveOp.ALLREDUCE, 1.0)],
        )


class SNAP(SyntheticApp):
    name = "SNAP"
    uses_derived_types = True
    calibration = (
        CalibrationPoint(168, 1.17e6, 128561.0, 1.0, iterations=1000),
    )

    def pattern(self, ranks: int, rng: np.random.Generator) -> AppPattern:
        shape = grid_shape(ranks, 2)
        parts = [
            scaled_channels(sweep2d_channels(ranks, shape=(shape[0], shape[1])), 0.50),
            scaled_channels(
                biased_scattered_channels(
                    ranks,
                    44,
                    rng,
                    distance="uniform",
                    weight_decay="zipf",
                    zipf_exponent=1.6,
                ),
                0.50,
            ),
        ]
        return AppPattern(channels=Channels.concatenate(parts))
