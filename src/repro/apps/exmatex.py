"""ExMatEx proxies: CMC 2D (multinode) and LULESH.

- **CMC 2D** — a Monte-Carlo materials kernel: embarrassingly parallel
  compute with tiny, purely collective synchronization (allreduce of
  statistics, broadcast of control data, reduce of results to rank 0).
  Total volume is ~16 MB regardless of scale, over minutes of runtime —
  the least network-intensive app in the study.  Its rooted-at-0
  collectives are why its average hop count equals the mean distance from
  node 0 exactly (3.00 / 5.00 / 8.00 on the paper's tori).

- **LULESH** — the Livermore shock hydrodynamics proxy: a textbook
  27-point halo exchange on a cubic rank grid (64 = 4³, 512 = 8³) with
  face messages ~n² elements, edges ~n, corners O(1).  Faces carry >90% of
  the volume, making LULESH a 100% 3D-rank-locality workload; boundary
  ranks' smaller neighbourhoods pull mean selectivity to ~4.5.
"""

from __future__ import annotations

import numpy as np

from ..core.events import CollectiveOp
from ..metrics.dimensionality import grid_shape
from .base import AppPattern, CalibrationPoint, Channels, CollectivePhase, SyntheticApp
from .patterns import halo_channels

__all__ = ["CMC2D", "LULESH"]


class CMC2D(SyntheticApp):
    name = "CMC_2D"
    calibration = (
        CalibrationPoint(64, 842.80, 16.0, 0.0, iterations=1000),
        CalibrationPoint(256, 208.44, 16.1, 0.0, iterations=1000),
        CalibrationPoint(1024, 58.85, 16.4, 0.0, iterations=1000),
    )

    def pattern(self, ranks: int, rng: np.random.Generator) -> AppPattern:
        empty = np.zeros(0)
        return AppPattern(
            channels=Channels(empty, empty.copy(), empty.copy()),
            collectives=[
                CollectivePhase(CollectiveOp.ALLREDUCE, 0.75),
                CollectivePhase(CollectiveOp.BCAST, 0.15, root=0),
                CollectivePhase(CollectiveOp.REDUCE, 0.10, root=0),
            ],
        )


class LULESH(SyntheticApp):
    name = "LULESH"
    calibration = (
        CalibrationPoint(64, 54.14, 3585.0, 1.0, iterations=220),
        CalibrationPoint(64, 44.03, 3585.0, 1.0, variant="b", iterations=220),
        CalibrationPoint(512, 50.24, 33548.0, 1.0, iterations=2260),
    )

    def pattern(self, ranks: int, rng: np.random.Generator) -> AppPattern:
        shape = grid_shape(ranks, 3)
        # per-message weights ~ (n^2, n, 1) for a subdomain edge of n = 32
        channels = halo_channels(
            shape, face_weight=1024.0, edge_weight=32.0, corner_weight=1.0
        )
        return AppPattern(channels=channels)
