"""Crystal Router — the Nek5000 generalized all-to-all kernel.

The crystal router moves sparse, irregular data between arbitrary rank
pairs through a **hypercube** schedule: at step k, rank ``r`` exchanges with
``r XOR 2**k``.  Statically that yields ~log2(N) partners per rank — the
paper's *peers* column reads 4 / 8 / 11 at 10 / 100 / 1000 ranks — with the
low dimensions carrying somewhat more volume (messages get combined as they
ride up the cube), modeled by a geometric per-dimension decay.
"""

from __future__ import annotations

import numpy as np

from .base import AppPattern, CalibrationPoint, SyntheticApp
from .patterns import hypercube_channels

__all__ = ["CrystalRouter"]


class CrystalRouter(SyntheticApp):
    name = "CrystalRouter"
    calibration = (
        CalibrationPoint(10, 0.1438, 133.8, 1.0, iterations=4500),
        CalibrationPoint(100, 0.7087, 3439.9, 1.0, iterations=32),
        CalibrationPoint(1000, 1.2767, 115521.0, 1.0, iterations=100),
    )

    def pattern(self, ranks: int, rng: np.random.Generator) -> AppPattern:
        return AppPattern(channels=hypercube_channels(ranks, dim_weight_decay=0.95))
