"""Synthetic trace generators for the paper's 16 proxy-app configurations."""

from .base import (
    AppPattern,
    CalibrationPoint,
    Channels,
    CollectivePhase,
    SyntheticApp,
)
from .registry import (
    APPS,
    SCALE_APPS,
    app_names,
    generate_trace,
    get_app,
    iter_configurations,
    stream_trace,
)
from .validation import ValidationIssue, ValidationResult, validate_all, validate_app

__all__ = [
    "AppPattern",
    "CalibrationPoint",
    "Channels",
    "CollectivePhase",
    "SyntheticApp",
    "APPS",
    "SCALE_APPS",
    "app_names",
    "generate_trace",
    "get_app",
    "iter_configurations",
    "stream_trace",
    "ValidationIssue",
    "ValidationResult",
    "validate_all",
    "validate_app",
]
