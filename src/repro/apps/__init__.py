"""Synthetic trace generators for the paper's 16 proxy-app configurations."""

from .base import (
    AppPattern,
    CalibrationPoint,
    Channels,
    CollectivePhase,
    SyntheticApp,
)
from .registry import APPS, app_names, generate_trace, get_app, iter_configurations
from .validation import ValidationIssue, ValidationResult, validate_all, validate_app

__all__ = [
    "AppPattern",
    "CalibrationPoint",
    "Channels",
    "CollectivePhase",
    "SyntheticApp",
    "APPS",
    "app_names",
    "generate_trace",
    "get_app",
    "iter_configurations",
    "ValidationIssue",
    "ValidationResult",
    "validate_all",
    "validate_app",
]
