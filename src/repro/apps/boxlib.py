"""Boxlib-based proxies: CNS (large), MultiGrid C, and FillBoundary.

Boxlib (now AMReX) codes decompose the domain into boxes and assign boxes
to ranks along a space-filling curve or by a load-balancing knapsack.  The
*geometric* neighbourhood is a regular 27-point stencil, but the curve
assignment scatters geometric neighbours across linear rank IDs — which is
exactly why the paper measures rank distances well beyond the row-major
stencil span while *peers* stays pinned at 26.

- **Boxlib CNS (large)** — compressible Navier-Stokes with deep AMR: box
  neighbourhoods are effectively unstructured (mild distance bias), every
  rank additionally touches every other through regrid metadata
  (peers = ranks − 1 in the paper), and the heavy set grows with refinement
  (selectivity ~5 at ≤256 ranks, ~21 at 1024).  Uses MPI derived datatypes.
- **Boxlib MultiGrid C** — the geometric multigrid bottom solver: a clean
  27-point halo renumbered by the Morton (Z-order) box assignment; peers 26
  at every scale.
- **FillBoundary** — the ghost-cell exchange kernel in isolation: same
  structure as MultiGrid C's fine level.
"""

from __future__ import annotations

import numpy as np

from ..core.events import CollectiveOp
from ..metrics.dimensionality import grid_shape
from .base import AppPattern, CalibrationPoint, Channels, CollectivePhase, SyntheticApp
from .patterns import (
    biased_scattered_channels,
    fanout_channels,
    halo_channels,
    morton_permutation,
    permute_channels,
    scaled_channels,
)

__all__ = ["BoxlibCNS", "BoxlibMultiGridC", "FillBoundary"]


class BoxlibCNS(SyntheticApp):
    name = "Boxlib_CNS"
    uses_derived_types = True
    calibration = (
        CalibrationPoint(64, 572.19, 9292.0, 1.0, iterations=300),
        CalibrationPoint(256, 169.05, 15227.0, 1.0, iterations=300),
        CalibrationPoint(256, 150.92, 15227.0, 1.0, variant="b", iterations=300),
        CalibrationPoint(1024, 67.54, 34131.0, 1.0, iterations=350),
    )

    _heavy_partners = {64: 8, 256: 8, 1024: 30}

    def pattern(self, ranks: int, rng: np.random.Generator) -> AppPattern:
        heavy = self._heavy_partners.get(ranks, 8)
        parts = [
            scaled_channels(
                biased_scattered_channels(
                    ranks,
                    heavy,
                    rng,
                    distance="quadratic",
                    weight_decay="zipf",
                    zipf_exponent=1.0 if ranks <= 256 else 0.9,
                ),
                0.985,
            ),
            # regrid metadata: hub ranks exchange with everyone -> peers = N-1;
            # regridding is rare relative to timesteps (low call rate)
            fanout_channels(
                ranks, num_hubs=min(8, max(1, ranks // 8)), total_weight=0.004
            ).with_calls_factor(0.02),
        ]
        return AppPattern(channels=Channels.concatenate(parts))


class BoxlibMultiGridC(SyntheticApp):
    name = "Boxlib_MultiGrid_C"
    calibration = (
        CalibrationPoint(64, 231.42, 23742.0, 0.9994, iterations=565),
        CalibrationPoint(256, 62.01, 44535.0, 0.9995, iterations=15000),
        CalibrationPoint(256, 60.28, 44535.0, 0.9995, variant="b", iterations=15000),
        CalibrationPoint(1024, 20.88, 75181.0, 0.9994, iterations=47000),
    )

    def pattern(self, ranks: int, rng: np.random.Generator) -> AppPattern:
        shape = grid_shape(ranks, 3)
        stencil = halo_channels(
            shape, face_weight=1.0, edge_weight=0.05, corner_weight=0.008
        )
        # Morton-order box assignment scatters stencil neighbours in rank space.
        channels = permute_channels(stencil, morton_permutation(shape))
        return AppPattern(
            channels=channels,
            collectives=[CollectivePhase(CollectiveOp.ALLREDUCE, 1.0)],
        )


class FillBoundary(SyntheticApp):
    name = "FillBoundary"
    calibration = (
        CalibrationPoint(125, 2.324, 10209.0, 1.0, iterations=72),
        CalibrationPoint(1000, 5.261, 92323.0, 1.0, iterations=57),
    )

    def pattern(self, ranks: int, rng: np.random.Generator) -> AppPattern:
        shape = grid_shape(ranks, 3)
        stencil = halo_channels(
            shape, face_weight=1.0, edge_weight=0.05, corner_weight=0.005
        )
        channels = permute_channels(stencil, morton_permutation(shape))
        return AppPattern(channels=channels)
