"""AMG — algebraic multigrid solve phase (DOE proxy app).

Communication structure: a 27-point halo exchange on the 3D processor grid
(faces carry most of the volume, edges and corners little), plus multigrid
coarse levels where only every ``2**l``-th rank per axis stays active and
halo-exchanges at the coarse stride, plus — at larger scales — a sprinkle of
long-range interpolation partners from the algebraic coarsening, which is
what drives the *peers* metric far above the stencil's 26 (127 at 216 ranks,
293 at 1728 in the paper) while carrying almost no volume.

AMG is 100% point-to-point at every scale (Table 1) and the canonical
3D-structured workload: its 3D rank locality is 100% (Table 4).
"""

from __future__ import annotations

import numpy as np

from ..metrics.dimensionality import grid_shape
from .base import AppPattern, CalibrationPoint, Channels, SyntheticApp
from .patterns import (
    biased_scattered_channels,
    coarsened_halo_channels,
    halo_channels,
    scaled_channels as _scaled,
)

__all__ = ["AMG"]


class AMG(SyntheticApp):
    name = "AMG"
    calibration = (
        CalibrationPoint(8, 0.0258, 3.0, 1.0, iterations=50),
        CalibrationPoint(27, 0.156, 13.6, 1.0, iterations=50),
        CalibrationPoint(216, 0.297, 136.9, 1.0, iterations=50),
        CalibrationPoint(1728, 2.92, 1208.0, 1.0, iterations=40),
    )

    #: Long-range coarsening partners per rank, by scale.
    _scatter_partners = {8: 0, 27: 0, 216: 100, 1728: 280}

    def pattern(self, ranks: int, rng: np.random.Generator) -> AppPattern:
        shape = grid_shape(ranks, 3)
        parts = [
            # fine-level stencil: faces dominate so the 90% volume share
            # stays within Manhattan distance 1 (100% 3D rank locality).
            _scaled(
                halo_channels(shape, face_weight=1.0, edge_weight=0.02, corner_weight=0.003),
                0.955,
            ),
            _scaled(coarsened_halo_channels(shape, 2, face_weight=1.0), 0.025),
            _scaled(coarsened_halo_channels(shape, 4, face_weight=1.0), 0.007),
        ]
        partners = self._scatter_partners.get(ranks, max(0, ranks // 8))
        if partners:
            # algebraic-coarsening interpolation partners: many, far, tiny,
            # and touched only on the rare coarse-level visits
            parts.append(
                biased_scattered_channels(
                    ranks,
                    partners,
                    rng,
                    distance="loguniform",
                    weight_decay="zipf",
                    zipf_exponent=1.0,
                    total_weight=0.013,
                ).with_calls_factor(0.05)
            )
        return AppPattern(channels=Channels.concatenate(parts))
