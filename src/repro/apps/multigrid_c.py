"""MultiGrid_C — geometric multigrid V-cycle proxy (miniGhost-style).

All ranks stay active on every level; the fine level exchanges faces and
edges with its 3D neighbours, and each coarser level exchanges faces at
twice the previous stride.  The strided coarse levels place a noticeable
volume share at linear distances of 2–4 grid offsets, which is why the
paper measures 90% rank distances at ~2–4 × the slowest-dimension offset
(59.7 at 125 ranks, 392 at 1000) even though peers stays near 22.
"""

from __future__ import annotations

import numpy as np

from ..metrics.dimensionality import grid_shape
from .base import AppPattern, CalibrationPoint, Channels, SyntheticApp
from .patterns import halo_channels, scaled_channels, strided_face_channels

__all__ = ["MultiGridC"]


class MultiGridC(SyntheticApp):
    name = "MultiGrid_C"
    calibration = (
        CalibrationPoint(125, 0.77, 374.0, 1.0, iterations=85),
        CalibrationPoint(1000, 3.57, 2973.0, 1.0, iterations=730),
    )

    def pattern(self, ranks: int, rng: np.random.Generator) -> AppPattern:
        shape = grid_shape(ranks, 3)
        parts = [
            scaled_channels(
                halo_channels(shape, face_weight=1.0, edge_weight=0.05), 0.80
            ),
            # semi-coarsening along the slowest axis concentrates the coarse
            # volume on few far partners (keeps selectivity ~5.5 while the
            # 90% rank distance reaches 2-4x the slowest-axis offset)
            scaled_channels(strided_face_channels(shape, 2, 1.0, axes=(0,)), 0.13),
            scaled_channels(strided_face_channels(shape, 4, 1.0, axes=(0,)), 0.07),
        ]
        return AppPattern(channels=Channels.concatenate(parts))
