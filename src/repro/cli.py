"""Command-line interface: regenerate any of the paper's tables and figures.

Usage::

    python -m repro table1 [--max-ranks N]
    python -m repro table2
    python -m repro table3 [--max-ranks N]
    python -m repro table4 [--max-ranks N]
    python -m repro figure1 [--app LULESH --ranks 64 --rank 0]
    python -m repro figure3 [--max-ranks N]
    python -m repro figure4 [--app AMG]
    python -m repro figure5 [--min-ranks 512]
    python -m repro claims  [--max-ranks N]
    python -m repro report  [--max-ranks N] [--out PATH]
    python -m repro heatmap --app LULESH --ranks 64 [--bins 32]
    python -m repro slack   --app BigFFT --ranks 100 [--topology torus3d] [--routing ugal] [--collective-algo binomial]
    python -m repro simulate --app BigFFT --ranks 100 [--volume-scale K] [--routing valiant] [--collective-algo ring]
    python -m repro telemetry --app BigFFT --ranks 100 [--windows N] [--compare minimal,ugal]
    python -m repro compose --jobs LULESH:64,CMC_2D:64 [--noise HotspotNoise:64] [--allocation round_robin]
    python -m repro critpath --app LULESH --ranks 64 [--topology torus3d] [--routing ugal] [--collective-algo binomial]
    python -m repro critpath --table [--max-ranks N] [--topology torus3d]
    python -m repro sweep   --app LULESH --ranks 64 [--routings minimal,valiant,ugal] [--collectives flat,binomial] [--critpath]
    python -m repro serve   --state DIR [--workers N] [--scheduler affinity|random]
    python -m repro submit  --state DIR --app LULESH --ranks 64 [--wait]
    python -m repro jobs    --state DIR [--stats | --cancel JOB | --shutdown]
    python -m repro attach  --state DIR JOB [--results]
    python -m repro trace   --app LULESH --ranks 64 [--out PATH]
    python -m repro convert --dir DUMPI_DIR --app NAME [--out PATH]
    python -m repro compare [--max-ranks N]
    python -m repro validate [--max-ranks N]
    python -m repro check   [--max-ranks N] [--strict] [--no-sim] [--composed] [--collectives flat,binomial]
    python -m repro fuzz    [--count N] [--offset K] [--no-shrink]
    python -m repro apps
    python -m repro bench pipeline [--min-ranks N] [--out PATH]
    python -m repro bench routing [--pairs N] [--out PATH]
    python -m repro bench telemetry [--out PATH]
    python -m repro bench scale [--ranks N] [--chunk-mb M] [--rlimit-gb G]
    python -m repro bench sweep [--workers N] [--out PATH]
    python -m repro bench tenancy [--out PATH]
    python -m repro bench critpath [--out PATH]
    python -m repro bench collectives [--out PATH]

Global options (before the subcommand): ``--timings`` prints a per-stage
wall-time breakdown (trace generation / matrix build / routing / analysis /
simulation) to stderr after the command; ``--cache-dir PATH`` persists the
content-keyed trace/matrix/route caches to disk so repeated invocations
skip regeneration entirely.

The installed console script ``repro-locality`` is equivalent.
"""

from __future__ import annotations

import argparse
import sys

from .util import fmt_float

__all__ = ["main", "build_parser"]

#: User-input errors that should print one line and exit 2 — never a
#: traceback.  Every layer raises one of these for unknown names, missing
#: files, and invalid parameter combinations.
_USER_ERRORS = (ValueError, KeyError, FileNotFoundError, NotADirectoryError)

#: Kept literal (matching repro.routing.ROUTINGS) so --help needs no imports.
_ROUTING_CHOICES = (
    "minimal", "ecmp", "valiant", "dmodk", "ugal", "interference_aware"
)

#: Kept literal (matching repro.collectives.COLLECTIVES) for the same reason.
_COLLECTIVE_CHOICES = (
    "flat", "binomial", "ring", "recursive_doubling", "bine"
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-locality",
        description=(
            "Reproduction of 'On Network Locality in MPI-Based HPC "
            "Applications' (ICPP 2020)"
        ),
    )
    from . import __version__

    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="print a per-stage wall-time breakdown to stderr when done",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="persist trace/matrix/route caches under PATH "
        "(also honoured via REPRO_CACHE_DIR)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_max_ranks(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--max-ranks",
            type=int,
            default=None,
            help="only configurations up to this many ranks (default: all)",
        )

    def add_format(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--format",
            choices=("text", "csv", "json"),
            default="text",
            help="output format (default: paper-style text)",
        )

    t1 = sub.add_parser("table1", help="application overview (Table 1)")
    add_max_ranks(t1)
    add_format(t1)
    t2 = sub.add_parser("table2", help="topology configurations (Table 2)")
    add_format(t2)
    t3 = sub.add_parser("table3", help="full locality metrics (Table 3)")
    add_max_ranks(t3)
    add_format(t3)
    t4 = sub.add_parser("table4", help="dimensionality study (Table 4)")
    add_max_ranks(t4)
    add_format(t4)

    f1 = sub.add_parser("figure1", help="per-partner volumes of one rank (Figure 1)")
    f1.add_argument("--app", default="LULESH")
    f1.add_argument("--ranks", type=int, default=64)
    f1.add_argument("--rank", type=int, default=0)

    add_max_ranks(sub.add_parser("figure3", help="selectivity curves (Figure 3)"))

    f4 = sub.add_parser("figure4", help="selectivity scaling of one app (Figure 4)")
    f4.add_argument("--app", default="AMG")

    f5 = sub.add_parser("figure5", help="multi-core traffic scaling (Figure 5)")
    f5.add_argument("--min-ranks", type=int, default=512)
    f5.add_argument("--max-ranks", type=int, default=None)

    add_max_ranks(sub.add_parser("claims", help="headline-claim statistics"))

    rp = sub.add_parser("report", help="full markdown characterization report")
    rp.add_argument("--max-ranks", type=int, default=None)
    rp.add_argument("--out", default=None, help="output path (default: stdout)")
    rp.add_argument(
        "--no-collective-deltas", action="store_true",
        help="skip the (app x topology x routing x collective-algo) "
        "delta section",
    )

    hm = sub.add_parser("heatmap", help="ASCII communication heat map")
    hm.add_argument("--app", required=True)
    hm.add_argument("--ranks", type=int, required=True)
    hm.add_argument("--bins", type=int, default=32)

    def add_routing(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--routing", default="minimal", choices=_ROUTING_CHOICES,
            help="routing policy carrying the traffic (default: minimal)",
        )
        p.add_argument(
            "--routing-seed", type=int, default=0,
            help="seed for randomized policies (ecmp/valiant/ugal)",
        )

    def add_collective(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--collective-algo", default="flat", choices=_COLLECTIVE_CHOICES,
            help="collective-algorithm engine expanding collectives to "
            "point-to-point traffic (default: flat, the paper's expansion)",
        )

    sl = sub.add_parser("slack", help="per-link bandwidth slack (paper \u00a77)")
    sl.add_argument("--app", required=True)
    sl.add_argument("--ranks", type=int, required=True)
    sl.add_argument(
        "--topology", default="torus3d",
        choices=("torus3d", "fattree", "dragonfly"),
    )
    add_routing(sl)
    add_collective(sl)

    sm = sub.add_parser(
        "simulate", help="dynamic packet-level simulation vs the static model"
    )
    sm.add_argument("--app", required=True)
    sm.add_argument("--ranks", type=int, required=True)
    sm.add_argument(
        "--topology", default="torus3d",
        choices=("torus3d", "fattree", "dragonfly"),
    )
    sm.add_argument(
        "--volume-scale", type=float, default=1.0,
        help="simulate 1/k of the volume at 1/k bandwidth (for big traces)",
    )
    sm.add_argument(
        "--engine", default="auto", choices=("auto", "batched", "reference"),
        help="simulation kernel (all bit-identical; default picks by load)",
    )
    add_routing(sm)
    add_collective(sm)

    tm = sub.add_parser(
        "telemetry",
        help="windowed link telemetry and congestion-region analysis",
    )
    tm.add_argument("--app", required=True)
    tm.add_argument("--ranks", type=int, required=True)
    tm.add_argument(
        "--topology", default="torus3d",
        choices=("torus3d", "fattree", "dragonfly"),
    )
    tm.add_argument(
        "--windows", type=int, default=48,
        help="number of time windows in the occupancy series (default: 48)",
    )
    tm.add_argument(
        "--threshold", type=float, default=0.7,
        help="hot-link occupancy fraction for region detection (default: 0.7)",
    )
    tm.add_argument(
        "--volume-scale", type=float, default=1.0,
        help="simulate 1/k of the volume at 1/k bandwidth (for big traces)",
    )
    tm.add_argument(
        "--engine", default="auto", choices=("auto", "batched", "reference"),
        help="simulation kernel (all bit-identical; default picks by load)",
    )
    tm.add_argument(
        "--compare", default=None, metavar="POLICIES",
        help="comma-separated routing policies to contrast on this traffic "
        "(e.g. minimal,ugal) instead of the single-policy timeline",
    )
    tm.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the full report to PATH (.npz exact, .json summary)",
    )
    add_routing(tm)
    add_collective(tm)

    cm = sub.add_parser(
        "compose",
        help="co-schedule jobs on one machine and attribute interference",
    )
    cm.add_argument(
        "--jobs", required=True, metavar="APP:RANKS,...",
        help="tenant applications, e.g. LULESH:64,CMC_2D:64",
    )
    cm.add_argument(
        "--noise", default=None, metavar="APP:RANKS,...",
        help="background aggressors, e.g. HotspotNoise:64 or UniformNoise:32",
    )
    cm.add_argument(
        "--allocation", default="contiguous",
        choices=("contiguous", "round_robin", "random"),
        help="rank-allocation policy placing jobs on the machine",
    )
    cm.add_argument(
        "--alloc-seed", type=int, default=0,
        help="seed for the random allocation policy",
    )
    cm.add_argument(
        "--topology", default="torus3d",
        choices=("torus3d", "fattree", "dragonfly"),
    )
    cm.add_argument(
        "--windows", type=int, default=48,
        help="telemetry windows for congestion-region detection (default: 48)",
    )
    cm.add_argument(
        "--threshold", type=float, default=0.7,
        help="hot-link occupancy fraction for region detection (default: 0.7)",
    )
    cm.add_argument(
        "--volume-scale", type=float, default=1.0,
        help="simulate 1/k of the volume at 1/k bandwidth (for big traces)",
    )
    cm.add_argument(
        "--engine", default="auto", choices=("auto", "batched", "reference"),
        help="simulation kernel (all bit-identical; default picks by load)",
    )
    cm.add_argument(
        "--seed", type=int, default=0,
        help="trace-generation seed shared by every tenant",
    )
    add_routing(cm)

    cp = sub.add_parser(
        "critpath",
        help="critical path and latency tolerance under the LogGP model",
    )
    cp.add_argument("--app", default="LULESH")
    cp.add_argument("--ranks", type=int, default=64)
    cp.add_argument(
        "--table", action="store_true",
        help="latency-tolerance table over every registry app "
        "(smallest configurations) instead of one workload",
    )
    add_max_ranks(cp)
    cp.add_argument(
        "--topology", default="torus3d",
        choices=("torus3d", "fattree", "dragonfly", "none"),
        help="'none' models a zero-diameter network (no per-hop term)",
    )
    cp.add_argument(
        "--mapping", default="consecutive", choices=("consecutive", "random"),
        help="rank placement feeding the per-hop cost term",
    )
    add_routing(cp)
    add_collective(cp)
    cp.add_argument(
        "--max-repeat", type=int, default=None,
        help="iteration-truncation clamp for repeat expansion "
        "(default: 64; 0 = exact expansion)",
    )
    cp.add_argument(
        "--no-fd", action="store_true",
        help="skip the finite-difference sensitivity cross-check",
    )
    for flag, letter in (
        ("latency-s", "L"),
        ("overhead-s", "o"),
        ("gap-s", "g"),
        ("gap-per-byte-s", "G"),
        ("hop-s", "per-hop latency"),
    ):
        cp.add_argument(
            f"--{flag}", type=float, default=None,
            help=f"LogGP {letter} override in seconds (default: dyadic)",
        )
    cp.add_argument("--seed", type=int, default=0)

    sw = sub.add_parser(
        "sweep", help="cross a custom parameter grid (incl. routing policies)"
    )
    sw.add_argument("--app", default="LULESH")
    sw.add_argument("--ranks", type=int, default=64)
    sw.add_argument(
        "--topologies", default="torus3d,fattree,dragonfly",
        help="comma-separated topology kinds",
    )
    sw.add_argument(
        "--mappings", default="consecutive",
        help="comma-separated mapping methods",
    )
    sw.add_argument(
        "--routings", default="minimal",
        help=f"comma-separated routing policies ({', '.join(_ROUTING_CHOICES)})",
    )
    sw.add_argument(
        "--payloads", default="4096", help="comma-separated packet payloads"
    )
    sw.add_argument(
        "--collectives", default="flat",
        help="comma-separated collective-algorithm engines "
        f"({', '.join(_COLLECTIVE_CHOICES)})",
    )
    sw.add_argument(
        "--workers", type=int, default=1,
        help="evaluate grid points in this many processes",
    )
    sw.add_argument(
        "--telemetry", action="store_true",
        help="also simulate each point with a windowed collector and merge "
        "a compact congestion summary into the records",
    )
    sw.add_argument(
        "--critpath", action="store_true",
        help="also build each point's happens-before DAG and merge the "
        "LogGP critical path and latency sensitivity into the records",
    )
    sw.add_argument("--seed", type=int, default=0)
    add_format(sw)

    def add_service(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--state", required=True, metavar="DIR",
            help="service state directory (jobs, journals, shared cache)",
        )
        p.add_argument(
            "--socket", default=None, metavar="PATH",
            help="unix socket path (default: <state>/service.sock)",
        )

    sv = sub.add_parser(
        "serve", help="run the persistent sharded sweep job service"
    )
    add_service(sv)
    sv.add_argument(
        "--workers", type=int, default=2,
        help="persistent worker processes (default: 2)",
    )
    sv.add_argument(
        "--scheduler", choices=("affinity", "random"), default="affinity",
        help="cell placement: cache-affinity (default) or random hashing",
    )
    sv.add_argument(
        "--journal-batch", type=int, default=16,
        help="journal appends per fsync (1 = fsync every cell)",
    )

    sb = sub.add_parser(
        "submit", help="submit a sweep grid to a running service"
    )
    add_service(sb)
    sb.add_argument("--app", default="LULESH")
    sb.add_argument("--ranks", type=int, default=64)
    sb.add_argument(
        "--apps", default=None, metavar="NAME:RANKS,...",
        help="multi-app grid, e.g. LULESH:64,AMG:216 (overrides --app/--ranks)",
    )
    sb.add_argument(
        "--topologies", default="torus3d,fattree,dragonfly",
        help="comma-separated topology kinds",
    )
    sb.add_argument(
        "--mappings", default="consecutive",
        help="comma-separated mapping methods",
    )
    sb.add_argument(
        "--routings", default="minimal",
        help=f"comma-separated routing policies ({', '.join(_ROUTING_CHOICES)})",
    )
    sb.add_argument(
        "--payloads", default="4096", help="comma-separated packet payloads"
    )
    sb.add_argument(
        "--collectives", default="flat",
        help="comma-separated collective-algorithm engines "
        f"({', '.join(_COLLECTIVE_CHOICES)})",
    )
    sb.add_argument("--seed", type=int, default=0)
    sb.add_argument(
        "--wait", action="store_true",
        help="stream progress until done, then print the records",
    )
    add_format(sb)

    jb = sub.add_parser(
        "jobs", help="list service jobs (or stats / cancel / shutdown)"
    )
    add_service(jb)
    jb.add_argument(
        "--stats", action="store_true",
        help="print pool-wide service stats as JSON instead",
    )
    jb.add_argument(
        "--cancel", default=None, metavar="JOB", help="cancel one job"
    )
    jb.add_argument(
        "--shutdown", action="store_true", help="stop the service"
    )

    at = sub.add_parser(
        "attach", help="stream a job's progress until it finishes"
    )
    add_service(at)
    at.add_argument("job", metavar="JOB")
    at.add_argument(
        "--results", action="store_true",
        help="print the job's records once it is done",
    )
    add_format(at)

    cv = sub.add_parser(
        "convert", help="convert real dumpi2ascii output to repro-dumpi"
    )
    cv.add_argument("--dir", required=True, help="directory of per-rank files")
    cv.add_argument("--app", required=True, help="application name for metadata")
    cv.add_argument("--out", default=None, help="output path (default: stdout)")

    tr = sub.add_parser("trace", help="generate and serialize one trace")
    tr.add_argument("--app", required=True)
    tr.add_argument("--ranks", type=int, required=True)
    tr.add_argument("--variant", default="")
    tr.add_argument("--seed", type=int, default=0)
    tr.add_argument("--out", default=None, help="output path (default: stdout)")

    cp = sub.add_parser(
        "compare", help="cell-by-cell paper-vs-measured deviation summary"
    )
    cp.add_argument("--max-ranks", type=int, default=None)

    va = sub.add_parser("validate", help="self-validate the synthetic generators")
    va.add_argument("--max-ranks", type=int, default=None)

    ck = sub.add_parser(
        "check",
        help="run the cross-layer invariant suite over the study grid",
    )
    ck.add_argument("--max-ranks", type=int, default=None)
    ck.add_argument(
        "--apps", default=None,
        help="comma-separated application names to check (default: all)",
    )
    ck.add_argument(
        "--topologies", default="torus3d,fattree,dragonfly",
        help="comma-separated topology kinds to check",
    )
    ck.add_argument(
        "--routings", default=None,
        help=f"comma-separated routing policies (default: all of "
        f"{', '.join(_ROUTING_CHOICES)})",
    )
    ck.add_argument(
        "--collectives", default="flat",
        help="comma-separated collective-algorithm engines to cross the "
        f"grid with ({', '.join(_COLLECTIVE_CHOICES)})",
    )
    ck.add_argument(
        "--no-sim", action="store_true",
        help="skip the dynamic-simulation and telemetry invariants",
    )
    ck.add_argument(
        "--composed", action="store_true",
        help="also check multi-tenant composed-workload scenarios",
    )
    ck.add_argument(
        "--target-packets", type=int, default=20_000,
        help="volume-scale each simulation down to about this many packets",
    )
    ck.add_argument(
        "--strict", action="store_true",
        help="treat invariant warnings as failures",
    )
    ck.add_argument(
        "--verbose", action="store_true",
        help="list every scenario, not just violations",
    )
    ck.add_argument("--seed", type=int, default=0)

    fz = sub.add_parser(
        "fuzz",
        help="differential fuzz: random configs through every engine pair",
    )
    fz.add_argument(
        "--count", type=int, default=8,
        help="number of seeded cases to run (default: 8, the CI smoke set)",
    )
    fz.add_argument(
        "--offset", type=int, default=0,
        help="first seed (cases run seeds offset..offset+count-1)",
    )
    fz.add_argument(
        "--max-ranks", type=int, default=64,
        help="largest workload configuration a case may draw",
    )
    fz.add_argument(
        "--target-packets", type=int, default=8_000,
        help="volume-scale each simulation down to about this many packets",
    )
    fz.add_argument(
        "--no-shrink", action="store_true",
        help="report raw failing cases without minimizing them",
    )

    sub.add_parser("apps", help="list applications and configurations")

    be = sub.add_parser(
        "bench", help="measure pipeline/routing performance and memory"
    )
    be.add_argument(
        "target",
        help="pipeline: legacy vs columnar front-end; "
        "routing: per-policy route-construction throughput; "
        "telemetry: collector overhead and congestion comparison; "
        "scale: peak RSS of the out-of-core streaming pipeline; "
        "sweep: cold serial vs warm sharded sweep service; "
        "tenancy: interference-aware routing gate and solo bit-identity; "
        "critpath: vectorized matcher speedup and sensitivity cross-check; "
        "collectives: flat-engine identity gate and tree locality deltas",
    )
    be.add_argument(
        "--min-ranks",
        type=int,
        default=1000,
        help="(pipeline) benchmark configurations with at least this many ranks",
    )
    be.add_argument(
        "--no-mapping",
        action="store_true",
        help="(pipeline) skip the mapping-kernel section",
    )
    be.add_argument(
        "--pairs",
        type=int,
        default=100_000,
        help="(routing) node pairs routed per policy (default: 100000)",
    )
    be.add_argument(
        "--ranks",
        type=int,
        default=None,
        help="(scale) rank count for the streaming pipeline "
        "(default: 262144)",
    )
    be.add_argument(
        "--chunk-mb",
        type=float,
        default=8.0,
        help="(scale) per-chunk byte budget in MB (default: 8)",
    )
    be.add_argument(
        "--budget-mb",
        type=float,
        default=None,
        help="(scale) peak-RSS budget the ratio gate divides by "
        "(default: 2048)",
    )
    be.add_argument(
        "--rlimit-gb",
        type=float,
        default=None,
        help="(scale) hard RLIMIT_AS cap applied inside the measured "
        "subprocess (default: no cap)",
    )
    be.add_argument(
        "--workers",
        type=int,
        default=None,
        help="(sweep) persistent workers per service run (default: 2)",
    )
    be.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="where to write the JSON record (default: ./BENCH_<target>.json)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    # Imports deferred so --help stays fast.
    from . import analysis, timings
    from .apps.registry import APPS, generate_trace

    try:
        if args.cache_dir:
            from . import cache

            cache.configure(disk_dir=args.cache_dir)
        if args.timings:
            timings.enable()
            try:
                return _run_command(args, analysis, APPS, generate_trace)
            finally:
                print(timings.summary(), file=sys.stderr)
        return _run_command(args, analysis, APPS, generate_trace)
    except _USER_ERRORS as exc:
        # KeyError carries its message as the single arg; str(exc) would
        # wrap it in quotes.
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2


def _run_command(args, analysis, APPS, generate_trace) -> int:

    def emit(records, text):
        if getattr(args, "format", "text") == "csv":
            sys.stdout.write(analysis.rows_to_csv(records))
        elif getattr(args, "format", "text") == "json":
            print(analysis.rows_to_json(records))
        else:
            print(text)

    if args.command == "table1":
        rows = analysis.build_table1(max_ranks=args.max_ranks)
        emit(analysis.table1_records(rows), analysis.render_table1(rows))
    elif args.command == "table2":
        configs = analysis.build_table2()
        emit(analysis.table2_records(configs), analysis.render_table2(configs))
    elif args.command == "table3":
        rows = analysis.build_table3(max_ranks=args.max_ranks)
        emit(analysis.table3_records(rows), analysis.render_table3(rows))
    elif args.command == "table4":
        rows = analysis.build_table4(max_ranks=args.max_ranks)
        emit(analysis.table4_records(rows), analysis.render_table4(rows))
    elif args.command == "figure1":
        series = analysis.build_figure1(args.app, args.ranks, args.rank)
        print(f"# {series.app}@{series.ranks}, rank {series.rank}")
        print(f"{'partner#':>8} {'bytes':>14} {'cum share':>10}")
        cum = series.cumulative_share
        for i, (v, c) in enumerate(zip(series.volumes, cum), start=1):
            print(f"{i:>8} {v:>14d} {c:>10.3f}")
    elif args.command == "figure3":
        print(analysis.render_curves(analysis.build_figure3(max_ranks=args.max_ranks)))
    elif args.command == "figure4":
        print(analysis.render_curves(analysis.build_figure4(args.app)))
    elif args.command == "figure5":
        series = analysis.build_figure5(
            min_ranks=args.min_ranks, max_ranks=args.max_ranks
        )
        for s in series:
            points = "  ".join(
                f"{p.cores_per_node}c:{p.relative_traffic:.2f}" for p in s.points
            )
            print(f"{s.label:<28} {points}")
    elif args.command == "claims":
        report = analysis.build_claim_report(max_ranks=args.max_ranks)
        print(analysis.render_claims(report))
    elif args.command == "report":
        rows = analysis.build_report(max_ranks=args.max_ranks)
        text = analysis.render_report(rows)
        if not args.no_collective_deltas:
            deltas = analysis.build_collective_deltas(max_ranks=args.max_ranks)
            if deltas:
                text += "\n\n" + analysis.render_collective_deltas(deltas)
        if args.out:
            from pathlib import Path

            Path(args.out).write_text(text + "\n", encoding="utf-8")
            print(f"wrote report ({len(rows)} workloads) to {args.out}")
        else:
            print(text)
    elif args.command == "heatmap":
        from .comm.matrix import matrix_from_trace
        from .metrics.heatmap import heatmap_summary, render_ascii

        trace = generate_trace(args.app, args.ranks)
        matrix = matrix_from_trace(trace, include_collectives=False)
        print(render_ascii(matrix, bins=args.bins))
        summary = heatmap_summary(matrix)
        print(
            f"\nfill {100 * summary.fill:.1f}%  "
            f"diagonal(+-1) {100 * summary.diagonal_band_share:.0f}%  "
            f"pairs for 90%: {summary.top_pairs_for_90pct}  "
            f"gini {summary.gini:.2f}"
        )
    elif args.command == "slack":
        from .comm.matrix import matrix_from_trace
        from .model.slack import bandwidth_slack
        from .topology.configs import config_for

        trace = generate_trace(args.app, args.ranks)
        matrix = matrix_from_trace(trace, collective=args.collective_algo)
        cfg = config_for(args.ranks)
        topo = {
            "torus3d": cfg.build_torus,
            "fattree": cfg.build_fat_tree,
            "dragonfly": cfg.build_dragonfly,
        }[args.topology]()
        report = bandwidth_slack(
            matrix,
            topo,
            execution_time=trace.meta.execution_time,
            routing=args.routing,
            routing_seed=args.routing_seed,
        )
        print(
            f"{trace.meta.label} on {topo!r} "
            f"({args.routing} routing): {report.num_links} used links"
        )
        print(f"min slack (busiest link):   {report.min_slack:.1f}x")
        print(f"median slack:               {report.median_slack:.1f}x")
        print(
            f"uniform slow-down saving:   "
            f"{100 * report.uniform_power_saving():.1f}% (power ~ bw^2)"
        )
        print(
            f"per-link provisioning:      "
            f"{100 * report.per_link_power_saving():.1f}%"
        )
        gl = report.global_vs_local_slack()
        if gl:
            print(f"median slack global/local:  {gl[0]:.1f}x / {gl[1]:.1f}x")
    elif args.command == "simulate":
        from .comm.matrix import matrix_from_trace
        from .model.engine import analyze_network
        from .sim.engine import simulate_network
        from .topology.configs import config_for

        trace = generate_trace(args.app, args.ranks)
        matrix = matrix_from_trace(trace, collective=args.collective_algo)
        cfg = config_for(args.ranks)
        topo = {
            "torus3d": cfg.build_torus,
            "fattree": cfg.build_fat_tree,
            "dragonfly": cfg.build_dragonfly,
        }[args.topology]()
        t = trace.meta.execution_time
        static = analyze_network(
            matrix,
            topo,
            execution_time=t,
            routing=args.routing,
            routing_seed=args.routing_seed,
        )
        dyn = simulate_network(
            matrix,
            topo,
            execution_time=t,
            volume_scale=args.volume_scale,
            engine=args.engine,
            routing=args.routing,
            routing_seed=args.routing_seed,
        )
        print(f"{trace.meta.label} on {topo!r} ({args.routing} routing)")
        print(f"static utilization (Eq. 5):  {static.utilization_percent:.4f}%")
        print(f"dynamic busy fraction:       {100 * dyn.dynamic_utilization:.4f}%")
        print(f"packets simulated:           {dyn.packets_simulated}")
        print(f"congested packets:           {100 * dyn.congested_packet_share:.2f}%")
        print(f"mean queueing delay:         {dyn.mean_queue_delay:.3e} s")
        print(
            "makespan inflation:          "
            f"{fmt_float(dyn.makespan_inflation, '.3f')}x"
        )
    elif args.command == "telemetry":
        from .comm.matrix import matrix_from_trace
        from .sim.engine import simulate_network
        from .telemetry import (
            TelemetryConfig,
            congestion_by_routing,
            congestion_summary,
            render_congestion_timeline,
            render_summary,
            report_to_json_dict,
            save_report_npz,
        )
        from .topology.configs import config_for

        trace = generate_trace(args.app, args.ranks)
        matrix = matrix_from_trace(trace, collective=args.collective_algo)
        cfg = config_for(args.ranks)
        topo = {
            "torus3d": cfg.build_torus,
            "fattree": cfg.build_fat_tree,
            "dragonfly": cfg.build_dragonfly,
        }[args.topology]()
        if args.compare:
            policies = tuple(
                s.strip() for s in args.compare.split(",") if s.strip()
            )
            records = congestion_by_routing(
                matrix,
                topo,
                routings=policies,
                execution_time=trace.meta.execution_time,
                threshold=args.threshold,
                windows=args.windows,
                volume_scale=args.volume_scale,
                routing_seed=args.routing_seed,
                engine=args.engine,
            )
            print(
                f"# {trace.meta.label} on {topo!r}: congestion by routing "
                f"(threshold {args.threshold})"
            )
            print(
                f"{'routing':<10} {'inflation':>9} {'peak occ':>9} "
                f"{'regions':>8} {'peak links':>11} {'longest(s)':>11}"
            )
            for r in records:
                print(
                    f"{r['routing']:<10} "
                    f"{fmt_float(r['makespan_inflation'], '.3f'):>9} "
                    f"{r['peak_window_occupancy']:>9.3f} {r['num_regions']:>8} "
                    f"{r['peak_region_links']:>11} {r['longest_region_s']:>11.2e}"
                )
            return 0
        result = simulate_network(
            matrix,
            topo,
            execution_time=trace.meta.execution_time,
            volume_scale=args.volume_scale,
            engine=args.engine,
            routing=args.routing,
            routing_seed=args.routing_seed,
            telemetry=TelemetryConfig(windows=args.windows),
        )
        report = result.telemetry
        if report is None:
            print("nothing to report: simulation carried no crossing traffic")
            return 0
        print(
            f"{trace.meta.label} on {topo!r} ({args.routing} routing), "
            f"{result.packets_simulated} packets"
        )
        print(render_congestion_timeline(report, topo, threshold=args.threshold))
        print()
        print(render_summary(congestion_summary(report, topo, args.threshold)))
        if args.out:
            from pathlib import Path

            out = Path(args.out)
            if out.suffix == ".json":
                import json as _json

                out.write_text(
                    _json.dumps(report_to_json_dict(report), indent=2) + "\n"
                )
            else:
                save_report_npz(report, out)
            print(f"\nwrote report to {out}")
    elif args.command == "compose":
        from .telemetry import TelemetryConfig
        from .tenancy import (
            TenantSpec,
            compose_workload,
            interference_report,
            render_interference_report,
        )
        from .topology.configs import config_for

        def parse_specs(value: str) -> list:
            specs = []
            for item in (s.strip() for s in value.split(",")):
                if not item:
                    continue
                name, sep, ranks = item.rpartition(":")
                if not sep or not ranks.isdigit():
                    raise ValueError(
                        f"bad job spec {item!r}: expected APP:RANKS"
                    )
                specs.append(TenantSpec(name, int(ranks), seed=args.seed))
            return specs

        jobs = parse_specs(args.jobs)
        noise = parse_specs(args.noise) if args.noise else []
        workload = compose_workload(
            jobs,
            noise=noise,
            allocation=args.allocation,
            alloc_seed=args.alloc_seed,
        )
        cfg = config_for(workload.num_ranks)
        topo = {
            "torus3d": cfg.build_torus,
            "fattree": cfg.build_fat_tree,
            "dragonfly": cfg.build_dragonfly,
        }[args.topology]()
        print(
            f"composed {workload.trace.meta.label} "
            f"({workload.num_jobs} jobs, {args.allocation} allocation) "
            f"on {topo!r} ({args.routing} routing)"
        )
        for job in workload.jobs:
            tag = "noise" if job.is_noise else "app"
            lo, hi = int(job.ranks.min()), int(job.ranks.max())
            print(
                f"  job {job.job_id} [{tag:<5}] {job.label:<24} "
                f"{job.num_ranks} ranks in [{lo}, {hi}]"
            )
        report = interference_report(
            workload,
            topo,
            volume_scale=args.volume_scale,
            engine=args.engine,
            routing=args.routing,
            routing_seed=args.routing_seed,
            telemetry=TelemetryConfig(windows=args.windows),
            threshold=args.threshold,
        )
        print()
        print(render_interference_report(report))
    elif args.command == "critpath":
        from .critpath import DEFAULT_PARAMS, analyze_trace, latency_table

        params = DEFAULT_PARAMS
        overrides = {
            "latency_s": args.latency_s,
            "overhead_s": args.overhead_s,
            "gap_s": args.gap_s,
            "gap_per_byte_s": args.gap_per_byte_s,
            "hop_s": args.hop_s,
        }
        overrides = {k: v for k, v in overrides.items() if v is not None}
        if overrides:
            from dataclasses import replace

            params = replace(params, **overrides)
        max_repeat = args.max_repeat
        if max_repeat == 0:
            max_repeat = None  # exact expansion
        elif max_repeat is None:
            from .critpath import DEFAULT_MAX_REPEAT

            max_repeat = DEFAULT_MAX_REPEAT
        if args.table:
            rows = analysis.build_latency_rows(
                topology=args.topology if args.topology != "none" else "torus3d",
                routing=args.routing,
                max_ranks=args.max_ranks,
                max_repeat=max_repeat,
                fd_check=not args.no_fd,
                collective=args.collective_algo,
            )
            print(analysis.render_latency_table(rows))
        else:
            from .cache import cached_trace
            from .validation.suite import build_topology

            trace = cached_trace(args.app, args.ranks, seed=args.seed)
            topo = None
            mapping = None
            if args.topology != "none":
                topo = build_topology(args.topology, args.ranks)
                from .mapping.base import Mapping

                if args.mapping == "random":
                    mapping = Mapping.random(
                        args.ranks, topo.num_nodes, seed=args.seed
                    )
                else:
                    mapping = Mapping.consecutive(args.ranks, topo.num_nodes)
            result = analyze_trace(
                trace,
                topology=topo,
                mapping=mapping,
                routing=args.routing,
                routing_seed=args.routing_seed,
                params=params,
                max_repeat=max_repeat,
                fd_check=not args.no_fd,
                collective=args.collective_algo,
            )
            print(
                f"{result.app}@{result.ranks} on {args.topology} "
                f"({args.routing} routing, {args.mapping} mapping, "
                f"{result.collective} collectives)"
            )
            print(f"DAG:                  {result.nodes} nodes, "
                  f"{result.edges} edges ({result.msg_edges} messages)")
            print(f"critical path:        {result.makespan_s:.6f} s")
            print(f"latency sensitivity:  dT/dL = {result.l_terms}")
            if not args.no_fd:
                print(
                    f"finite difference:    "
                    f"{fmt_float(result.fd_sensitivity, '.1f')} "
                    f"(rel err {fmt_float(result.fd_rel_err, '.2e')})"
                )
            print(
                "latency tolerance:    "
                f"{fmt_float(result.tolerance_s * 1e6, '.3f')} us "
                "(+1% critical path)"
            )
    elif args.command == "sweep":
        from .analysis.sweep import SweepSpec, run_sweep

        def split(value: str) -> tuple[str, ...]:
            return tuple(s.strip() for s in value.split(",") if s.strip())

        spec = SweepSpec(
            apps=((args.app, args.ranks),),
            topologies=split(args.topologies),
            mappings=split(args.mappings),
            routings=split(args.routings),
            payloads=tuple(int(p) for p in split(args.payloads)),
            collectives=split(args.collectives),
            seed=args.seed,
            telemetry=args.telemetry,
            critpath=args.critpath,
        )
        def cells_done(done: int, total: int) -> None:
            print(f"  {done}/{total} cells done", file=sys.stderr)

        try:
            records = run_sweep(
                spec, workers=args.workers, progress=cells_done
            )
        except _USER_ERRORS:
            raise
        except Exception as exc:
            # A worker process died or raised mid-grid-point; surface one
            # line instead of the executor's traceback chain.
            print(
                f"error: sweep failed in a worker: "
                f"{type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
            return 1
        if getattr(args, "format", "text") == "text":
            header = (
                f"{'topology':<10} {'mapping':<12} {'routing':<8} "
                f"{'collective':<10} {'payload':>7} {'avg hops':>9} "
                f"{'util %':>10} {'links':>7}"
            )
            print(f"# {args.app}@{args.ranks}: {len(records)} records")
            print(header)
            for r in records:
                print(
                    f"{r['topology']:<10} {r['mapping']:<12} {r['routing']:<8} "
                    f"{r['collective']:<10} {r['payload']:>7} "
                    f"{r['avg_hops']:>9.3f} "
                    f"{r['utilization_percent']:>10.5f} {r['used_links']:>7}"
                )
        else:
            emit(records, "")
    elif args.command == "serve":
        from pathlib import Path

        from .service.server import run_server

        socket_path = args.socket or str(Path(args.state) / "service.sock")
        return run_server(
            args.state,
            socket_path,
            workers=args.workers,
            scheduler=args.scheduler,
            journal_batch=args.journal_batch,
            cache_dir=args.cache_dir,
        )
    elif args.command in ("submit", "jobs", "attach"):
        return _run_service_client(args, analysis)
    elif args.command == "convert":
        from .dumpi.ascii_dumpi import load_dumpi2ascii_dir
        from .dumpi.writer import dump_trace, dumps_trace

        trace = load_dumpi2ascii_dir(args.dir, app=args.app)
        if args.out:
            path = dump_trace(trace, args.out)
            print(f"converted {trace.meta.label} ({len(trace)} records) to {path}")
        else:
            sys.stdout.write(dumps_trace(trace))
    elif args.command == "trace":
        from .dumpi.writer import dump_trace, dumps_trace

        trace = generate_trace(
            args.app, args.ranks, variant=args.variant, seed=args.seed
        )
        if args.out:
            path = dump_trace(trace, args.out)
            print(f"wrote {trace.meta.label} ({len(trace)} records) to {path}")
        else:
            sys.stdout.write(dumps_trace(trace))
    elif args.command == "compare":
        from .paper.compare import compare_table3, deviation_summary

        rows = analysis.build_table3(max_ranks=args.max_ranks)
        cells = compare_table3(rows)
        summary = deviation_summary(cells)
        print("Paper-vs-measured deviation (Table 3 cells)")
        print("-" * 48)
        for line in summary.lines():
            print(line)
        print("\nlargest per-column deviations:")
        worst_by_column: dict[str, object] = {}
        for cell in cells:
            r = cell.ratio
            if r is None:
                continue
            import math as _math

            prev = worst_by_column.get(cell.column)
            if prev is None or abs(_math.log(r)) > abs(_math.log(prev[1])):  # type: ignore[index]
                worst_by_column[cell.column] = (cell.label, r)
        for column, (label, ratio) in sorted(worst_by_column.items()):
            print(f"  {column:<24} {label:<28} {ratio:6.2f}x")
    elif args.command == "validate":
        from .apps.validation import validate_all

        result = validate_all(max_ranks=args.max_ranks)
        print(result.summary())
        return 0 if result.ok else 1
    elif args.command == "check":
        from .validation import run_check_suite

        def split(value: str) -> tuple[str, ...]:
            return tuple(s.strip() for s in value.split(",") if s.strip())

        report = run_check_suite(
            max_ranks=args.max_ranks,
            apps=split(args.apps) if args.apps else None,
            topologies=split(args.topologies),
            routings=split(args.routings) if args.routings else None,
            collectives=split(args.collectives),
            sim=not args.no_sim,
            target_packets=args.target_packets,
            seed=args.seed,
            composed=args.composed,
        )
        print(report.render(verbose=args.verbose))
        return 0 if report.ok(strict=args.strict) else 1
    elif args.command == "fuzz":
        from .validation import run_fuzz

        report = run_fuzz(
            seeds=range(args.offset, args.offset + args.count),
            max_ranks=args.max_ranks,
            target_packets=args.target_packets,
            shrink_failures=not args.no_shrink,
            progress=lambda label: print(f"  {label}", file=sys.stderr),
        )
        print(report.render())
        return 0 if report.ok else 1
    elif args.command == "apps":
        for name, app in APPS.items():
            configs = ", ".join(
                f"{c.ranks}{'/' + c.variant if c.variant else ''}"
                for c in app.configurations()
            )
            star = " (*)" if app.uses_derived_types else ""
            print(f"{name:<22}{star:<5} ranks: {configs}")
    elif args.command == "bench":
        out = args.out or f"BENCH_{args.target}.json"
        if args.target == "pipeline":
            from .bench import (
                render_pipeline_bench,
                run_pipeline_bench,
                write_pipeline_bench,
            )

            data = run_pipeline_bench(
                min_ranks=args.min_ranks, mapping=not args.no_mapping
            )
            print(render_pipeline_bench(data))
            path = write_pipeline_bench(out, data)
        elif args.target == "telemetry":
            from .bench import (
                render_telemetry_bench,
                run_telemetry_bench,
                write_telemetry_bench,
            )

            data = run_telemetry_bench()
            print(render_telemetry_bench(data))
            path = write_telemetry_bench(out, data)
        elif args.target == "scale":
            from .bench import (
                SCALE_RANKS,
                SCALE_RSS_BUDGET_MB,
                render_scale_bench,
                run_scale_bench,
                write_scale_bench,
            )

            data = run_scale_bench(
                ranks=args.ranks or SCALE_RANKS,
                chunk_mb=args.chunk_mb,
                budget_mb=args.budget_mb or SCALE_RSS_BUDGET_MB,
                rlimit_gb=args.rlimit_gb,
            )
            print(render_scale_bench(data))
            path = write_scale_bench(out, data)
        elif args.target == "sweep":
            from .bench import (
                SWEEP_WORKERS,
                render_sweep_bench,
                run_sweep_bench,
                write_sweep_bench,
            )

            data = run_sweep_bench(workers=args.workers or SWEEP_WORKERS)
            print(render_sweep_bench(data))
            path = write_sweep_bench(out, data)
        elif args.target == "tenancy":
            from .bench import (
                render_tenancy_bench,
                run_tenancy_bench,
                write_tenancy_bench,
            )

            data = run_tenancy_bench()
            print(render_tenancy_bench(data))
            path = write_tenancy_bench(out, data)
        elif args.target == "critpath":
            from .bench import (
                render_critpath_bench,
                run_critpath_bench,
                write_critpath_bench,
            )

            data = run_critpath_bench()
            print(render_critpath_bench(data))
            path = write_critpath_bench(out, data)
        elif args.target == "collectives":
            from .bench import (
                render_collectives_bench,
                run_collectives_bench,
                write_collectives_bench,
            )

            data = run_collectives_bench()
            print(render_collectives_bench(data))
            path = write_collectives_bench(out, data)
        elif args.target == "routing":
            from .bench import (
                render_routing_bench,
                run_routing_bench,
                write_routing_bench,
            )

            data = run_routing_bench(pairs=args.pairs)
            print(render_routing_bench(data))
            path = write_routing_bench(out, data)
        else:
            raise ValueError(
                f"unknown bench target {args.target!r}; available: "
                "collectives, critpath, pipeline, routing, scale, sweep, "
                "telemetry, tenancy"
            )
        print(f"wrote {path}")
    else:  # pragma: no cover - argparse enforces the choices
        raise AssertionError(f"unhandled command {args.command}")
    return 0


def _print_job_records(args, analysis, records) -> None:
    fmt = getattr(args, "format", "text")
    if fmt == "csv":
        sys.stdout.write(analysis.rows_to_csv(records))
    elif fmt == "json":
        print(analysis.rows_to_json(records))
    else:
        print(
            f"{'app':<12} {'ranks':>6} {'topology':<10} {'mapping':<12} "
            f"{'routing':<8} {'collective':<10} {'payload':>7} "
            f"{'avg hops':>9} {'util %':>10} {'links':>7}"
        )
        for r in records:
            print(
                f"{r['app']:<12} {r['ranks']:>6} {r['topology']:<10} "
                f"{r['mapping']:<12} {r['routing']:<8} "
                f"{r.get('collective', 'flat'):<10} {r['payload']:>7} "
                f"{r['avg_hops']:>9.3f} {r['utilization_percent']:>10.5f} "
                f"{r['used_links']:>7}"
            )


def _stream_job(args, analysis, client, job: str, want_results: bool) -> int:
    """Follow one job's event stream; optionally print its records."""
    for event in client.attach(job):
        kind = event.get("event")
        if kind == "cell":
            replay = " (replayed)" if event.get("replayed") else ""
            print(
                f"  {event['done']}/{event['total']} cells done{replay}",
                file=sys.stderr,
            )
        elif kind == "end":
            status = event.get("status")
            if status != "done":
                error = event.get("error")
                suffix = f": {error}" if error else ""
                print(f"error: job {job} {status}{suffix}", file=sys.stderr)
                return 1
    if want_results:
        _print_job_records(args, analysis, client.results(job))
    else:
        print(f"{job}: done")
    return 0


def _run_service_client(args, analysis) -> int:
    """The ``submit`` / ``jobs`` / ``attach`` client commands."""
    from pathlib import Path

    from .service.client import ServiceError, SweepClient

    socket_path = args.socket or str(Path(args.state) / "service.sock")
    client = SweepClient(socket_path)

    def split(value: str) -> tuple[str, ...]:
        return tuple(s.strip() for s in value.split(",") if s.strip())

    try:
        if args.command == "submit":
            from .analysis.sweep import SweepSpec
            from .service.cells import spec_to_dict

            if args.apps:
                apps = []
                for part in split(args.apps):
                    name, _, ranks = part.partition(":")
                    if not name or not ranks.isdigit():
                        raise ValueError(
                            f"--apps entries are NAME:RANKS, got {part!r}"
                        )
                    apps.append((name, int(ranks)))
                app_axis = tuple(apps)
            else:
                app_axis = ((args.app, args.ranks),)
            spec = SweepSpec(
                apps=app_axis,
                topologies=split(args.topologies),
                mappings=split(args.mappings),
                routings=split(args.routings),
                payloads=tuple(int(p) for p in split(args.payloads)),
                collectives=split(args.collectives),
                seed=args.seed,
            )
            resp = client.submit(spec_to_dict(spec))
            print(
                f"{resp['job']}: {resp['cells']} cells "
                f"({resp['collapsed']} collapsed)",
                file=sys.stderr if args.wait else sys.stdout,
            )
            if args.wait:
                return _stream_job(
                    args, analysis, client, resp["job"], want_results=True
                )
        elif args.command == "attach":
            return _stream_job(
                args, analysis, client, args.job, want_results=args.results
            )
        elif args.shutdown:
            client.shutdown()
            print("service stopping")
        elif args.cancel:
            summary = client.cancel(args.cancel)
            print(f"{summary['job']}: {summary['status']}")
        elif args.stats:
            import json as _json

            stats = client.stats()
            stats.pop("ok", None)
            print(_json.dumps(stats, indent=2, sort_keys=True))
        else:
            jobs = client.jobs()
            if not jobs:
                print("no jobs")
            for j in jobs:
                counts = j.get("counts", {})
                dedup = counts.get("dedup_warm", 0) + counts.get(
                    "dedup_inflight", 0
                )
                print(
                    f"{j['job']:<10} {j['status']:<10} "
                    f"{j['cells_done']:>5}/{j['cells_total']:<5} "
                    f"restored {counts.get('restored', 0):<4} "
                    f"dedup {dedup}"
                )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout closed early (e.g. piped through `head`) — not a failure.
        # Point stdout at devnull so the interpreter's exit-time flush of
        # the dead pipe doesn't print a spurious traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except OSError as exc:
        print(
            f"error: cannot reach sweep service at {socket_path}: {exc}",
            file=sys.stderr,
        )
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
