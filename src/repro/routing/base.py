"""The :class:`RoutingPolicy` interface.

A routing policy maps ``(topology, src, dst)`` batches to a
:class:`~repro.topology.base.RouteIncidence` — the same sparse pair→link
form the topologies' built-in deterministic routing produces — so every
downstream consumer (Eq. 5 utilization, link-load statistics, bandwidth
slack, both packet simulators) can swap policies without caring where the
routes came from.

Three orthogonal capabilities distinguish policies:

- **randomized** — route choice depends on the policy's ``seed`` (Valiant,
  UGAL, and ECMP's hash salt).  The seed participates in the policy's
  :meth:`~RoutingPolicy.cache_token`, so cached incidences of different
  seeds never alias.
- **load_aware** — route choice depends on the per-pair traffic weights
  (UGAL).  Callers pass ``pair_weights`` (bytes or packets per pair);
  non-adaptive policies ignore it.
- **specialization** — a policy that has no non-trivial definition on some
  topology (e.g. Valiant on a fat tree) falls back to that topology's
  minimal deterministic routes, so every policy is total over every
  topology and sweeps never hit holes.

Hop counts under a policy are derived, not separately modeled:
``hops_array`` counts each pair's incidence rows, which is exactly the
number of link traversals of the chosen route.
"""

from __future__ import annotations

import abc

import numpy as np

from ..topology.base import RouteIncidence, Topology

__all__ = ["RoutingPolicy"]


class RoutingPolicy(abc.ABC):
    """Strategy object turning node-pair batches into link-level routes."""

    #: Registry identifier ("minimal", "ecmp", "valiant", "dmodk", "ugal").
    name: str = "policy"

    #: True when the seed changes the routes (participates in cache keys).
    randomized: bool = False

    #: True when ``pair_weights`` changes the routes (participates in cache
    #: keys whenever weights are supplied).
    load_aware: bool = False

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def __repr__(self) -> str:
        if self.randomized:
            return f"{type(self).__name__}(seed={self.seed})"
        return f"{type(self).__name__}()"

    def cache_token(self) -> tuple:
        """Identity of this policy for route-incidence cache keys.

        Two policies with equal tokens must produce identical routes for
        identical ``(topology, src, dst, pair_weights)`` queries.  The seed
        is included only for randomized policies, so e.g. ``minimal`` with
        different seeds shares one cache entry.
        """
        if self.randomized:
            return (self.name, self.seed)
        return (self.name,)

    def _rng(self) -> np.random.Generator:
        """A fresh deterministic generator — one per routing query."""
        return np.random.default_rng(self.seed)

    @abc.abstractmethod
    def route_incidence(
        self,
        topology: Topology,
        src: np.ndarray,
        dst: np.ndarray,
        pair_weights: np.ndarray | None = None,
    ) -> RouteIncidence:
        """Every link on every pair's route under this policy.

        ``pair_weights`` (parallel to the pair arrays) is consulted only by
        load-aware policies; pass the per-pair byte or packet counts that
        will ride the routes.
        """

    def hops_array(
        self,
        topology: Topology,
        src: np.ndarray,
        dst: np.ndarray,
        pair_weights: np.ndarray | None = None,
    ) -> np.ndarray:
        """Link traversals per pair under this policy (0 for same-node)."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        inc = self.route_incidence(topology, src, dst, pair_weights=pair_weights)
        return np.bincount(inc.pair_index, minlength=len(src)).astype(np.int64)
