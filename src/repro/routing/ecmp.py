"""Deterministic hash-spread over equal-cost shortest paths (ECMP).

Real fabrics pick among equal-cost next hops by hashing the flow identity;
here the "flow" is the node pair, hashed with a splitmix64-style finalizer
salted by the policy seed.  The hash is a pure function of ``(src, dst,
seed)``, so routes are reproducible run to run and cache entries for
different seeds never alias (the seed participates in ``cache_token``).

Per topology the equal-cost set is:

- **fat tree** — the ``k * k`` upward lane combinations through the folded
  Clos; the hash picks ``(lane1, lane2)`` per pair via
  :meth:`FatTree.route_incidence_lanes`.
- **torus** — the six dimension-order permutations; every permutation walks
  the same per-dimension shortest deltas, so all are shortest paths
  (:meth:`Torus3D.route_incidence_ordered`).
- **dragonfly** — the minimal path is unique under the palm-tree layout
  (one global link per group pair, one gateway each side), so ECMP
  degenerates to minimal routing by construction.

Path *lengths* are untouched — ECMP only spreads load across the shortest
tier — so ``hops_array`` always matches minimal; a property test pins that.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..topology.base import RouteIncidence, Topology
from ..topology.fattree import FatTree
from ..topology.torus import Torus3D
from .base import RoutingPolicy

__all__ = ["ECMPRouting", "pair_hash"]

_DIM_ORDERS: tuple[tuple[int, int, int], ...] = tuple(
    itertools.permutations((0, 1, 2))
)


def pair_hash(src: np.ndarray, dst: np.ndarray, seed: int) -> np.ndarray:
    """Well-mixed uint64 per pair — splitmix64 finalizer over (src, dst, seed).

    uint64 arithmetic wraps silently in numpy, which is exactly the modular
    behavior the mixer needs.
    """
    x = (
        np.asarray(src, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)
        + np.asarray(dst, dtype=np.uint64) * np.uint64(0xC2B2AE3D27D4EB4F)
        + np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
    )
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x


class ECMPRouting(RoutingPolicy):
    """Hash-spread over equal-cost shortest paths; seed salts the hash."""

    name = "ecmp"
    randomized = True  # the salt changes the spread, so it keys the cache

    def route_incidence(
        self,
        topology: Topology,
        src: np.ndarray,
        dst: np.ndarray,
        pair_weights: np.ndarray | None = None,
    ) -> RouteIncidence:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if isinstance(topology, FatTree):
            h = pair_hash(src, dst, self.seed)
            k = np.uint64(topology.k)
            lane1 = (h % k).astype(np.int64)
            lane2 = ((h >> np.uint64(20)) % k).astype(np.int64)
            return topology.route_incidence_lanes(src, dst, lane1, lane2)
        if isinstance(topology, Torus3D):
            return self._torus_spread(topology, src, dst)
        # Dragonfly minimal paths are unique: nothing to spread over.
        return topology.route_incidence(src, dst)

    def _torus_spread(
        self, topology: Torus3D, src: np.ndarray, dst: np.ndarray
    ) -> RouteIncidence:
        choice = pair_hash(src, dst, self.seed) % np.uint64(len(_DIM_ORDERS))
        pair_chunks: list[np.ndarray] = []
        link_chunks: list[np.ndarray] = []
        pair_ids = np.arange(len(src), dtype=np.int64)
        for i, order in enumerate(_DIM_ORDERS):
            mask = choice == np.uint64(i)
            if not mask.any():
                continue
            sub = topology.route_incidence_ordered(src[mask], dst[mask], order)
            pair_chunks.append(pair_ids[mask][sub.pair_index])
            link_chunks.append(sub.link_id)
        if pair_chunks:
            return RouteIncidence(
                np.concatenate(pair_chunks), np.concatenate(link_chunks)
            )
        empty = np.zeros(0, dtype=np.int64)
        return RouteIncidence(empty, empty.copy())

    def hops_array(
        self,
        topology: Topology,
        src: np.ndarray,
        dst: np.ndarray,
        pair_weights: np.ndarray | None = None,
    ) -> np.ndarray:
        # ECMP only moves load between equal-cost paths; lengths are minimal.
        return topology.hops_array(src, dst)
