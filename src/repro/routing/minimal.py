"""The deterministic shortest-path policy — today's behavior, unchanged.

``minimal`` is a thin delegate to :meth:`Topology.route_incidence`, so the
routes (and everything computed from them) are bit-identical to calling the
topology directly.  It is the default policy everywhere, which is what keeps
Table 3, the Eq. 5 utilization figures, and the simulator makespans stable
while the routing axis exists.
"""

from __future__ import annotations

import numpy as np

from ..topology.base import RouteIncidence, Topology
from .base import RoutingPolicy

__all__ = ["MinimalRouting"]


class MinimalRouting(RoutingPolicy):
    """The topology's own deterministic shortest-path routes."""

    name = "minimal"

    def route_incidence(
        self,
        topology: Topology,
        src: np.ndarray,
        dst: np.ndarray,
        pair_weights: np.ndarray | None = None,
    ) -> RouteIncidence:
        return topology.route_incidence(src, dst)

    def hops_array(
        self,
        topology: Topology,
        src: np.ndarray,
        dst: np.ndarray,
        pair_weights: np.ndarray | None = None,
    ) -> np.ndarray:
        # The topologies' closed-form hop counts are much cheaper than
        # materializing routes; minimal is the one policy where they agree.
        return topology.hops_array(src, dst)
