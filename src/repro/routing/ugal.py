"""UGAL — Universal Globally-Adaptive Load-balanced routing (dragonfly).

UGAL sends each packet minimally when the minimal path is lightly loaded
and Valiant-style (through a random intermediate group) when it is not,
using the classic comparison

    ``min_hops * q_min  >  val_hops * q_val   =>  take the Valiant path``

where ``q`` is the congestion of the candidate path.  Hardware evaluates
``q`` from live channel queues; this offline engine evaluates it from the
*accumulated* link load of the traffic routed so far, processing pairs in
chunks so early placements steer later ones — a greedy batched analogue of
adaptive routing for a static traffic matrix.

Consequences of that model:

- the policy is **load-aware**: per-pair traffic weights (bytes/packets)
  change the placements, so supplied weights join the cache key;
- it is **randomized**: the Valiant candidate's intermediate groups come
  from the shared :meth:`Dragonfly.valiant_intermediate_groups` sampler
  under the policy seed;
- on an adversarial matrix (one hot group pair saturating its single
  global link) it spills traffic onto detour paths, beating minimal's max
  link load — the acceptance property pinned in ``tests/test_routing.py``.

Intra-group traffic stays minimal (it never touches global links, which is
what UGAL protects).  On non-dragonfly topologies — and on dragonflies too
small for an intermediate group — the policy degenerates to minimal.
"""

from __future__ import annotations

import numpy as np

from ..topology.base import RouteIncidence, Topology
from ..topology.dragonfly import Dragonfly
from .base import RoutingPolicy
from .valiant import _concat_subsets, dragonfly_valiant_cross

__all__ = ["UGALRouting"]


def _chunk_size(n: int) -> int:
    """About 32 adaptive rounds, clamped to [1, 1024] pairs per round.

    Small batches still get multiple rounds (so load genuinely accumulates
    between decisions) without degenerating into a per-pair python loop.
    """
    return max(1, min(1024, -(-n // 32)))


class UGALRouting(RoutingPolicy):
    """Per-pair minimal-vs-Valiant choice driven by accumulated link load."""

    name = "ugal"
    randomized = True
    load_aware = True

    def _initial_loads(self, topology: Topology) -> np.ndarray:
        """Link loads on the books before any traffic is routed.

        UGAL starts from an idle network; subclasses (the
        ``interference_aware`` policy) seed this with another tenant's
        traffic so the greedy pricing steers around it.
        """
        return np.zeros(topology.num_links, dtype=np.float64)

    def route_incidence(
        self,
        topology: Topology,
        src: np.ndarray,
        dst: np.ndarray,
        pair_weights: np.ndarray | None = None,
    ) -> RouteIncidence:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if not isinstance(topology, Dragonfly) or topology.num_groups < 3:
            return topology.route_incidence(src, dst)

        gs = topology.group_of(src)
        gd = topology.group_of(dst)
        cross = (src != dst) & (gs != gd)
        idx_cross = np.flatnonzero(cross)
        idx_rest = np.flatnonzero(~cross)
        inc_rest = topology.route_incidence(src[idx_rest], dst[idx_rest])
        if not len(idx_cross):
            return _concat_subsets(len(src), [(idx_rest, inc_rest)])

        if pair_weights is None:
            weights = np.ones(len(src), dtype=np.float64)
        else:
            weights = np.asarray(pair_weights, dtype=np.float64)
            if weights.shape != src.shape:
                raise ValueError(
                    f"pair_weights shape {weights.shape} != pairs {src.shape}"
                )

        # Intra-group traffic is routed unconditionally; its load is on the
        # books before any adaptive decision (it shares local links with
        # the detours UGAL considers).
        loads = self._initial_loads(topology)
        np.add.at(loads, inc_rest.link_id, weights[idx_rest][inc_rest.pair_index])

        # Both candidate paths for every cross-group pair, priced up front.
        sc, dc = src[idx_cross], dst[idx_cross]
        inc_min = topology.route_incidence(sc, dc)
        gi = topology.valiant_intermediate_groups(
            gs[idx_cross], gd[idx_cross], self._rng()
        )
        inc_val = dragonfly_valiant_cross(topology, sc, dc, gi)

        m = len(idx_cross)
        min_hops = np.bincount(inc_min.pair_index, minlength=m)
        val_hops = np.bincount(inc_val.pair_index, minlength=m)

        # Group candidate rows by pair so each chunk's rows are one slice.
        order_min = np.argsort(inc_min.pair_index, kind="stable")
        pmin, lmin = inc_min.pair_index[order_min], inc_min.link_id[order_min]
        order_val = np.argsort(inc_val.pair_index, kind="stable")
        pval, lval = inc_val.pair_index[order_val], inc_val.link_id[order_val]

        w_cross = weights[idx_cross]
        take_val = np.zeros(m, dtype=bool)
        step = _chunk_size(m)
        for lo in range(0, m, step):
            hi = min(lo + step, m)
            a_min, b_min = np.searchsorted(pmin, (lo, hi))
            a_val, b_val = np.searchsorted(pval, (lo, hi))
            pm, lm = pmin[a_min:b_min] - lo, lmin[a_min:b_min]
            pv, lv = pval[a_val:b_val] - lo, lval[a_val:b_val]

            q_min = np.zeros(hi - lo, dtype=np.float64)
            np.maximum.at(q_min, pm, loads[lm])
            q_val = np.zeros(hi - lo, dtype=np.float64)
            np.maximum.at(q_val, pv, loads[lv])

            chosen = min_hops[lo:hi] * q_min > val_hops[lo:hi] * q_val
            take_val[lo:hi] = chosen

            # Commit the chunk's traffic so later chunks see it.
            min_rows = ~chosen[pm]
            np.add.at(loads, lm[min_rows], w_cross[lo + pm[min_rows]])
            val_rows = chosen[pv]
            np.add.at(loads, lv[val_rows], w_cross[lo + pv[val_rows]])

        keep_min = ~take_val[inc_min.pair_index]
        keep_val = take_val[inc_val.pair_index]
        chosen_min = RouteIncidence(
            inc_min.pair_index[keep_min], inc_min.link_id[keep_min]
        )
        chosen_val = RouteIncidence(
            inc_val.pair_index[keep_val], inc_val.link_id[keep_val]
        )
        return _concat_subsets(
            len(src),
            [
                (idx_rest, inc_rest),
                (idx_cross, chosen_min),
                (idx_cross, chosen_val),
            ],
        )
