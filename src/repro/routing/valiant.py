"""Full-path Valiant (randomized non-minimal) routing.

Valiant's scheme routes every packet minimally to a uniformly random
*intermediate*, then minimally to its destination — trading path length for
provably balanced load on adversarial traffic.  This module upgrades the
hops-only surrogate :meth:`Dragonfly.valiant_hops` into actual link-level
routes:

- **dragonfly** — cross-group pairs detour through a random intermediate
  group drawn by :meth:`Dragonfly.valiant_intermediate_groups` — the *same
  sampler* ``valiant_hops`` uses, so for equal seeds the link-level hop
  counts here reproduce the surrogate exactly (pinned by an oracle test).
  The path is: inject, (local detour to the gateway), global link into the
  intermediate group, (local hop between the two gateways there), global
  link into the destination group, (local detour to the destination
  router), eject.  Intra-group pairs stay minimal, as in the surrogate.
  Dragonflies with fewer than three groups have no valid intermediate, so
  the policy falls back to minimal there.
- **torus** — each pair routes dimension-order to a uniformly random
  intermediate node, then dimension-order to the destination (the two legs
  concatenate into one walk).
- **fat tree** — routing "up to a random core switch, then down" is exactly
  a uniformly random choice of upward lanes, so Valiant here picks random
  ``(lane1, lane2)`` per pair; paths stay shortest (the fat tree's
  non-minimal tier does not exist in the folded-Clos model).

Each query draws from a fresh ``default_rng(seed)``, making routes a pure
function of ``(topology, src, dst, seed)`` — required for cache keying.
"""

from __future__ import annotations

import numpy as np

from ..topology.base import RouteIncidence, Topology
from ..topology.dragonfly import Dragonfly
from ..topology.fattree import FatTree
from ..topology.torus import Torus3D
from .base import RoutingPolicy

__all__ = ["ValiantRouting", "dragonfly_valiant_cross"]


def dragonfly_valiant_cross(
    topology: Dragonfly,
    src: np.ndarray,
    dst: np.ndarray,
    intermediate_groups: np.ndarray,
) -> RouteIncidence:
    """Link-level Valiant paths for *cross-group* pairs only.

    Every pair is assumed to cross groups, and every intermediate group is
    assumed to differ from both endpoint groups (the sampler guarantees
    this).  Shared by the Valiant policy and UGAL's non-minimal candidate
    leg, so both price exactly the same detour paths.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    gi = np.asarray(intermediate_groups, dtype=np.int64)
    gs = topology.group_of(src)
    gd = topology.group_of(dst)
    rs = topology.router_of(src)
    rd = topology.router_of(dst)
    gw1_src, gw1_mid = topology.gateway_routers(gs, gi)
    gw2_mid, gw2_dst = topology.gateway_routers(gi, gd)
    pair_ids = np.arange(len(src), dtype=np.int64)

    pair_chunks: list[np.ndarray] = []
    link_chunks: list[np.ndarray] = []

    def emit(mask: np.ndarray, links: np.ndarray) -> None:
        pair_chunks.append(pair_ids[mask])
        link_chunks.append(links)

    everyone = np.ones(len(src), dtype=bool)
    emit(everyone, src)  # injection node link
    emit(everyone, dst)  # ejection node link
    emit(everyone, topology._global_link_id(gs, gi))
    emit(everyone, topology._global_link_id(gi, gd))

    detour1 = rs != gw1_src
    if detour1.any():
        emit(
            detour1,
            topology._local_link_id(gs[detour1], rs[detour1], gw1_src[detour1]),
        )
    mid_hop = gw1_mid != gw2_mid
    if mid_hop.any():
        emit(
            mid_hop,
            topology._local_link_id(gi[mid_hop], gw1_mid[mid_hop], gw2_mid[mid_hop]),
        )
    detour2 = rd != gw2_dst
    if detour2.any():
        emit(
            detour2,
            topology._local_link_id(gd[detour2], rd[detour2], gw2_dst[detour2]),
        )
    return RouteIncidence(np.concatenate(pair_chunks), np.concatenate(link_chunks))


def _concat_subsets(
    n: int,
    parts: list[tuple[np.ndarray, RouteIncidence]],
) -> RouteIncidence:
    """Merge incidences computed over index subsets of an ``n``-pair batch."""
    pair_chunks = [idx[inc.pair_index] for idx, inc in parts if len(inc.pair_index)]
    link_chunks = [inc.link_id for _, inc in parts if len(inc.link_id)]
    if pair_chunks:
        return RouteIncidence(
            np.concatenate(pair_chunks), np.concatenate(link_chunks)
        )
    empty = np.zeros(0, dtype=np.int64)
    return RouteIncidence(empty, empty.copy())


class ValiantRouting(RoutingPolicy):
    """Minimal to a random intermediate, then minimal to the destination."""

    name = "valiant"
    randomized = True

    def route_incidence(
        self,
        topology: Topology,
        src: np.ndarray,
        dst: np.ndarray,
        pair_weights: np.ndarray | None = None,
    ) -> RouteIncidence:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if isinstance(topology, Dragonfly):
            return self._dragonfly(topology, src, dst)
        if isinstance(topology, Torus3D):
            return self._torus(topology, src, dst)
        if isinstance(topology, FatTree):
            rng = self._rng()
            k = topology.k
            return topology.route_incidence_lanes(
                src,
                dst,
                rng.integers(0, k, size=len(src)),
                rng.integers(0, k, size=len(src)),
            )
        return topology.route_incidence(src, dst)

    def _dragonfly(
        self, topology: Dragonfly, src: np.ndarray, dst: np.ndarray
    ) -> RouteIncidence:
        gs = topology.group_of(src)
        gd = topology.group_of(dst)
        cross = (src != dst) & (gs != gd)
        if topology.num_groups < 3 or not cross.any():
            # No valid intermediate group exists (or nothing crosses groups):
            # mirror valiant_hops, which leaves such traffic minimal and
            # draws nothing from the rng.
            return topology.route_incidence(src, dst)
        rng = self._rng()
        gi = topology.valiant_intermediate_groups(gs[cross], gd[cross], rng)
        idx_cross = np.flatnonzero(cross)
        idx_rest = np.flatnonzero(~cross)
        inc_cross = dragonfly_valiant_cross(
            topology, src[idx_cross], dst[idx_cross], gi
        )
        inc_rest = topology.route_incidence(src[idx_rest], dst[idx_rest])
        return _concat_subsets(
            len(src), [(idx_cross, inc_cross), (idx_rest, inc_rest)]
        )

    def _torus(
        self, topology: Torus3D, src: np.ndarray, dst: np.ndarray
    ) -> RouteIncidence:
        differ = src != dst
        idx = np.flatnonzero(differ)
        if not len(idx):
            empty = np.zeros(0, dtype=np.int64)
            return RouteIncidence(empty, empty.copy())
        rng = self._rng()
        mid = rng.integers(0, topology.num_nodes, size=len(idx))
        # Two dimension-order legs; sharing the intermediate node makes the
        # concatenation a single valid walk (legs may retrace links — that
        # is genuine Valiant behavior and each traversal carries load).
        leg1 = topology.route_incidence(src[idx], mid)
        leg2 = topology.route_incidence(mid, dst[idx])
        return _concat_subsets(len(src), [(idx, leg1), (idx, leg2)])
