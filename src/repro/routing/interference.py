"""Interference-aware routing: UGAL priced with a victim's traffic matrix.

De Sensi et al. (application-aware routing, PAPERS.md) show that a routing
policy which *knows* another tenant's traffic matrix can steer its own
traffic around the links that tenant depends on.  This policy is the
library's version of that idea, built entirely from the UGAL machinery:

- :func:`victim_link_loads` projects a victim's traffic matrix onto
  per-link loads (under any baseline policy, default minimal — the routes
  the victim's packets actually walk).
- :class:`InterferenceAwareRouting` subclasses UGAL and seeds its greedy
  load-pricing pass with those loads via
  :meth:`~repro.routing.ugal.UGALRouting._initial_loads`, so every
  minimal-vs-Valiant comparison sees the victim's links as already busy
  and detours traffic away from them.

Constructed bare (``get_policy("interference_aware")``, as sweep axes do)
the prior is empty and the policy is exactly UGAL.  The victim loads join
``cache_token()`` by content digest, preserving the route-cache contract
(equal tokens ⇒ identical routes).
"""

from __future__ import annotations

import numpy as np

from ..cache import array_digest, cached_route_incidence
from ..topology.base import Topology
from .ugal import UGALRouting

__all__ = ["InterferenceAwareRouting", "victim_link_loads"]


def victim_link_loads(
    matrix,
    topology: Topology,
    mapping=None,
    routing="minimal",
    routing_seed: int = 0,
    volume_scale: float = 1.0,
) -> np.ndarray:
    """Per-link loads a victim's traffic matrix induces, ``float64[num_links]``.

    Loads are in scaled-packet units — the same units the simulation's
    pair weights use under the same ``volume_scale`` — so an aggressor
    priced with them sees the victim's traffic at its true magnitude.
    """
    from ..mapping.base import Mapping

    if mapping is None:
        mapping = Mapping.consecutive(matrix.num_ranks, topology.num_nodes)
    src_n = mapping.node_of(matrix.src)
    dst_n = mapping.node_of(matrix.dst)
    crossing = src_n != dst_n
    src_n = src_n[crossing]
    dst_n = dst_n[crossing]
    loads = np.zeros(topology.num_links, dtype=np.float64)
    if not len(src_n):
        return loads
    packets = matrix.packets[crossing]
    scaled = np.maximum(packets // int(volume_scale), 1)
    inc = cached_route_incidence(
        topology,
        src_n,
        dst_n,
        routing=routing,
        seed=routing_seed,
        pair_weights=scaled,
    )
    np.add.at(loads, inc.link_id, scaled[inc.pair_index].astype(np.float64))
    return loads


class InterferenceAwareRouting(UGALRouting):
    """UGAL whose load-pricing pass starts from a victim's link loads."""

    name = "interference_aware"

    def __init__(self, seed: int = 0, victim_loads: np.ndarray | None = None) -> None:
        super().__init__(seed=seed)
        if victim_loads is None:
            self.victim_loads = None
        else:
            loads = np.asarray(victim_loads, dtype=np.float64)
            if loads.ndim != 1:
                raise ValueError("victim_loads must be a 1-D per-link array")
            if np.any(loads < 0):
                raise ValueError("victim_loads must be non-negative")
            self.victim_loads = loads

    def _initial_loads(self, topology: Topology) -> np.ndarray:
        if self.victim_loads is None:
            return super()._initial_loads(topology)
        if len(self.victim_loads) != topology.num_links:
            raise ValueError(
                f"victim_loads has {len(self.victim_loads)} entries but "
                f"{type(topology).__name__} has {topology.num_links} links"
            )
        # The pricing pass accumulates into this array; hand out a copy so
        # the prior survives across routing queries.
        return self.victim_loads.copy()

    def cache_token(self) -> tuple:
        if self.victim_loads is None:
            return (self.name, self.seed)
        return (self.name, self.seed, array_digest(self.victim_loads))
