"""Explicit destination-mod-k routing for fat trees.

D-mod-k picks the stage-1 upward lane as ``dst % k`` and the stage-2 lane
as ``(dst // k) % k`` — the classic deterministic fat-tree scheme that
perfectly spreads *all-to-one-free* traffic because every destination owns
a fixed path down from the core.  The fat tree's built-in deterministic
routing already is d-mod-k, so on fat trees this policy is bit-identical
to ``minimal`` (a property test pins that equivalence); it exists as a
named policy so sweeps can state the lane-selection rule explicitly and so
alternative fat-tree defaults could change underneath without silently
changing what "dmodk" means.

On topologies without lanes to select (torus, dragonfly) it degenerates to
minimal routing.
"""

from __future__ import annotations

import numpy as np

from ..topology.base import RouteIncidence, Topology
from ..topology.fattree import FatTree
from .base import RoutingPolicy

__all__ = ["DModKRouting"]


class DModKRouting(RoutingPolicy):
    """Destination-based up-lane selection on fat trees; minimal elsewhere."""

    name = "dmodk"

    def route_incidence(
        self,
        topology: Topology,
        src: np.ndarray,
        dst: np.ndarray,
        pair_weights: np.ndarray | None = None,
    ) -> RouteIncidence:
        if isinstance(topology, FatTree):
            dst = np.asarray(dst, dtype=np.int64)
            k = topology.k
            return topology.route_incidence_lanes(
                src, dst, dst % k, (dst // k) % k
            )
        return topology.route_incidence(src, dst)
