"""Structural validation of routes produced by any policy.

A :class:`~repro.topology.base.RouteIncidence` lists each route's links as
an unordered multiset (policies emit rows chunked by link type, not in
traversal order), so "is this a real path" cannot be checked by scanning
rows.  Instead we use the Eulerian-walk characterization: a multiset of
edges is traversable as a single walk from ``u`` to ``v`` iff

- the edges form one connected component,
- when ``u != v``: exactly ``u`` and ``v`` have odd degree,
- when ``u == v``: every vertex has even degree (and the route may also be
  empty — zero hops).

To apply it, each topology's opaque link IDs are decoded into their two
endpoint *vertices* (:func:`link_endpoints`): torus links join nodes
directly; fat tree links join nodes, leaf, mid, and top switches of the
folded Clos; dragonfly links join nodes and per-group routers (triangular
pair indices decoded via precomputed ``triu_indices`` tables).  Node
vertices reuse the node IDs, so a pair's walk endpoints are simply
``(src, dst)``.

This module exists for the test suite (property tests run every policy ×
topology pair through :func:`walks_are_valid`) but is importable product
code so ad-hoc debugging of a new policy can use it too.
"""

from __future__ import annotations

import numpy as np

from ..topology.base import RouteIncidence, Topology
from ..topology.dragonfly import Dragonfly
from ..topology.fattree import FatTree
from ..topology.torus import Torus3D

__all__ = ["link_endpoints", "walks_are_valid"]


def _triangular_pairs(n: int) -> tuple[np.ndarray, np.ndarray]:
    """(lo, hi) arrays indexed by the triangular pair index used for links."""
    lo, hi = np.triu_indices(n, k=1)
    return lo.astype(np.int64), hi.astype(np.int64)


def link_endpoints(
    topology: Topology, link_ids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Decode link IDs into their two endpoint vertex IDs.

    Vertex numbering (per topology instance): node vertices are the node
    IDs ``[0, N)``; switch/router vertices follow.  Raises for topology
    types without a decoder.
    """
    link_ids = np.asarray(link_ids, dtype=np.int64)
    if isinstance(topology, Torus3D):
        return _torus_endpoints(topology, link_ids)
    if isinstance(topology, FatTree):
        return _fattree_endpoints(topology, link_ids)
    if isinstance(topology, Dragonfly):
        return _dragonfly_endpoints(topology, link_ids)
    raise TypeError(f"no link decoder for topology {type(topology).__name__}")


def _torus_endpoints(
    t: Torus3D, link_ids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    # Link node*3+dim joins the owner to its +dim ring neighbour.
    owner, dim = np.divmod(link_ids, 3)
    coords = t.coordinates(owner)
    sizes = np.array(t.dims, dtype=np.int64)
    rows = np.arange(len(owner))
    coords[rows, dim] = (coords[rows, dim] + 1) % sizes[dim]
    neighbour = (coords[:, 0] * t.dims[1] + coords[:, 1]) * t.dims[2] + coords[:, 2]
    return owner, neighbour


def _fattree_endpoints(
    t: FatTree, link_ids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    # Vertices: nodes [0, N), leaves, then mid switches (pod, lane1), then
    # top switches (lane1, lane2).
    n = t.num_nodes
    leaf_v = n
    mid_v = leaf_v + t.num_leaves
    top_v = mid_v + t.num_pods * t.k

    u = np.empty(len(link_ids), dtype=np.int64)
    v = np.empty(len(link_ids), dtype=np.int64)

    node_l = link_ids < t._l1_base
    if node_l.any():
        nodes = link_ids[node_l]
        u[node_l] = nodes
        v[node_l] = leaf_v + t.leaf_of(nodes)

    l1 = (link_ids >= t._l1_base) & (link_ids < t._l2_base)
    if l1.any():
        leaf, lane1 = np.divmod(link_ids[l1] - t._l1_base, t.k)
        pod = leaf // t.k if t.stages >= 3 else np.zeros_like(leaf)
        u[l1] = leaf_v + leaf
        v[l1] = mid_v + pod * t.k + lane1

    l2 = link_ids >= t._l2_base
    if l2.any():
        pod_lane1, lane2 = np.divmod(link_ids[l2] - t._l2_base, t.k)
        pod, lane1 = np.divmod(pod_lane1, t.k)
        u[l2] = mid_v + pod * t.k + lane1
        v[l2] = top_v + lane1 * t.k + lane2
    return u, v


def _dragonfly_endpoints(
    t: Dragonfly, link_ids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    # Vertices: nodes [0, N), then routers numbered group * a + router.
    n = t.num_nodes
    router_v = n

    u = np.empty(len(link_ids), dtype=np.int64)
    v = np.empty(len(link_ids), dtype=np.int64)

    node_l = link_ids < t._local_base
    if node_l.any():
        nodes = link_ids[node_l]
        u[node_l] = nodes
        v[node_l] = router_v + t.group_of(nodes) * t.a + t.router_of(nodes)

    local = (link_ids >= t._local_base) & (link_ids < t._global_base)
    if local.any():
        group, tri = np.divmod(link_ids[local] - t._local_base, t._links_per_group)
        lo, hi = _triangular_pairs(t.a)
        u[local] = router_v + group * t.a + lo[tri]
        v[local] = router_v + group * t.a + hi[tri]

    glob = link_ids >= t._global_base
    if glob.any():
        tri = link_ids[glob] - t._global_base
        lo, hi = _triangular_pairs(t.num_groups)
        g1, g2 = lo[tri], hi[tri]
        r1, r2 = t.gateway_routers(g1, g2)
        u[glob] = router_v + g1 * t.a + r1
        v[glob] = router_v + g2 * t.a + r2
    return u, v


def _component_count(edges_u: np.ndarray, edges_v: np.ndarray) -> int:
    """Connected components among the vertices touched by the edges."""
    verts = np.unique(np.concatenate([edges_u, edges_v]))
    index = {int(x): i for i, x in enumerate(verts)}
    parent = list(range(len(verts)))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for a, b in zip(edges_u, edges_v):
        ra, rb = find(index[int(a)]), find(index[int(b)])
        if ra != rb:
            parent[ra] = rb
    return len({find(i) for i in range(len(verts))})


def walks_are_valid(
    topology: Topology,
    src: np.ndarray,
    dst: np.ndarray,
    inc: RouteIncidence,
) -> np.ndarray:
    """Per-pair boolean: do the pair's incidence rows form one walk src→dst?

    Zero rows are valid exactly when ``src == dst`` (the 0-hop convention).
    Uses the Eulerian-walk characterization described in the module
    docstring; pairs are checked independently.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    u, v = link_endpoints(topology, inc.link_id)

    order = np.argsort(inc.pair_index, kind="stable")
    pairs_sorted = inc.pair_index[order]
    u_sorted, v_sorted = u[order], v[order]
    bounds = np.searchsorted(pairs_sorted, np.arange(len(src) + 1))

    ok = np.empty(len(src), dtype=bool)
    for p in range(len(src)):
        a, b = bounds[p], bounds[p + 1]
        eu, ev = u_sorted[a:b], v_sorted[a:b]
        if a == b:
            ok[p] = src[p] == dst[p]
            continue
        degrees: dict[int, int] = {}
        for x in np.concatenate([eu, ev]):
            degrees[int(x)] = degrees.get(int(x), 0) + 1
        odd = {x for x, d in degrees.items() if d % 2}
        if src[p] == dst[p]:
            parity_ok = not odd
        else:
            parity_ok = odd == {int(src[p]), int(dst[p])}
        endpoints_touched = int(src[p]) in degrees and int(dst[p]) in degrees
        ok[p] = (
            parity_ok and endpoints_touched and _component_count(eu, ev) == 1
        )
    return ok
