"""Pluggable routing policies (see :mod:`repro.routing.base`).

The registry maps policy names to classes; :func:`get_policy` is the one
entry point the rest of the codebase uses::

    from repro.routing import get_policy
    inc = get_policy("valiant", seed=7).route_incidence(topology, src, dst)

``ROUTINGS`` lists every name, in the canonical order used by CLI choices,
sweep axes, and the routing benchmark.
"""

from __future__ import annotations

from .base import RoutingPolicy
from .dmodk import DModKRouting
from .ecmp import ECMPRouting
from .interference import InterferenceAwareRouting, victim_link_loads
from .minimal import MinimalRouting
from .ugal import UGALRouting
from .valiant import ValiantRouting

__all__ = [
    "ROUTINGS",
    "RoutingPolicy",
    "MinimalRouting",
    "ECMPRouting",
    "ValiantRouting",
    "DModKRouting",
    "UGALRouting",
    "InterferenceAwareRouting",
    "victim_link_loads",
    "get_policy",
]

_POLICIES: dict[str, type[RoutingPolicy]] = {
    cls.name: cls
    for cls in (
        MinimalRouting,
        ECMPRouting,
        ValiantRouting,
        DModKRouting,
        UGALRouting,
        InterferenceAwareRouting,
    )
}

#: Canonical policy names (CLI choices, sweep axes, benchmarks).
ROUTINGS: tuple[str, ...] = tuple(_POLICIES)


def get_policy(routing: str | RoutingPolicy, seed: int = 0) -> RoutingPolicy:
    """Resolve a policy name (or pass an instance through).

    ``seed`` only matters for randomized policies; instances are returned
    as-is so callers can pre-configure one and hand it around.
    """
    if isinstance(routing, RoutingPolicy):
        return routing
    try:
        cls = _POLICIES[routing]
    except KeyError:
        known = ", ".join(ROUTINGS)
        raise ValueError(f"unknown routing policy {routing!r} (known: {known})")
    return cls(seed=seed)
