"""Performance benchmarks behind ``repro bench`` (pipeline and routing).

Times the cold trace-generation and matrix-construction stages of the
largest study configurations on both front-end paths — the legacy per-event
implementation (``columnar=False``) and the columnar EventBlock path — and
records the results in ``BENCH_pipeline.json``.  Stage attribution reuses
:mod:`repro.timings`: ``generate_trace`` charges the ``trace`` stage and
``matrix_from_trace`` the ``matrix`` stage, so the numbers here are exactly
what ``repro --timings`` reports.

The mapping section times the vectorized :mod:`repro.mapping.optimized`
kernels against their pinned ``*_reference`` implementations on the largest
all-collective workload (densest traffic graph).

Machine-dependent wall times are recorded for provenance; the stable,
asserted quantity (see ``benchmarks/test_perf_pipeline.py``) is the
*speedup ratio* between the two paths on the same machine.

``repro bench routing`` (:func:`run_routing_bench`, recorded in
``BENCH_routing.json``) measures route-construction throughput of every
:mod:`repro.routing` policy on the paper's 1728-rank topologies, plus the
memoization speedup of re-querying one batch through
:func:`repro.cache.cached_route_incidence`.  Again only ratios are asserted
(``benchmarks/test_perf_routing.py``): each policy's slowdown relative to
minimal routing on the same machine, and the cache's warm/cold ratio.

``repro bench scale`` (:func:`run_scale_bench`, recorded in
``BENCH_scale.json``) gates the out-of-core streaming pipeline: a
262,144-rank ``ScaleHalo3D`` trace is streamed through
:func:`repro.comm.matrix.matrix_from_stream` and the §4.1.1 locality
metrics in a *fresh subprocess* (``ru_maxrss`` is a process-lifetime
high-water mark), and the asserted quantity
(``benchmarks/test_perf_scale.py``) is measured peak RSS over the fixed
:data:`SCALE_RSS_BUDGET_MB` budget — a memory ratio, stable across
machines in a way wall times are not.

``repro bench collectives`` (:func:`run_collectives_bench`, recorded in
``BENCH_collectives.json``) pins the pluggable collective-algorithm
engines: the flat engine (the paper's collective->p2p expansion) must stay
bit-identical to the pre-engine default on every registry app, and the
binomial engine must produce a measurable locality delta versus flat on a
collective-heavy workload.  Both gates are deterministic structural
comparisons (``benchmarks/test_perf_collectives.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

import numpy as np

from . import timings

__all__ = [
    "run_pipeline_bench",
    "write_pipeline_bench",
    "render_pipeline_bench",
    "run_routing_bench",
    "write_routing_bench",
    "render_routing_bench",
    "run_telemetry_bench",
    "write_telemetry_bench",
    "render_telemetry_bench",
    "run_scale_pipeline",
    "run_scale_bench",
    "write_scale_bench",
    "render_scale_bench",
    "sweep_bench_spec",
    "run_sweep_bench",
    "write_sweep_bench",
    "render_sweep_bench",
    "run_tenancy_bench",
    "write_tenancy_bench",
    "render_tenancy_bench",
    "run_critpath_bench",
    "write_critpath_bench",
    "render_critpath_bench",
    "run_collectives_bench",
    "write_collectives_bench",
    "render_collectives_bench",
]

#: The asserted floor on the cold front-end (trace + matrix) speedup.
FRONT_END_TARGET = 5.0

#: The asserted ceiling on any policy's slowdown over minimal routing, and
#: the floor on the incidence cache's warm/cold speedup (ratio assertions
#: only — wall times are provenance, never compared across machines).
ROUTING_SLOWDOWN_CEILING = 200.0
CACHE_SPEEDUP_TARGET = 5.0

#: ``repro bench telemetry`` ceilings (benchmarks/test_perf_telemetry.py):
#: a disabled (null) collector must be free, and full windowed collection
#: must stay a small fraction of the batched kernel's runtime.
TELEMETRY_NULL_OVERHEAD_CEILING = 1.05
TELEMETRY_WINDOWED_OVERHEAD_CEILING = 1.20

#: ``repro bench scale``: the default rank count and the hard peak-RSS
#: budget the streaming pipeline must fit in at that scale.  The asserted
#: gate is ``peak_rss_mb / SCALE_RSS_BUDGET_MB <= 1.0``.
SCALE_RANKS = 262_144
SCALE_RSS_BUDGET_MB = 2048.0

#: ``repro bench sweep`` (benchmarks/test_perf_sweep.py): the asserted
#: floor on the sharded service's warm speedup over a cold *serial* run of
#: the reference grid, plus the scheduler comparison — cache-affinity
#: scheduling must beat random scheduling on worker warm-hit rate.  Both
#: are same-machine ratios; wall times are provenance only.
SWEEP_WARM_SPEEDUP_TARGET = 5.0
SWEEP_WORKERS = 2

#: The reference grid: six study apps at their largest common scales,
#: crossed with every topology, three mappings, two payloads, and two
#: routing policies — 216 cells, heavy on the shared intermediates the
#: service's cache affinity is supposed to monetize.
SWEEP_BENCH_APPS = (
    ("LULESH", 512),
    ("AMG", 216),
    ("BigFFT", 1024),
    ("Nekbone", 256),
    ("CMC_2D", 256),
    ("MOCFE", 256),
)

#: ``repro bench tenancy`` (benchmarks/test_perf_tenancy.py): the asserted
#: floor on how much ``interference_aware`` routing must cut the victim's
#: peak link load versus minimal routing under a hot-spot aggressor, plus
#: the hard requirement that a composed single-job/no-noise run stays
#: bit-identical to the solo run on both engines.  The reduction is a
#: structural (route-count) ratio — deterministic, no wall times involved.
TENANCY_VICTIM_LOAD_REDUCTION_TARGET = 2.0
TENANCY_VOLUME_SCALE = 64.0
TENANCY_MAX_PACKETS = 5_000_000

#: ``repro bench critpath`` (benchmarks/test_perf_critpath.py): the
#: asserted floor on the vectorized FIFO matcher's speedup over the pinned
#: per-event oracle on the exactly-expanded 1728-rank AMG trace — with the
#: hard requirement that both produce bit-identical (send, recv, bytes)
#: edge sets — and the ceiling on the relative disagreement between the
#: algebraic dT/dL (L-terms on the critical path) and a forward finite
#: difference, per registry app.  With the dyadic default LogGP parameters
#: the disagreement is exactly zero; 1% is the documented tolerance for
#: arbitrary parameters.
CRITPATH_MATCH_SPEEDUP_TARGET = 5.0
CRITPATH_SENSITIVITY_REL_TOL = 0.01
CRITPATH_MATCH_WORKLOAD = ("AMG", 1728)

#: ``repro bench collectives`` (benchmarks/test_perf_collectives.py): the
#: flat engine must reproduce today's matrices *bit-identically* on every
#: registry app — both against the parameterless default
#: (``matrix_from_trace(trace)``) and across the two independent expansion
#: paths (columnar batch fast path vs per-event ``iter_send_groups``).
#: The delta gate then requires a measurable locality difference between
#: flat and binomial expansion on a collective-heavy workload: binomial
#: point-to-point stages must inflate collective bytes by at least
#: :data:`COLLECTIVES_BYTES_RATIO_FLOOR` while shifting average packet
#: hops by at least :data:`COLLECTIVES_HOPS_DELTA_FLOOR` (relative) —
#: both structural, deterministic ratios; wall times are provenance only.
COLLECTIVES_DELTA_WORKLOAD = ("CMC_2D", 64)
COLLECTIVES_BYTES_RATIO_FLOOR = 1.5
COLLECTIVES_HOPS_DELTA_FLOOR = 0.10


def _stage_seconds() -> dict[str, float]:
    snap = timings.as_dict()
    return {name: vals["seconds"] for name, vals in snap.items()}


def _timed_front_end(name: str, ranks: int, columnar: bool) -> dict[str, float]:
    """Cold generate + matrix builds of one configuration on one path.

    Matches what a Table-3 row consumes from the front-end: the trace, the
    p2p-only matrix (§5 metrics), and the full matrix (topology analyses).
    """
    from .apps import get_app
    from .comm.matrix import matrix_from_trace

    was_enabled = timings.enabled()
    timings.enable(reset_counters=True)
    try:
        with timings.stage("trace"):
            trace = get_app(name).generate(ranks, columnar=columnar)
        matrix_from_trace(trace, include_collectives=False)
        matrix = matrix_from_trace(trace)
        cold = _stage_seconds()

        t0 = time.perf_counter()
        matrix_from_trace(trace)
        warm_matrix = time.perf_counter() - t0
    finally:
        if not was_enabled:
            timings.disable()
    return {
        "trace_s": round(cold.get("trace", 0.0), 4),
        "matrix_s": round(cold.get("matrix", 0.0), 4),
        "front_end_s": round(cold.get("trace", 0.0) + cold.get("matrix", 0.0), 4),
        "warm_matrix_s": round(warm_matrix, 4),
        "pairs": matrix.num_pairs,
    }


def _mapping_bench(name: str, ranks: int) -> dict[str, Any]:
    from .apps import get_app
    from .comm.matrix import matrix_from_trace
    from .mapping.base import Mapping
    from .mapping.optimized import (
        _greedy_ordering_reference,
        _refine_mapping_reference,
        greedy_ordering,
        refine_mapping,
    )
    from .topology.fattree import FatTree

    matrix = matrix_from_trace(get_app(name).generate(ranks))
    topology = FatTree(radix=64, stages=2)
    base = Mapping.consecutive(ranks, topology.num_nodes, 1)

    t0 = time.perf_counter()
    order_fast = greedy_ordering(matrix)
    greedy_vec = time.perf_counter() - t0
    t0 = time.perf_counter()
    order_ref = _greedy_ordering_reference(matrix)
    greedy_ref = time.perf_counter() - t0

    t0 = time.perf_counter()
    refined_fast = refine_mapping(matrix, topology, base)
    refine_vec = time.perf_counter() - t0
    t0 = time.perf_counter()
    refined_ref = _refine_mapping_reference(matrix, topology, base)
    refine_ref = time.perf_counter() - t0

    assert np.array_equal(order_fast, order_ref)
    assert np.array_equal(refined_fast.nodes, refined_ref.nodes)
    return {
        "config": f"{name}@{ranks}",
        "greedy_reference_s": round(greedy_ref, 4),
        "greedy_vectorized_s": round(greedy_vec, 4),
        "greedy_speedup": round(greedy_ref / greedy_vec, 2),
        "refine_reference_s": round(refine_ref, 4),
        "refine_vectorized_s": round(refine_vec, 4),
        "refine_speedup": round(refine_ref / refine_vec, 2),
    }


def run_pipeline_bench(
    min_ranks: int = 1000, mapping: bool = True
) -> dict[str, Any]:
    """Benchmark every configuration with at least ``min_ranks`` ranks."""
    from .apps import app_names, get_app

    configs: dict[str, Any] = {}
    speedups: list[float] = []
    for name in app_names():
        for ranks in get_app(name).scales():
            if ranks < min_ranks:
                continue
            legacy = _timed_front_end(name, ranks, columnar=False)
            columnar = _timed_front_end(name, ranks, columnar=True)
            speedup = round(legacy["front_end_s"] / columnar["front_end_s"], 2)
            speedups.append(speedup)
            configs[f"{name}@{ranks}"] = {
                "legacy": legacy,
                "columnar": columnar,
                "front_end_speedup": speedup,
            }

    result: dict[str, Any] = {
        "front_end": configs,
        "summary": {
            "min_ranks": min_ranks,
            "configs": len(configs),
            "min_front_end_speedup": min(speedups) if speedups else None,
            "geomean_front_end_speedup": (
                round(float(np.exp(np.mean(np.log(speedups)))), 2)
                if speedups
                else None
            ),
            "target": FRONT_END_TARGET,
        },
    }
    if mapping:
        # Densest traffic graph in the study: the all-collective 3D FFT.
        result["mapping"] = _mapping_bench("BigFFT", 1024)
    return result


def run_routing_bench(
    ranks: int = 1728, pairs: int = 100_000, seed: int = 0
) -> dict[str, Any]:
    """Route-construction throughput of every policy at the 1728-rank scale.

    One batch of ``pairs`` random node pairs per topology, routed once per
    policy (load-aware policies see uniform unit weights); plus a cold/warm
    pass through :func:`repro.cache.cached_route_incidence` on the minimal
    policy to measure the memoization speedup the pipeline relies on.
    """
    from . import cache
    from .routing import ROUTINGS, get_policy
    from .topology.configs import config_for

    cfg = config_for(ranks)
    topologies = {
        "torus3d": cfg.build_torus(),
        "fattree": cfg.build_fat_tree(),
        "dragonfly": cfg.build_dragonfly(),
    }
    rng = np.random.default_rng(seed)
    per_topology: dict[str, Any] = {}
    slowdowns: dict[str, list[float]] = {name: [] for name in ROUTINGS}
    for kind, topology in topologies.items():
        src = rng.integers(0, topology.num_nodes, size=pairs)
        dst = rng.integers(0, topology.num_nodes, size=pairs)
        entry: dict[str, Any] = {}
        for name in ROUTINGS:
            policy = get_policy(name, seed=seed)
            t0 = time.perf_counter()
            inc = policy.route_incidence(topology, src, dst)
            dt = time.perf_counter() - t0
            entry[name] = {
                "seconds": round(dt, 4),
                "pairs_per_s": round(pairs / dt) if dt else None,
                "incidence_rows": inc.num_incidences,
                "mean_hops": round(inc.num_incidences / pairs, 3),
            }
        for name in ROUTINGS:
            slowdowns[name].append(
                entry[name]["seconds"] / max(entry["minimal"]["seconds"], 1e-9)
            )
        per_topology[kind] = entry

    # Warm/cold memoization ratio, measured in a clean in-memory cache.
    topology = topologies["torus3d"]
    src = rng.integers(0, topology.num_nodes, size=pairs)
    dst = rng.integers(0, topology.num_nodes, size=pairs)
    cache.clear(memory=True)
    t0 = time.perf_counter()
    cache.cached_route_incidence(topology, src, dst)
    cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    cache.cached_route_incidence(topology, src, dst)
    warm = time.perf_counter() - t0
    cache_speedup = round(cold / max(warm, 1e-9), 1)

    return {
        "routing": per_topology,
        "summary": {
            "ranks": ranks,
            "pairs": pairs,
            "seed": seed,
            "slowdown_vs_minimal": {
                name: round(float(np.exp(np.mean(np.log(vals)))), 2)
                for name, vals in slowdowns.items()
            },
            "slowdown_ceiling": ROUTING_SLOWDOWN_CEILING,
            "cache_cold_s": round(cold, 4),
            "cache_warm_s": round(warm, 6),
            "cache_speedup": cache_speedup,
            "cache_speedup_target": CACHE_SPEEDUP_TARGET,
        },
    }


def run_telemetry_bench(
    num_pairs: int = 2_000,
    packets_per_pair: int = 250,
    execution_time: float = 1.1e-3,
    seed: int = 7,
    windows: int = 48,
    repeats: int = 6,
) -> dict[str, Any]:
    """Telemetry overhead on the 500k-packet dragonfly simulation, plus the
    adversarial minimal-vs-adaptive congestion comparison.

    The overhead section times the batched kernel three ways over the same
    prepared setup — no collector, :class:`~repro.telemetry.NullCollector`,
    and a full :class:`~repro.telemetry.WindowedCollector` — and reports
    each collector's median per-round ratio against the bare run over
    ``repeats`` rotated-order rounds (see the in-function comment for
    why that estimator).  The congestion section
    replays the hot-group traffic pattern per routing policy and records
    each policy's congestion-region summary.
    """
    from .comm.matrix import CommMatrixBuilder
    from .sim.common import prepare_simulation
    from .sim.engine import run_batched
    from .telemetry import (
        NullCollector,
        TelemetryConfig,
        WindowedCollector,
        adversarial_hot_group_matrix,
        congestion_by_routing,
    )
    from .topology.dragonfly import Dragonfly

    topo = Dragonfly(8, 4, 4)
    rng = np.random.default_rng(0)
    builder = CommMatrixBuilder(topo.num_nodes)
    src = rng.integers(0, topo.num_nodes, num_pairs)
    dst = (src + rng.integers(1, topo.num_nodes, num_pairs)) % topo.num_nodes
    packets = np.full(num_pairs, packets_per_pair, dtype=np.int64)
    builder.add_arrays(src, dst, packets * 4096, packets, packets)
    setup = prepare_simulation(
        builder.finalize(),
        topo,
        execution_time=execution_time,
        seed=seed,
        max_packets=2_000_000,
    )

    config = TelemetryConfig(windows=windows)

    # The asserted quantities are *ratios* against the bare kernel, and
    # machine-load noise (multi-second spikes, turbo decay) dwarfs the
    # effect under test, so the estimator is built to cancel it twice
    # over: each round times all three configurations back to back and
    # contributes one per-round ratio (a load spike covers the whole
    # round and divides out), the in-round order rotates (so no
    # configuration systematically sits in the slow late slot), and the
    # reported overhead is the median over rounds (a spike straddling a
    # round boundary spoils at most the rounds it touches).
    makers = [lambda: None, NullCollector, lambda: WindowedCollector(config)]
    samples = [[], [], []]
    for r in range(repeats):
        for i in range(len(makers)):
            i = (i + r) % len(makers)
            t0 = time.perf_counter()
            run_batched(setup, collector=makers[i]())
            samples[i].append(time.perf_counter() - t0)
    bare, null, windowed = (np.asarray(s) for s in samples)
    bare_s, null_s, windowed_s = bare.min(), null.min(), windowed.min()
    null_overhead = float(np.median(null / bare))
    windowed_overhead = float(np.median(windowed / bare))

    result = run_batched(setup, collector=WindowedCollector(config))
    report = result.telemetry

    adversarial_topo = Dragonfly(4, 2, 2)
    matrix = adversarial_hot_group_matrix(adversarial_topo, packets_per_pair=40)
    congestion = congestion_by_routing(
        matrix,
        adversarial_topo,
        routings=("minimal", "valiant", "ugal"),
        execution_time=2e-3,
        threshold=0.4,
        windows=24,
        seed=seed,
    )

    return {
        "overhead": {
            "topology": "Dragonfly(8,4,4)",
            "packets": setup.total_packets,
            "packet_hops": setup.total_hops,
            "windows": windows,
            "bare_s": round(bare_s, 4),
            "null_s": round(null_s, 4),
            "windowed_s": round(windowed_s, 4),
            "null_overhead": round(null_overhead, 4),
            "windowed_overhead": round(windowed_overhead, 4),
            "null_ceiling": TELEMETRY_NULL_OVERHEAD_CEILING,
            "windowed_ceiling": TELEMETRY_WINDOWED_OVERHEAD_CEILING,
            "peak_window_occupancy": round(report.peak_occupancy, 4),
            "services_recorded": int(report.serve_series.sum()),
        },
        "congestion": congestion,
    }


def write_telemetry_bench(path: str | Path, data: dict[str, Any]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def render_telemetry_bench(data: dict[str, Any]) -> str:
    o = data["overhead"]
    lines = [
        f"telemetry overhead on {o['topology']} "
        f"({o['packets']} packets, {o['windows']} windows)",
        f"  bare kernel:        {o['bare_s']:.3f}s",
        f"  null collector:     {o['null_s']:.3f}s "
        f"({o['null_overhead']:.3f}x, ceiling {o['null_ceiling']}x)",
        f"  windowed collector: {o['windowed_s']:.3f}s "
        f"({o['windowed_overhead']:.3f}x, ceiling {o['windowed_ceiling']}x)",
        "",
        "adversarial hot-group congestion (Dragonfly(4,2,2)):",
        f"{'routing':<10} {'peak occ':>9} {'regions':>8} "
        f"{'peak links':>11} {'longest(s)':>11} {'hot win':>8}",
    ]
    for rec in data["congestion"]:
        lines.append(
            f"{rec['routing']:<10} {rec['peak_window_occupancy']:>9.3f} "
            f"{rec['num_regions']:>8} {rec['peak_region_links']:>11} "
            f"{rec['longest_region_s']:>11.2e} {rec['hot_windows']:>8}"
        )
    return "\n".join(lines)


def write_routing_bench(path: str | Path, data: dict[str, Any]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def render_routing_bench(data: dict[str, Any]) -> str:
    policies = list(data["summary"]["slowdown_vs_minimal"])
    header = f"{'topology':<12}" + "".join(f"{p:>12}" for p in policies)
    lines = [header + "   (pairs/s)"]
    for kind, entry in data["routing"].items():
        cells = "".join(
            f"{entry[p]['pairs_per_s']:>12,}".replace(",", " ")
            if entry[p]["pairs_per_s"]
            else f"{'n/a':>12}"
            for p in policies
        )
        lines.append(f"{kind:<12}{cells}")
    summary = data["summary"]
    slow = ", ".join(
        f"{name} {value}x"
        for name, value in summary["slowdown_vs_minimal"].items()
        if name != "minimal"
    )
    lines.append(
        f"geomean slowdown vs minimal: {slow} "
        f"(ceiling {summary['slowdown_ceiling']}x)"
    )
    lines.append(
        f"incidence cache warm/cold speedup: {summary['cache_speedup']}x "
        f"(target >= {summary['cache_speedup_target']}x)"
    )
    return "\n".join(lines)


def write_pipeline_bench(path: str | Path, data: dict[str, Any]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def render_pipeline_bench(data: dict[str, Any]) -> str:
    lines = [
        f"{'config':<24} {'legacy(s)':>10} {'columnar(s)':>12} {'speedup':>8}"
    ]
    for label, entry in data["front_end"].items():
        lines.append(
            f"{label:<24} {entry['legacy']['front_end_s']:>10.3f} "
            f"{entry['columnar']['front_end_s']:>12.3f} "
            f"{entry['front_end_speedup']:>7.1f}x"
        )
    summary = data["summary"]
    lines.append(
        f"min speedup {summary['min_front_end_speedup']}x "
        f"(target >= {summary['target']}x), "
        f"geomean {summary['geomean_front_end_speedup']}x"
    )
    if "mapping" in data:
        m = data["mapping"]
        lines.append(
            f"mapping {m['config']}: greedy {m['greedy_speedup']}x, "
            f"refine {m['refine_speedup']}x vs reference"
        )
    return "\n".join(lines)


def run_scale_pipeline(
    app: str = "ScaleHalo3D",
    ranks: int = SCALE_RANKS,
    chunk_bytes: int | None = None,
) -> dict[str, Any]:
    """Streaming trace -> matrix -> locality pipeline in the current process.

    The trace is never materialized: the generator's plan is emitted in
    bounded :class:`~repro.core.blocks.EventBlock` chunks, collectives are
    expanded chunk by chunk, and the traffic matrix accumulates with
    periodic compaction.  The returned ``peak_rss_mb`` is this process's
    *lifetime* high-water mark, so it only measures the pipeline when
    nothing heavier ran first — :func:`run_scale_bench` therefore calls
    this through a fresh subprocess.
    """
    from .apps import stream_trace
    from .comm.matrix import matrix_from_stream
    from .core.stream import DEFAULT_CHUNK_BYTES, BlockStream
    from .metrics.locality import rank_distance, rank_locality
    from .metrics.peers import peers_per_rank

    if chunk_bytes is None:
        chunk_bytes = DEFAULT_CHUNK_BYTES
    counts = {"rows": 0, "chunks": 0}

    t0 = time.perf_counter()
    stream = stream_trace(app, ranks, chunk_bytes=chunk_bytes)

    def counted():
        for block in stream:
            counts["rows"] += len(block)
            counts["chunks"] += 1
            yield block

    matrix = matrix_from_stream(
        BlockStream(
            stream.meta,
            counted,
            datatypes=stream.datatypes,
            communicators=stream.communicators,
        )
    )
    front_end_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    distance = rank_distance(matrix)
    locality = rank_locality(matrix)
    avg_peers = float(peers_per_rank(matrix).mean())
    locality_s = time.perf_counter() - t0

    peak = timings.peak_rss_bytes()
    return {
        "app": app,
        "ranks": ranks,
        "chunk_bytes": int(chunk_bytes),
        "rows": counts["rows"],
        "chunks": counts["chunks"],
        "pairs": matrix.num_pairs,
        "front_end_s": round(front_end_s, 4),
        "locality_s": round(locality_s, 4),
        "rank_distance_90": round(float(distance), 4),
        "rank_locality": round(float(locality), 6),
        "avg_peers": round(avg_peers, 4),
        "peak_rss_mb": (
            round(peak / (1024 * 1024), 1) if peak is not None else None
        ),
    }


def run_scale_bench(
    ranks: int = SCALE_RANKS,
    chunk_mb: float = 8.0,
    budget_mb: float = SCALE_RSS_BUDGET_MB,
    rlimit_gb: float | None = None,
    app: str = "ScaleHalo3D",
) -> dict[str, Any]:
    """Measure the streaming pipeline's peak RSS in a fresh subprocess.

    ``ru_maxrss`` never goes down, so a clean measurement needs an
    interpreter that has run nothing but the pipeline.  ``rlimit_gb``
    additionally applies a hard ``RLIMIT_AS`` cap inside the child (the CI
    ``scale-smoke`` job uses this), so a memory regression aborts loudly
    instead of silently paging.  The asserted, machine-portable quantity
    is ``rss_ratio`` — measured peak RSS over the fixed budget.
    """
    import os
    import subprocess
    import sys

    from .apps import get_app

    # Fail eagerly (KeyError -> the CLI's one-line user-error path) rather
    # than as a subprocess traceback.
    get_app(app).calibration_for(ranks)
    cfg = {"app": app, "ranks": ranks, "chunk_bytes": int(chunk_mb * 1024 * 1024)}
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (str(Path(__file__).resolve().parents[1]), env.get("PYTHONPATH"))
        if p
    )
    preamble = ""
    if rlimit_gb is not None:
        lim = int(rlimit_gb * (1 << 30))
        preamble = (
            "import resource\n"
            f"resource.setrlimit(resource.RLIMIT_AS, ({lim}, {lim}))\n"
        )
    code = (
        "import json, sys\n"
        + preamble
        + "from repro.bench import run_scale_pipeline\n"
        "json.dump(run_scale_pipeline(**json.loads(sys.argv[1])), sys.stdout)\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code, json.dumps(cfg)],
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        tail = proc.stderr.strip().splitlines()[-8:]
        raise RuntimeError(
            f"scale pipeline subprocess failed (exit {proc.returncode}"
            + (f", RLIMIT_AS {rlimit_gb} GB" if rlimit_gb is not None else "")
            + "):\n" + "\n".join(tail)
        )
    child = json.loads(proc.stdout)
    peak = child["peak_rss_mb"]
    return {
        "scale": child,
        "summary": {
            "ranks": ranks,
            "chunk_mb": chunk_mb,
            "budget_mb": budget_mb,
            "rlimit_gb": rlimit_gb,
            "peak_rss_mb": peak,
            "rss_ratio": (
                round(peak / budget_mb, 4) if peak is not None else None
            ),
            "rss_ratio_ceiling": 1.0,
            "rows_per_s": (
                round(child["rows"] / child["front_end_s"])
                if child["front_end_s"]
                else None
            ),
        },
    }


def sweep_bench_spec():
    """The reference sweep grid (216 cells) shared by bench and CI smoke."""
    from .analysis.sweep import SweepSpec

    return SweepSpec(
        apps=SWEEP_BENCH_APPS,
        topologies=("fattree", "torus3d", "dragonfly"),
        mappings=("consecutive", "greedy", "bisection"),
        payloads=(1024, 4096),
        routings=("minimal", "ecmp"),
    )


def _cold_serial_sweep(spec, cache_dir: Path) -> dict[str, Any]:
    """Cold serial baseline in a *fresh subprocess*.

    The measurement must run in an interpreter whose memory cache has never
    seen the grid — running it here would warm this process, and the
    service's fork-started workers would inherit that warmth, corrupting
    the comparison.  The subprocess populates ``cache_dir``'s disk tier,
    so the service runs that follow measure the steady-state (disk-warm,
    memory-cold) resubmission path.
    """
    import os
    import subprocess
    import sys

    from .service.cells import spec_to_dict

    cfg = {"spec": spec_to_dict(spec), "cache_dir": str(cache_dir)}
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (str(Path(__file__).resolve().parents[1]), env.get("PYTHONPATH"))
        if p
    )
    code = (
        "import json, sys, time\n"
        "cfg = json.loads(sys.argv[1])\n"
        "from repro import cache\n"
        "cache.configure(disk_dir=cfg['cache_dir'])\n"
        "from repro.analysis.sweep import run_sweep\n"
        "from repro.service.cells import spec_from_dict\n"
        "spec = spec_from_dict(cfg['spec'])\n"
        "t0 = time.perf_counter()\n"
        "records = run_sweep(spec)\n"
        "json.dump({'seconds': time.perf_counter() - t0,"
        " 'records': records}, sys.stdout)\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code, json.dumps(cfg)],
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        tail = proc.stderr.strip().splitlines()[-8:]
        raise RuntimeError(
            f"cold serial sweep subprocess failed (exit {proc.returncode}):\n"
            + "\n".join(tail)
        )
    return json.loads(proc.stdout)


def _cache_totals(stats: dict[str, Any]) -> dict[str, int]:
    totals = {"hits": 0, "misses": 0, "disk_hits": 0}
    for region in stats["cache"].values():
        for field in totals:
            totals[field] += region.get(field, 0)
    return totals


def _service_sweep(
    spec, warm_spec, state_dir: Path, cache_dir: Path, scheduler: str,
    workers: int
) -> tuple[dict[str, Any], list[dict], list[dict]]:
    """One prime + warm service run; returns (summary, prime, warm records).

    The *prime* job runs ``spec`` on freshly started (memory-cold) workers
    and is not the measured quantity — it is the first sweep of a study,
    after which the service's whole point is that the workers stay resident
    with their caches hot.  The *measured* job runs ``warm_spec`` — the
    same grid with a shifted bandwidth axis, so every cell key is new and
    every cell is recomputed, but each worker's in-memory trace / matrix /
    mapping / incidence entries are exactly the ones affinity scheduling
    kept it fed with.  Cache counters are deltas over the measured job
    only.
    """
    import asyncio

    from .service.cells import spec_to_dict
    from .service.server import SweepService

    spec_dict = spec_to_dict(spec)
    warm_dict = spec_to_dict(warm_spec)

    async def _run():
        svc = SweepService(
            state_dir, workers=workers, scheduler=scheduler, cache_dir=cache_dir
        )
        await svc.start()
        try:
            t0 = time.perf_counter()
            prime = svc.submit(spec_dict)["job"]
            if await svc.wait(prime) != "done":
                raise RuntimeError("bench prime job failed")
            prime_seconds = time.perf_counter() - t0
            prime_records = svc.results(prime)
            before = svc.stats()

            t0 = time.perf_counter()
            job = svc.submit(warm_dict)["job"]
            status = await svc.wait(job)
            seconds = time.perf_counter() - t0
            if status != "done":
                raise RuntimeError(f"bench warm job finished {status!r}")
            return (
                prime_records,
                prime_seconds,
                svc.results(job),
                before,
                svc.stats(),
                seconds,
            )
        finally:
            await svc.stop()

    prime_records, prime_seconds, records, before, after, seconds = (
        asyncio.run(_run())
    )
    b, a = _cache_totals(before), _cache_totals(after)
    warm_cache = {field: a[field] - b[field] for field in a}
    lookups = warm_cache["hits"] + warm_cache["misses"]
    mode = {
        "scheduler": scheduler,
        "prime_seconds": round(prime_seconds, 3),
        "seconds": round(seconds, 3),
        "hit_rate": (
            round(warm_cache["hits"] / lookups, 4) if lookups else None
        ),
        "cache": warm_cache,
        "cells_computed": (
            after["counts"]["cells_computed"]
            - before["counts"]["cells_computed"]
        ),
        "cell_seconds": round(after["cell_seconds"] - before["cell_seconds"], 3),
        "respawns": after["respawns"],
    }
    return mode, prime_records, records


def run_sweep_bench(
    state_dir: str | Path | None = None, workers: int = SWEEP_WORKERS
) -> dict[str, Any]:
    """Cold serial vs warm sharded service on the reference grid.

    The baseline is a cold serial ``run_sweep`` in a fresh subprocess (it
    also warms the shared disk tier).  Then, per scheduler mode — affinity,
    then random — a :class:`~repro.service.server.SweepService` primes its
    resident workers with the same grid and is *measured* on the
    resubmit-with-a-tweak workflow the service exists for: the grid with a
    shifted bandwidth axis, where every cell recomputes but the workers'
    memory caches are hot.  Asserted quantities
    (``benchmarks/test_perf_sweep.py``): ``warm_speedup`` ≥
    :data:`SWEEP_WARM_SPEEDUP_TARGET`, affinity's warm-hit rate above
    random's, and record identity — each mode's prime job must match the
    cold serial records exactly, and the two modes' warm jobs must match
    each other (scheduling must never change values).
    """
    import dataclasses
    import shutil
    import tempfile

    owns_state = state_dir is None
    if owns_state:
        state_dir = tempfile.mkdtemp(prefix="repro-bench-sweep-")
    state = Path(state_dir)
    cache_dir = state / "cache"
    cache_dir.mkdir(parents=True, exist_ok=True)
    spec = sweep_bench_spec()
    # Half the paper bandwidth: new cell keys, identical intermediates.
    warm_spec = dataclasses.replace(spec, bandwidths=(6e9,))
    try:
        cold = _cold_serial_sweep(spec, cache_dir)
        affinity, affinity_prime, affinity_warm = _service_sweep(
            spec, warm_spec, state / "affinity", cache_dir, "affinity", workers
        )
        random_mode, random_prime, random_warm = _service_sweep(
            spec, warm_spec, state / "random", cache_dir, "random", workers
        )
    finally:
        if owns_state:
            shutil.rmtree(state, ignore_errors=True)

    records_identical = (
        affinity_prime == cold["records"]
        and random_prime == cold["records"]
        and affinity_warm == random_warm
    )
    warm_speedup = cold["seconds"] / max(affinity["seconds"], 1e-9)
    return {
        "modes": {"affinity": affinity, "random": random_mode},
        "summary": {
            "cells": len(spec.points()),
            "apps": len(spec.apps),
            "workers": workers,
            "cold_serial_s": round(cold["seconds"], 3),
            "warm_affinity_s": affinity["seconds"],
            "warm_random_s": random_mode["seconds"],
            "warm_speedup": round(warm_speedup, 2),
            "warm_speedup_target": SWEEP_WARM_SPEEDUP_TARGET,
            "affinity_hit_rate": affinity["hit_rate"],
            "random_hit_rate": random_mode["hit_rate"],
            "affinity_beats_random": (
                affinity["hit_rate"] is not None
                and random_mode["hit_rate"] is not None
                and affinity["hit_rate"] > random_mode["hit_rate"]
            ),
            "records_identical": records_identical,
        },
    }


def write_sweep_bench(path: str | Path, data: dict[str, Any]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def render_sweep_bench(data: dict[str, Any]) -> str:
    s = data["summary"]
    lines = [
        f"sharded sweep service on the {s['cells']}-cell reference grid "
        f"({s['workers']} workers)",
        f"  cold serial (subprocess):  {s['cold_serial_s']:>8.2f}s",
    ]
    for name, label in (("affinity", "warm affinity"), ("random", "warm random")):
        mode = data["modes"][name]
        lines.append(
            f"  {label + ':':<26} {mode['seconds']:>8.2f}s   "
            f"hit rate {mode['hit_rate']:.4f}   "
            f"(hits {mode['cache']['hits']}, misses {mode['cache']['misses']}, "
            f"disk {mode['cache']['disk_hits']}, "
            f"prime {mode['prime_seconds']:.2f}s)"
        )
    lines.append(
        f"  warm speedup: {s['warm_speedup']}x "
        f"(target >= {s['warm_speedup_target']}x)   "
        f"affinity beats random: {s['affinity_beats_random']}   "
        f"records identical: {s['records_identical']}"
    )
    return "\n".join(lines)


def write_scale_bench(path: str | Path, data: dict[str, Any]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def render_scale_bench(data: dict[str, Any]) -> str:
    s = data["scale"]
    summary = data["summary"]
    chunk_mb = s["chunk_bytes"] / (1024 * 1024)
    rlimit = (
        f"RLIMIT_AS {summary['rlimit_gb']} GB"
        if summary["rlimit_gb"] is not None
        else "none"
    )
    peak = (
        f"{summary['peak_rss_mb']:.1f} MB"
        if summary["peak_rss_mb"] is not None
        else "n/a"
    )
    ratio = (
        f"{summary['rss_ratio']:.3f}"
        if summary["rss_ratio"] is not None
        else "n/a"
    )
    return "\n".join(
        [
            f"streaming scale pipeline: {s['app']}@{s['ranks']} "
            f"(chunks of {chunk_mb:.1f} MB, rlimit {rlimit})",
            f"  rows streamed: {s['rows']:,} in {s['chunks']} chunks "
            f"({summary['rows_per_s']:,} rows/s)".replace(",", " "),
            f"  matrix pairs:  {s['pairs']:,}".replace(",", " "),
            f"  front end:     {s['front_end_s']:.3f}s   "
            f"locality: {s['locality_s']:.3f}s",
            f"  rank distance (90%): {s['rank_distance_90']}   "
            f"locality: {s['rank_locality']}   "
            f"avg peers: {s['avg_peers']:.2f}",
            f"  peak RSS:      {peak} of {summary['budget_mb']:.0f} MB budget "
            f"(ratio {ratio}, ceiling {summary['rss_ratio_ceiling']})",
        ]
    )

def run_tenancy_bench() -> dict[str, Any]:
    """Multi-tenant gates: interference-aware routing and solo identity.

    Gate 1 (victim-load reduction): a LULESH victim shares a dragonfly
    with a deliberately hostile :class:`~repro.apps.noise.HotspotNoise`
    aggressor flooding 16 targets.  The victim's peak exposed link load
    (max total services over links its routes traverse) is measured under
    minimal routing and under ``interference_aware`` routing primed with
    the victim's own structural loads.  Asserted
    (``benchmarks/test_perf_tenancy.py``):
    ``baseline / aware >= TENANCY_VICTIM_LOAD_REDUCTION_TARGET``.  Both
    numbers are structural route counts — deterministic on every machine.

    Gate 2 (solo identity): composing a single job with zero noise must be
    bit-identical to the solo run — the trace itself, every compared
    simulation observable, per-link serve counts, and the windowed
    telemetry report, on both engines.
    """
    from .apps.noise import HotspotNoise
    from .apps.registry import generate_trace
    from .comm.matrix import matrix_from_trace
    from .routing import InterferenceAwareRouting, victim_link_loads
    from .sim.common import prepare_simulation
    from .sim.engine import simulate_network
    from .telemetry import TelemetryConfig
    from .telemetry.collector import reports_equal
    from .tenancy import TenantSpec, compose_workload, victim_peak_link_load
    from .topology.dragonfly import Dragonfly
    from .topology.configs import config_for
    from .validation.invariants import traces_identical

    # --- gate 1: hot-spot aggressor on a dragonfly --------------------
    topo = Dragonfly(8, 4, 4)
    aggressor = HotspotNoise(hot_ranks=16, src_ranks=16, volume_mb=16384.0)
    t0 = time.perf_counter()
    workload = compose_workload(
        [TenantSpec("LULESH", 512)],
        noise=[TenantSpec(aggressor, topo.num_nodes - 512)],
        allocation="round_robin",
    )
    victim = workload.app_job_ids()[0]
    matrix = matrix_from_trace(workload.trace)
    common = dict(
        execution_time=workload.trace.meta.execution_time,
        volume_scale=TENANCY_VOLUME_SCALE,
        max_packets=TENANCY_MAX_PACKETS,
        job_of_rank=workload.job_of_rank,
    )
    base = prepare_simulation(matrix, topo, routing="minimal", **common)
    baseline_peak = victim_peak_link_load(base, victim)
    prior = victim_link_loads(
        workload.job_matrix(matrix, victim),
        topo,
        volume_scale=TENANCY_VOLUME_SCALE,
    )
    aware = prepare_simulation(
        matrix,
        topo,
        routing=InterferenceAwareRouting(victim_loads=prior),
        **common,
    )
    aware_peak = victim_peak_link_load(aware, victim)
    gate1_s = time.perf_counter() - t0
    reduction = baseline_peak / aware_peak if aware_peak > 0 else float("inf")

    # --- gate 2: composed single job == solo run, both engines --------
    t0 = time.perf_counter()
    solo_trace = generate_trace("LULESH", 64)
    composed = compose_workload([TenantSpec("LULESH", 64)])
    trace_identical = traces_identical(composed.trace, solo_trace)
    torus = config_for(64).build_torus()
    solo_matrix = matrix_from_trace(solo_trace)
    composed_matrix = matrix_from_trace(composed.trace)
    engines = {}
    for engine in ("batched", "reference"):
        # volume_scale keeps the reference engine's event loop tractable;
        # identity must hold at every scale, so checking one is enough.
        kwargs = dict(
            execution_time=solo_trace.meta.execution_time,
            volume_scale=32.0,
            telemetry=TelemetryConfig(windows=16),
            engine=engine,
        )
        solo = simulate_network(solo_matrix, torus, **kwargs)
        both = simulate_network(
            composed_matrix, torus, job_of_rank=composed.job_of_rank, **kwargs
        )
        engines[engine] = {
            "results_equal": bool(solo == both),
            "serve_counts_equal": bool(
                np.array_equal(solo.link_serve_counts, both.link_serve_counts)
            ),
            "telemetry_equal": bool(
                reports_equal(solo.telemetry, both.telemetry)
            ),
            "packets": solo.packets_simulated,
        }
    gate2_s = time.perf_counter() - t0
    identical = trace_identical and all(
        e["results_equal"] and e["serve_counts_equal"] and e["telemetry_equal"]
        for e in engines.values()
    )

    return {
        "scenario": {
            "topology": repr(topo),
            "victim": "LULESH@512",
            "aggressor": f"HotspotNoise@{topo.num_nodes - 512} "
            "(hot_ranks=16, src_ranks=16, volume_mb=16384)",
            "allocation": "round_robin",
            "volume_scale": TENANCY_VOLUME_SCALE,
            "packets": base.total_packets,
            "gate1_seconds": round(gate1_s, 3),
            "gate2_seconds": round(gate2_s, 3),
        },
        "identity": {"trace_identical": trace_identical, "engines": engines},
        "summary": {
            "victim_peak_load_minimal": baseline_peak,
            "victim_peak_load_aware": aware_peak,
            "victim_load_reduction": round(reduction, 2),
            "victim_load_reduction_target": TENANCY_VICTIM_LOAD_REDUCTION_TARGET,
            "reduction_ok": reduction >= TENANCY_VICTIM_LOAD_REDUCTION_TARGET,
            "solo_identity_ok": identical,
        },
    }


def write_tenancy_bench(path: str | Path, data: dict[str, Any]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def render_tenancy_bench(data: dict[str, Any]) -> str:
    s = data["summary"]
    sc = data["scenario"]
    lines = [
        f"multi-tenant gates: {sc['victim']} vs {sc['aggressor']}",
        f"  topology {sc['topology']} ({sc['allocation']} allocation, "
        f"{sc['packets']} scaled packets)",
        f"  victim peak link load:  minimal {s['victim_peak_load_minimal']:.0f}"
        f"   interference_aware {s['victim_peak_load_aware']:.0f}",
        f"  reduction: {s['victim_load_reduction']}x "
        f"(target >= {s['victim_load_reduction_target']}x)   "
        f"ok: {s['reduction_ok']}",
        f"  solo identity (1 job, no noise, both engines): "
        f"{s['solo_identity_ok']}",
    ]
    return "\n".join(lines)


def run_critpath_bench() -> dict[str, Any]:
    """Critical-path gates: matcher speedup and sensitivity cross-check.

    Gate 1 (matcher): the 1728-rank AMG trace (with emitted receives,
    exact repeat expansion — ~5M p2p events) is matched by the vectorized
    channel-sort matcher and by the pinned per-event FIFO oracle.
    Asserted (``benchmarks/test_perf_critpath.py``): bit-identical
    (send, recv, bytes) edge arrays, and
    ``oracle_s / vectorized_s >= CRITPATH_MATCH_SPEEDUP_TARGET``.

    Gate 2 (sensitivity): every registry app's smallest configuration is
    analyzed on a torus with the finite-difference cross-check enabled;
    the asserted quantity is the maximum relative disagreement between the
    algebraic L-term count and the forward difference —
    deterministic (exactly zero with the dyadic defaults), no wall times.
    """
    from .apps.registry import generate_trace
    from .critpath import latency_table
    from .critpath.match import (
        ensure_receives,
        expand_events,
        match_events,
        match_events_oracle,
    )

    # --- gate 1: vectorized matcher vs per-event oracle ---------------
    app, ranks = CRITPATH_MATCH_WORKLOAD
    trace = ensure_receives(generate_trace(app, ranks, emit_receives=True))
    t0 = time.perf_counter()
    table = expand_events(trace, None)
    expand_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    vectorized = match_events(table)
    vectorized_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    oracle = match_events_oracle(table)
    oracle_s = time.perf_counter() - t0
    identical = bool(
        np.array_equal(vectorized.send_event, oracle.send_event)
        and np.array_equal(vectorized.recv_event, oracle.recv_event)
        and np.array_equal(vectorized.nbytes, oracle.nbytes)
    )
    speedup = oracle_s / vectorized_s if vectorized_s > 0 else float("inf")

    # --- gate 2: algebraic vs finite-difference dT/dL per app ---------
    t0 = time.perf_counter()
    rows = latency_table(fd_check=True)
    table_s = time.perf_counter() - t0
    apps = [
        {
            "app": r.app,
            "ranks": r.ranks,
            "nodes": r.nodes,
            "edges": r.edges,
            "makespan_s": r.makespan_s,
            "l_terms": r.l_terms,
            "fd_sensitivity": r.fd_sensitivity,
            "rel_err": r.fd_rel_err,
            "tolerance_us": round(r.tolerance_s * 1e6, 4),
        }
        for r in rows
    ]
    max_rel_err = max(r.fd_rel_err for r in rows)

    return {
        "matcher": {
            "workload": f"{app}@{ranks}",
            "events": len(table),
            "pairs": len(vectorized),
            "expand_seconds": round(expand_s, 4),
            "vectorized_seconds": round(vectorized_s, 4),
            "oracle_seconds": round(oracle_s, 4),
        },
        "sensitivity": {"apps": apps, "table_seconds": round(table_s, 3)},
        "summary": {
            "match_speedup": round(speedup, 2),
            "match_speedup_target": CRITPATH_MATCH_SPEEDUP_TARGET,
            "match_ok": identical
            and speedup >= CRITPATH_MATCH_SPEEDUP_TARGET,
            "edges_identical": identical,
            "sensitivity_max_rel_err": max_rel_err,
            "sensitivity_rel_tol": CRITPATH_SENSITIVITY_REL_TOL,
            "sensitivity_ok": max_rel_err <= CRITPATH_SENSITIVITY_REL_TOL,
        },
    }


def write_critpath_bench(path: str | Path, data: dict[str, Any]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def render_critpath_bench(data: dict[str, Any]) -> str:
    m = data["matcher"]
    s = data["summary"]
    lines = [
        f"critical-path gates: FIFO matcher on {m['workload']} "
        f"({m['events']} events, {m['pairs']} matched pairs)",
        f"  vectorized {m['vectorized_seconds']:.3f}s   "
        f"oracle {m['oracle_seconds']:.3f}s   "
        f"speedup {s['match_speedup']}x "
        f"(target >= {s['match_speedup_target']}x)",
        f"  edge sets bit-identical: {s['edges_identical']}   "
        f"ok: {s['match_ok']}",
        f"  dT/dL cross-check over {len(data['sensitivity']['apps'])} apps: "
        f"max rel err {s['sensitivity_max_rel_err']:.2e} "
        f"(tol {s['sensitivity_rel_tol']})   ok: {s['sensitivity_ok']}",
    ]
    return "\n".join(lines)


def run_collectives_bench() -> dict[str, Any]:
    """Collective-engine gates: flat-identity pin and tree locality delta.

    Gate 1 (identity): for every registry app's smallest configuration,
    the flat engine's matrix must be bit-identical to the parameterless
    default ``matrix_from_trace(trace)`` (the pre-engine behavior is the
    pinned baseline) *and* to a matrix rebuilt through the independent
    per-event path (``iter_send_groups`` feeding
    ``CommMatrixBuilder.add_group``) — two code paths, one answer.

    Gate 2 (delta): on :data:`COLLECTIVES_DELTA_WORKLOAD` the binomial
    engine must measurably change network locality versus flat: expanded
    collective bytes grow by >= :data:`COLLECTIVES_BYTES_RATIO_FLOOR` and
    torus average hops move by >= :data:`COLLECTIVES_HOPS_DELTA_FLOOR`
    relative.  Both are deterministic structural ratios
    (``benchmarks/test_perf_collectives.py``); seconds are provenance.
    """
    from .apps.registry import iter_configurations
    from .cache import cached_trace
    from .collectives import collective_volume, iter_send_groups
    from .comm.matrix import CommMatrixBuilder, matrix_from_trace
    from .model.engine import analyze_network
    from .topology.configs import config_for
    from .validation.invariants import matrices_identical

    # --- gate 1: flat engine bit-identical on every registry app ------
    smallest: dict[str, int] = {}
    for app, point in iter_configurations():
        if point.variant:
            continue
        if app.name not in smallest or point.ranks < smallest[app.name]:
            smallest[app.name] = point.ranks
    apps = []
    t0 = time.perf_counter()
    for name in sorted(smallest):
        ranks = smallest[name]
        trace = cached_trace(name, ranks)
        default = matrix_from_trace(trace)
        flat = matrix_from_trace(trace, collective="flat")
        builder = CommMatrixBuilder(trace.meta.num_ranks)
        for classified in iter_send_groups(trace):
            builder.add_group(classified.group)
        per_event = builder.finalize()
        apps.append(
            {
                "workload": f"{name}@{ranks}",
                "pairs": len(flat.src),
                "total_bytes": int(flat.total_bytes),
                "default_identical": matrices_identical(flat, default),
                "per_event_identical": matrices_identical(flat, per_event),
            }
        )
    identity_s = time.perf_counter() - t0
    flat_identity_ok = all(
        a["default_identical"] and a["per_event_identical"] for a in apps
    )

    # --- gate 2: flat vs binomial locality delta ----------------------
    app, ranks = COLLECTIVES_DELTA_WORKLOAD
    trace = cached_trace(app, ranks)
    topology = config_for(ranks).build_torus()
    t0 = time.perf_counter()
    engines = {}
    for algo in ("flat", "binomial"):
        matrix = matrix_from_trace(trace, collective=algo)
        analysis = analyze_network(
            matrix, topology, execution_time=trace.meta.execution_time
        )
        engines[algo] = {
            "collective_bytes": int(collective_volume(trace, collective=algo)),
            "total_bytes": int(matrix.total_bytes),
            "avg_hops": round(analysis.avg_hops, 6),
            "packet_hops": int(analysis.packet_hops),
            "wire_bytes": int(analysis.wire_bytes),
        }
    delta_s = time.perf_counter() - t0
    bytes_ratio = (
        engines["binomial"]["collective_bytes"]
        / engines["flat"]["collective_bytes"]
    )
    hops_delta = abs(
        engines["binomial"]["avg_hops"] / engines["flat"]["avg_hops"] - 1.0
    )

    return {
        "identity": {
            "apps": apps,
            "identity_seconds": round(identity_s, 3),
        },
        "delta": {
            "workload": f"{app}@{ranks}",
            "topology": "torus3d",
            "engines": engines,
            "delta_seconds": round(delta_s, 3),
        },
        "summary": {
            "flat_identity_ok": flat_identity_ok,
            "apps_checked": len(apps),
            "bytes_ratio": round(bytes_ratio, 4),
            "bytes_ratio_floor": COLLECTIVES_BYTES_RATIO_FLOOR,
            "bytes_ratio_ok": bytes_ratio >= COLLECTIVES_BYTES_RATIO_FLOOR,
            "hops_delta_rel": round(hops_delta, 4),
            "hops_delta_floor": COLLECTIVES_HOPS_DELTA_FLOOR,
            "hops_delta_ok": hops_delta >= COLLECTIVES_HOPS_DELTA_FLOOR,
        },
    }


def write_collectives_bench(path: str | Path, data: dict[str, Any]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def render_collectives_bench(data: dict[str, Any]) -> str:
    s = data["summary"]
    d = data["delta"]
    flat = d["engines"]["flat"]
    binom = d["engines"]["binomial"]
    lines = [
        f"collective-engine gates: flat identity over "
        f"{s['apps_checked']} apps "
        f"({data['identity']['identity_seconds']:.1f}s)   "
        f"ok: {s['flat_identity_ok']}",
        f"  delta on {d['workload']} ({d['topology']}): "
        f"collective bytes {flat['collective_bytes']} -> "
        f"{binom['collective_bytes']} "
        f"(ratio {s['bytes_ratio']}x, floor {s['bytes_ratio_floor']}x)   "
        f"ok: {s['bytes_ratio_ok']}",
        f"  avg hops {flat['avg_hops']:.3f} -> {binom['avg_hops']:.3f} "
        f"(rel delta {s['hops_delta_rel']}, "
        f"floor {s['hops_delta_floor']})   ok: {s['hops_delta_ok']}",
    ]
    return "\n".join(lines)
