"""Generic parameter-sweep harness.

The paper's evaluation is one fixed grid (41 configurations x 3
topologies).  Downstream users usually want *their own* grid — a different
payload, a different bandwidth, an optimized mapping, a custom topology
size.  ``run_sweep`` crosses any subset of those axes and returns flat
records (compatible with :mod:`repro.analysis.export`), so custom studies
are a few lines:

    from repro.analysis.sweep import SweepSpec, run_sweep
    records = run_sweep(SweepSpec(
        apps=[("LULESH", 64), ("AMG", 216)],
        topologies=("torus3d", "fattree"),
        mappings=("consecutive", "bisection"),
        payloads=(1024, 4096),
    ))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..apps.registry import generate_trace
from ..comm.matrix import matrix_from_trace
from ..mapping.base import Mapping
from ..mapping.optimized import optimize_mapping
from ..model.engine import BANDWIDTH_BYTES_PER_S, analyze_network
from ..topology.configs import config_for

__all__ = ["SweepSpec", "run_sweep"]

_TOPOLOGY_BUILDERS = {
    "torus3d": lambda cfg: cfg.build_torus(),
    "fattree": lambda cfg: cfg.build_fat_tree(),
    "dragonfly": lambda cfg: cfg.build_dragonfly(),
}

_MAPPING_METHODS = ("consecutive", "random", "greedy", "spectral", "bisection")


@dataclass(frozen=True)
class SweepSpec:
    """The axes of one sweep.

    ``apps`` are (name, ranks) pairs; the other axes cross-product against
    them.  ``include_collectives`` mirrors the §5 (False) vs §6 (True)
    analysis modes.
    """

    apps: tuple[tuple[str, int], ...] = (("LULESH", 64),)
    topologies: tuple[str, ...] = ("torus3d", "fattree", "dragonfly")
    mappings: tuple[str, ...] = ("consecutive",)
    payloads: tuple[int, ...] = (4096,)
    bandwidths: tuple[float, ...] = (BANDWIDTH_BYTES_PER_S,)
    include_collectives: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.apps:
            raise ValueError("sweep needs at least one (app, ranks) pair")
        unknown = set(self.topologies) - set(_TOPOLOGY_BUILDERS)
        if unknown:
            raise ValueError(f"unknown topologies {sorted(unknown)}")
        unknown = set(self.mappings) - set(_MAPPING_METHODS)
        if unknown:
            raise ValueError(f"unknown mapping methods {sorted(unknown)}")
        if any(p <= 0 for p in self.payloads):
            raise ValueError("payloads must be positive")
        if any(b <= 0 for b in self.bandwidths):
            raise ValueError("bandwidths must be positive")

    @property
    def num_points(self) -> int:
        return (
            len(self.apps)
            * len(self.topologies)
            * len(self.mappings)
            * len(self.payloads)
            * len(self.bandwidths)
        )


def _build_mapping(method: str, matrix, topology, seed: int) -> Mapping:
    if method == "random":
        return Mapping.random(matrix.num_ranks, topology.num_nodes, seed=seed)
    return optimize_mapping(matrix, topology, method=method, seed=seed)


def run_sweep(spec: SweepSpec) -> list[dict[str, Any]]:
    """Evaluate every sweep point; one flat record per point.

    Traces and per-payload matrices are cached across the grid so each
    (app, payload) combination is built once.
    """
    records: list[dict[str, Any]] = []
    trace_cache: dict[tuple[str, int], Any] = {}
    matrix_cache: dict[tuple[str, int, int], Any] = {}

    for app, ranks in spec.apps:
        key = (app, ranks)
        if key not in trace_cache:
            trace_cache[key] = generate_trace(app, ranks, seed=spec.seed)
        trace = trace_cache[key]
        cfg = config_for(ranks)

        for payload in spec.payloads:
            mkey = (app, ranks, payload)
            if mkey not in matrix_cache:
                matrix_cache[mkey] = matrix_from_trace(
                    trace,
                    include_collectives=spec.include_collectives,
                    payload=payload,
                )
            matrix = matrix_cache[mkey]

            for topo_kind in spec.topologies:
                topology = _TOPOLOGY_BUILDERS[topo_kind](cfg)
                for mapping_method in spec.mappings:
                    mapping = _build_mapping(
                        mapping_method, matrix, topology, spec.seed
                    )
                    for bandwidth in spec.bandwidths:
                        result = analyze_network(
                            matrix,
                            topology,
                            mapping=mapping,
                            execution_time=trace.meta.execution_time,
                            bandwidth=bandwidth,
                            payload=payload,
                        )
                        records.append(
                            {
                                "app": app,
                                "ranks": ranks,
                                "topology": topo_kind,
                                "mapping": mapping_method,
                                "payload": payload,
                                "bandwidth": bandwidth,
                                "packet_hops": result.packet_hops,
                                "avg_hops": round(result.avg_hops, 4),
                                "utilization_percent": round(
                                    result.utilization_percent, 6
                                ),
                                "used_links": result.used_links,
                            }
                        )
    return records
