"""Generic parameter-sweep harness.

The paper's evaluation is one fixed grid (41 configurations x 3
topologies).  Downstream users usually want *their own* grid — a different
payload, a different bandwidth, an optimized mapping, a custom topology
size.  ``run_sweep`` crosses any subset of those axes and returns flat
records (compatible with :mod:`repro.analysis.export`), so custom studies
are a few lines:

    from repro.analysis.sweep import SweepSpec, run_sweep
    records = run_sweep(SweepSpec(
        apps=[("LULESH", 64), ("AMG", 216)],
        topologies=("torus3d", "fattree"),
        mappings=("consecutive", "bisection"),
        payloads=(1024, 4096),
    ), workers=4)

Traces, matrices, and route incidences are memoized through
:mod:`repro.cache`, so repeated sweeps (and the many points sharing one
app/payload) rebuild nothing.  ``workers=N`` evaluates grid points in
``N`` processes; records are returned in the same deterministic order —
and with identical values — as the sequential run, because every point is
a pure function of the spec.  Points are dispatched in contiguous chunks
so each worker's process-local cache still gets within-app hits.
"""

from __future__ import annotations

import logging
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable

from ..cache import cached_mapping, cached_matrix, cached_trace
from ..collectives.registry import COLLECTIVES
from ..mapping.base import Mapping
from ..model.engine import BANDWIDTH_BYTES_PER_S, analyze_network
from ..routing import ROUTINGS
from ..topology.configs import config_for

__all__ = ["SweepSpec", "run_sweep", "unique_points"]

_log = logging.getLogger("repro.sweep")

_TOPOLOGY_BUILDERS = {
    "torus3d": lambda cfg: cfg.build_torus(),
    "fattree": lambda cfg: cfg.build_fat_tree(),
    "dragonfly": lambda cfg: cfg.build_dragonfly(),
}

_MAPPING_METHODS = ("consecutive", "random", "greedy", "spectral", "bisection")


@dataclass(frozen=True)
class SweepSpec:
    """The axes of one sweep.

    ``apps`` are (name, ranks) pairs; the other axes cross-product against
    them.  ``include_collectives`` mirrors the §5 (False) vs §6 (True)
    analysis modes.
    """

    apps: tuple[tuple[str, int], ...] = (("LULESH", 64),)
    topologies: tuple[str, ...] = ("torus3d", "fattree", "dragonfly")
    mappings: tuple[str, ...] = ("consecutive",)
    payloads: tuple[int, ...] = (4096,)
    bandwidths: tuple[float, ...] = (BANDWIDTH_BYTES_PER_S,)
    routings: tuple[str, ...] = ("minimal",)
    #: Collective-algorithm engines to cross (``repro.collectives``
    #: registry names); ``flat`` is the paper's expansion.
    collectives: tuple[str, ...] = ("flat",)
    include_collectives: bool = True
    seed: int = 0
    #: Opt-in telemetry axis: when True every point also runs the dynamic
    #: simulator with a windowed collector and merges a compact congestion
    #: summary (peak occupancy, hot windows, region stats) into its records.
    telemetry: bool = False
    telemetry_windows: int = 48
    telemetry_threshold: float = 0.7
    sim_volume_scale: float = 1.0
    #: Opt-in critical-path axis: when True every point also builds the
    #: happens-before DAG under the LogGP cost model and merges the modelled
    #: makespan and network-latency sensitivity (dT/dL) into its records.
    critpath: bool = False
    critpath_max_repeat: int = 64

    def __post_init__(self) -> None:
        if not self.apps:
            raise ValueError("sweep needs at least one (app, ranks) pair")
        if self.telemetry_windows < 1:
            raise ValueError("telemetry_windows must be >= 1")
        if not 0.0 < self.telemetry_threshold <= 1.0:
            raise ValueError("telemetry_threshold must be in (0, 1]")
        if self.sim_volume_scale <= 0:
            raise ValueError("sim_volume_scale must be positive")
        if self.critpath_max_repeat < 1:
            raise ValueError("critpath_max_repeat must be >= 1")
        unknown = set(self.topologies) - set(_TOPOLOGY_BUILDERS)
        if unknown:
            raise ValueError(f"unknown topologies {sorted(unknown)}")
        unknown = set(self.mappings) - set(_MAPPING_METHODS)
        if unknown:
            raise ValueError(f"unknown mapping methods {sorted(unknown)}")
        unknown = set(self.routings) - set(ROUTINGS)
        if unknown:
            raise ValueError(f"unknown routing policies {sorted(unknown)}")
        unknown = set(self.collectives) - set(COLLECTIVES)
        if unknown:
            raise ValueError(f"unknown collective algorithms {sorted(unknown)}")
        if any(p <= 0 for p in self.payloads):
            raise ValueError("payloads must be positive")
        if any(b <= 0 for b in self.bandwidths):
            raise ValueError("bandwidths must be positive")

    @property
    def num_points(self) -> int:
        return (
            len(self.apps)
            * len(self.topologies)
            * len(self.mappings)
            * len(self.payloads)
            * len(self.routings)
            * len(self.collectives)
            * len(self.bandwidths)
        )

    def points(self) -> list[tuple[str, int, int, str, str, str, str]]:
        """The grid in canonical evaluation order (bandwidths loop inside)."""
        return [
            (app, ranks, payload, topo_kind, mapping_method, routing, collective)
            for app, ranks in self.apps
            for payload in self.payloads
            for topo_kind in self.topologies
            for mapping_method in self.mappings
            for routing in self.routings
            for collective in self.collectives
        ]


def unique_points(
    spec: SweepSpec,
) -> tuple[list[tuple[str, int, int, str, str, str, str]], int]:
    """The grid with duplicate cells collapsed, plus the collapsed count.

    Duplicate axis values (``apps=(("LULESH", 64), ("LULESH", 64))``) used
    to evaluate — and record — the same cell twice.  Every consumer
    (:func:`run_sweep` and the job service) expands through this helper, so
    each distinct cell is computed and recorded exactly once, in first-
    occurrence order.  Collapsing emits one warning here — the single
    shared site — so the direct API and the service path (``repro
    submit`` via ``expand_cells``) both surface it.
    """
    seen: set[tuple] = set()
    points = []
    for point in spec.points():
        if point in seen:
            continue
        seen.add(point)
        points.append(point)
    collapsed = len(spec.points()) - len(points)
    if collapsed:
        _log.warning(
            "sweep: collapsed %d duplicate grid cells (%d unique of %d)",
            collapsed,
            len(points),
            len(points) + collapsed,
        )
    return points, collapsed


def _build_mapping(method: str, matrix, topology, seed: int) -> Mapping:
    if method == "random":
        mapping = Mapping.random(
            matrix.num_ranks, topology.num_nodes, seed=seed
        )
        # Seed-deterministic, so it can carry provenance like cached ones.
        object.__setattr__(
            mapping,
            "_repro_cache_key",
            ("mapping-random", matrix.num_ranks, topology.num_nodes, seed),
        )
        return mapping
    return cached_mapping(matrix, topology, method=method, seed=seed)


def _eval_point(
    spec: SweepSpec, point: tuple[str, int, int, str, str, str, str]
) -> list[dict[str, Any]]:
    """Evaluate one grid point — a pure function of (spec, point).

    Runs in the parent process for ``workers=1`` and in pool workers
    otherwise; all heavy intermediates go through the process-local
    :mod:`repro.cache`, so points sharing an app/payload rebuild nothing.
    """
    app, ranks, payload, topo_kind, mapping_method, routing, collective = point
    trace = cached_trace(app, ranks, seed=spec.seed)
    matrix = cached_matrix(
        trace,
        include_collectives=spec.include_collectives,
        payload=payload,
        collective=collective,
    )
    cfg = config_for(ranks)
    topology = _TOPOLOGY_BUILDERS[topo_kind](cfg)
    mapping = _build_mapping(mapping_method, matrix, topology, spec.seed)
    critpath_fields: dict[str, Any] = {}
    if spec.critpath:
        # Independent of payload and bandwidth: computed once per point and
        # merged into every bandwidth record.
        critpath_fields = _critpath_fields(
            spec, trace, topology, mapping, routing, collective
        )
    records = []
    for bandwidth in spec.bandwidths:
        result = analyze_network(
            matrix,
            topology,
            mapping=mapping,
            execution_time=trace.meta.execution_time,
            bandwidth=bandwidth,
            payload=payload,
            routing=routing,
            routing_seed=spec.seed,
        )
        record = {
            "app": app,
            "ranks": ranks,
            "topology": topo_kind,
            "mapping": mapping_method,
            "routing": routing,
            "collective": collective,
            "payload": payload,
            "bandwidth": bandwidth,
            "packet_hops": result.packet_hops,
            "avg_hops": round(result.avg_hops, 4),
            "utilization_percent": round(result.utilization_percent, 6),
            "used_links": result.used_links,
        }
        if spec.telemetry:
            record.update(
                _telemetry_fields(
                    spec, matrix, topology, mapping, trace, bandwidth,
                    payload, routing,
                )
            )
        record.update(critpath_fields)
        records.append(record)
    return records


def _critpath_fields(
    spec: SweepSpec, trace, topology, mapping, routing, collective
) -> dict[str, Any]:
    """Critical-path profile of one grid point under the LogGP model.

    The DAG is memoized per trace content key, so the many points sharing
    one app build it once.  Traces the matcher rejects (or an acyclicity
    failure) degrade to NaN fields rather than sinking the whole sweep —
    ``repro check`` is the tool that diagnoses those.
    """
    from ..critpath import CycleError, MatchError, analyze_trace

    try:
        analysis = analyze_trace(
            trace,
            topology=topology,
            mapping=mapping,
            routing=routing,
            routing_seed=spec.seed,
            max_repeat=spec.critpath_max_repeat,
            fd_check=False,
            collective=collective,
        )
    except (MatchError, CycleError) as exc:
        _log.warning("critpath axis skipped for %s: %s", trace.meta.app, exc)
        return {
            "critical_path_s": float("nan"),
            "latency_sensitivity": float("nan"),
        }
    return {
        "critical_path_s": round(analysis.makespan_s, 9),
        "latency_sensitivity": float(analysis.l_terms),
    }


def _telemetry_fields(
    spec, matrix, topology, mapping, trace, bandwidth, payload, routing
) -> dict[str, Any]:
    """Run the dynamic simulator with telemetry; flatten a compact summary.

    All values are plain floats/ints so records stay picklable for the
    process pool and serializable by :mod:`repro.analysis.export`.
    """
    from ..sim.engine import simulate_network
    from ..telemetry import TelemetryConfig, congestion_summary

    sim = simulate_network(
        matrix,
        topology,
        mapping=mapping,
        execution_time=trace.meta.execution_time,
        bandwidth=bandwidth,
        payload=payload,
        volume_scale=spec.sim_volume_scale,
        seed=spec.seed,
        routing=routing,
        routing_seed=spec.seed,
        telemetry=TelemetryConfig(windows=spec.telemetry_windows),
    )
    fields: dict[str, Any] = {
        "makespan_inflation": round(sim.makespan_inflation, 4),
        "peak_link_busy_fraction": round(sim.peak_link_busy_fraction, 6),
    }
    if sim.telemetry is not None:
        summary = congestion_summary(
            sim.telemetry, topology, threshold=spec.telemetry_threshold
        )
        fields["peak_window_occupancy"] = round(
            sim.telemetry.peak_occupancy, 6
        )
        fields.update(summary.as_dict())
    return fields


def _eval_chunk(
    spec: SweepSpec, chunk: list[tuple[str, int, int, str, str, str, str]]
) -> list[list[dict[str, Any]]]:
    """Evaluate a contiguous run of grid points in one worker process."""
    return [_eval_point(spec, point) for point in chunk]


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    progress: Callable[[int, int], None] | None = None,
) -> list[dict[str, Any]]:
    """Evaluate every sweep point; one flat record per (point, bandwidth).

    Duplicate cells within the spec (repeated axis values) are collapsed
    before evaluation — each distinct cell is computed and recorded once,
    with a one-line warning giving the collapsed count.

    ``workers`` > 1 distributes grid points over that many processes — one
    future per contiguous *chunk* of cells rather than one per cell, so the
    executor schedules ``workers`` tasks instead of thousands and same-app
    cells land on one worker whose process-local trace/matrix caches hit.
    Results are deterministic: the record order and every value are
    identical for any worker count (each point is a pure function of the
    spec, and chunks are reassembled in grid order).

    ``progress`` is called as ``progress(done, total)`` in cells — after
    every cell sequentially, after every finished chunk in parallel runs.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    points, _collapsed = unique_points(spec)
    total = len(points)
    if workers == 1 or total <= 1:
        per_point = []
        for i, point in enumerate(points):
            per_point.append(_eval_point(spec, point))
            if progress is not None:
                progress(i + 1, total)
    else:
        chunksize = max(1, -(-total // workers))
        chunks = [points[i : i + chunksize] for i in range(0, total, chunksize)]
        results: list[list[list[dict[str, Any]]] | None] = [None] * len(chunks)
        done = 0
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_eval_chunk, spec, chunk): i
                for i, chunk in enumerate(chunks)
            }
            for future in as_completed(futures):
                i = futures[future]
                results[i] = future.result()
                done += len(chunks[i])
                if progress is not None:
                    progress(done, total)
        per_point = [cell for chunk_result in results for cell in chunk_result]
    return [record for records in per_point for record in records]
