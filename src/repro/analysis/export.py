"""Structured export of tables and figures (CSV / JSON).

The text renderers mirror the paper's layout; downstream plotting and
post-processing want machine-readable rows instead.  Every table/figure
builder's output converts to a list of flat dicts here, which serialize to
CSV (stdlib ``csv``) or JSON.  NaNs become empty CSV cells / JSON nulls —
the N/A entries of the paper's tables.
"""

from __future__ import annotations

import csv
import io
import json
import math
from typing import Any

from .figures import Figure1Series, MulticoreSeries, SelectivityCurve
from .tables import Table1Row, Table3Row, Table4Row
from ..topology.configs import TopologyConfig
from ..util import nan_to_none

__all__ = [
    "rows_to_csv",
    "rows_to_json",
    "table1_records",
    "table2_records",
    "table3_records",
    "table4_records",
    "figure1_records",
    "curve_records",
    "figure5_records",
]


def _clean(value: Any) -> Any:
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def rows_to_csv(records: list[dict[str, Any]]) -> str:
    """Serialize records to CSV text (header from the first record)."""
    if not records:
        return ""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(records[0]))
    writer.writeheader()
    for record in records:
        cleaned = {k: _clean(v) for k, v in record.items()}
        writer.writerow({k: ("" if v is None else v) for k, v in cleaned.items()})
    return buf.getvalue()


def rows_to_json(records: list[dict[str, Any]]) -> str:
    """Serialize records to pretty-printed JSON."""
    cleaned = [{k: _clean(v) for k, v in r.items()} for r in records]
    return json.dumps(cleaned, indent=2)


def table1_records(rows: list[Table1Row]) -> list[dict[str, Any]]:
    out = []
    for row in rows:
        s = row.stats
        out.append(
            {
                "app": s.app,
                "variant": s.variant,
                "ranks": s.num_ranks,
                "time_s": s.execution_time,
                "volume_mb": round(s.total_mb, 3),
                "p2p_percent": round(100 * s.p2p_share, 3),
                "collective_percent": round(100 * s.collective_share, 3),
                "throughput_mb_per_s": round(s.throughput_mb_per_s, 3),
            }
        )
    return out


def table2_records(configs: list[TopologyConfig]) -> list[dict[str, Any]]:
    return [
        {
            "size": cfg.size,
            "torus_x": cfg.torus_dims[0],
            "torus_y": cfg.torus_dims[1],
            "torus_z": cfg.torus_dims[2],
            "torus_nodes": cfg.torus_nodes,
            "fat_tree_radix": 48,
            "fat_tree_stages": cfg.fat_tree_stages,
            "fat_tree_nodes": cfg.fat_tree_nodes,
            "dragonfly_a": cfg.dragonfly_ahp[0],
            "dragonfly_h": cfg.dragonfly_ahp[1],
            "dragonfly_p": cfg.dragonfly_ahp[2],
            "dragonfly_nodes": cfg.dragonfly_nodes,
        }
        for cfg in configs
    ]


def table3_records(rows: list[Table3Row]) -> list[dict[str, Any]]:
    out = []
    for row in rows:
        m = row.metrics
        record: dict[str, Any] = {
            "app": m.app,
            "variant": m.variant,
            "ranks": m.num_ranks,
            "peers": m.peers if m.has_p2p else None,
            "rank_distance_90": nan_to_none(round(m.rank_distance_90, 3))
            if m.has_p2p
            else None,
            "selectivity_90": nan_to_none(round(m.selectivity_90, 3))
            if m.has_p2p
            else None,
        }
        for kind, net in row.network.items():
            record[f"{kind}_packet_hops"] = net.packet_hops
            record[f"{kind}_avg_hops"] = nan_to_none(round(net.avg_hops, 4))
            record[f"{kind}_utilization_percent"] = nan_to_none(
                round(net.utilization_percent, 6)
            )
        out.append(record)
    return out


def table4_records(rows: list[Table4Row]) -> list[dict[str, Any]]:
    return [
        {
            "app": row.app,
            "ranks": row.ranks,
            "locality_1d_percent": round(100 * row.locality[1], 2),
            "locality_2d_percent": round(100 * row.locality[2], 2),
            "locality_3d_percent": round(100 * row.locality[3], 2),
        }
        for row in rows
    ]


def figure1_records(series: Figure1Series) -> list[dict[str, Any]]:
    cum = series.cumulative_share
    return [
        {
            "app": series.app,
            "ranks": series.ranks,
            "rank": series.rank,
            "partner_index": i + 1,
            "bytes": int(v),
            "cumulative_share": round(float(c), 6),
        }
        for i, (v, c) in enumerate(zip(series.volumes, cum))
    ]


def curve_records(curves: list[SelectivityCurve]) -> list[dict[str, Any]]:
    """Figures 3/4: one record per (workload, partner position)."""
    out = []
    for curve in curves:
        for i, share in enumerate(curve.curve, start=1):
            out.append(
                {
                    "app": curve.app,
                    "ranks": curve.ranks,
                    "variant": curve.variant,
                    "partners": i,
                    "cumulative_share": round(float(share), 6),
                }
            )
    return out


def figure5_records(series: list[MulticoreSeries]) -> list[dict[str, Any]]:
    out = []
    for s in series:
        for point in s.points:
            out.append(
                {
                    "app": s.app,
                    "ranks": s.ranks,
                    "cores_per_node": point.cores_per_node,
                    "inter_node_bytes": point.inter_node_bytes,
                    "relative_traffic": round(point.relative_traffic, 6),
                }
            )
    return out
