"""Table builders: Tables 1, 2, 3, and 4 of the paper.

Each builder returns structured rows (dataclasses) plus a ``render_*``
companion that prints the same columns the paper reports.  Builders accept a
``max_ranks`` cut so tests and quick runs can work on the small
configurations only; the benchmarks run the full set.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.registry import iter_configurations
from ..cache import cached_matrix, cached_trace
from ..comm.matrix import CommMatrix
from ..comm.stats import TraceStats, trace_stats
from ..core.trace import Trace
from ..metrics.dimensionality import locality_by_dimension
from ..metrics.summary import MPILevelMetrics, mpi_level_metrics
from ..model.engine import NetworkAnalysis, analyze_network
from ..topology.configs import TABLE2, TopologyConfig, config_for
from ..util import fmt_float

__all__ = [
    "Table1Row",
    "build_table1",
    "render_table1",
    "build_table2",
    "render_table2",
    "Table3Row",
    "build_table3",
    "build_table3_row",
    "render_table3",
    "Table4Row",
    "build_table4",
    "render_table4",
    "TABLE4_WORKLOADS",
    "build_latency_rows",
    "render_latency_table",
]

TOPOLOGY_ORDER = ("torus3d", "fattree", "dragonfly")


# ---------------------------------------------------------------- Table 1


@dataclass(frozen=True)
class Table1Row:
    """Application overview: volume, split, throughput."""

    stats: TraceStats

    @property
    def label(self) -> str:
        return self.stats.label


def build_table1(max_ranks: int | None = None, seed: int = 0) -> list[Table1Row]:
    """Per-configuration traffic statistics over the full workload set."""
    rows = []
    for app, point in iter_configurations(max_ranks=max_ranks):
        trace = cached_trace(app.name, point.ranks, variant=point.variant, seed=seed)
        rows.append(Table1Row(trace_stats(trace)))
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    header = (
        f"{'Application':<28} {'Ranks':>6} {'Time[s]':>10} {'Vol[MB]':>12} "
        f"{'P2P[%]':>7} {'Coll[%]':>7} {'Vol/t':>10}"
    )
    lines = [header, "-" * len(header)]
    lines += [row.stats.format_row() for row in rows]
    return "\n".join(lines)


# ---------------------------------------------------------------- Table 2


def build_table2() -> list[TopologyConfig]:
    """The paper's topology configurations, ascending by size."""
    return [TABLE2[size] for size in sorted(TABLE2)]


def render_table2(configs: list[TopologyConfig] | None = None) -> str:
    if configs is None:
        configs = build_table2()
    header = (
        f"{'Size':>6} | {'Torus (x,y,z)':>14} {'Nodes':>6} | "
        f"{'FT (rad,st)':>12} {'Nodes':>6} | {'DF (a,h,p)':>11} {'Nodes':>6}"
    )
    lines = [header, "-" * len(header)]
    for cfg in configs:
        x, y, z = cfg.torus_dims
        a, h, p = cfg.dragonfly_ahp
        lines.append(
            f"{cfg.size:>6} | {f'({x},{y},{z})':>14} {cfg.torus_nodes:>6} | "
            f"{f'(48,{cfg.fat_tree_stages})':>12} {cfg.fat_tree_nodes:>6} | "
            f"{f'({a},{h},{p})':>11} {cfg.dragonfly_nodes:>6}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------- Table 3


@dataclass(frozen=True)
class Table3Row:
    """One workload line of Table 3: MPI metrics + all three topologies."""

    metrics: MPILevelMetrics
    network: dict[str, NetworkAnalysis]  # keyed by topology kind

    @property
    def label(self) -> str:
        return self.metrics.label


def build_table3_row(trace: Trace, p2p_matrix: CommMatrix | None = None) -> Table3Row:
    """Compute one Table-3 row from a trace."""
    if p2p_matrix is None:
        p2p_matrix = cached_matrix(trace, include_collectives=False)
    metrics = mpi_level_metrics(trace, p2p_matrix)
    full_matrix = cached_matrix(trace)
    cfg = config_for(trace.meta.num_ranks)
    topologies = {
        "torus3d": cfg.build_torus(),
        "fattree": cfg.build_fat_tree(),
        "dragonfly": cfg.build_dragonfly(),
    }
    network = {
        kind: analyze_network(
            full_matrix, topo, execution_time=trace.meta.execution_time
        )
        for kind, topo in topologies.items()
    }
    return Table3Row(metrics=metrics, network=network)


def build_table3(max_ranks: int | None = None, seed: int = 0) -> list[Table3Row]:
    """The full Table 3 over all configurations (optionally size-capped)."""
    rows = []
    for app, point in iter_configurations(max_ranks=max_ranks):
        trace = cached_trace(app.name, point.ranks, variant=point.variant, seed=seed)
        rows.append(build_table3_row(trace))
    return rows


def render_table3(rows: list[Table3Row]) -> str:
    header = (
        f"{'Workload':<28} {'Peers':>6} {'Dist90':>8} {'Sel90':>6} |"
        + "".join(
            f" {name:>9} {'hops':>5} {'util%':>8} |"
            for name in ("torus", "fattree", "dragonfly")
        )
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        m = row.metrics
        if m.has_p2p:
            left = (
                f"{m.label:<28} {m.peers:>6d} "
                f"{fmt_float(m.rank_distance_90, '.1f'):>8} "
                f"{fmt_float(m.selectivity_90, '.1f'):>6} |"
            )
        else:
            left = f"{m.label:<28} {'N/A':>6} {'N/A':>8} {'N/A':>6} |"
        cells = ""
        for kind in TOPOLOGY_ORDER:
            net = row.network[kind]
            cells += (
                f" {net.packet_hops:>9.2e} "
                f"{fmt_float(net.avg_hops, '.2f'):>5} "
                f"{fmt_float(net.utilization_percent, '.4f'):>8} |"
            )
        lines.append(left + cells)
    return "\n".join(lines)


# ---------------------------------------------------------------- Table 4


#: The (app, ranks) pairs the paper's Table 4 reports.
TABLE4_WORKLOADS: tuple[tuple[str, int], ...] = (
    ("AMG", 216),
    ("AMG", 1728),
    ("Boxlib_CNS", 64),
    ("Boxlib_CNS", 256),
    ("Boxlib_CNS", 1024),
    ("LULESH", 64),
    ("LULESH", 512),
    ("MultiGrid_C", 125),
    ("MultiGrid_C", 1000),
    ("PARTISN", 168),
)


@dataclass(frozen=True)
class Table4Row:
    """Rank locality of one workload under 1D/2D/3D re-linearization."""

    app: str
    ranks: int
    locality: dict[int, float]  # dim -> locality in [0, 1]

    @property
    def label(self) -> str:
        return f"{self.app}@{self.ranks}"


def build_table4(
    workloads: tuple[tuple[str, int], ...] = TABLE4_WORKLOADS,
    max_ranks: int | None = None,
    seed: int = 0,
) -> list[Table4Row]:
    rows = []
    for app, ranks in workloads:
        if max_ranks is not None and ranks > max_ranks:
            continue
        trace = cached_trace(app, ranks, seed=seed)
        matrix = cached_matrix(trace, include_collectives=False)
        rows.append(Table4Row(app, ranks, locality_by_dimension(matrix)))
    return rows


def render_table4(rows: list[Table4Row]) -> str:
    header = f"{'Workload':<24} {'Ranks':>6} {'1D':>6} {'2D':>6} {'3D':>6}"
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = " ".join(
            f"{100 * row.locality[d]:>5.0f}%" for d in (1, 2, 3)
        )
        lines.append(f"{row.app:<24} {row.ranks:>6} {cells}")
    return "\n".join(lines)


# --------------------------------------------------- Latency tolerance


def build_latency_rows(
    topology: str = "torus3d",
    routing: str = "minimal",
    max_ranks: int | None = None,
    max_repeat: int | None = None,
    fd_check: bool = False,
    collective: str = "flat",
):
    """Per-app critical-path rows (:class:`~repro.critpath.CritPathAnalysis`).

    Thin table-layer wrapper over :func:`repro.critpath.latency_table`,
    here so the CLI and report pull all tabular output from one module.
    """
    from ..critpath import DEFAULT_MAX_REPEAT, latency_table

    return latency_table(
        topology=topology,
        routing=routing,
        max_ranks=max_ranks,
        max_repeat=DEFAULT_MAX_REPEAT if max_repeat is None else max_repeat,
        fd_check=fd_check,
        collective=collective,
    )


def render_latency_table(rows) -> str:
    """The latency-tolerance ranking: most-tolerant mini-app first."""
    header = (
        f"{'Application':<24} {'Ranks':>6} {'T[s]':>10} {'dT/dL':>8} "
        f"{'FD':>10} {'Tol[us]':>9}"
    )
    lines = [header, "-" * len(header)]
    ordered = sorted(
        rows,
        key=lambda r: -r.tolerance_s if r.l_terms > 0 else float("inf"),
    )
    for r in ordered:
        tol_us = r.tolerance_s * 1e6
        lines.append(
            f"{r.app:<24} {r.ranks:>6} {r.makespan_s:>10.6f} "
            f"{r.l_terms:>8d} {fmt_float(r.fd_sensitivity, '.1f'):>10} "
            f"{fmt_float(tol_us, '.3f'):>9}"
        )
    return "\n".join(lines)
