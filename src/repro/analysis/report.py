"""Full markdown report generation.

``build_report`` ties every analysis together into one self-contained
markdown document — the artifact a characterization study hands to system
architects: per-workload MPI-level metrics, topology comparison,
utilization/energy headroom, and the heat-map summaries the paper's metrics
replace.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.registry import iter_configurations
from ..cache import cached_matrix, cached_trace
from ..comm.stats import trace_stats
from ..metrics.heatmap import heatmap_summary
from ..metrics.summary import mpi_level_metrics
from ..model.energy import EnergyModel
from ..model.engine import analyze_network
from ..topology.configs import config_for
from ..util import fmt_float

__all__ = [
    "WorkloadReport",
    "build_report",
    "render_report",
    "CollectiveDeltaRow",
    "build_collective_deltas",
    "render_collective_deltas",
]


@dataclass(frozen=True)
class WorkloadReport:
    """Everything the report says about one configuration."""

    label: str
    total_mb: float
    p2p_share: float
    peers: int
    rank_distance: float
    selectivity: float
    fill: float
    diagonal_share: float
    best_topology: str
    best_hops: float
    max_utilization: float
    useful_energy_fraction: float
    #: Algebraic dT/dL (L-terms on the critical path, zero-diameter
    #: network, clamped expansion); NaN when the trace cannot be matched.
    latency_sensitivity: float = float("nan")


def build_report(
    max_ranks: int | None = None, seed: int = 0
) -> list[WorkloadReport]:
    """Analyze every configuration and collect the report rows."""
    model = EnergyModel()
    rows: list[WorkloadReport] = []
    for app, point in iter_configurations(max_ranks=max_ranks):
        if point.variant:
            continue  # variants duplicate the pattern; keep the report terse
        trace = cached_trace(app.name, point.ranks, variant=point.variant, seed=seed)
        stats = trace_stats(trace)
        p2p = cached_matrix(trace, include_collectives=False)
        metrics = mpi_level_metrics(trace, p2p)
        heat = heatmap_summary(p2p)

        full = cached_matrix(trace)
        cfg = config_for(point.ranks)
        analyses = {
            "torus3d": analyze_network(
                full, cfg.build_torus(), execution_time=point.time_s
            ),
            "fattree": analyze_network(
                full, cfg.build_fat_tree(), execution_time=point.time_s
            ),
            "dragonfly": analyze_network(
                full, cfg.build_dragonfly(), execution_time=point.time_s
            ),
        }
        best = min(analyses, key=lambda k: analyses[k].avg_hops)
        max_util = max(a.utilization for a in analyses.values())
        energy = model.report(analyses[best])
        sensitivity = _latency_sensitivity(trace)

        rows.append(
            WorkloadReport(
                label=stats.label,
                total_mb=stats.total_mb,
                p2p_share=stats.p2p_share,
                peers=metrics.peers,
                rank_distance=metrics.rank_distance_90,
                selectivity=metrics.selectivity_90,
                fill=heat.fill,
                diagonal_share=heat.diagonal_band_share,
                best_topology=best,
                best_hops=analyses[best].avg_hops,
                max_utilization=max_util,
                useful_energy_fraction=energy.useful_fraction,
                latency_sensitivity=sensitivity,
            )
        )
    return rows


#: Iteration clamp for the report's critical-path column — tighter than the
#: analysis default so the full-registry report stays interactive; dT/dL
#: ranking is stable once a few iterations of each phase are unrolled.
_REPORT_MAX_REPEAT = 16


def _latency_sensitivity(trace) -> float:
    """The report's dT/dL column: algebraic L-terms, zero-diameter network.

    Degrades to NaN (rendered ``N/A``) when matching or acyclicity fails,
    so one malformed trace cannot sink the whole report.
    """
    from ..critpath import CycleError, MatchError, analyze_trace

    try:
        analysis = analyze_trace(
            trace, max_repeat=_REPORT_MAX_REPEAT, fd_check=False
        )
    except (MatchError, CycleError):
        return float("nan")
    return float(analysis.l_terms)


@dataclass(frozen=True)
class CollectiveDeltaRow:
    """One (app, topology, routing, collective-engine) cell of the delta table."""

    app: str
    ranks: int
    topology: str
    routing: str
    collective: str
    collective_mb: float  # expanded collective traffic under this engine
    avg_hops: float
    utilization: float
    #: Average-hops change relative to the flat engine on the same
    #: (app, topology, routing) cell, in percent; 0.0 for flat itself.
    hops_delta_pct: float


def build_collective_deltas(
    max_ranks: int | None = None,
    seed: int = 0,
    topologies: tuple[str, ...] = ("torus3d", "fattree", "dragonfly"),
    routings: tuple[str, ...] = ("minimal", "valiant"),
    collectives: tuple[str, ...] | None = None,
) -> list[CollectiveDeltaRow]:
    """The (app x topology x routing x collective-algo) delta grid.

    One block per registry app at its smallest configuration, restricted to
    apps that carry collective traffic (the others are bit-identical across
    engines by construction).  Every engine's matrix is analyzed under
    every (topology, routing) pair; the flat engine — the paper's expansion
    — is the baseline each delta is measured against.
    """
    from ..collectives import collective_volume
    from ..collectives.registry import COLLECTIVES

    if collectives is None:
        collectives = tuple(COLLECTIVES)
    smallest: dict[str, int] = {}
    for app, point in iter_configurations(max_ranks=max_ranks):
        if point.variant:
            continue
        if app.name not in smallest or point.ranks < smallest[app.name]:
            smallest[app.name] = point.ranks
    rows: list[CollectiveDeltaRow] = []
    for name, ranks in smallest.items():
        trace = cached_trace(name, ranks, seed=seed)
        if collective_volume(trace) == 0:
            continue
        cfg = config_for(ranks)
        builders = {
            "torus3d": cfg.build_torus,
            "fattree": cfg.build_fat_tree,
            "dragonfly": cfg.build_dragonfly,
        }
        matrices = {
            algo: cached_matrix(trace, collective=algo) for algo in collectives
        }
        volumes = {
            algo: collective_volume(trace, collective=algo)
            for algo in collectives
        }
        for kind in topologies:
            topology = builders[kind]()
            for routing in routings:
                base_hops: float | None = None
                for algo in collectives:
                    analysis = analyze_network(
                        matrices[algo],
                        topology,
                        execution_time=trace.meta.execution_time,
                        routing=routing,
                        routing_seed=seed,
                    )
                    if algo == "flat":
                        base_hops = analysis.avg_hops
                    delta = (
                        100.0 * (analysis.avg_hops / base_hops - 1.0)
                        if base_hops
                        else float("nan")
                    )
                    rows.append(
                        CollectiveDeltaRow(
                            app=name,
                            ranks=ranks,
                            topology=kind,
                            routing=routing,
                            collective=algo,
                            collective_mb=volumes[algo] / 1e6,
                            avg_hops=analysis.avg_hops,
                            utilization=analysis.utilization,
                            hops_delta_pct=delta,
                        )
                    )
    return rows


def render_collective_deltas(rows: list[CollectiveDeltaRow]) -> str:
    """Render the delta grid as a markdown section."""
    lines = [
        "## Collective-algorithm deltas",
        "",
        "Average packet hops per (app, topology, routing) cell under each",
        "collective-algorithm engine, relative to the paper's flat",
        "collective->p2p expansion (apps without collective traffic are",
        "identical across engines and omitted).",
        "",
        "| workload | topology | routing | engine | coll [MB] | hops | Δ hops vs flat | util % |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for r in rows:
        delta = "—" if r.collective == "flat" else f"{r.hops_delta_pct:+.1f}%"
        lines.append(
            f"| {r.app}@{r.ranks} | {r.topology} | {r.routing} "
            f"| {r.collective} | {r.collective_mb:.1f} | {r.avg_hops:.3f} "
            f"| {delta} | {100 * r.utilization:.4f} |"
        )
    return "\n".join(lines)


def render_report(rows: list[WorkloadReport]) -> str:
    """Render the collected rows as a markdown document."""
    lines = [
        "# Network-locality characterization report",
        "",
        "Static analysis per the methodology of Zahn & Fröning (ICPP 2020):",
        "MPI-level locality metrics, best-fit topology by average packet",
        "hops (Table-2 configurations, consecutive mapping), and the",
        "utilization/energy headroom of the interconnect.",
        "",
        "| workload | vol [MB] | p2p % | peers | dist90 | sel90 | matrix fill | diag % | best topo | hops | max util % | useful energy % | dT/dL |",
        "|---|---|---|---|---|---|---|---|---|---|---|---|---|",
    ]
    for r in rows:
        peers = str(r.peers) if r.peers else "N/A"
        dist = fmt_float(r.rank_distance, ".1f") if r.peers else "N/A"
        sel = fmt_float(r.selectivity, ".1f") if r.peers else "N/A"
        lines.append(
            f"| {r.label} | {r.total_mb:.0f} | {100 * r.p2p_share:.1f} "
            f"| {peers} | {dist} | {sel} "
            f"| {100 * r.fill:.1f}% | {100 * r.diagonal_share:.0f}% "
            f"| {r.best_topology} | {r.best_hops:.2f} "
            f"| {100 * r.max_utilization:.4f} "
            f"| {100 * r.useful_energy_fraction:.4f} "
            f"| {fmt_float(r.latency_sensitivity, '.0f')} |"
        )
    lines += [
        "",
        "Reading guide: *dist90*/*sel90* are the paper's rank distance and",
        "selectivity at the 90% traffic share; *diag %* is the byte share",
        "within one rank of the diagonal (the heat-map impression the",
        "metrics formalize); *useful energy* is utilization-scaled static",
        "interconnect energy on the best topology; *dT/dL* is the",
        "critical-path latency sensitivity (messages on the longest",
        "happens-before path under the LogGP model).",
    ]
    return "\n".join(lines)
