"""Full markdown report generation.

``build_report`` ties every analysis together into one self-contained
markdown document — the artifact a characterization study hands to system
architects: per-workload MPI-level metrics, topology comparison,
utilization/energy headroom, and the heat-map summaries the paper's metrics
replace.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.registry import iter_configurations
from ..cache import cached_matrix, cached_trace
from ..comm.stats import trace_stats
from ..metrics.heatmap import heatmap_summary
from ..metrics.summary import mpi_level_metrics
from ..model.energy import EnergyModel
from ..model.engine import analyze_network
from ..topology.configs import config_for
from ..util import fmt_float

__all__ = ["WorkloadReport", "build_report", "render_report"]


@dataclass(frozen=True)
class WorkloadReport:
    """Everything the report says about one configuration."""

    label: str
    total_mb: float
    p2p_share: float
    peers: int
    rank_distance: float
    selectivity: float
    fill: float
    diagonal_share: float
    best_topology: str
    best_hops: float
    max_utilization: float
    useful_energy_fraction: float
    #: Algebraic dT/dL (L-terms on the critical path, zero-diameter
    #: network, clamped expansion); NaN when the trace cannot be matched.
    latency_sensitivity: float = float("nan")


def build_report(
    max_ranks: int | None = None, seed: int = 0
) -> list[WorkloadReport]:
    """Analyze every configuration and collect the report rows."""
    model = EnergyModel()
    rows: list[WorkloadReport] = []
    for app, point in iter_configurations(max_ranks=max_ranks):
        if point.variant:
            continue  # variants duplicate the pattern; keep the report terse
        trace = cached_trace(app.name, point.ranks, variant=point.variant, seed=seed)
        stats = trace_stats(trace)
        p2p = cached_matrix(trace, include_collectives=False)
        metrics = mpi_level_metrics(trace, p2p)
        heat = heatmap_summary(p2p)

        full = cached_matrix(trace)
        cfg = config_for(point.ranks)
        analyses = {
            "torus3d": analyze_network(
                full, cfg.build_torus(), execution_time=point.time_s
            ),
            "fattree": analyze_network(
                full, cfg.build_fat_tree(), execution_time=point.time_s
            ),
            "dragonfly": analyze_network(
                full, cfg.build_dragonfly(), execution_time=point.time_s
            ),
        }
        best = min(analyses, key=lambda k: analyses[k].avg_hops)
        max_util = max(a.utilization for a in analyses.values())
        energy = model.report(analyses[best])
        sensitivity = _latency_sensitivity(trace)

        rows.append(
            WorkloadReport(
                label=stats.label,
                total_mb=stats.total_mb,
                p2p_share=stats.p2p_share,
                peers=metrics.peers,
                rank_distance=metrics.rank_distance_90,
                selectivity=metrics.selectivity_90,
                fill=heat.fill,
                diagonal_share=heat.diagonal_band_share,
                best_topology=best,
                best_hops=analyses[best].avg_hops,
                max_utilization=max_util,
                useful_energy_fraction=energy.useful_fraction,
                latency_sensitivity=sensitivity,
            )
        )
    return rows


#: Iteration clamp for the report's critical-path column — tighter than the
#: analysis default so the full-registry report stays interactive; dT/dL
#: ranking is stable once a few iterations of each phase are unrolled.
_REPORT_MAX_REPEAT = 16


def _latency_sensitivity(trace) -> float:
    """The report's dT/dL column: algebraic L-terms, zero-diameter network.

    Degrades to NaN (rendered ``N/A``) when matching or acyclicity fails,
    so one malformed trace cannot sink the whole report.
    """
    from ..critpath import CycleError, MatchError, analyze_trace

    try:
        analysis = analyze_trace(
            trace, max_repeat=_REPORT_MAX_REPEAT, fd_check=False
        )
    except (MatchError, CycleError):
        return float("nan")
    return float(analysis.l_terms)


def render_report(rows: list[WorkloadReport]) -> str:
    """Render the collected rows as a markdown document."""
    lines = [
        "# Network-locality characterization report",
        "",
        "Static analysis per the methodology of Zahn & Fröning (ICPP 2020):",
        "MPI-level locality metrics, best-fit topology by average packet",
        "hops (Table-2 configurations, consecutive mapping), and the",
        "utilization/energy headroom of the interconnect.",
        "",
        "| workload | vol [MB] | p2p % | peers | dist90 | sel90 | matrix fill | diag % | best topo | hops | max util % | useful energy % | dT/dL |",
        "|---|---|---|---|---|---|---|---|---|---|---|---|---|",
    ]
    for r in rows:
        peers = str(r.peers) if r.peers else "N/A"
        dist = fmt_float(r.rank_distance, ".1f") if r.peers else "N/A"
        sel = fmt_float(r.selectivity, ".1f") if r.peers else "N/A"
        lines.append(
            f"| {r.label} | {r.total_mb:.0f} | {100 * r.p2p_share:.1f} "
            f"| {peers} | {dist} | {sel} "
            f"| {100 * r.fill:.1f}% | {100 * r.diagonal_share:.0f}% "
            f"| {r.best_topology} | {r.best_hops:.2f} "
            f"| {100 * r.max_utilization:.4f} "
            f"| {100 * r.useful_energy_fraction:.4f} "
            f"| {fmt_float(r.latency_sensitivity, '.0f')} |"
        )
    lines += [
        "",
        "Reading guide: *dist90*/*sel90* are the paper's rank distance and",
        "selectivity at the 90% traffic share; *diag %* is the byte share",
        "within one rank of the diagonal (the heat-map impression the",
        "metrics formalize); *useful energy* is utilization-scaled static",
        "interconnect energy on the best topology; *dT/dL* is the",
        "critical-path latency sensitivity (messages on the longest",
        "happens-before path under the LogGP model).",
    ]
    return "\n".join(lines)
