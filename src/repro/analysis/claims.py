"""Headline-claim evaluation (paper §5–§8).

The paper's conclusions are aggregate statements over the full experiment
grid.  This module computes each one from Table-3 rows / Figure-5 series so
benchmarks and tests can assert the *shape* of the reproduction:

1. Selectivity is small: ≤ 10 partners cover 90% of traffic in ~89% of
   configurations (§8).
2. Rank distance grows with scale within every application (§5.1).
3. The 3D torus gives the lowest average hop count for small configurations,
   the fat tree for large ones (§6.2, §8).
4. Most dragonfly packets cross a global link (~95% on average, §6.2).
5. Network utilization is below 1% in ~93% of configurations — every app
   but BigFFT (§6.3, §8).
6. Inter-node traffic saturates by 8–16 cores per socket (§6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .figures import MulticoreSeries
from .tables import Table3Row

__all__ = ["ClaimReport", "build_claim_report", "evaluate_claims", "render_claims"]


@dataclass(frozen=True)
class ClaimReport:
    """Aggregate statistics backing the paper's headline claims."""

    num_configs: int
    num_p2p_configs: int
    selectivity_le_10_share: float
    distance_grows_share: float
    torus_wins_small: int
    small_configs: int
    fattree_wins_large: int
    large_configs: int
    dragonfly_global_share_mean: float
    utilization_below_1pct_share: float
    multicore_saturation_ok_share: float | None = None

    def summary_lines(self) -> list[str]:
        lines = [
            f"configurations analyzed:                 {self.num_configs}",
            f"p2p configurations:                      {self.num_p2p_configs}",
            f"selectivity <= 10 (paper ~89%):          "
            f"{100 * self.selectivity_le_10_share:.0f}%",
            f"rank distance grows with scale:          "
            f"{100 * self.distance_grows_share:.0f}% of apps",
            f"torus lowest hops, ranks < 256:          "
            f"{self.torus_wins_small}/{self.small_configs}",
            f"fat tree lowest hops, ranks >= 256:      "
            f"{self.fattree_wins_large}/{self.large_configs}",
            f"dragonfly global-link packet share:      "
            f"{100 * self.dragonfly_global_share_mean:.0f}% (paper ~95%)",
            f"utilization < 1% (paper ~93%):           "
            f"{100 * self.utilization_below_1pct_share:.0f}%",
        ]
        if self.multicore_saturation_ok_share is not None:
            lines.append(
                f"multicore saturation by 16 cores:        "
                f"{100 * self.multicore_saturation_ok_share:.0f}% of series"
            )
        return lines


def _distance_growth_share(rows: list[Table3Row]) -> float:
    """Fraction of apps whose rank distance is non-decreasing in rank count."""
    by_app: dict[str, list[tuple[int, float]]] = {}
    for row in rows:
        m = row.metrics
        if m.has_p2p and not np.isnan(m.rank_distance_90):
            by_app.setdefault(m.app, []).append((m.num_ranks, m.rank_distance_90))
    grows = 0
    total = 0
    for points in by_app.values():
        points = sorted(set(points))
        if len(points) < 2:
            continue
        total += 1
        dists = [d for _, d in points]
        if all(b >= a * 0.95 for a, b in zip(dists, dists[1:])):
            grows += 1
    return grows / total if total else 1.0


def evaluate_claims(
    rows: list[Table3Row],
    figure5: list[MulticoreSeries] | None = None,
    small_cutoff: int = 256,
) -> ClaimReport:
    """Compute the aggregate claim statistics from Table-3 rows."""
    if not rows:
        raise ValueError("need at least one Table-3 row")

    p2p_rows = [r for r in rows if r.metrics.has_p2p]
    # counted over ALL configurations, as the paper does ("in 89% of all
    # configurations"); all-collective rows have no selectivity to exceed.
    sel_small = len(rows) - len(p2p_rows) + sum(
        1 for r in p2p_rows if r.metrics.selectivity_90 <= 10.0
    )

    torus_small = large_ft = small_total = large_total = 0
    global_shares = []
    util_small = 0
    for row in rows:
        hops = {k: n.avg_hops for k, n in row.network.items()}
        best = min(hops, key=hops.get)  # type: ignore[arg-type]
        if row.metrics.num_ranks < small_cutoff:
            small_total += 1
            torus_small += best == "torus3d"
        else:
            large_total += 1
            large_ft += best == "fattree"
        df = row.network["dragonfly"]
        if df.global_link_packet_share is not None:
            global_shares.append(df.global_link_packet_share)
        max_util = max(n.utilization for n in row.network.values())
        util_small += max_util < 0.01

    saturation: float | None = None
    if figure5:
        ok = 0
        for series in figure5:
            rel = {p.cores_per_node: p.relative_traffic for p in series.points}
            base16 = rel.get(16)
            if base16 is None:
                continue
            tail_min = min((v for c, v in rel.items() if c > 16), default=base16)
            drop_to_16 = rel[1] - base16
            drop_after = base16 - tail_min
            # saturated: the decline past 16 cores is small, absolutely
            # (< 0.1 of the total traffic) or relative to the 1 -> 16 drop
            if drop_after <= max(0.105, 0.75 * drop_to_16):
                ok += 1
        saturation = ok / len(figure5)

    return ClaimReport(
        num_configs=len(rows),
        num_p2p_configs=len(p2p_rows),
        selectivity_le_10_share=sel_small / len(rows),
        distance_grows_share=_distance_growth_share(rows),
        torus_wins_small=torus_small,
        small_configs=small_total,
        fattree_wins_large=large_ft,
        large_configs=large_total,
        dragonfly_global_share_mean=float(np.mean(global_shares)) if global_shares else 0.0,
        utilization_below_1pct_share=util_small / len(rows),
        multicore_saturation_ok_share=saturation,
    )


def build_claim_report(
    max_ranks: int | None = None, seed: int = 0, with_figure5: bool = True
) -> ClaimReport:
    """Build Table-3 rows (and Figure-5 series) and evaluate the claims.

    Convenience wrapper used by the CLI; all intermediates (traces,
    matrices, route incidences) flow through :mod:`repro.cache`, so the
    Table-3 and Figure-5 passes share work.
    """
    from .figures import build_figure5
    from .tables import build_table3

    rows = build_table3(max_ranks=max_ranks, seed=seed)
    figure5 = build_figure5(max_ranks=max_ranks, seed=seed) if with_figure5 else None
    return evaluate_claims(rows, figure5 or None)


def render_claims(report: ClaimReport) -> str:
    return "\n".join(["Headline claims", "-" * 48, *report.summary_lines()])
