"""Figure data builders: Figures 1, 3, 4, and 5 of the paper.

Figures are returned as plain data series (NumPy arrays in dataclasses) so
they can be printed as text, asserted in tests, or plotted by downstream
tooling; this library deliberately has no plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..apps.registry import iter_configurations
from ..cache import cached_matrix, cached_trace
from ..mapping.multicore import DEFAULT_CORES, MulticorePoint, multicore_sweep
from ..metrics.selectivity import mean_selectivity_curve, partner_volumes

__all__ = [
    "Figure1Series",
    "build_figure1",
    "SelectivityCurve",
    "build_figure3",
    "build_figure4",
    "MulticoreSeries",
    "build_figure5",
    "FIGURE5_MIN_RANKS",
    "render_curves",
]


# ---------------------------------------------------------------- Figure 1


@dataclass(frozen=True)
class Figure1Series:
    """Per-partner volume of one rank, sorted descending (Figure 1)."""

    app: str
    ranks: int
    rank: int
    volumes: np.ndarray  # int64, descending

    @property
    def cumulative_share(self) -> np.ndarray:
        total = self.volumes.sum()
        return np.cumsum(self.volumes) / total if total else np.zeros(0)


def build_figure1(
    app: str = "LULESH", ranks: int = 64, rank: int = 0, seed: int = 0
) -> Figure1Series:
    """The paper's illustration: LULESH rank 0 partner volumes."""
    trace = cached_trace(app, ranks, seed=seed)
    matrix = cached_matrix(trace, include_collectives=False)
    return Figure1Series(app, ranks, rank, partner_volumes(matrix, rank))


# ---------------------------------------------------------- Figures 3 & 4


@dataclass(frozen=True)
class SelectivityCurve:
    """Mean cumulative-share curve of one configuration (Figures 3/4)."""

    app: str
    ranks: int
    variant: str
    curve: np.ndarray  # float64, cumulative share per sorted partner count

    @property
    def label(self) -> str:
        base = f"{self.app}@{self.ranks}"
        return f"{base}/{self.variant}" if self.variant else base

    def partners_for_share(self, share: float = 0.9) -> int:
        """x-position where the curve crosses ``share`` (the selectivity)."""
        idx = np.searchsorted(self.curve, share - 1e-9)
        return int(idx) + 1 if idx < len(self.curve) else len(self.curve)


def build_figure3(
    max_ranks: int | None = None, max_partners: int | None = 64, seed: int = 0
) -> list[SelectivityCurve]:
    """Selectivity trends for all workloads with p2p traffic (Figure 3)."""
    curves = []
    for app, point in iter_configurations(max_ranks=max_ranks):
        if point.p2p_share == 0.0:
            continue  # all-collective apps have no selectivity curve
        trace = cached_trace(app.name, point.ranks, variant=point.variant, seed=seed)
        matrix = cached_matrix(trace, include_collectives=False)
        curve = mean_selectivity_curve(matrix, max_partners=max_partners)
        curves.append(SelectivityCurve(app.name, point.ranks, point.variant, curve))
    return curves


def build_figure4(
    app: str = "AMG", max_partners: int | None = 32, seed: int = 0
) -> list[SelectivityCurve]:
    """Selectivity scaling with rank count for one app (Figure 4: AMG)."""
    from ..apps.registry import get_app

    application = get_app(app)
    curves = []
    for ranks in application.scales():
        trace = cached_trace(app, ranks, seed=seed)
        matrix = cached_matrix(trace, include_collectives=False)
        curve = mean_selectivity_curve(matrix, max_partners=max_partners)
        curves.append(SelectivityCurve(app, ranks, "", curve))
    return curves


# ---------------------------------------------------------------- Figure 5


#: The paper only sweeps configurations with at least 512 ranks (§6.1).
FIGURE5_MIN_RANKS = 512


@dataclass(frozen=True)
class MulticoreSeries:
    """Relative inter-node traffic vs cores/socket for one configuration."""

    app: str
    ranks: int
    variant: str
    points: list[MulticorePoint]

    @property
    def label(self) -> str:
        base = f"{self.app}@{self.ranks}"
        return f"{base}/{self.variant}" if self.variant else base

    @property
    def relative(self) -> np.ndarray:
        return np.array([p.relative_traffic for p in self.points])


def build_figure5(
    min_ranks: int = FIGURE5_MIN_RANKS,
    max_ranks: int | None = None,
    cores: tuple[int, ...] = DEFAULT_CORES,
    seed: int = 0,
) -> list[MulticoreSeries]:
    """Inter-node traffic scaling for all large configurations (Figure 5).

    Includes point-to-point *and* collective traffic, per the paper.
    """
    series = []
    seen: set[tuple[str, int]] = set()
    for app, point in iter_configurations(max_ranks=max_ranks):
        if point.ranks < min_ranks or (app.name, point.ranks) in seen:
            continue
        seen.add((app.name, point.ranks))
        trace = cached_trace(app.name, point.ranks, variant=point.variant, seed=seed)
        matrix = cached_matrix(trace)  # both traffic classes
        series.append(
            MulticoreSeries(
                app.name, point.ranks, point.variant, multicore_sweep(matrix, cores)
            )
        )
    return series


def render_curves(curves: list[SelectivityCurve], share: float = 0.9) -> str:
    """Text rendering of selectivity curves: the 90% crossing per workload."""
    header = f"{'Workload':<28} {'partners@90%':>12}  curve head (top-8 shares)"
    lines = [header, "-" * len(header)]
    for c in curves:
        head = " ".join(f"{v:.2f}" for v in c.curve[:8])
        lines.append(f"{c.label:<28} {c.partners_for_share(share):>12d}  {head}")
    return "\n".join(lines)
