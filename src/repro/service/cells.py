"""Cell identity: content keys, affinity tokens, and spec serialization.

A **cell** is one grid point of a :class:`~repro.analysis.sweep.SweepSpec`
together with every spec-level field that influences its records (seed,
collectives mode, bandwidths, telemetry configuration).  Its ``key`` is a
BLAKE2 digest of exactly those fields, so two cells with equal keys produce
bit-identical records no matter which job, worker, or server lifetime
computes them — the property the journal, the in-flight dedup table, and
the record cache all rest on.

The **affinity token** is the coarser grouping the scheduler routes on: the
subset of the key that selects the expensive cached artifacts (the trace
and its matrices).  Cells sharing a token want to land on the same worker,
where the first one pays the deserialization and the rest hit that
process's warm memory LRU.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

from ..analysis.sweep import SweepSpec, unique_points

__all__ = [
    "CELL_KEY_VERSION",
    "Cell",
    "spec_to_dict",
    "spec_from_dict",
    "cell_key",
    "affinity_token",
    "expand_cells",
]

#: Bump when record semantics change (new record fields, changed rounding,
#: changed cell evaluation) — journals and record caches never mix versions.
#: v2: critical-path axis (critpath / critpath_max_repeat spec fields).
#: v3: collective-algorithm axis (points grew a ``collective`` field).
CELL_KEY_VERSION = 3

#: Grid-point axes in canonical order (matches ``SweepSpec.points()`` rows).
_POINT_FIELDS = (
    "app",
    "ranks",
    "payload",
    "topology",
    "mapping",
    "routing",
    "collective",
)

#: Spec-level fields that shape every cell's records.
_SHARED_FIELDS = (
    "bandwidths",
    "include_collectives",
    "seed",
    "telemetry",
    "telemetry_windows",
    "telemetry_threshold",
    "sim_volume_scale",
    "critpath",
    "critpath_max_repeat",
)


def spec_to_dict(spec: SweepSpec) -> dict[str, Any]:
    """A JSON-safe dict that :func:`spec_from_dict` inverts exactly."""
    return {
        "apps": [[name, ranks] for name, ranks in spec.apps],
        "topologies": list(spec.topologies),
        "mappings": list(spec.mappings),
        "payloads": list(spec.payloads),
        "bandwidths": list(spec.bandwidths),
        "routings": list(spec.routings),
        "collectives": list(spec.collectives),
        "include_collectives": spec.include_collectives,
        "seed": spec.seed,
        "telemetry": spec.telemetry,
        "telemetry_windows": spec.telemetry_windows,
        "telemetry_threshold": spec.telemetry_threshold,
        "sim_volume_scale": spec.sim_volume_scale,
        "critpath": spec.critpath,
        "critpath_max_repeat": spec.critpath_max_repeat,
    }


def spec_from_dict(data: dict[str, Any]) -> SweepSpec:
    """Rebuild a :class:`SweepSpec` from :func:`spec_to_dict` output.

    Validation happens in ``SweepSpec.__post_init__``; unknown keys raise
    so a stale client cannot silently submit fields the server ignores.
    """
    data = dict(data)
    apps = data.pop("apps", None)
    if not apps:
        raise ValueError("sweep spec needs a non-empty 'apps' list")
    kwargs: dict[str, Any] = {
        "apps": tuple((str(name), int(ranks)) for name, ranks in apps)
    }
    for field, convert in (
        ("topologies", str),
        ("mappings", str),
        ("routings", str),
        ("collectives", str),
        ("payloads", int),
        ("bandwidths", float),
    ):
        if field in data:
            kwargs[field] = tuple(convert(v) for v in data.pop(field))
    for field in (
        "include_collectives",
        "seed",
        "telemetry",
        "telemetry_windows",
        "telemetry_threshold",
        "sim_volume_scale",
        "critpath",
        "critpath_max_repeat",
    ):
        if field in data:
            kwargs[field] = data.pop(field)
    if data:
        raise ValueError(f"unknown sweep spec fields {sorted(data)}")
    return SweepSpec(**kwargs)


def _shared_fields(spec: SweepSpec) -> dict[str, Any]:
    fields = spec_to_dict(spec)
    return {name: fields[name] for name in _SHARED_FIELDS}


def cell_key(spec: SweepSpec, point: tuple) -> str:
    """Content key of one cell: a hex digest over (point, shared fields)."""
    payload = {
        "v": CELL_KEY_VERSION,
        "point": dict(zip(_POINT_FIELDS, point)),
        "shared": _shared_fields(spec),
    }
    raw = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(raw.encode(), digest_size=16).hexdigest()


def affinity_token(spec: SweepSpec, point: tuple) -> str:
    """The cache-affinity group of a cell.

    ``(app, ranks, seed)`` selects the trace — the heaviest artifact a
    worker deserializes — and through it every matrix the cell's payloads
    derive.  Cells of one token therefore share a worker so the trace is
    paged in once per pool, not once per worker.
    """
    app, ranks = point[0], point[1]
    return f"{app}:{ranks}:{spec.seed}"


@dataclass(frozen=True)
class Cell:
    """One schedulable unit: a grid point plus its identity keys."""

    index: int  # position in the spec's canonical deduplicated order
    point: tuple  # (app, ranks, payload, topology, mapping, routing, collective)
    key: str  # content key (journal / dedup identity)
    token: str  # cache-affinity group


def expand_cells(spec: SweepSpec) -> tuple[list[Cell], int]:
    """Expand a spec into deduplicated cells, plus the collapsed count.

    Shares :func:`repro.analysis.sweep.unique_points` with ``run_sweep``,
    so the service's record order (cells in index order, bandwidths inside)
    is bit-identical to the library path for the same spec.
    """
    points, collapsed = unique_points(spec)
    cells = [
        Cell(
            index=i,
            point=point,
            key=cell_key(spec, point),
            token=affinity_token(spec, point),
        )
        for i, point in enumerate(points)
    ]
    return cells, collapsed
