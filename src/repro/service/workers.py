"""Persistent worker processes for the sweep service.

Each worker slot owns a long-lived child process, a task queue
(server → worker), and a one-way result pipe (worker → server).  The
process evaluates cells forever with :func:`repro.analysis.sweep._eval_point`
— the exact function the library path runs, so records are bit-identical —
and keeps its :mod:`repro.cache` memory LRU warm across cells, which is
what cache-affinity scheduling monetizes.

Crash behaviour is the design center:

- results travel over a dedicated pipe per worker, so a SIGKILL'd worker
  tears at most its own stream — the reader thread sees EOF and emits a
  ``lost`` event instead of wedging the pool on a shared queue lock;
- :meth:`WorkerPool.respawn` replaces the process *and* both channels
  (a queue whose reader died mid-``get`` may hold its feeder lock
  forever), and returns the dead worker's outstanding tasks so the server
  can requeue them;
- each spawn gets a fresh handle object; stale events from a replaced
  generation are recognized by handle identity and dropped.

Per-cell results carry the worker's cache-stat and stage-timing deltas, so
the server can report pool-wide warm-hit rates and stage attribution
without touching the workers again.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import threading
import time
from typing import Any, Callable

__all__ = ["WorkerHandle", "WorkerPool"]

#: Regions whose hit/miss deltas are reported per cell.
_STAT_REGIONS = ("trace", "matrix", "mapping", "incidence")


def _cache_counters() -> dict[str, dict[str, int]]:
    from .. import cache

    return cache.stats()


def _counter_delta(
    before: dict[str, dict[str, int]], after: dict[str, dict[str, int]]
) -> dict[str, dict[str, int]]:
    delta: dict[str, dict[str, int]] = {}
    for region in _STAT_REGIONS:
        b = before.get(region, {})
        a = after.get(region, {})
        d = {k: a.get(k, 0) - b.get(k, 0) for k in ("hits", "misses", "disk_hits")}
        if any(d.values()):
            delta[region] = d
    return delta


def _worker_main(task_q, conn, cache_dir, memory_items) -> None:
    """Child entry point: evaluate cells until a ``None`` sentinel arrives."""
    from .. import cache, timings
    from ..analysis.sweep import _eval_point
    from .cells import spec_from_dict

    if cache_dir:
        cache.configure(disk_dir=cache_dir)
    if memory_items:
        cache.configure(memory_items=memory_items)
    # Under the fork start method the child inherits whatever the server
    # process had in its memory tier; start empty so each worker's warm set
    # (and its hit accounting) reflects only the cells routed to it.
    cache.clear(memory=True)
    timings.enable(reset_counters=True)
    conn.send(("ready", os.getpid()))
    specs: dict[str, Any] = {}
    try:
        while True:
            task = task_q.get()
            if task is None:
                conn.send(("exit",))
                return
            key, spec_json, point = task
            spec = specs.get(spec_json)
            if spec is None:
                spec = specs[spec_json] = spec_from_dict(json.loads(spec_json))
            stats_before = _cache_counters()
            stages_before = timings.snapshot()
            t0 = time.perf_counter()
            try:
                records = _eval_point(spec, tuple(point))
            except Exception as exc:  # surfaced as a job failure server-side
                conn.send(("error", key, f"{type(exc).__name__}: {exc}"))
                continue
            conn.send(
                (
                    "done",
                    key,
                    records,
                    _counter_delta(stats_before, _cache_counters()),
                    timings.since(stages_before),
                    time.perf_counter() - t0,
                )
            )
    except (EOFError, BrokenPipeError, OSError):
        # Server went away; nothing useful left to do in this process.
        return


class WorkerHandle:
    """One generation of one worker slot (process + channels + bookkeeping)."""

    def __init__(self, worker_id: int, process, task_q, conn) -> None:
        self.id = worker_id
        self.process = process
        self.task_q = task_q
        self.conn = conn
        self.pid: int | None = None
        #: Cells dispatched to this generation and not yet reported.
        self.outstanding: dict[str, tuple] = {}
        self.graceful = False  # server sent the stop sentinel
        self.cells_done = 0

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class WorkerPool:
    """A fixed set of worker slots with respawn-on-death semantics.

    ``emit(handle, message)`` is called from per-worker reader threads for
    every message a child sends, plus a synthesized ``("lost",)`` when a
    pipe hits EOF — the server bridges these into its event loop.
    """

    def __init__(
        self,
        size: int,
        cache_dir: str | os.PathLike | None = None,
        emit: Callable[[WorkerHandle, tuple], None] | None = None,
        memory_items: dict[str, int] | None = None,
    ) -> None:
        if size < 1:
            raise ValueError("worker pool size must be >= 1")
        self.size = size
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.memory_items = memory_items
        self._emit = emit or (lambda handle, message: None)
        try:
            self._ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            self._ctx = mp.get_context("spawn")
        self._handles: dict[int, WorkerHandle] = {}
        self.respawns = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        for worker_id in range(self.size):
            self._handles[worker_id] = self._spawn(worker_id)

    def _spawn(self, worker_id: int) -> WorkerHandle:
        task_q = self._ctx.Queue()
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(task_q, send_conn, self.cache_dir, self.memory_items),
            name=f"repro-sweep-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        send_conn.close()  # child's end; parent EOF detection needs this
        handle = WorkerHandle(worker_id, process, task_q, recv_conn)
        reader = threading.Thread(
            target=self._read_loop,
            args=(handle,),
            name=f"repro-sweep-reader-{worker_id}",
            daemon=True,
        )
        reader.start()
        return handle

    def _read_loop(self, handle: WorkerHandle) -> None:
        while True:
            try:
                message = handle.conn.recv()
            except (EOFError, OSError):
                break
            except TypeError:
                # close() on another thread nulled the fd mid-recv; same as EOF.
                break
            if message[0] == "ready":
                handle.pid = message[1]
            self._emit(handle, message)
        self._emit(handle, ("lost",))

    # -- dispatch -----------------------------------------------------------

    def current(self, worker_id: int) -> WorkerHandle:
        return self._handles[worker_id]

    def handles(self) -> list[WorkerHandle]:
        return [self._handles[wid] for wid in sorted(self._handles)]

    def submit(self, worker_id: int, key: str, task: tuple) -> None:
        handle = self._handles[worker_id]
        handle.outstanding[key] = task
        handle.task_q.put((key, *task))

    def mark_done(self, handle: WorkerHandle, key: str) -> None:
        handle.outstanding.pop(key, None)
        handle.cells_done += 1

    def respawn(self, handle: WorkerHandle) -> dict[str, tuple]:
        """Replace a dead generation; return its orphaned (key -> task) map.

        Only replaces the slot if ``handle`` is still its current
        generation — a stale ``lost`` event from an already-replaced worker
        is a no-op returning no orphans.
        """
        if self._handles.get(handle.id) is not handle:
            return {}
        orphans = dict(handle.outstanding)
        handle.outstanding.clear()
        try:
            handle.conn.close()
        except OSError:
            pass
        self._handles[handle.id] = self._spawn(handle.id)
        self.respawns += 1
        return orphans

    # -- shutdown -----------------------------------------------------------

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful stop: sentinel every queue, then join, then terminate."""
        for handle in self._handles.values():
            handle.graceful = True
            try:
                handle.task_q.put(None)
            except (ValueError, OSError):  # queue already closed
                pass
        deadline = time.monotonic() + timeout
        for handle in self._handles.values():
            handle.process.join(max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(1.0)
            if handle.process.is_alive():  # pragma: no cover - last resort
                handle.process.kill()
                handle.process.join(1.0)
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.task_q.close()
            handle.task_q.cancel_join_thread()
        self._handles.clear()

    def info(self) -> list[dict[str, Any]]:
        return [
            {
                "id": handle.id,
                "pid": handle.pid,
                "alive": handle.alive,
                "outstanding": len(handle.outstanding),
                "cells_done": handle.cells_done,
            }
            for handle in self.handles()
        ]
