"""Synchronous unix-socket client for the sweep service.

Unary requests open a fresh connection, send one JSON line, and read one
JSON-line response; :meth:`SweepClient.attach` keeps its connection open
and yields the job's event stream (replayed completed cells, then live
cells, then a terminal ``end`` event).  An ``{"ok": false}`` response
raises :class:`ServiceError` with the server's message.

The client has no dependency on the server package beyond the wire
format, so scripts, tests, and CI smoke jobs can drive a service that
lives in another process (or that they are about to SIGKILL).
"""

from __future__ import annotations

import json
import os
import socket
import time
from typing import Any, Iterator

__all__ = ["ServiceError", "SweepClient"]


class ServiceError(RuntimeError):
    """The server answered with ``ok: false`` (or spoke garbage)."""


class SweepClient:
    """Talk JSON lines to a sweep service over its unix socket."""

    def __init__(
        self, socket_path: str | os.PathLike, timeout: float = 60.0
    ) -> None:
        self.socket_path = str(socket_path)
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self.socket_path)
        return sock

    @staticmethod
    def _send(sock: socket.socket, payload: dict) -> None:
        sock.sendall(json.dumps(payload).encode() + b"\n")

    @staticmethod
    def _recv_line(fh) -> dict:
        line = fh.readline()
        if not line:
            raise ServiceError("connection closed by server")
        try:
            return json.loads(line)
        except ValueError as exc:
            raise ServiceError(f"bad server response: {exc}") from None

    def _request(self, payload: dict) -> dict:
        with self._connect() as sock, sock.makefile("rb") as fh:
            self._send(sock, payload)
            response = self._recv_line(fh)
        if not response.get("ok"):
            raise ServiceError(response.get("error", "request failed"))
        return response

    # -- unary ops ----------------------------------------------------------

    def ping(self) -> bool:
        return bool(self._request({"op": "ping"}).get("pong"))

    def submit(self, spec: dict) -> dict:
        """Submit a sweep spec dict; returns ``{job, cells, collapsed}``."""
        return self._request({"op": "submit", "spec": spec})

    def jobs(self) -> list[dict]:
        return self._request({"op": "jobs"})["jobs"]

    def status(self, job: str) -> dict:
        return self._request({"op": "status", "job": job})

    def results(self, job: str) -> list[dict]:
        """Records of a finished job, in canonical grid order."""
        return self._request({"op": "results", "job": job})["records"]

    def cancel(self, job: str) -> dict:
        return self._request({"op": "cancel", "job": job})

    def stats(self) -> dict:
        return self._request({"op": "stats"})

    def shutdown(self) -> None:
        self._request({"op": "shutdown"})

    # -- streaming ----------------------------------------------------------

    def attach(self, job: str) -> Iterator[dict]:
        """Yield a job's event stream until its terminal ``end`` event."""
        with self._connect() as sock, sock.makefile("rb") as fh:
            self._send(sock, {"op": "attach", "job": job})
            header = self._recv_line(fh)
            if not header.get("ok"):
                raise ServiceError(header.get("error", "attach failed"))
            while True:
                event = self._recv_line(fh)
                yield event
                if event.get("event") == "end":
                    return

    def wait(self, job: str) -> dict:
        """Block until a job finishes; returns its ``end`` event."""
        for event in self.attach(job):
            if event.get("event") == "end":
                if event.get("status") == "failed":
                    raise ServiceError(
                        f"job {job} failed: {event.get('error')}"
                    )
                return event
        raise ServiceError(f"attach stream for {job} ended without 'end'")

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def wait_ready(
        socket_path: str | os.PathLike, timeout: float = 30.0
    ) -> "SweepClient":
        """Poll until a server answers ping on ``socket_path`` (for CI)."""
        client = SweepClient(socket_path, timeout=10.0)
        deadline = time.monotonic() + timeout
        while True:
            try:
                client.ping()
                return client
            except (OSError, ServiceError):
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"no sweep service on {socket_path} after {timeout}s"
                    ) from None
                time.sleep(0.1)
