"""Append-only, crash-resumable journal of completed sweep cells.

One journal per job, one JSON line per completed cell::

    {"v": 1, "cell": "<hex content key>", "records": [...]}

Appends are buffered and fsync'd in batches (``batch`` lines), so the
steady-state cost is one ``write``+``fsync`` per batch rather than per
cell; a crash loses at most ``batch - 1`` cells, which the server simply
recomputes.  :meth:`JobJournal.replay` tolerates a torn tail — a partial
last line from a writer killed mid-append — by truncating the file back to
the last complete, parseable line before appending resumes, so a journal
can never poison itself across restarts.

Records round-trip exactly: they are plain int/float/str dicts (the same
objects ``run_sweep`` returns), and JSON float serialization is
shortest-round-trip, so journaled records compare equal bit-for-bit with a
clean recomputation.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

__all__ = ["JOURNAL_VERSION", "JobJournal"]

JOURNAL_VERSION = 1


class JobJournal:
    """Batched-fsync append log of ``(cell_key, records)`` completions."""

    def __init__(self, path: str | os.PathLike, batch: int = 16) -> None:
        if batch < 1:
            raise ValueError("journal batch must be >= 1")
        self.path = Path(path)
        self.batch = batch
        self._fh = None
        self._pending = 0
        #: Cells appended over this instance's lifetime (not the replay).
        self.appended = 0

    # -- replay -------------------------------------------------------------

    @classmethod
    def replay(cls, path: str | os.PathLike) -> tuple[dict[str, list], int]:
        """Load completed cells from a journal, tolerating a torn tail.

        Returns ``(entries, good_end)``: ``entries`` maps cell key to its
        record list (first occurrence wins — duplicates can only arise from
        a crash between compute and dedup bookkeeping, and carry identical
        content), and ``good_end`` is the byte offset just past the last
        complete line, which :meth:`open` truncates to before appending.
        A missing file is an empty journal.
        """
        path = Path(path)
        entries: dict[str, list] = {}
        good_end = 0
        if not path.is_file():
            return entries, good_end
        with path.open("rb") as fh:
            data = fh.read()
        offset = 0
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline < 0:
                break  # torn tail: no terminator, writer died mid-append
            line = data[offset:newline]
            try:
                entry = json.loads(line)
                key = entry["cell"]
                records = entry["records"]
                if entry.get("v") != JOURNAL_VERSION or not isinstance(
                    records, list
                ):
                    raise ValueError("unsupported journal line")
            except (ValueError, KeyError, TypeError):
                break  # torn or foreign line: everything after is suspect
            entries.setdefault(key, records)
            offset = newline + 1
            good_end = offset
        return entries, good_end

    # -- appending ----------------------------------------------------------

    def open(self, truncate_to: int | None = None) -> None:
        """Open for appending, optionally truncating a torn tail first."""
        if self._fh is not None:
            raise RuntimeError("journal already open")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("ab")
        if truncate_to is not None and self._fh.tell() > truncate_to:
            self._fh.truncate(truncate_to)
            self._fh.seek(truncate_to)
        self._pending = 0

    def append(self, cell_key: str, records: list[dict[str, Any]]) -> None:
        """Append one completed cell; flushes+fsyncs every ``batch`` lines."""
        if self._fh is None:
            raise RuntimeError("journal is not open")
        line = json.dumps(
            {"v": JOURNAL_VERSION, "cell": cell_key, "records": records},
            sort_keys=True,
            separators=(",", ":"),
        )
        self._fh.write(line.encode() + b"\n")
        self._pending += 1
        self.appended += 1
        if self._pending >= self.batch:
            self.flush()

    def flush(self) -> None:
        """Push buffered lines to disk (write + fsync); safe when empty."""
        if self._fh is None or self._pending == 0:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._pending = 0

    def close(self) -> None:
        if self._fh is None:
            return
        self.flush()
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "JobJournal":
        if self._fh is None:
            self.open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()
