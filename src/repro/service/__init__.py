"""Persistent sharded sweep job service.

``run_sweep`` evaluates one grid in one shot: every invocation cold-starts
its worker pool, every worker re-reads the disk cache, and a crash loses
all progress.  This package promotes sweeps into a long-running job
service — ``repro serve`` hosts a pool of persistent worker processes
behind a unix-socket API, and ``repro submit`` / ``repro jobs`` /
``repro attach`` / ``repro cancel`` drive it from any number of concurrent
clients.  Three properties make it fast and safe:

- **cache-affinity scheduling** (:mod:`.scheduler`): cells are grouped by
  their trace-cache token and stick to one long-lived worker, so an
  expensive artifact is deserialized once into that worker's warm memory
  LRU instead of N times across the pool;
- **in-flight dedup** (:mod:`.server`): identical cells across concurrent
  jobs collapse onto one computation, and completed cells are served to
  later jobs from a server-side record cache;
- **crash-resumable journal** (:mod:`.journal`): every completed cell is
  appended (content-keyed, fsync'd in batches) to a per-job journal, so a
  killed worker is respawned with its queue requeued and a killed server
  resumes every incomplete job without recomputing journaled cells.

Records are bit-identical to :func:`repro.analysis.sweep.run_sweep` for
the same spec — each cell is a pure function of ``(spec, point)``, and the
final record order is the spec's canonical deduplicated grid order — under
any worker count, scheduler mode, and crash/resume pattern.
"""

from .cells import Cell, cell_key, expand_cells, spec_from_dict, spec_to_dict
from .client import ServiceError, SweepClient
from .journal import JobJournal
from .scheduler import CellScheduler
from .server import SweepService, run_server

__all__ = [
    "Cell",
    "cell_key",
    "expand_cells",
    "spec_from_dict",
    "spec_to_dict",
    "JobJournal",
    "CellScheduler",
    "SweepService",
    "run_server",
    "SweepClient",
    "ServiceError",
]
