"""The sweep job server: job state, dedup, failover, and the socket API.

:class:`SweepService` owns a :class:`~repro.service.workers.WorkerPool`,
a :class:`~repro.service.scheduler.CellScheduler`, and a directory of job
state (``<state_dir>/jobs/<job_id>/{job.json,journal.jsonl}``).  Cells are
content-keyed (:func:`~repro.service.cells.cell_key`), which buys three
things at once:

- **in-flight dedup** — a cell requested by several concurrent jobs is
  computed once; every subscriber job receives the record the moment it
  lands, and recently completed cells are replayed to new jobs from a
  bounded server-side record cache;
- **crash resume** — completed cells are journaled per job; on startup
  every job still marked ``running`` replays its journal and only the
  missing cells are rescheduled;
- **failover** — a worker that dies mid-cell is respawned in place and its
  orphaned cells requeued (sticky affinity preserved), with first-result-
  wins semantics if a duplicate completion ever races in.

All state mutation happens on the asyncio event loop; worker reader
threads only enqueue events via ``call_soon_threadsafe``.  The wire API is
JSON lines over a unix socket (ops: ping, submit, jobs, status, results,
attach, cancel, stats, shutdown) — see :mod:`repro.service.client`.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import os
import signal
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any

from .cells import Cell, expand_cells, spec_from_dict, spec_to_dict
from .journal import JobJournal
from .scheduler import SCHEDULER_MODES, CellScheduler
from .workers import WorkerHandle, WorkerPool

__all__ = ["SweepService", "run_server"]

_log = logging.getLogger("repro.service")

#: readline limit for the asyncio server — results lines carry whole jobs.
_STREAM_LIMIT = 32 * 1024 * 1024

_TERMINAL = ("done", "failed", "cancelled")


def _write_json_atomic(path: Path, payload: dict) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class _Inflight:
    """One cell being computed, shared by every job that wants it."""

    __slots__ = ("key", "token", "task", "worker_id", "subscribers")

    def __init__(self, key: str, token: str, task: tuple, worker_id: int) -> None:
        self.key = key
        self.token = token
        self.task = task  # (spec_json, point_list) — enough to recompute
        self.worker_id = worker_id
        self.subscribers: set[str] = set()


class _Job:
    """Server-side state of one submitted sweep."""

    def __init__(self, job_id: str, spec, cells: list[Cell], job_dir: Path) -> None:
        self.id = job_id
        self.spec = spec
        self.cells = cells
        self.dir = job_dir
        self.key_index = {cell.key: cell.index for cell in cells}
        self.completed: dict[str, list] = {}
        self.status = "running"
        self.error: str | None = None
        self.created = time.time()
        self.collapsed = 0
        self.counts = {"restored": 0, "dedup_warm": 0, "dedup_inflight": 0}
        self.watchers: list[asyncio.Queue] = []
        self.done_event = asyncio.Event()
        self.journal = JobJournal(job_dir / "journal.jsonl")

    @property
    def total(self) -> int:
        return len(self.cells)

    @property
    def remaining(self) -> int:
        return self.total - len(self.completed)

    def records(self) -> list[dict]:
        """All records in canonical grid order (requires terminal 'done')."""
        out: list[dict] = []
        for cell in self.cells:
            out.extend(self.completed[cell.key])
        return out

    def summary(self) -> dict[str, Any]:
        return {
            "job": self.id,
            "status": self.status,
            "cells_total": self.total,
            "cells_done": len(self.completed),
            "collapsed": self.collapsed,
            "created": self.created,
            "error": self.error,
            "counts": dict(self.counts),
        }

    def manifest(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "status": self.status,
            "created": self.created,
            "collapsed": self.collapsed,
            "cells_total": self.total,
            "error": self.error,
            "spec": spec_to_dict(self.spec),
        }


class SweepService:
    """Async sweep job service over a persistent sharded worker pool."""

    def __init__(
        self,
        state_dir: str | os.PathLike,
        workers: int = 2,
        scheduler: str = "affinity",
        cache_dir: str | os.PathLike | None = None,
        journal_batch: int = 16,
        record_cache_items: int = 4096,
    ) -> None:
        if scheduler not in SCHEDULER_MODES:
            raise ValueError(f"unknown scheduler mode {scheduler!r}")
        self.state_dir = Path(state_dir)
        self.jobs_dir = self.state_dir / "jobs"
        self.cache_dir = (
            Path(cache_dir) if cache_dir is not None else self.state_dir / "cache"
        )
        self.journal_batch = journal_batch
        self.scheduler = CellScheduler(scheduler)
        self.pool = WorkerPool(workers, cache_dir=self.cache_dir, emit=self._emit)
        self._jobs: dict[str, _Job] = {}
        self._inflight: dict[str, _Inflight] = {}
        self._records: OrderedDict[str, list] = OrderedDict()
        self._record_cache_items = record_cache_items
        self.counts = {
            "cells_computed": 0,
            "dedup_inflight": 0,
            "dedup_warm": 0,
            "restored": 0,
            "errors": 0,
        }
        self.cache_totals: dict[str, dict[str, int]] = {}
        self.stage_totals: dict[str, float] = {}
        self.cell_seconds = 0.0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._events: asyncio.Queue | None = None
        self._dispatcher: asyncio.Task | None = None
        self._stopping = False
        self._next_job = 1
        self.shutdown_requested: asyncio.Event | None = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Spawn workers, then resume every job left in ``running`` state."""
        self._loop = asyncio.get_running_loop()
        self._events = asyncio.Queue()
        self.shutdown_requested = asyncio.Event()
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.pool.start()
        for handle in self.pool.handles():
            self.scheduler.add_worker(handle.id)
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        self._resume_jobs()

    async def stop(self) -> None:
        """Stop workers and flush journals; running jobs resume next start."""
        self._stopping = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
        await asyncio.get_running_loop().run_in_executor(None, self.pool.stop)
        for job in self._jobs.values():
            job.journal.close()

    # -- event bridge (reader threads -> loop) ------------------------------

    def _emit(self, handle: WorkerHandle, message: tuple) -> None:
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._events.put_nowait, (handle, message))
        except RuntimeError:  # loop shut down mid-emit
            pass

    async def _dispatch_loop(self) -> None:
        while True:
            handle, message = await self._events.get()
            kind = message[0]
            try:
                if kind == "done":
                    self._on_done(handle, *message[1:])
                elif kind == "error":
                    self._on_error(handle, *message[1:])
                elif kind == "lost":
                    self._on_lost(handle)
                # "ready"/"exit" are informational
            except Exception:  # pragma: no cover - keep the loop alive
                _log.exception("service: error handling %s event", kind)

    # -- job intake ---------------------------------------------------------

    def _new_job_id(self) -> str:
        while True:
            job_id = f"job-{self._next_job:04d}"
            self._next_job += 1
            if job_id not in self._jobs and not (self.jobs_dir / job_id).exists():
                return job_id

    def submit(self, spec_data: dict) -> dict[str, Any]:
        """Register a job, dedup its cells, and schedule what's missing."""
        if self._stopping:
            raise RuntimeError("service is shutting down")
        spec = spec_from_dict(spec_data)
        cells, collapsed = expand_cells(spec)
        job_id = self._new_job_id()
        job_dir = self.jobs_dir / job_id
        job_dir.mkdir(parents=True)
        job = _Job(job_id, spec, cells, job_dir)
        job.collapsed = collapsed
        job.journal.batch = self.journal_batch
        job.journal.open()
        self._jobs[job_id] = job
        _write_json_atomic(job_dir / "job.json", job.manifest())
        spec_json = json.dumps(
            spec_to_dict(spec), sort_keys=True, separators=(",", ":")
        )
        for cell in cells:
            self._need_cell(job, cell, spec_json)
        if job.remaining == 0:
            self._finalize(job, "done")
        _log.info(
            "service: %s submitted (%d cells, %d collapsed)",
            job_id,
            job.total,
            collapsed,
        )
        return {"job": job_id, "cells": job.total, "collapsed": collapsed}

    def _need_cell(self, job: _Job, cell: Cell, spec_json: str) -> None:
        """Satisfy one cell: record cache, in-flight piggyback, or schedule."""
        if cell.key in job.completed:
            return
        cached = self._records.get(cell.key)
        if cached is not None:
            self._records.move_to_end(cell.key)
            job.counts["dedup_warm"] += 1
            self.counts["dedup_warm"] += 1
            self._job_cell_done(job, cell.key, cached)
            return
        entry = self._inflight.get(cell.key)
        if entry is not None:
            entry.subscribers.add(job.id)
            job.counts["dedup_inflight"] += 1
            self.counts["dedup_inflight"] += 1
            return
        task = (spec_json, list(cell.point))
        worker_id = self.scheduler.assign(cell.token, cell.key)
        entry = _Inflight(cell.key, cell.token, task, worker_id)
        entry.subscribers.add(job.id)
        self._inflight[cell.key] = entry
        self.pool.submit(worker_id, cell.key, task)

    # -- completion paths ---------------------------------------------------

    def _store_record(self, key: str, records: list) -> None:
        self._records[key] = records
        self._records.move_to_end(key)
        while len(self._records) > self._record_cache_items:
            self._records.popitem(last=False)

    def _on_done(
        self,
        handle: WorkerHandle,
        key: str,
        records: list,
        cache_delta: dict,
        stage_delta: dict,
        seconds: float,
    ) -> None:
        self.pool.mark_done(handle, key)
        entry = self._inflight.pop(key, None)
        if entry is None:
            return  # duplicate completion after failover: first result won
        self.scheduler.release(entry.worker_id)
        self.counts["cells_computed"] += 1
        self.cell_seconds += seconds
        for region, delta in cache_delta.items():
            totals = self.cache_totals.setdefault(
                region, {"hits": 0, "misses": 0, "disk_hits": 0}
            )
            for field, value in delta.items():
                totals[field] += value
        for stage, value in stage_delta.items():
            self.stage_totals[stage] = self.stage_totals.get(stage, 0.0) + value
        self._store_record(key, records)
        for job_id in entry.subscribers:
            job = self._jobs.get(job_id)
            if job is not None and job.status == "running":
                self._job_cell_done(job, key, records)

    def _on_error(self, handle: WorkerHandle, key: str, message: str) -> None:
        self.pool.mark_done(handle, key)
        entry = self._inflight.pop(key, None)
        if entry is None:
            return
        self.scheduler.release(entry.worker_id)
        self.counts["errors"] += 1
        _log.error("service: cell %s failed: %s", key, message)
        for job_id in list(entry.subscribers):
            job = self._jobs.get(job_id)
            if job is not None and job.status == "running":
                self._fail_job(job, f"cell {key[:12]} failed: {message}")

    def _on_lost(self, handle: WorkerHandle) -> None:
        if self._stopping or handle.graceful:
            return
        if not self._handles_current(handle):
            return  # stale event for an already-replaced generation
        orphans = self.pool.respawn(handle)
        _log.warning(
            "service: worker %d (pid %s) died; respawned, requeuing %d cells",
            handle.id,
            handle.pid,
            len(orphans),
        )
        self.scheduler.add_worker(handle.id)
        for key, task in orphans.items():
            entry = self._inflight.get(key)
            if entry is None:
                continue  # result landed just before the pipe broke
            self.scheduler.release(entry.worker_id)
            entry.worker_id = self.scheduler.requeue(
                handle.id, entry.token, key
            )
            self.pool.submit(entry.worker_id, key, task)

    def _handles_current(self, handle: WorkerHandle) -> bool:
        try:
            return self.pool.current(handle.id) is handle
        except KeyError:
            return False

    def _job_cell_done(self, job: _Job, key: str, records: list) -> None:
        if key in job.completed:
            return
        job.completed[key] = records
        job.journal.append(key, records)
        self._notify(
            job,
            {
                "event": "cell",
                "job": job.id,
                "index": job.key_index[key],
                "cell": key,
                "done": len(job.completed),
                "total": job.total,
                "records": records,
            },
        )
        if job.remaining == 0:
            self._finalize(job, "done")

    def _finalize(self, job: _Job, status: str, error: str | None = None) -> None:
        job.status = status
        job.error = error
        job.journal.close()
        _write_json_atomic(job.dir / "job.json", job.manifest())
        job.done_event.set()
        self._notify(
            job,
            {"event": "end", "job": job.id, "status": status, "error": error},
        )
        job.watchers.clear()
        _log.info("service: %s -> %s", job.id, status)

    def _fail_job(self, job: _Job, message: str) -> None:
        self._unsubscribe(job.id)
        self._finalize(job, "failed", message)

    def _unsubscribe(self, job_id: str) -> None:
        for entry in self._inflight.values():
            entry.subscribers.discard(job_id)

    def _notify(self, job: _Job, event: dict) -> None:
        for queue in job.watchers:
            queue.put_nowait(event)

    # -- resume -------------------------------------------------------------

    def _resume_jobs(self) -> None:
        """Rebuild jobs from disk; reschedule only unjournaled cells."""
        manifests = []
        for job_dir in sorted(self.jobs_dir.iterdir() if self.jobs_dir.is_dir() else []):
            manifest_path = job_dir / "job.json"
            if not manifest_path.is_file():
                continue
            try:
                manifest = json.loads(manifest_path.read_text())
            except ValueError:
                _log.warning("service: skipping unreadable %s", manifest_path)
                continue
            manifests.append((job_dir, manifest))
            number = str(manifest.get("id", "")).rsplit("-", 1)[-1]
            if number.isdigit():
                self._next_job = max(self._next_job, int(number) + 1)
        for job_dir, manifest in manifests:
            if manifest.get("status") != "running":
                continue
            try:
                spec = spec_from_dict(manifest["spec"])
            except (KeyError, ValueError, TypeError) as exc:
                _log.warning(
                    "service: cannot resume %s: %s", manifest.get("id"), exc
                )
                continue
            cells, collapsed = expand_cells(spec)
            job = _Job(manifest["id"], spec, cells, job_dir)
            job.collapsed = collapsed
            job.created = manifest.get("created", job.created)
            job.journal.batch = self.journal_batch
            entries, good_end = JobJournal.replay(job.journal.path)
            job.journal.open(truncate_to=good_end)
            for cell in cells:
                records = entries.get(cell.key)
                if records is not None:
                    job.completed[cell.key] = records
                    self._store_record(cell.key, records)
            job.counts["restored"] = len(job.completed)
            self.counts["restored"] += len(job.completed)
            self._jobs[job.id] = job
            _log.info(
                "service: resumed %s (%d/%d cells journaled)",
                job.id,
                len(job.completed),
                job.total,
            )
            if job.remaining == 0:
                self._finalize(job, "done")
                continue
            spec_json = json.dumps(
                spec_to_dict(spec), sort_keys=True, separators=(",", ":")
            )
            for cell in cells:
                self._need_cell(job, cell, spec_json)

    # -- queries ------------------------------------------------------------

    def get_job(self, job_id: str) -> _Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return job

    def list_jobs(self) -> list[dict]:
        return [
            job.summary()
            for job in sorted(self._jobs.values(), key=lambda j: j.id)
        ]

    def cancel(self, job_id: str) -> dict:
        job = self.get_job(job_id)
        if job.status == "running":
            self._unsubscribe(job.id)
            self._finalize(job, "cancelled")
        return job.summary()

    async def wait(self, job_id: str) -> str:
        job = self.get_job(job_id)
        await job.done_event.wait()
        return job.status

    def results(self, job_id: str) -> list[dict]:
        job = self.get_job(job_id)
        if job.status != "done":
            raise RuntimeError(f"job {job_id} is {job.status}, not done")
        return job.records()

    def stats(self) -> dict[str, Any]:
        jobs_by_status: dict[str, int] = {}
        for job in self._jobs.values():
            jobs_by_status[job.status] = jobs_by_status.get(job.status, 0) + 1
        return {
            "counts": dict(self.counts),
            "jobs": jobs_by_status,
            "inflight": len(self._inflight),
            "record_cache": len(self._records),
            "cache": {k: dict(v) for k, v in self.cache_totals.items()},
            "stages": dict(self.stage_totals),
            "cell_seconds": self.cell_seconds,
            "workers": self.pool.info(),
            "respawns": self.pool.respawns,
            "scheduler": {
                "mode": self.scheduler.mode,
                "load": {str(k): v for k, v in self.scheduler.load().items()},
            },
        }

    # -- socket API ---------------------------------------------------------

    async def serve(self, socket_path: str | os.PathLike) -> asyncio.AbstractServer:
        socket_path = Path(socket_path)
        socket_path.parent.mkdir(parents=True, exist_ok=True)
        with contextlib.suppress(FileNotFoundError):
            socket_path.unlink()
        return await asyncio.start_unix_server(
            self._handle_connection, path=str(socket_path), limit=_STREAM_LIMIT
        )

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    op = request["op"]
                except (ValueError, KeyError, TypeError):
                    await self._reply(writer, {"ok": False, "error": "bad request"})
                    continue
                if op == "attach":
                    await self._op_attach(writer, request)
                    break  # the stream ends the connection
                try:
                    response = self._handle_op(op, request)
                except KeyError as exc:
                    response = {"ok": False, "error": str(exc.args[0])}
                except (RuntimeError, ValueError) as exc:
                    response = {"ok": False, "error": str(exc)}
                await self._reply(writer, response)
                if op == "shutdown" and response.get("ok"):
                    self.shutdown_requested.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    def _handle_op(self, op: str, request: dict) -> dict:
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "submit":
            spec = request.get("spec")
            if not isinstance(spec, dict):
                raise ValueError("submit needs a 'spec' object")
            return {"ok": True, **self.submit(spec)}
        if op == "jobs":
            return {"ok": True, "jobs": self.list_jobs()}
        if op == "status":
            return {"ok": True, **self.get_job(request["job"]).summary()}
        if op == "results":
            job = self.get_job(request["job"])
            if job.status != "done":
                raise RuntimeError(f"job {job.id} is {job.status}, not done")
            return {"ok": True, "job": job.id, "records": job.records()}
        if op == "cancel":
            return {"ok": True, **self.cancel(request["job"])}
        if op == "stats":
            return {"ok": True, **self.stats()}
        if op == "shutdown":
            return {"ok": True, "stopping": True}
        raise ValueError(f"unknown op {op!r}")

    async def _op_attach(self, writer, request: dict) -> None:
        """Stream a job's cells (replay, then live) and a final end event."""
        try:
            job = self.get_job(request["job"])
        except (KeyError, TypeError) as exc:
            await self._reply(writer, {"ok": False, "error": str(exc)})
            return
        queue: asyncio.Queue = asyncio.Queue()
        # Register, then replay: both happen without yielding to the loop,
        # so live events cannot interleave with (or duplicate) the replay.
        live = job.status == "running"
        if live:
            job.watchers.append(queue)
        await self._reply(
            writer, {"ok": True, **job.summary(), "streaming": True}
        )
        try:
            done_keys = sorted(job.completed, key=job.key_index.__getitem__)
            for n, key in enumerate(done_keys, 1):
                await self._reply(
                    writer,
                    {
                        "event": "cell",
                        "job": job.id,
                        "index": job.key_index[key],
                        "cell": key,
                        "done": n,
                        "total": job.total,
                        "records": job.completed[key],
                        "replayed": True,
                    },
                )
            if not live:
                await self._reply(
                    writer,
                    {
                        "event": "end",
                        "job": job.id,
                        "status": job.status,
                        "error": job.error,
                    },
                )
                return
            while True:
                event = await queue.get()
                await self._reply(writer, event)
                if event.get("event") == "end":
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if queue in job.watchers:
                job.watchers.remove(queue)

    @staticmethod
    async def _reply(writer, payload: dict) -> None:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()


def run_server(
    state_dir: str | os.PathLike,
    socket_path: str | os.PathLike,
    workers: int = 2,
    scheduler: str = "affinity",
    journal_batch: int = 16,
    cache_dir: str | os.PathLike | None = None,
) -> int:
    """Blocking entry point for ``repro serve``: run until signalled."""

    async def _amain() -> int:
        service = SweepService(
            state_dir,
            workers=workers,
            scheduler=scheduler,
            cache_dir=cache_dir,
            journal_batch=journal_batch,
        )
        await service.start()
        server = await service.serve(socket_path)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, stop.set)
        print(
            f"repro sweep service ready: socket={socket_path} "
            f"workers={workers} scheduler={scheduler}",
            flush=True,
        )
        serve_task = asyncio.ensure_future(server.serve_forever())
        waiters = [
            asyncio.ensure_future(stop.wait()),
            asyncio.ensure_future(service.shutdown_requested.wait()),
        ]
        try:
            await asyncio.wait(
                [serve_task, *waiters], return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            for task in (serve_task, *waiters):
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
            server.close()
            await server.wait_closed()
            await service.stop()
            with contextlib.suppress(FileNotFoundError):
                Path(socket_path).unlink()
        return 0

    return asyncio.run(_amain())
