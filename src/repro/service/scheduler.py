"""Cache-affinity cell scheduling over persistent workers.

The expensive part of a sweep cell is not the analysis — it is
deserializing the trace, matrices, and mappings the analysis consumes.
Those artifacts live in each worker's process-local memory LRU
(:mod:`repro.cache`), so the scheduler's one job is to keep cells that
share artifacts on the same worker:

- **affinity** mode (the default) keeps a sticky ``token -> worker`` map.
  The first cell of a token goes to the least-loaded worker (outstanding
  cells, lowest id breaking ties — deterministic for a given arrival
  order); every later cell of that token follows it.  Load is balanced at
  token granularity, warm hits at cell granularity.
- **random** mode spreads cells by a stable hash of their content key,
  ignoring tokens.  It exists as the control arm: ``repro bench sweep``
  gates affinity mode on beating it on warm-hit rate.

Scheduling decisions never affect record *values* — every cell is a pure
function of its spec — only where the artifact cost is paid, so any mode,
worker count, or failover pattern yields bit-identical results.
"""

from __future__ import annotations

import hashlib

__all__ = ["CellScheduler", "SCHEDULER_MODES"]

SCHEDULER_MODES = ("affinity", "random")


def _stable_hash(text: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(text.encode(), digest_size=8).digest(), "big"
    )


class CellScheduler:
    """Assigns cells to worker slots; tracks per-slot outstanding load."""

    def __init__(self, mode: str = "affinity") -> None:
        if mode not in SCHEDULER_MODES:
            raise ValueError(
                f"unknown scheduler mode {mode!r} (choose from "
                f"{', '.join(SCHEDULER_MODES)})"
            )
        self.mode = mode
        self._load: dict[int, int] = {}
        self._sticky: dict[str, int] = {}

    # -- worker membership --------------------------------------------------

    @property
    def workers(self) -> list[int]:
        return sorted(self._load)

    def add_worker(self, worker_id: int) -> None:
        self._load.setdefault(worker_id, 0)

    def remove_worker(self, worker_id: int) -> None:
        """Forget a slot (pool shrink): its tokens re-home on next assign."""
        self._load.pop(worker_id, None)
        self._sticky = {
            token: wid for token, wid in self._sticky.items() if wid != worker_id
        }

    # -- assignment ---------------------------------------------------------

    def assign(self, token: str, key: str) -> int:
        """Pick the worker slot for one cell and charge its load."""
        if not self._load:
            raise RuntimeError("scheduler has no workers")
        if self.mode == "random":
            ids = self.workers
            wid = ids[_stable_hash(key) % len(ids)]
        else:
            wid = self._sticky.get(token)
            if wid is None or wid not in self._load:
                wid = min(self._load, key=lambda w: (self._load[w], w))
                self._sticky[token] = wid
        self._load[wid] += 1
        return wid

    def requeue(self, worker_id: int, token: str, key: str) -> int:
        """Re-assign an orphaned cell after its worker slot was respawned.

        The slot survives a worker death (same queues, fresh process), and
        its sticky tokens are still the right destination — the respawned
        process re-warms from the disk tier exactly once per token.  The
        dead worker's charged load was already released by the caller.
        """
        return self.assign(token, key)

    def release(self, worker_id: int) -> None:
        """One outstanding cell of the slot finished (or was orphaned)."""
        if worker_id in self._load and self._load[worker_id] > 0:
            self._load[worker_id] -= 1

    def load(self) -> dict[int, int]:
        return dict(self._load)
