"""The collective-algorithm engine registry.

Mirrors :mod:`repro.routing`: a name table of engine classes, resolved by
:func:`get_algorithm`.  Lives in its own module (rather than the package
``__init__``) so the trace translators can resolve engines without an
import cycle.
"""

from __future__ import annotations

from .base import CollectiveAlgorithm, FlatCollective
from .bine import BineCollective
from .binomial import BinomialCollective
from .recursive_doubling import RecursiveDoublingCollective
from .ring import RingCollective

__all__ = ["COLLECTIVES", "get_algorithm"]

_ALGORITHMS: dict[str, type[CollectiveAlgorithm]] = {
    cls.name: cls
    for cls in (
        FlatCollective,
        BinomialCollective,
        RingCollective,
        RecursiveDoublingCollective,
        BineCollective,
    )
}

#: Canonical engine names (CLI choices, sweep axes, benchmarks).
COLLECTIVES: tuple[str, ...] = tuple(_ALGORITHMS)


def get_algorithm(algo: str | CollectiveAlgorithm) -> CollectiveAlgorithm:
    """Resolve an engine name (or pass an instance through)."""
    if isinstance(algo, CollectiveAlgorithm):
        return algo
    try:
        cls = _ALGORITHMS[algo]
    except KeyError:
        known = ", ".join(COLLECTIVES)
        raise ValueError(
            f"unknown collective algorithm {algo!r} (known: {known})"
        ) from None
    return cls()
