"""Trace-level collective translation.

Walks a trace and expands every collective record into point-to-point
messages through a pluggable :class:`~repro.collectives.base.CollectiveAlgorithm`
engine (default ``flat``, the paper's §4.4 expansion).  Two forms:

- :func:`iter_send_groups` — the per-event iterator: one
  :class:`SendGroup` per p2p send, one or two per collective record.
- :func:`iter_send_batches` — the columnar iterator: whole
  :class:`~repro.core.blocks.EventBlock` runs expand into a handful of
  fused :class:`SendBatch` arrays (one per block and traffic class /
  collective group), which the traffic-matrix builder consumes without
  per-message allocation.

Both produce the same multiset of messages; the equivalence suite pins the
resulting matrices bit-for-bit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..core.blocks import KIND_COLLECTIVE, KIND_P2P_SEND, OPS, EventBlock
from ..core.events import CollectiveEvent, P2PEvent
from ..core.trace import Trace
from .base import CollectiveAlgorithm
from .patterns import SendGroup
from .registry import get_algorithm

__all__ = [
    "TrafficClass",
    "ClassifiedSends",
    "SendBatch",
    "iter_send_groups",
    "iter_send_batches",
    "iter_stream_send_batches",
    "collective_volume",
]


class TrafficClass(enum.Enum):
    """Origin of a translated message stream."""

    P2P = "p2p"
    COLLECTIVE = "collective"


@dataclass(frozen=True)
class ClassifiedSends:
    """A :class:`SendGroup` plus the traffic class it came from."""

    group: SendGroup
    traffic_class: TrafficClass


@dataclass(frozen=True)
class SendBatch:
    """Many translated messages as parallel arrays.

    Row ``i`` says: rank ``src[i]`` sends ``calls[i]`` messages of
    ``bytes_per_msg[i]`` bytes to rank ``dst[i]``.  All ranks are global.
    """

    src: np.ndarray  # int64[m]
    dst: np.ndarray  # int64[m]
    bytes_per_msg: np.ndarray  # int64[m]
    calls: np.ndarray  # int64[m]
    traffic_class: TrafficClass

    def __post_init__(self) -> None:
        if not (
            self.src.shape == self.dst.shape == self.bytes_per_msg.shape == self.calls.shape
        ):
            raise ValueError("SendBatch columns must be parallel arrays")

    @property
    def total_bytes(self) -> int:
        """Bytes injected across all rows and calls."""
        return int((self.bytes_per_msg * self.calls).sum())

    @property
    def num_messages(self) -> int:
        return int(self.calls.sum())


def iter_send_groups(
    trace: Trace,
    include_p2p: bool = True,
    include_collectives: bool = True,
    collective: str | CollectiveAlgorithm = "flat",
) -> Iterator[ClassifiedSends]:
    """Yield every injected message fan-out of a trace, one group per event.

    Point-to-point send records become single-destination groups; collective
    records are expanded through the ``collective`` engine (default the
    paper's flat patterns).  RECV records are skipped (traffic is accounted
    on the send side).
    """
    assert trace.communicators is not None
    engine = get_algorithm(collective)
    size_of = trace.datatypes.size_of
    if include_p2p:
        # Gather all p2p send fields up front: one bulk array pair instead
        # of a length-1 allocation per event (the groups below are views).
        sends = [
            ev
            for ev in trace.events
            if isinstance(ev, P2PEvent) and ev.is_send
        ]
        all_dsts = np.fromiter(
            (ev.peer for ev in sends), dtype=np.int64, count=len(sends)
        )
        all_bytes = np.fromiter(
            (ev.bytes_per_call(size_of(ev.dtype)) for ev in sends),
            dtype=np.int64,
            count=len(sends),
        )
        pos = 0
    for ev in trace.events:
        if isinstance(ev, P2PEvent):
            if not include_p2p or not ev.is_send:
                continue
            group = SendGroup(
                src=ev.caller,
                dsts=all_dsts[pos : pos + 1],
                bytes_per_msg=all_bytes[pos : pos + 1],
                calls=ev.repeat,
            )
            pos += 1
            yield ClassifiedSends(group, TrafficClass.P2P)
        elif isinstance(ev, CollectiveEvent):
            if not include_collectives:
                continue
            comm = trace.communicators.get(ev.comm)
            elem = size_of(ev.dtype)
            for group in engine.expand(ev, comm, elem):
                yield ClassifiedSends(group, TrafficClass.COLLECTIVE)


def _block_batches(
    datatypes,
    communicators,
    block: EventBlock,
    include_p2p: bool,
    include_collectives: bool,
    engine: CollectiveAlgorithm,
) -> Iterator[SendBatch]:
    """Expand one block's rows against explicit datatype/communicator tables.

    Taking the tables instead of a :class:`Trace` lets the same expansion
    serve both whole traces and :class:`~repro.core.stream.BlockStream`
    chunks; each block is self-contained (its name tables intern everything
    its rows reference), so expansion is chunk-local and the translated
    message multiset is independent of where chunk boundaries fall.
    """
    sizes = np.array(
        [datatypes.size_of(name) for name in block.dtype_names],
        dtype=np.int64,
    )
    if include_p2p:
        mask = block.kind == KIND_P2P_SEND
        if mask.any():
            yield SendBatch(
                src=block.caller[mask],
                dst=block.peer[mask],
                bytes_per_msg=block.count[mask] * sizes[block.dtype_id[mask]],
                calls=block.repeat[mask],
                traffic_class=TrafficClass.P2P,
            )
    if include_collectives:
        mask = block.kind == KIND_COLLECTIVE
        if not mask.any():
            return
        callers = block.caller[mask]
        nbytes = block.count[mask] * sizes[block.dtype_id[mask]]
        roots = block.root[mask]
        calls = block.repeat[mask]
        ops = block.op[mask].astype(np.int64)
        comm_ids = block.comm_id[mask].astype(np.int64)
        assert communicators is not None
        # one expansion per distinct (op, communicator) pair in the block
        group_key = ops * len(block.comm_names) + comm_ids
        for key in np.unique(group_key):
            sel = group_key == key
            op = OPS[int(key) // len(block.comm_names)]
            comm = communicators.get(
                block.comm_names[int(key) % len(block.comm_names)]
            )
            for src, dst, bpm, cls in engine.expand_batch(
                op, comm, callers[sel], nbytes[sel], roots[sel], calls[sel]
            ):
                yield SendBatch(src, dst, bpm, cls, TrafficClass.COLLECTIVE)


def iter_send_batches(
    trace: Trace,
    include_p2p: bool = True,
    include_collectives: bool = True,
    collective: str | CollectiveAlgorithm = "flat",
) -> Iterator[SendBatch]:
    """Columnar counterpart of :func:`iter_send_groups`.

    Expands the trace's :class:`~repro.core.blocks.EventBlock` columns into
    fused message batches.  Works for any trace (an event-object trace is
    blockified first); block-native traces pay no per-event cost at all.
    """
    assert trace.communicators is not None
    engine = get_algorithm(collective)
    for block in trace.blocks():
        yield from _block_batches(
            trace.datatypes,
            trace.communicators,
            block,
            include_p2p,
            include_collectives,
            engine,
        )


def iter_stream_send_batches(
    stream,
    include_p2p: bool = True,
    include_collectives: bool = True,
    collective: str | CollectiveAlgorithm = "flat",
) -> Iterator[SendBatch]:
    """Chunked collective expansion over a :class:`~repro.core.stream.BlockStream`.

    One chunk is expanded at a time, so peak memory is bounded by the chunk
    size plus its fan-out, never the whole trace.  Yields the same message
    multiset as :func:`iter_send_batches` over the materialized trace
    (collective expansion is per-caller-row independent, so a phase
    spanning a chunk boundary expands identically).
    """
    engine = get_algorithm(collective)
    for block in stream:
        yield from _block_batches(
            stream.datatypes,
            stream.communicators,
            block,
            include_p2p,
            include_collectives,
            engine,
        )


def collective_volume(
    trace: Trace, collective: str | CollectiveAlgorithm = "flat"
) -> int:
    """Total bytes the trace's collectives put on the network once expanded."""
    if trace.has_native_blocks:
        return sum(
            batch.total_bytes
            for batch in iter_send_batches(
                trace, include_p2p=False, collective=collective
            )
        )
    total = 0
    for classified in iter_send_groups(
        trace, include_p2p=False, collective=collective
    ):
        total += classified.group.total_bytes
    return total
