"""Trace-level collective translation.

Walks a trace and expands every collective record into the flat
point-to-point messages of :mod:`repro.collectives.patterns`.  The output is
a stream of :class:`SendGroup` fan-outs tagged with their origin (p2p or
collective), which the traffic-matrix builder consumes directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..core.events import CollectiveEvent, P2PEvent
from ..core.trace import Trace
from .patterns import SendGroup, expand_collective

__all__ = ["TrafficClass", "ClassifiedSends", "iter_send_groups", "collective_volume"]


class TrafficClass(enum.Enum):
    """Origin of a translated message stream."""

    P2P = "p2p"
    COLLECTIVE = "collective"


@dataclass(frozen=True)
class ClassifiedSends:
    """A :class:`SendGroup` plus the traffic class it came from."""

    group: SendGroup
    traffic_class: TrafficClass


def iter_send_groups(
    trace: Trace,
    include_p2p: bool = True,
    include_collectives: bool = True,
) -> Iterator[ClassifiedSends]:
    """Yield every injected message fan-out of a trace.

    Point-to-point send records become single-destination groups; collective
    records are expanded per the paper's flat patterns.  RECV records are
    skipped (traffic is accounted on the send side).
    """
    assert trace.communicators is not None
    for ev in trace.events:
        if isinstance(ev, P2PEvent):
            if not include_p2p or not ev.is_send:
                continue
            nbytes = ev.bytes_per_call(trace.datatypes.size_of(ev.dtype))
            group = SendGroup(
                src=ev.caller,
                dsts=np.array([ev.peer], dtype=np.int64),
                bytes_per_msg=np.array([nbytes], dtype=np.int64),
                calls=ev.repeat,
            )
            yield ClassifiedSends(group, TrafficClass.P2P)
        elif isinstance(ev, CollectiveEvent):
            if not include_collectives:
                continue
            comm = trace.communicators.get(ev.comm)
            elem = trace.datatypes.size_of(ev.dtype)
            for group in expand_collective(ev, comm, elem):
                yield ClassifiedSends(group, TrafficClass.COLLECTIVE)


def collective_volume(trace: Trace) -> int:
    """Total bytes the trace's collectives put on the network once flattened."""
    total = 0
    for classified in iter_send_groups(trace, include_p2p=False):
        total += classified.group.total_bytes
    return total
