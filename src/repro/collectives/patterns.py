"""Flat point-to-point expansion patterns for MPI collectives.

The paper's network model (§4.4) deliberately avoids vendor-specific
collective algorithms: every collective is translated to plain point-to-point
messages "sent in the pattern of the particular operation", with **no tree
structure**, and data in vector collectives split evenly across ranks.  This
maximally utilizes the network and gives a stable, technology-independent
estimate.

Each pattern function answers one question: *which messages does a single
caller's collective record inject?*  Every participating rank logs the
collective, so translating only the caller's own sends — never the messages
other ranks will send — keeps the union over all callers free of double
counting.

Conventions for ``count`` (elements contributed by the caller; see
:class:`~repro.core.events.CollectiveEvent`):

========================  ====================================================
operation                 meaning of ``count``
========================  ====================================================
Bcast                     elements broadcast (same at every rank)
Reduce / Allreduce        elements of the reduced vector
Gather / Allgather        elements this caller contributes
Scatter                   elements sent *per destination* (MPI signature)
Alltoall                  elements sent *per destination* (MPI signature)
Gatherv / Allgatherv      this caller's (even-split) contribution
Scatterv                  total elements at root, split evenly
Alltoallv                 total elements sent by caller, split evenly
Reduce_scatter            elements of the full input vector
Scan / Exscan             elements of the partial-result vector
Barrier                   0 (no payload, no messages)
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.communicator import Communicator
from ..core.events import CollectiveEvent, CollectiveOp

__all__ = [
    "SendGroup",
    "check_root",
    "expand_collective",
    "expand_collective_batch",
    "even_split",
    "even_split_rows",
]

#: Collectives whose expansion consults ``root`` (mirrors ROOTED_OPS, kept
#: local so the hot batch path needs no set lookup import).
_ROOTED = (
    CollectiveOp.BCAST,
    CollectiveOp.REDUCE,
    CollectiveOp.GATHER,
    CollectiveOp.GATHERV,
    CollectiveOp.SCATTER,
    CollectiveOp.SCATTERV,
)


def check_root(op: CollectiveOp, comm: Communicator, root: int) -> None:
    """Reject a communicator-local ``root`` outside ``[0, comm.size)``.

    A global rank ID passed where the local-rank convention is expected used
    to make BCAST/SCATTER silently expand to zero messages (every caller
    tested ``local != root`` and dropped out); failing loudly at expansion
    time names the record that carried the bad root.
    """
    if op in _ROOTED and not 0 <= root < comm.size:
        raise ValueError(
            f"collective root {root} out of range for {op.value} on "
            f"communicator {comm.name!r} of size {comm.size} "
            "(roots are communicator-local ranks)"
        )


@dataclass(frozen=True)
class SendGroup:
    """A fan-out of identical-shape messages from one source rank.

    ``src`` sends ``calls`` messages of ``bytes_per_msg[i]`` bytes to each
    destination ``dsts[i]``.  Destinations and byte counts are parallel
    arrays so uneven splits stay exact.  All ranks are **global** rank IDs.
    """

    src: int
    dsts: np.ndarray  # int64[k]
    bytes_per_msg: np.ndarray  # int64[k]
    calls: int = 1

    def __post_init__(self) -> None:
        if self.dsts.shape != self.bytes_per_msg.shape:
            raise ValueError("dsts and bytes_per_msg must be parallel arrays")
        if self.calls < 1:
            raise ValueError("calls must be >= 1")

    @property
    def total_bytes(self) -> int:
        """Bytes injected across all destinations and calls."""
        return int(self.bytes_per_msg.sum()) * self.calls

    @property
    def num_messages(self) -> int:
        return len(self.dsts) * self.calls


def even_split(total: int, parts: int) -> np.ndarray:
    """Split ``total`` into ``parts`` integers that sum exactly to ``total``.

    The first ``total % parts`` shares get one extra unit, so the split is as
    even as integer arithmetic allows and conserves the total exactly — an
    invariant the property tests rely on.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    if total < 0:
        raise ValueError("total must be >= 0")
    base, rem = divmod(total, parts)
    shares = np.full(parts, base, dtype=np.int64)
    shares[:rem] += 1
    return shares


def even_split_rows(totals: np.ndarray, parts: int) -> np.ndarray:
    """Row-wise :func:`even_split`: one split per entry of ``totals``.

    Returns an ``int64[len(totals), parts]`` matrix whose row ``i`` is
    ``even_split(totals[i], parts)``.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    totals = np.asarray(totals, dtype=np.int64)
    if len(totals) and totals.min() < 0:
        raise ValueError("total must be >= 0")
    base = totals // parts
    rem = totals % parts
    return base[:, None] + (np.arange(parts, dtype=np.int64)[None, :] < rem[:, None])


def _uniform(src: int, dsts: np.ndarray, nbytes: int, calls: int) -> SendGroup:
    return SendGroup(
        src=src,
        dsts=dsts.astype(np.int64, copy=False),
        bytes_per_msg=np.full(len(dsts), nbytes, dtype=np.int64),
        calls=calls,
    )


def expand_collective(
    event: CollectiveEvent, comm: Communicator, element_size: int
) -> list[SendGroup]:
    """Expand one caller's collective record into its injected messages.

    Parameters
    ----------
    event:
        The collective record (caller is a **global** rank).
    comm:
        The communicator the record references.
    element_size:
        Byte size of one element of ``event.dtype``.

    Returns
    -------
    list[SendGroup]
        Zero or more fan-outs; empty when this caller sends nothing (e.g.
        a non-root rank in a broadcast, or any rank in a barrier).
    """
    n = comm.size
    check_root(event.op, comm, event.root)
    if n == 1:
        return []  # single-member communicator moves nothing on the network
    local = comm.to_local(event.caller)
    nbytes = event.count * element_size
    calls = event.repeat
    op = event.op

    if op is CollectiveOp.BARRIER:
        return []

    if op is CollectiveOp.BCAST:
        if local != event.root:
            return []
        members = np.asarray(comm.members, dtype=np.int64)
        return [_uniform(event.caller, members, nbytes, calls)]

    if op in (CollectiveOp.REDUCE, CollectiveOp.GATHER, CollectiveOp.GATHERV):
        # ALL ranks send to the root, the root included (paper: "a gather
        # call is performed by all ranks sending a p2p message to the root").
        root_global = comm.to_global(event.root)
        return [
            _uniform(event.caller, np.array([root_global]), nbytes, calls)
        ]

    if op is CollectiveOp.ALLREDUCE:
        # Flat reduce-to-root plus broadcast-from-root, rooted at local rank
        # 0, self-messages included on both phases (paper convention).
        groups: list[SendGroup] = []
        root_global = comm.to_global(0)
        groups.append(_uniform(event.caller, np.array([root_global]), nbytes, calls))
        if local == 0:
            members = np.asarray(comm.members, dtype=np.int64)
            groups.append(_uniform(event.caller, members, nbytes, calls))
        return groups

    if op in (CollectiveOp.SCATTER, CollectiveOp.SCATTERV):
        if local != event.root:
            return []
        members = np.asarray(comm.members, dtype=np.int64)
        if op is CollectiveOp.SCATTER:
            return [_uniform(event.caller, members, nbytes, calls)]
        # Scatterv: count is the total at root; split evenly over all n
        # members (paper §4.4), the root's own share included as a
        # zero-hop self-message.
        shares = even_split(nbytes, n)
        return [SendGroup(event.caller, members, shares, calls)]

    if op in (CollectiveOp.ALLGATHER, CollectiveOp.ALLGATHERV):
        # Caller's contribution goes to every member, itself included.  For
        # the vector form the even split already happened when count was
        # recorded.
        members = np.asarray(comm.members, dtype=np.int64)
        return [_uniform(event.caller, members, nbytes, calls)]

    if op is CollectiveOp.ALLTOALL:
        members = np.asarray(comm.members, dtype=np.int64)
        return [_uniform(event.caller, members, nbytes, calls)]

    if op is CollectiveOp.ALLTOALLV:
        # count is the caller's total send volume; split evenly across all n
        # members, the self share travelling zero hops.
        shares = even_split(nbytes, n)
        members = np.asarray(comm.members, dtype=np.int64)
        return [SendGroup(event.caller, members, shares, calls)]

    if op is CollectiveOp.REDUCE_SCATTER:
        # Rank i's block destined for rank j travels directly i -> j: each
        # caller sends a 1/n slice of its input vector to every member (its
        # own slice being a zero-hop self-message).
        shares = even_split(nbytes, n)
        members = np.asarray(comm.members, dtype=np.int64)
        return [SendGroup(event.caller, members, shares, calls)]

    if op in (CollectiveOp.SCAN, CollectiveOp.EXSCAN):
        # Linear chain: partial results flow from local rank i to i+1.
        if local == n - 1:
            return []
        nxt = comm.to_global(local + 1)
        return [_uniform(event.caller, np.array([nxt]), nbytes, calls)]

    raise NotImplementedError(f"no p2p expansion defined for {op}")


def _fanout(
    callers: np.ndarray,
    members: np.ndarray,
    bytes_per_dst: np.ndarray,
    calls: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Fan every caller out to all members.

    ``bytes_per_dst`` is either 1-D (uniform bytes per caller, replicated to
    every destination) or 2-D ``[len(callers), len(members)]`` (per-row
    even splits).
    """
    n = len(members)
    src = np.repeat(callers, n)
    dst = np.tile(members, len(callers))
    if bytes_per_dst.ndim == 1:
        nbytes = np.repeat(bytes_per_dst, n)
    else:
        nbytes = bytes_per_dst.reshape(-1)
    return src, dst, nbytes, np.repeat(calls, n)


def expand_collective_batch(
    op: CollectiveOp,
    comm: Communicator,
    callers: np.ndarray,
    nbytes: np.ndarray,
    roots: np.ndarray,
    calls: np.ndarray,
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Batched :func:`expand_collective`: many records of one op at once.

    Parameters mirror the per-event form, columnar: ``callers`` are global
    ranks, ``roots`` are communicator-local root ranks, ``nbytes`` is each
    record's ``count * element_size``, and ``calls`` its repeat count.  All
    arrays are parallel.

    Returns a list of ``(src, dst, bytes_per_msg, calls)`` message-array
    quadruples.  The multiset of messages equals the union of the per-event
    expansions exactly (the equivalence suite pins this), only the grouping
    differs.
    """
    n = comm.size
    if len(callers) and op in _ROOTED:
        rmin, rmax = int(roots.min()), int(roots.max())
        if rmin < 0 or rmax >= n:
            check_root(op, comm, rmin if rmin < 0 else rmax)
    if n == 1 or op is CollectiveOp.BARRIER or len(callers) == 0:
        return []
    members = np.asarray(comm.members, dtype=np.int64)
    # comm-local rank per caller (vectorized comm.to_local)
    mmax = int(members.max())
    lookup = np.full(mmax + 1, -1, dtype=np.int64)
    lookup[members] = np.arange(n, dtype=np.int64)
    in_range = (callers >= 0) & (callers <= mmax)
    local = np.where(in_range, lookup[np.clip(callers, 0, mmax)], -1)
    if local.min() < 0:
        bad = int(callers[local < 0][0])
        raise ValueError(f"rank {bad} is not a member of this communicator")

    if op is CollectiveOp.BCAST:
        sel = local == roots
        if not sel.any():
            return []
        return [_fanout(callers[sel], members, nbytes[sel], calls[sel])]

    if op in (CollectiveOp.REDUCE, CollectiveOp.GATHER, CollectiveOp.GATHERV):
        # ALL ranks send to the root, the root included.
        return [(callers, members[roots], nbytes, calls)]

    if op is CollectiveOp.ALLREDUCE:
        # Flat reduce-to-root plus broadcast-from-root, rooted at local 0.
        out = [
            (
                callers,
                np.full(len(callers), members[0], dtype=np.int64),
                nbytes,
                calls,
            )
        ]
        sel = local == 0
        if sel.any():
            out.append(_fanout(callers[sel], members, nbytes[sel], calls[sel]))
        return out

    if op in (CollectiveOp.SCATTER, CollectiveOp.SCATTERV):
        sel = local == roots
        if not sel.any():
            return []
        if op is CollectiveOp.SCATTER:
            return [_fanout(callers[sel], members, nbytes[sel], calls[sel])]
        shares = even_split_rows(nbytes[sel], n)
        return [_fanout(callers[sel], members, shares, calls[sel])]

    if op in (CollectiveOp.ALLGATHER, CollectiveOp.ALLGATHERV, CollectiveOp.ALLTOALL):
        return [_fanout(callers, members, nbytes, calls)]

    if op in (CollectiveOp.ALLTOALLV, CollectiveOp.REDUCE_SCATTER):
        shares = even_split_rows(nbytes, n)
        return [_fanout(callers, members, shares, calls)]

    if op in (CollectiveOp.SCAN, CollectiveOp.EXSCAN):
        sel = local != n - 1
        if not sel.any():
            return []
        return [(callers[sel], members[local[sel] + 1], nbytes[sel], calls[sel])]

    raise NotImplementedError(f"no p2p expansion defined for {op}")
