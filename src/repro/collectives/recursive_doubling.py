"""The recursive-doubling engine.

Recursive doubling defines pairwise hypercube exchanges for the *unrooted*
family only (allreduce, allgather); MPICH uses it exactly there.  Rooted
operations keep the paper's flat expansion, which makes this engine the
cleanest ablation of "what does replacing just the unrooted collectives
cost": any locality delta against ``flat`` is attributable to the exchange
schedules alone.
"""

from __future__ import annotations

from ..core.events import CollectiveOp
from .base import ScheduleAlgorithm
from .schedules import rd_allgather, rd_allreduce

__all__ = ["RecursiveDoublingCollective"]


class RecursiveDoublingCollective(ScheduleAlgorithm):
    """Hypercube exchanges for unrooted ops, flat for everything else."""

    name = "recursive_doubling"

    def _schedule(self, op, n, root):
        if op is CollectiveOp.ALLREDUCE:
            return rd_allreduce(n)
        if op in (CollectiveOp.ALLGATHER, CollectiveOp.ALLGATHERV):
            return rd_allgather(n)
        return None
