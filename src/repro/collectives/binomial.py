"""The binomial-tree engine — :mod:`repro.collectives.tree` promoted.

Rooted operations use binomial trees (log-depth fan-out/fan-in); the
unrooted ones use recursive doubling, exactly as the per-event ablation
:func:`~repro.collectives.tree.expand_collective_tree` always has.  That
function remains the oracle: the engine's schedules are pinned message-
multiset-identical to it by the equivalence tests.
"""

from __future__ import annotations

from ..core.events import CollectiveOp
from .base import ScheduleAlgorithm
from .schedules import (
    binomial_fanin,
    binomial_fanout,
    binomial_gatherv_paths,
    rd_allgather,
    rd_allreduce,
)

__all__ = ["BinomialCollective"]


class BinomialCollective(ScheduleAlgorithm):
    """Binomial trees for rooted ops, recursive doubling for the rest."""

    name = "binomial"

    def _schedule(self, op, n, root):
        if op in (CollectiveOp.BCAST, CollectiveOp.SCATTER, CollectiveOp.SCATTERV):
            return binomial_fanout(op, n, root)
        if op in (CollectiveOp.REDUCE, CollectiveOp.GATHER):
            return binomial_fanin(op, n, root)
        if op is CollectiveOp.GATHERV:
            return binomial_gatherv_paths(n, root)
        if op is CollectiveOp.ALLREDUCE:
            return rd_allreduce(n)
        if op in (CollectiveOp.ALLGATHER, CollectiveOp.ALLGATHERV):
            return rd_allgather(n)
        return None
