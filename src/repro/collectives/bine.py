"""The Bine-tree engine (De Sensi et al., PAPERS.md).

Bine ("binomial negabinary") schedules pair rank v at step s with
``v + (-1)^v * d_s`` where ``d_s = (1 - (-2)^(s+1)) / 3`` — distances
1, -1, 3, -5, 11, -21, ... whose direction alternates with rank parity.
On torus networks this halves the binomial tree's worst-case link
distance, which is precisely the locality effect this registry exists to
measure.  Rooted ops use the Bine broadcast tree (and its mirror);
unrooted ops use Bine pairwise exchanges; non-power-of-two sizes fold the
remainder exactly as recursive doubling does.
"""

from __future__ import annotations

from ..core.events import CollectiveOp
from .base import ScheduleAlgorithm
from .schedules import (
    bine_allgather,
    bine_allreduce,
    bine_fanin,
    bine_fanout,
    bine_gatherv_paths,
)

__all__ = ["BineCollective"]


class BineCollective(ScheduleAlgorithm):
    """Bine trees for rooted ops, Bine exchanges for the rest."""

    name = "bine"

    def _schedule(self, op, n, root):
        if op in (CollectiveOp.BCAST, CollectiveOp.SCATTER, CollectiveOp.SCATTERV):
            return bine_fanout(op, n, root)
        if op in (CollectiveOp.REDUCE, CollectiveOp.GATHER):
            return bine_fanin(op, n, root)
        if op is CollectiveOp.GATHERV:
            return bine_gatherv_paths(n, root)
        if op is CollectiveOp.ALLREDUCE:
            return bine_allreduce(n)
        if op in (CollectiveOp.ALLGATHER, CollectiveOp.ALLGATHERV):
            return bine_allgather(n)
        return None
