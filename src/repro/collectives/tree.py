"""Tree-based (binomial) collective expansion — the ablation counterpart.

The paper deliberately flattens collectives ("there is no tree structure or
similar to spread collectives over the network", §4.4).  Real MPI libraries
use logarithmic algorithms; this module implements the classic **binomial
tree** schedules so the flat-model assumption can be ablated:

- rooted fan-out (bcast/scatter): root's subtree halves each round; the
  message count drops from N to N − 1 but the *volume distribution* moves
  off the root's links;
- rooted fan-in (reduce/gather): the mirror image;
- allreduce: recursive doubling — each rank exchanges with ``rank XOR 2**k``
  per round, log2(N) rounds;
- allgather: recursive doubling with doubling payloads;
- alltoall keeps its direct pairwise schedule (it is already bandwidth
  optimal).

Ranks are numbered relative to a *virtual* root-rotated numbering so any
root works; non-power-of-two sizes use the standard "fold the remainder"
pre/post step of recursive doubling.
"""

from __future__ import annotations

import functools

import numpy as np

from ..core.communicator import Communicator
from ..core.events import CollectiveEvent, CollectiveOp
from .patterns import SendGroup, check_root, even_split, expand_collective

__all__ = ["expand_collective_tree"]


def _vrank(local: int, root: int, n: int) -> int:
    """Root-rotated virtual rank (vrank of the root is 0)."""
    return (local - root) % n


def _from_vrank(vrank: int, root: int, n: int) -> int:
    return (vrank + root) % n


def _binomial_children(vrank: int, n: int) -> list[int]:
    """Children of a node in the binomial broadcast tree over n vranks.

    The MPICH orientation: node v owns the contiguous vrank span
    ``[v, v + lowbit(v))`` and forwards to ``v + 2**j`` for every
    ``2**j < lowbit(v)`` (the root owns everything).  This is the
    orientation :func:`_subtree_size` counts, so subtree-proportional
    scatter/gather sizes conserve exactly.
    """
    children = []
    k = 1
    limit = vrank & (-vrank) if vrank else n
    while k < limit and vrank + k < n:
        children.append(vrank + k)
        k <<= 1
    return children


def _binomial_parent(vrank: int) -> int:
    """Parent in the binomial tree: clear the lowest set bit."""
    if vrank == 0:
        raise ValueError("the root has no parent")
    return vrank & (vrank - 1)


def expand_collective_tree(
    event: CollectiveEvent, comm: Communicator, element_size: int
) -> list[SendGroup]:
    """Expand one caller's collective record with log-depth schedules.

    Falls back to the flat expansion for operations whose direct schedule is
    already the practical algorithm (alltoall family, scan chains,
    reduce_scatter slices).
    """
    n = comm.size
    check_root(event.op, comm, event.root)
    if n == 1:
        return []
    local = comm.to_local(event.caller)
    nbytes = event.count * element_size
    calls = event.repeat
    op = event.op

    def group(dsts: list[int], sizes: list[int]) -> SendGroup:
        return SendGroup(
            src=event.caller,
            dsts=np.array([comm.to_global(d) for d in dsts], dtype=np.int64),
            bytes_per_msg=np.array(sizes, dtype=np.int64),
            calls=calls,
        )

    if op in (CollectiveOp.BCAST, CollectiveOp.SCATTER, CollectiveOp.SCATTERV):
        v = _vrank(local, event.root, n)
        children = _binomial_children(v, n)
        if not children:
            return []
        if op is CollectiveOp.BCAST:
            sizes = [nbytes] * len(children)
        elif op is CollectiveOp.SCATTER:
            # scatter forwards each child its whole subtree's worth of data
            # (count is per-destination, so the forward is exact)
            sizes = [
                nbytes * min(_subtree_size(child, n), n - child)
                for child in children
            ]
        else:
            # Scatterv: count is the total at root, split evenly over all n
            # members.  Each child's forward carries the exact sum of its
            # subtree's even_split shares — shares are indexed by *local*
            # rank, so rotate each subtree vrank back through the root.
            shares = even_split(nbytes, n)
            sizes = []
            for child in children:
                span = range(child, min(child + _subtree_size(child, n), n))
                sizes.append(
                    int(sum(shares[_from_vrank(u, event.root, n)] for u in span))
                )
        dsts = [_from_vrank(c, event.root, n) for c in children]
        return [group(dsts, sizes)]

    if op in (CollectiveOp.REDUCE, CollectiveOp.GATHER, CollectiveOp.GATHERV):
        v = _vrank(local, event.root, n)
        if v == 0:
            return []
        if op is CollectiveOp.GATHERV:
            # Gatherv contributions are heterogeneous, so no subtree-size
            # multiple of the caller's own count is exact.  Instead the
            # caller's record carries its contribution along every edge of
            # its root path (store-and-forward); the union over all callers
            # reproduces each tree edge's exact aggregate.
            groups = []
            u = v
            while u != 0:
                parent = _binomial_parent(u)
                groups.append(
                    SendGroup(
                        src=comm.to_global(_from_vrank(u, event.root, n)),
                        dsts=np.array(
                            [comm.to_global(_from_vrank(parent, event.root, n))],
                            dtype=np.int64,
                        ),
                        bytes_per_msg=np.array([nbytes], dtype=np.int64),
                        calls=calls,
                    )
                )
                u = parent
            return groups
        parent = _from_vrank(_binomial_parent(v), event.root, n)
        if op is CollectiveOp.REDUCE:
            size = nbytes
        else:
            size = nbytes * min(_subtree_size(v, n), n - v)
        return [group([parent], [size])]

    if op is CollectiveOp.ALLREDUCE:
        # recursive doubling: log2(n) pairwise exchanges of the full vector
        groups: list[SendGroup] = []
        pow2 = 1 << (n.bit_length() - 1)
        if pow2 != n and local >= pow2:
            # fold the remainder into the lower power-of-two block
            groups.append(group([local - pow2], [nbytes]))
            return groups
        k = 1
        while k < pow2:
            partner = local ^ k
            if partner < pow2:
                groups.append(group([partner], [nbytes]))
            k <<= 1
        if local < n - pow2:
            # unfold: send the result back to the folded remainder rank
            groups.append(group([local + pow2], [nbytes]))
        return groups

    if op in (CollectiveOp.ALLGATHER, CollectiveOp.ALLGATHERV):
        # Recursive doubling with doubling payloads.  A non-power-of-two
        # remainder folds its contribution in first, so exchange sizes track
        # the *actual* holdings per rank (for a power of two the holdings at
        # round k are exactly k, the textbook doubling).
        groups = []
        pow2 = 1 << (n.bit_length() - 1)
        if local >= pow2:
            return [group([local - pow2], [nbytes])]
        holdings = _rd_holdings(n)
        k = 1
        rnd = 0
        while k < pow2:
            partner = local ^ k
            groups.append(group([partner], [nbytes * int(holdings[rnd][local])]))
            k <<= 1
            rnd += 1
        if local + pow2 < n:
            groups.append(group([local + pow2], [nbytes * n]))
        return groups

    # alltoall(v), reduce_scatter, scan, barrier: direct schedule is standard
    return expand_collective(event, comm, element_size)


def _subtree_size(vrank: int, n: int) -> int:
    """Size of the binomial subtree rooted at ``vrank`` (unclipped)."""
    if vrank == 0:
        return n
    low = vrank & (-vrank)  # lowest set bit = subtree span
    return low


@functools.lru_cache(maxsize=256)
def _rd_holdings(n: int) -> tuple[np.ndarray, ...]:
    """Per-round contribution counts of recursive-doubling allgather.

    ``_rd_holdings(n)[r][v]`` is how many rank contributions vrank
    ``v < pow2`` holds entering exchange round ``r`` (after any remainder
    fold-in).  Every rank ends holding all ``n`` contributions, which is
    what makes the exchange sizes conserve the gathered total.
    """
    pow2 = 1 << (n.bit_length() - 1)
    h = np.ones(pow2, dtype=np.int64)
    h[: n - pow2] += 1
    rounds = []
    k = 1
    while k < pow2:
        rounds.append(h.copy())
        h = h + h[np.arange(pow2) ^ k]
        k <<= 1
    return tuple(rounds)
