"""Tree-based (binomial) collective expansion — the ablation counterpart.

The paper deliberately flattens collectives ("there is no tree structure or
similar to spread collectives over the network", §4.4).  Real MPI libraries
use logarithmic algorithms; this module implements the classic **binomial
tree** schedules so the flat-model assumption can be ablated:

- rooted fan-out (bcast/scatter): root's subtree halves each round; the
  message count drops from N to N − 1 but the *volume distribution* moves
  off the root's links;
- rooted fan-in (reduce/gather): the mirror image;
- allreduce: recursive doubling — each rank exchanges with ``rank XOR 2**k``
  per round, log2(N) rounds;
- allgather: recursive doubling with doubling payloads;
- alltoall keeps its direct pairwise schedule (it is already bandwidth
  optimal).

Ranks are numbered relative to a *virtual* root-rotated numbering so any
root works; non-power-of-two sizes use the standard "fold the remainder"
pre/post step of recursive doubling.
"""

from __future__ import annotations

import numpy as np

from ..core.communicator import Communicator
from ..core.events import CollectiveEvent, CollectiveOp
from .patterns import SendGroup, expand_collective

__all__ = ["expand_collective_tree"]


def _vrank(local: int, root: int, n: int) -> int:
    """Root-rotated virtual rank (vrank of the root is 0)."""
    return (local - root) % n


def _from_vrank(vrank: int, root: int, n: int) -> int:
    return (vrank + root) % n


def _binomial_children(vrank: int, n: int) -> list[int]:
    """Children of a node in the binomial broadcast tree over n vranks.

    Round k (highest first) has nodes with vrank < 2**k forward to
    ``vrank + 2**k``; a node's children are all in-range ``vrank + 2**k``
    for ``2**k > vrank``.
    """
    children = []
    k = 1
    while k < n:
        k <<= 1
    k >>= 1
    while k >= 1:
        if vrank < k and vrank + k < n:
            children.append(vrank + k)
        k >>= 1
    return children


def _binomial_parent(vrank: int) -> int:
    """Parent in the binomial tree: clear the highest set bit."""
    if vrank == 0:
        raise ValueError("the root has no parent")
    return vrank & ~(1 << (vrank.bit_length() - 1))


def expand_collective_tree(
    event: CollectiveEvent, comm: Communicator, element_size: int
) -> list[SendGroup]:
    """Expand one caller's collective record with log-depth schedules.

    Falls back to the flat expansion for operations whose direct schedule is
    already the practical algorithm (alltoall family, scan chains,
    reduce_scatter slices).
    """
    n = comm.size
    if n == 1:
        return []
    local = comm.to_local(event.caller)
    nbytes = event.count * element_size
    calls = event.repeat
    op = event.op

    def group(dsts: list[int], sizes: list[int]) -> SendGroup:
        return SendGroup(
            src=event.caller,
            dsts=np.array([comm.to_global(d) for d in dsts], dtype=np.int64),
            bytes_per_msg=np.array(sizes, dtype=np.int64),
            calls=calls,
        )

    if op in (CollectiveOp.BCAST, CollectiveOp.SCATTER, CollectiveOp.SCATTERV):
        v = _vrank(local, event.root, n)
        children = _binomial_children(v, n)
        if not children:
            return []
        if op is CollectiveOp.BCAST:
            sizes = [nbytes] * len(children)
        else:
            # scatter forwards each child its whole subtree's worth of data
            per_dest = nbytes if op is CollectiveOp.SCATTER else max(nbytes // n, 1)
            sizes = []
            for child in children:
                subtree = min(_subtree_size(child, n), n - child)
                sizes.append(per_dest * subtree)
        dsts = [_from_vrank(c, event.root, n) for c in children]
        return [group(dsts, sizes)]

    if op in (CollectiveOp.REDUCE, CollectiveOp.GATHER, CollectiveOp.GATHERV):
        v = _vrank(local, event.root, n)
        if v == 0:
            return []
        parent = _from_vrank(_binomial_parent(v), event.root, n)
        if op is CollectiveOp.REDUCE:
            size = nbytes
        else:
            size = nbytes * min(_subtree_size(v, n), n - v)
        return [group([parent], [size])]

    if op is CollectiveOp.ALLREDUCE:
        # recursive doubling: log2(n) pairwise exchanges of the full vector
        groups: list[SendGroup] = []
        pow2 = 1 << (n.bit_length() - 1)
        if pow2 != n and local >= pow2:
            # fold the remainder into the lower power-of-two block
            groups.append(group([local - pow2], [nbytes]))
            return groups
        k = 1
        while k < pow2:
            partner = local ^ k
            if partner < pow2:
                groups.append(group([partner], [nbytes]))
            k <<= 1
        if local < n - pow2:
            # unfold: send the result back to the folded remainder rank
            groups.append(group([local + pow2], [nbytes]))
        return groups

    if op in (CollectiveOp.ALLGATHER, CollectiveOp.ALLGATHERV):
        # recursive doubling with doubling payloads (power-of-two part only;
        # the remainder uses a direct exchange)
        groups = []
        pow2 = 1 << (n.bit_length() - 1)
        if local >= pow2:
            return [group([local - pow2], [nbytes])]
        k = 1
        while k < pow2:
            partner = local ^ k
            if partner < pow2:
                groups.append(group([partner], [nbytes * k]))
            k <<= 1
        if local + pow2 < n:
            groups.append(group([local + pow2], [nbytes * n]))
        return groups

    # alltoall(v), reduce_scatter, scan, barrier: direct schedule is standard
    return expand_collective(event, comm, element_size)


def _subtree_size(vrank: int, n: int) -> int:
    """Size of the binomial subtree rooted at ``vrank`` (unclipped)."""
    if vrank == 0:
        return n
    low = vrank & (-vrank)  # lowest set bit = subtree span
    return low
