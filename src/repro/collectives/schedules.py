"""Cached message schedules for the non-flat collective engines.

A :class:`Schedule` is the complete send plan of one collective operation on
one communicator size and root, laid out as flat arrays CSR-indexed by the
**caller's** communicator-local rank: row ``i`` says rank ``src[i]`` sends
``dst[i]`` a message of ``mult[i] * nbytes`` bytes plus the sum of the
even-split shares named by the row's ``share_idx`` slice, where ``nbytes``
is the caller record's own payload.  Expanding a batch of records is then a
vectorized CSR gather — no per-record Python, whatever the algorithm.

Attribution follows the per-record-independence convention of
:mod:`repro.collectives.patterns`: each record contributes exactly the rows
of its caller, so the union over all callers reproduces the full schedule
regardless of how records are split across blocks or chunks.  ``src`` may
differ from the caller (store-and-forward path segments, used by the
GATHERV schedules, attribute every hop of a contribution's path to the
contributor's record — the only per-record scheme that conserves exactly
under heterogeneous contributions).

Every row carries an ``after`` flag for the happens-before DAG: ``True``
means the sender forwards data it first had to receive, so the critpath
edge leaves the sender's *completion* node.  Tree fan-outs, fan-ins,
chains, and unfold steps set it; pairwise exchanges and circular ring
flows must not (a completion→completion edge between exchange partners
would form a cycle).

Schedules are built in *virtual* rank space (the root has vrank 0) and
rotated to local ranks at construction, so any root works; builders are
``lru_cache``d per ``(op, size, root)``.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from ..core.events import CollectiveOp
from .patterns import SendGroup, even_split, even_split_rows
from .tree import (
    _binomial_children,
    _binomial_parent,
    _rd_holdings,
    _subtree_size,
)

__all__ = [
    "Schedule",
    "expand_batch_from_schedule",
    "expand_event_from_schedule",
    "binomial_fanout",
    "binomial_fanin",
    "binomial_gatherv_paths",
    "rd_allreduce",
    "rd_allgather",
    "ring_fanout",
    "ring_fanin",
    "ring_gatherv_paths",
    "ring_allreduce",
    "ring_allgather_paths",
    "bine_fanout",
    "bine_fanin",
    "bine_gatherv_paths",
    "bine_allreduce",
    "bine_allgather",
]

_FANOUT_OPS = (CollectiveOp.BCAST, CollectiveOp.SCATTER, CollectiveOp.SCATTERV)
_FANIN_OPS = (CollectiveOp.REDUCE, CollectiveOp.GATHER)


@dataclass(frozen=True)
class Schedule:
    """One collective's send plan, CSR-indexed by caller-local rank."""

    n: int
    starts: np.ndarray  # int64[n+1]: rows of caller-local l are [starts[l], starts[l+1])
    src: np.ndarray  # int64[rows], local ranks
    dst: np.ndarray  # int64[rows], local ranks
    mult: np.ndarray  # int64[rows]: linear part, bytes = mult * caller nbytes
    share_starts: np.ndarray  # int64[rows+1]: CSR into share_idx
    share_idx: np.ndarray  # int64[*]: local ranks whose even_split share the row adds
    after: np.ndarray  # bool[rows]: sender forwards received data


def _make(n: int, root: int, rows: list[tuple]) -> Schedule:
    """Assemble row specs ``(caller_v, src_v, dst_v, mult, share_vranks, after)``.

    All vranks (including the share indices) are rotated through ``root``
    into local rank space.
    """
    if not rows:
        z = np.zeros(0, dtype=np.int64)
        return Schedule(
            n, np.zeros(n + 1, dtype=np.int64), z, z, z,
            np.zeros(1, dtype=np.int64), z, np.zeros(0, dtype=bool),
        )
    caller = np.array([(r[0] + root) % n for r in rows], dtype=np.int64)
    order = np.argsort(caller, kind="stable")
    caller = caller[order]
    src = np.array([(rows[i][1] + root) % n for i in order], dtype=np.int64)
    dst = np.array([(rows[i][2] + root) % n for i in order], dtype=np.int64)
    mult = np.array([rows[i][3] for i in order], dtype=np.int64)
    after = np.array([rows[i][5] for i in order], dtype=bool)
    share_counts = np.array([len(rows[i][4]) for i in order], dtype=np.int64)
    share_starts = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(share_counts, out=share_starts[1:])
    share_idx = np.array(
        [(u + root) % n for i in order for u in rows[i][4]], dtype=np.int64
    )
    starts = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(caller, minlength=n), out=starts[1:])
    return Schedule(n, starts, src, dst, mult, share_starts, share_idx, after)


def _span_gather(first: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(first[i], first[i] + counts[i])`` vectorized."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    shift = np.concatenate(([0], np.cumsum(counts)[:-1]))
    return np.arange(total, dtype=np.int64) + np.repeat(first - shift, counts)


def expand_batch_from_schedule(
    sched: Schedule,
    members: np.ndarray,
    local: np.ndarray,
    nbytes: np.ndarray,
    calls: np.ndarray,
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, bool]]:
    """Expand records columnarly; returns ``(src, dst, bytes, calls, after)``.

    ``local`` is each record's caller-local rank; ranks in the output are
    global (mapped through ``members``).  At most two batches come back —
    the rows with ``after=False`` and the rows with ``after=True``.
    """
    counts = sched.starts[local + 1] - sched.starts[local]
    rows = _span_gather(sched.starts[local], counts)
    if not len(rows):
        return []
    rec = np.repeat(np.arange(len(local), dtype=np.int64), counts)
    bpm = nbytes[rec] * sched.mult[rows]
    if sched.share_idx.size:
        scounts = sched.share_starts[rows + 1] - sched.share_starts[rows]
        if scounts.any():
            shares = even_split_rows(nbytes, sched.n)
            sidx = _span_gather(sched.share_starts[rows], scounts)
            vals = shares[np.repeat(rec, scounts), sched.share_idx[sidx]]
            extra = np.zeros(len(rows), dtype=np.int64)
            np.add.at(extra, np.repeat(np.arange(len(rows)), scounts), vals)
            bpm = bpm + extra
    src = members[sched.src[rows]]
    dst = members[sched.dst[rows]]
    out_calls = calls[rec]
    batches = []
    for flag in (False, True):
        sel = sched.after[rows] == flag
        if sel.any():
            batches.append((src[sel], dst[sel], bpm[sel], out_calls[sel], flag))
    return batches


def expand_event_from_schedule(
    sched: Schedule, comm, event, element_size: int
) -> list[SendGroup]:
    """Per-event form: the caller's schedule rows as :class:`SendGroup`\\ s."""
    local = comm.to_local(event.caller)
    lo, hi = int(sched.starts[local]), int(sched.starts[local + 1])
    if lo == hi:
        return []
    nbytes = event.count * element_size
    shares = even_split(nbytes, sched.n) if sched.share_idx.size else None
    members = comm.members
    groups = []
    i = lo
    while i < hi:
        j = i
        while j < hi and sched.src[j] == sched.src[i]:
            j += 1
        sizes = []
        for r in range(i, j):
            b = nbytes * int(sched.mult[r])
            s0, s1 = int(sched.share_starts[r]), int(sched.share_starts[r + 1])
            if s1 > s0:
                b += int(shares[sched.share_idx[s0:s1]].sum())
            sizes.append(b)
        groups.append(
            SendGroup(
                src=int(members[sched.src[i]]),
                dsts=np.array(
                    [members[d] for d in sched.dst[i:j]], dtype=np.int64
                ),
                bytes_per_msg=np.array(sizes, dtype=np.int64),
                calls=event.repeat,
            )
        )
        i = j
    return groups


# ---------------------------------------------------------------------------
# binomial-tree schedules (the promoted tree.py ablation)


@functools.lru_cache(maxsize=512)
def binomial_fanout(op: CollectiveOp, n: int, root: int) -> Schedule:
    """BCAST/SCATTER/SCATTERV down the binomial tree (root forwards first)."""
    assert op in _FANOUT_OPS
    rows = []
    for v in range(n):
        for c in _binomial_children(v, n):
            after = v != 0
            span = range(c, min(c + _subtree_size(c, n), n))
            if op is CollectiveOp.BCAST:
                rows.append((v, v, c, 1, (), after))
            elif op is CollectiveOp.SCATTER:
                rows.append((v, v, c, len(span), (), after))
            else:
                rows.append((v, v, c, 0, tuple(span), after))
    return _make(n, root, rows)


@functools.lru_cache(maxsize=512)
def binomial_fanin(op: CollectiveOp, n: int, root: int) -> Schedule:
    """REDUCE/GATHER up the binomial tree (each node one send to its parent)."""
    assert op in _FANIN_OPS
    rows = []
    for v in range(1, n):
        mult = 1 if op is CollectiveOp.REDUCE else min(_subtree_size(v, n), n - v)
        rows.append((v, v, _binomial_parent(v), mult, (), True))
    return _make(n, root, rows)


@functools.lru_cache(maxsize=512)
def binomial_gatherv_paths(n: int, root: int) -> Schedule:
    """GATHERV: each contribution rides every edge of its root path."""
    rows = []
    for v in range(1, n):
        u = v
        while u != 0:
            parent = _binomial_parent(u)
            rows.append((v, u, parent, 1, (), u != v))
            u = parent
    return _make(n, root, rows)


@functools.lru_cache(maxsize=512)
def rd_allreduce(n: int) -> Schedule:
    """Recursive-doubling allreduce: fold, log2 pairwise exchanges, unfold."""
    pow2 = 1 << (n.bit_length() - 1)
    rows = []
    for v in range(pow2, n):
        rows.append((v, v, v - pow2, 1, (), False))
    k = 1
    while k < pow2:
        for v in range(pow2):
            rows.append((v, v, v ^ k, 1, (), False))
        k <<= 1
    for v in range(n - pow2):
        rows.append((v, v, v + pow2, 1, (), True))
    return _make(n, 0, rows)


@functools.lru_cache(maxsize=512)
def rd_allgather(n: int) -> Schedule:
    """Recursive doubling with holdings-tracked payload doubling."""
    pow2 = 1 << (n.bit_length() - 1)
    rows = []
    for v in range(pow2, n):
        rows.append((v, v, v - pow2, 1, (), False))
    holdings = _rd_holdings(n)
    k = 1
    rnd = 0
    while k < pow2:
        for v in range(pow2):
            rows.append((v, v, v ^ k, int(holdings[rnd][v]), (), False))
        k <<= 1
        rnd += 1
    for v in range(n - pow2):
        rows.append((v, v, v + pow2, n, (), True))
    return _make(n, 0, rows)


# ---------------------------------------------------------------------------
# ring / pipeline-chain schedules


@functools.lru_cache(maxsize=512)
def ring_fanout(op: CollectiveOp, n: int, root: int) -> Schedule:
    """BCAST/SCATTER/SCATTERV down the vrank chain root → root+1 → ..."""
    assert op in _FANOUT_OPS
    rows = []
    for v in range(n - 1):
        after = v != 0
        if op is CollectiveOp.BCAST:
            rows.append((v, v, v + 1, 1, (), after))
        elif op is CollectiveOp.SCATTER:
            rows.append((v, v, v + 1, n - 1 - v, (), after))
        else:
            rows.append((v, v, v + 1, 0, tuple(range(v + 1, n)), after))
    return _make(n, root, rows)


@functools.lru_cache(maxsize=512)
def ring_fanin(op: CollectiveOp, n: int, root: int) -> Schedule:
    """REDUCE/GATHER up the chain; the far end initiates."""
    assert op in _FANIN_OPS
    rows = []
    for v in range(1, n):
        mult = 1 if op is CollectiveOp.REDUCE else n - v
        rows.append((v, v, v - 1, mult, (), v != n - 1))
    return _make(n, root, rows)


@functools.lru_cache(maxsize=512)
def ring_gatherv_paths(n: int, root: int) -> Schedule:
    """GATHERV: each contribution hops the chain down to the root."""
    rows = []
    for v in range(1, n):
        for u in range(v, 0, -1):
            rows.append((v, u, u - 1, 1, (), u != v))
    return _make(n, root, rows)


@functools.lru_cache(maxsize=512)
def ring_allreduce(n: int) -> Schedule:
    """Ring allreduce: reduce-scatter then allgather, 2(n-1) chunk steps.

    Chunk ``c`` is rank ``c``'s even-split share; every step each rank
    forwards exactly one chunk to its successor, so per-rank traffic is
    balanced and no link ever carries the full vector.
    """
    rows = []
    for v in range(n):
        for s in range(n - 1):  # reduce-scatter phase
            rows.append((v, v, (v + 1) % n, 0, ((v - s) % n,), False))
        for s in range(n - 1):  # allgather phase
            rows.append((v, v, (v + 1) % n, 0, ((v + 1 - s) % n,), False))
    return _make(n, 0, rows)


@functools.lru_cache(maxsize=512)
def ring_allgather_paths(n: int) -> Schedule:
    """ALLGATHER(V): each contribution circulates n-1 hops around the ring."""
    rows = []
    for v in range(n):
        for s in range(n - 1):
            u = (v + s) % n
            rows.append((v, u, (u + 1) % n, 1, (), False))
    return _make(n, 0, rows)


# ---------------------------------------------------------------------------
# Bine-tree schedules (De Sensi et al., PAPERS.md)
#
# The Bine ("binomial negabinary") tree pairs rank v at step s with
# ``v + (-1)^v * d_s  (mod 2^h)`` where ``d_s = (1 - (-2)^(s+1)) / 3`` —
# the distances 1, -1, 3, -5, 11, -21, ... alternate direction by rank
# parity, which on torus networks halves the worst-case link distance of
# the binomial tree.  Each step is a perfect matching (d_s is odd, so the
# partner map is an involution); running steps s = h-1 .. 0 from the root
# doubles the informed set every step and spans all 2^h ranks (asserted at
# construction).  Non-power-of-two sizes use the standard fold/extension
# pre/post step of recursive doubling.


def _bine_delta(s: int) -> int:
    return (1 - (-2) ** (s + 1)) // 3


def _bine_partner(v: int, s: int, size: int) -> int:
    sign = 1 if v % 2 == 0 else -1
    return (v + sign * _bine_delta(s)) % size


@functools.lru_cache(maxsize=256)
def _bine_tree(pow2: int) -> tuple[tuple[tuple[int, ...], ...], tuple[int, ...]]:
    """Children lists and parents of the Bine broadcast tree rooted at 0."""
    children: list[list[int]] = [[] for _ in range(pow2)]
    parent = [0] * pow2
    informed = [0]
    h = pow2.bit_length() - 1
    for s in range(h - 1, -1, -1):
        new = []
        for u in informed:
            p = _bine_partner(u, s, pow2)
            children[u].append(p)
            parent[p] = u
            new.append(p)
        informed += new
    assert len(set(informed)) == pow2, "bine tree failed to span"
    return tuple(tuple(c) for c in children), tuple(parent)


@functools.lru_cache(maxsize=256)
def _bine_subtree(pow2: int) -> tuple[tuple[int, ...], ...]:
    """Each vrank's Bine subtree members (itself included)."""
    children, _ = _bine_tree(pow2)
    sub: list[tuple[int, ...] | None] = [None] * pow2

    def build(v: int) -> tuple[int, ...]:
        if sub[v] is None:
            acc = [v]
            for c in children[v]:
                acc.extend(build(c))
            sub[v] = tuple(acc)
        return sub[v]

    build(0)
    return tuple(sub)


def _bine_delivery(v: int, n: int, pow2: int) -> tuple[int, ...]:
    """Ranks ultimately served through vrank v's subtree, extension included."""
    out = []
    for w in _bine_subtree(pow2)[v]:
        out.append(w)
        if w + pow2 < n:
            out.append(w + pow2)
    return tuple(out)


@functools.lru_cache(maxsize=256)
def _bine_holdings(n: int) -> tuple[np.ndarray, ...]:
    """Per-round holdings of the Bine allgather (mirrors ``_rd_holdings``)."""
    pow2 = 1 << (n.bit_length() - 1)
    h = np.ones(pow2, dtype=np.int64)
    h[: n - pow2] += 1
    rounds = []
    hh = pow2.bit_length() - 1
    for s in range(hh - 1, -1, -1):
        rounds.append(h.copy())
        perm = np.array(
            [_bine_partner(v, s, pow2) for v in range(pow2)], dtype=np.int64
        )
        h = h + h[perm]
    rounds.append(h.copy())  # final holdings, for the extension return
    return tuple(rounds)


@functools.lru_cache(maxsize=512)
def bine_fanout(op: CollectiveOp, n: int, root: int) -> Schedule:
    """BCAST/SCATTER/SCATTERV down the Bine tree plus extension step."""
    assert op in _FANOUT_OPS
    pow2 = 1 << (n.bit_length() - 1)
    children, _ = _bine_tree(pow2)
    rows = []
    for v in range(pow2):
        for c in children[v]:
            after = v != 0
            delivery = _bine_delivery(c, n, pow2)
            if op is CollectiveOp.BCAST:
                rows.append((v, v, c, 1, (), after))
            elif op is CollectiveOp.SCATTER:
                rows.append((v, v, c, len(delivery), (), after))
            else:
                rows.append((v, v, c, 0, delivery, after))
    for v in range(n - pow2):
        if op is CollectiveOp.SCATTERV:
            rows.append((v, v, v + pow2, 0, (v + pow2,), v != 0))
        else:
            rows.append((v, v, v + pow2, 1, (), v != 0))
    return _make(n, root, rows)


@functools.lru_cache(maxsize=512)
def bine_fanin(op: CollectiveOp, n: int, root: int) -> Schedule:
    """REDUCE/GATHER: remainder folds in, then the Bine tree reversed."""
    assert op in _FANIN_OPS
    pow2 = 1 << (n.bit_length() - 1)
    children, _ = _bine_tree(pow2)
    rows = []
    for v in range(pow2, n):
        rows.append((v, v, v - pow2, 1, (), False))
    for v in range(pow2):
        for c in children[v]:
            mult = 1 if op is CollectiveOp.REDUCE else len(_bine_delivery(c, n, pow2))
            rows.append((c, c, v, mult, (), True))
    return _make(n, root, rows)


@functools.lru_cache(maxsize=512)
def bine_gatherv_paths(n: int, root: int) -> Schedule:
    """GATHERV: fold the remainder, then ride the Bine root path."""
    pow2 = 1 << (n.bit_length() - 1)
    _, parent = _bine_tree(pow2)
    rows = []
    for v in range(1, n):
        if v >= pow2:
            rows.append((v, v, v - pow2, 1, (), False))
            u = v - pow2
        else:
            u = v
        while u != 0:
            p = parent[u]
            rows.append((v, u, p, 1, (), u != v))
            u = p
    return _make(n, root, rows)


@functools.lru_cache(maxsize=512)
def bine_allreduce(n: int) -> Schedule:
    """Allreduce over Bine pairwise exchanges (fold/exchange/unfold)."""
    pow2 = 1 << (n.bit_length() - 1)
    rows = []
    for v in range(pow2, n):
        rows.append((v, v, v - pow2, 1, (), False))
    h = pow2.bit_length() - 1
    for s in range(h - 1, -1, -1):
        for v in range(pow2):
            rows.append((v, v, _bine_partner(v, s, pow2), 1, (), False))
    for v in range(n - pow2):
        rows.append((v, v, v + pow2, 1, (), True))
    return _make(n, 0, rows)


@functools.lru_cache(maxsize=512)
def bine_allgather(n: int) -> Schedule:
    """Allgather over Bine exchanges with holdings-tracked payloads."""
    pow2 = 1 << (n.bit_length() - 1)
    rows = []
    for v in range(pow2, n):
        rows.append((v, v, v - pow2, 1, (), False))
    holdings = _bine_holdings(n)
    h = pow2.bit_length() - 1
    for rnd, s in enumerate(range(h - 1, -1, -1)):
        for v in range(pow2):
            rows.append(
                (v, v, _bine_partner(v, s, pow2), int(holdings[rnd][v]), (), False)
            )
    final = holdings[-1]
    for v in range(n - pow2):
        rows.append((v, v, v + pow2, int(final[v]), (), True))
    return _make(n, 0, rows)
