"""The :class:`CollectiveAlgorithm` interface.

A collective algorithm decides *which point-to-point messages* a collective
record expands into — the seam that separates what the application asked
for from what the modeled MPI library does on the wire.  It mirrors
:class:`repro.routing.base.RoutingPolicy`: engines are stateless strategy
objects resolved by name through :func:`repro.collectives.get_algorithm`,
and every consumer that caches derived artifacts (traffic matrices,
happens-before DAGs, sweep cells) keys them by the engine's
:meth:`~CollectiveAlgorithm.cache_token`.

Three entry points, mirroring the flat functions they generalize:

- :meth:`~CollectiveAlgorithm.expand` — per-event, the oracle form;
- :meth:`~CollectiveAlgorithm.expand_batch` — columnar, the hot path for
  matrix building;
- :meth:`~CollectiveAlgorithm.expand_batch_phased` — columnar with a
  per-batch ``after`` flag for happens-before DAG construction: ``True``
  marks sends of data the sender first had to receive, so the DAG edge
  must leave the sender's completion node.

All engines satisfy the same per-record-independence contract as the flat
expansion: a record's messages depend only on that record, so unions over
arbitrary record subsets (blocks, stream chunks) never double count.
"""

from __future__ import annotations

import abc

import numpy as np

from ..core.communicator import Communicator
from ..core.events import ROOTED_OPS, CollectiveEvent, CollectiveOp
from .patterns import (
    SendGroup,
    check_root,
    expand_collective,
    expand_collective_batch,
)
from .schedules import (
    Schedule,
    expand_batch_from_schedule,
    expand_event_from_schedule,
)

__all__ = ["CollectiveAlgorithm", "FlatCollective", "ScheduleAlgorithm"]

#: Batch arrays: (src, dst, bytes_per_msg, calls)
Batch = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
#: Batch arrays plus the happens-before ``after`` flag.
PhasedBatch = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, bool]


def _flat_after(op: CollectiveOp, index: int) -> bool:
    """The flat expansion's happens-before rule, batch ``index`` of the op.

    The second allreduce batch is the broadcast of the reduced result, and
    scan chains forward accumulated partials — both leave completion nodes.
    """
    return (op is CollectiveOp.ALLREDUCE and index == 1) or op in (
        CollectiveOp.SCAN,
        CollectiveOp.EXSCAN,
    )


class CollectiveAlgorithm(abc.ABC):
    """Strategy object expanding collective records into p2p messages."""

    #: Registry identifier ("flat", "binomial", "ring", ...).
    name: str = "algorithm"

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    def cache_token(self) -> tuple:
        """Identity of this engine for derived-artifact cache keys.

        Two engines with equal tokens must expand every record into the
        identical message multiset.
        """
        return (self.name,)

    @abc.abstractmethod
    def expand(
        self, event: CollectiveEvent, comm: Communicator, element_size: int
    ) -> list[SendGroup]:
        """Expand one caller's record into its injected messages."""

    @abc.abstractmethod
    def expand_batch(
        self,
        op: CollectiveOp,
        comm: Communicator,
        callers: np.ndarray,
        nbytes: np.ndarray,
        roots: np.ndarray,
        calls: np.ndarray,
    ) -> list[Batch]:
        """Columnar expansion of many records of one op on one communicator.

        The message multiset must equal the union of :meth:`expand` over
        the same records exactly — the engine equivalence suite pins this.
        """

    def expand_batch_phased(
        self,
        op: CollectiveOp,
        comm: Communicator,
        callers: np.ndarray,
        nbytes: np.ndarray,
        roots: np.ndarray,
        calls: np.ndarray,
    ) -> list[PhasedBatch]:
        """Like :meth:`expand_batch`, with per-batch ``after`` flags.

        The default tags batches with the flat rule, which is exact for
        any engine that only reorders the flat batches.
        """
        return [
            (src, dst, bpm, cls, _flat_after(op, j))
            for j, (src, dst, bpm, cls) in enumerate(
                self.expand_batch(op, comm, callers, nbytes, roots, calls)
            )
        ]


class FlatCollective(CollectiveAlgorithm):
    """The paper's §4.4 expansion — the bit-identical default."""

    name = "flat"

    def expand(self, event, comm, element_size):
        return expand_collective(event, comm, element_size)

    def expand_batch(self, op, comm, callers, nbytes, roots, calls):
        return expand_collective_batch(op, comm, callers, nbytes, roots, calls)


class ScheduleAlgorithm(CollectiveAlgorithm):
    """Base for engines driven by cached :class:`Schedule` tables.

    Subclasses implement :meth:`_schedule`, returning ``None`` for any op
    the engine leaves to the flat expansion (the alltoall family,
    reduce_scatter, and scan chains are already direct algorithms in
    practice, so every engine falls back for them).
    """

    def _schedule(self, op: CollectiveOp, n: int, root: int) -> Schedule | None:
        raise NotImplementedError

    def expand(self, event, comm, element_size):
        check_root(event.op, comm, event.root)
        if comm.size == 1:
            return []
        root = event.root if event.op in ROOTED_OPS else 0
        sched = self._schedule(event.op, comm.size, root)
        if sched is None:
            return expand_collective(event, comm, element_size)
        return expand_event_from_schedule(sched, comm, event, element_size)

    def expand_batch(self, op, comm, callers, nbytes, roots, calls):
        return [
            batch[:4]
            for batch in self.expand_batch_phased(
                op, comm, callers, nbytes, roots, calls
            )
        ]

    def expand_batch_phased(self, op, comm, callers, nbytes, roots, calls):
        n = comm.size
        rooted = op in ROOTED_OPS
        if len(callers) and rooted:
            rmin, rmax = int(roots.min()), int(roots.max())
            if rmin < 0 or rmax >= n:
                check_root(op, comm, rmin if rmin < 0 else rmax)
        if n == 1 or op is CollectiveOp.BARRIER or len(callers) == 0:
            return []
        if self._schedule(op, n, 0) is None:
            return [
                (src, dst, bpm, cls, _flat_after(op, j))
                for j, (src, dst, bpm, cls) in enumerate(
                    expand_collective_batch(op, comm, callers, nbytes, roots, calls)
                )
            ]
        members = np.asarray(comm.members, dtype=np.int64)
        mmax = int(members.max())
        lookup = np.full(mmax + 1, -1, dtype=np.int64)
        lookup[members] = np.arange(n, dtype=np.int64)
        in_range = (callers >= 0) & (callers <= mmax)
        local = np.where(in_range, lookup[np.clip(callers, 0, mmax)], -1)
        if local.min() < 0:
            bad = int(callers[local < 0][0])
            raise ValueError(f"rank {bad} is not a member of this communicator")
        out: list[PhasedBatch] = []
        if rooted:
            for root in np.unique(roots):
                sel = roots == root
                sched = self._schedule(op, n, int(root))
                out.extend(
                    expand_batch_from_schedule(
                        sched, members, local[sel], nbytes[sel], calls[sel]
                    )
                )
        else:
            sched = self._schedule(op, n, 0)
            out.extend(
                expand_batch_from_schedule(sched, members, local, nbytes, calls)
            )
        return out
