"""The ring / pipeline-chain engine.

Rooted operations stream down (or up) the vrank chain — latency O(n) but
every link carries at most one message per step, the classic long-message
pipeline.  Allreduce is the bandwidth-optimal ring (reduce-scatter +
allgather over even-split chunks, 2(n-1) steps); allgather circulates each
contribution n-1 hops.  Nearest-neighbour traffic makes this the most
locality-friendly engine on torus networks.
"""

from __future__ import annotations

from ..core.events import CollectiveOp
from .base import ScheduleAlgorithm
from .schedules import (
    ring_allgather_paths,
    ring_allreduce,
    ring_fanin,
    ring_fanout,
    ring_gatherv_paths,
)

__all__ = ["RingCollective"]


class RingCollective(ScheduleAlgorithm):
    """Chain schedules for rooted ops, ring schedules for the rest."""

    name = "ring"

    def _schedule(self, op, n, root):
        if op in (CollectiveOp.BCAST, CollectiveOp.SCATTER, CollectiveOp.SCATTERV):
            return ring_fanout(op, n, root)
        if op in (CollectiveOp.REDUCE, CollectiveOp.GATHER):
            return ring_fanin(op, n, root)
        if op is CollectiveOp.GATHERV:
            return ring_gatherv_paths(n, root)
        if op is CollectiveOp.ALLREDUCE:
            return ring_allreduce(n)
        if op in (CollectiveOp.ALLGATHER, CollectiveOp.ALLGATHERV):
            return ring_allgather_paths(n)
        return None
