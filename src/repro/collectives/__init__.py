"""Flat collective-to-point-to-point translation (paper §4.4)."""

from .patterns import SendGroup, even_split, expand_collective
from .translate import ClassifiedSends, TrafficClass, collective_volume, iter_send_groups

__all__ = [
    "SendGroup",
    "even_split",
    "expand_collective",
    "ClassifiedSends",
    "TrafficClass",
    "collective_volume",
    "iter_send_groups",
]
