"""Flat collective-to-point-to-point translation (paper §4.4)."""

from .patterns import (
    SendGroup,
    even_split,
    even_split_rows,
    expand_collective,
    expand_collective_batch,
)
from .translate import (
    ClassifiedSends,
    SendBatch,
    TrafficClass,
    collective_volume,
    iter_send_batches,
    iter_send_groups,
    iter_stream_send_batches,
)

__all__ = [
    "SendGroup",
    "even_split",
    "even_split_rows",
    "expand_collective",
    "expand_collective_batch",
    "ClassifiedSends",
    "SendBatch",
    "TrafficClass",
    "collective_volume",
    "iter_send_batches",
    "iter_send_groups",
    "iter_stream_send_batches",
]
