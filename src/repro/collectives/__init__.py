"""Collective-to-point-to-point translation with pluggable algorithms.

The paper's §4.4 convention flattens every collective into direct p2p
messages; real MPI libraries use log-depth schedules whose choice shifts
communication locality substantially (Bine Trees, PAPERS.md).  The engine
registry mirrors :mod:`repro.routing`: resolve a name with
:func:`get_algorithm`, expand records through the engine, and key every
derived artifact by its ``cache_token()``::

    from repro.collectives import get_algorithm
    groups = get_algorithm("binomial").expand(event, comm, elem_size)

``COLLECTIVES`` lists every engine name in the canonical order used by CLI
choices, sweep axes, and the collectives benchmark.  ``flat`` is the
bit-identical default everywhere.
"""

from .base import CollectiveAlgorithm, FlatCollective
from .bine import BineCollective
from .binomial import BinomialCollective
from .patterns import (
    SendGroup,
    check_root,
    even_split,
    even_split_rows,
    expand_collective,
    expand_collective_batch,
)
from .recursive_doubling import RecursiveDoublingCollective
from .registry import COLLECTIVES, get_algorithm
from .ring import RingCollective
from .translate import (
    ClassifiedSends,
    SendBatch,
    TrafficClass,
    collective_volume,
    iter_send_batches,
    iter_send_groups,
    iter_stream_send_batches,
)
from .tree import expand_collective_tree

__all__ = [
    "COLLECTIVES",
    "CollectiveAlgorithm",
    "FlatCollective",
    "BinomialCollective",
    "RingCollective",
    "RecursiveDoublingCollective",
    "BineCollective",
    "get_algorithm",
    "SendGroup",
    "check_root",
    "even_split",
    "even_split_rows",
    "expand_collective",
    "expand_collective_batch",
    "expand_collective_tree",
    "ClassifiedSends",
    "SendBatch",
    "TrafficClass",
    "collective_volume",
    "iter_send_batches",
    "iter_send_groups",
    "iter_stream_send_batches",
]
