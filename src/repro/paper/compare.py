"""Paper-vs-measured comparison engine.

Joins the published values (:mod:`repro.paper.values`) against our Table-3
rows and produces per-cell deviation records — the machine-checkable core of
EXPERIMENTS.md.  Each comparison carries the ratio (measured / paper) so
"within a factor of two" style statements are one filter away.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..analysis.tables import Table3Row
from .values import TABLE3, PaperTable3Row

__all__ = ["CellComparison", "compare_table3", "deviation_summary"]


@dataclass(frozen=True)
class CellComparison:
    """One (workload, column) paper-vs-measured cell."""

    label: str
    column: str
    paper: float | None
    measured: float | None

    @property
    def ratio(self) -> float | None:
        """measured / paper; None when either side is N/A or paper is 0."""
        if self.paper is None or self.measured is None or self.paper == 0:
            return None
        if math.isnan(self.measured):
            return None
        return self.measured / self.paper

    def within_factor(self, factor: float) -> bool | None:
        """True/False when comparable; None for N/A cells."""
        r = self.ratio
        if r is None:
            return None
        return 1.0 / factor <= r <= factor


def _cells_for(row: Table3Row, paper: PaperTable3Row) -> list[CellComparison]:
    m = row.metrics
    label = m.label
    measured_mpi = {
        "peers": float(m.peers) if m.has_p2p else None,
        "rank_distance_90": m.rank_distance_90 if m.has_p2p else None,
        "selectivity_90": m.selectivity_90 if m.has_p2p else None,
    }
    paper_mpi = {
        "peers": float(paper.peers) if paper.peers is not None else None,
        "rank_distance_90": paper.rank_distance_90,
        "selectivity_90": paper.selectivity_90,
    }
    cells = [
        CellComparison(label, col, paper_mpi[col], measured_mpi[col])
        for col in measured_mpi
    ]
    topo_columns = {
        "torus3d_avg_hops": (paper.torus_avg_hops, row.network["torus3d"].avg_hops),
        "fattree_avg_hops": (paper.fattree_avg_hops, row.network["fattree"].avg_hops),
        "dragonfly_avg_hops": (
            paper.dragonfly_avg_hops,
            row.network["dragonfly"].avg_hops,
        ),
        "torus3d_packet_hops": (
            paper.torus_packet_hops,
            float(row.network["torus3d"].packet_hops),
        ),
        "fattree_packet_hops": (
            paper.fattree_packet_hops,
            float(row.network["fattree"].packet_hops),
        ),
        "dragonfly_packet_hops": (
            paper.dragonfly_packet_hops,
            float(row.network["dragonfly"].packet_hops),
        ),
    }
    cells += [
        CellComparison(label, col, p, v) for col, (p, v) in topo_columns.items()
    ]
    return cells


def compare_table3(rows: list[Table3Row]) -> list[CellComparison]:
    """Per-cell comparisons for every row with a published counterpart."""
    cells: list[CellComparison] = []
    for row in rows:
        m = row.metrics
        key = (m.app, m.num_ranks, m.variant)
        paper = TABLE3.get(key)
        if paper is None:
            continue
        cells.extend(_cells_for(row, paper))
    return cells


@dataclass(frozen=True)
class DeviationSummary:
    """Aggregate agreement statistics over a set of cell comparisons."""

    comparable_cells: int
    within_1_2x: int
    within_2x: int
    within_3x: int
    geometric_mean_ratio: float
    worst: CellComparison | None

    def lines(self) -> list[str]:
        out = [
            f"comparable cells:        {self.comparable_cells}",
            f"within 1.2x of paper:    {self.within_1_2x}"
            f" ({100 * self.within_1_2x / max(self.comparable_cells, 1):.0f}%)",
            f"within 2x of paper:      {self.within_2x}"
            f" ({100 * self.within_2x / max(self.comparable_cells, 1):.0f}%)",
            f"within 3x of paper:      {self.within_3x}"
            f" ({100 * self.within_3x / max(self.comparable_cells, 1):.0f}%)",
            f"geometric mean ratio:    {self.geometric_mean_ratio:.3f}",
        ]
        if self.worst is not None and self.worst.ratio is not None:
            out.append(
                f"largest deviation:       {self.worst.label} {self.worst.column} "
                f"({self.worst.ratio:.2f}x)"
            )
        return out


def deviation_summary(cells: list[CellComparison]) -> DeviationSummary:
    """Aggregate a comparison set into agreement statistics."""
    comparable = [c for c in cells if c.ratio is not None]
    if not comparable:
        return DeviationSummary(0, 0, 0, 0, 1.0, None)
    log_sum = 0.0
    worst = comparable[0]
    worst_dev = 0.0
    counts = {1.2: 0, 2.0: 0, 3.0: 0}
    for cell in comparable:
        r = cell.ratio
        assert r is not None
        dev = abs(math.log(r))
        log_sum += math.log(r)
        if dev > worst_dev:
            worst_dev = dev
            worst = cell
        for factor in counts:
            if cell.within_factor(factor):
                counts[factor] += 1
    return DeviationSummary(
        comparable_cells=len(comparable),
        within_1_2x=counts[1.2],
        within_2x=counts[2.0],
        within_3x=counts[3.0],
        geometric_mean_ratio=math.exp(log_sum / len(comparable)),
        worst=worst,
    )
