"""The paper's published values and paper-vs-measured comparison tooling."""

from .compare import CellComparison, DeviationSummary, compare_table3, deviation_summary
from .values import (
    TABLE1,
    TABLE3,
    TABLE4,
    PaperTable1Row,
    PaperTable3Row,
    table1_row,
    table3_row,
)

__all__ = [
    "CellComparison",
    "DeviationSummary",
    "compare_table3",
    "deviation_summary",
    "TABLE1",
    "TABLE3",
    "TABLE4",
    "PaperTable1Row",
    "PaperTable3Row",
    "table1_row",
    "table3_row",
]
