"""The paper's published numbers, as structured data.

Everything the evaluation section prints — Table 1 aggregates, Table 3
metrics per topology, Table 4 dimensionality rows — transcribed from the
paper so that code (benchmarks, comparison reports, notebooks) can query
"what did the paper report for X" instead of hard-coding constants.

Keys are ``(app, ranks)`` or ``(app, ranks, variant)``; variants ("b")
denote the duplicated-scale traces (CNS@256, Boxlib MG@256, LULESH@64).
Values are ``None`` where the paper prints N/A (the all-collective apps'
MPI-level metrics).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PaperTable1Row",
    "PaperTable3Row",
    "TABLE1",
    "TABLE3",
    "TABLE4",
    "table1_row",
    "table3_row",
]


@dataclass(frozen=True)
class PaperTable1Row:
    """One row of the paper's Table 1."""

    app: str
    ranks: int
    variant: str
    time_s: float
    volume_mb: float
    p2p_percent: float
    collective_percent: float
    throughput_mb_s: float


@dataclass(frozen=True)
class PaperTable3Row:
    """One row of the paper's Table 3 (all fifteen numeric columns)."""

    app: str
    ranks: int
    variant: str
    peers: int | None
    rank_distance_90: float | None
    selectivity_90: float | None
    torus_packet_hops: float
    torus_avg_hops: float
    torus_utilization_percent: float
    fattree_packet_hops: float
    fattree_avg_hops: float
    fattree_utilization_percent: float
    dragonfly_packet_hops: float
    dragonfly_avg_hops: float
    dragonfly_utilization_percent: float


def _t1(app, ranks, time_s, vol, p2p, coll, thr, variant=""):
    return PaperTable1Row(app, ranks, variant, time_s, vol, p2p, coll, thr)


#: Paper Table 1, verbatim (times as printed; AMG@216's printed 0.10 s is
#: inconsistent with its own Vol/t column — see repro.apps calibration notes).
TABLE1: dict[tuple[str, int, str], PaperTable1Row] = {
    (r.app, r.ranks, r.variant): r
    for r in [
        _t1("AMG", 8, 0.03, 3.0, 100.0, 0.0, 116.3),
        _t1("AMG", 27, 0.16, 13.6, 100.0, 0.0, 86.98),
        _t1("AMG", 216, 0.10, 136.9, 100.0, 0.0, 461.5),
        _t1("AMG", 1728, 2.92, 1208.0, 100.0, 0.0, 413.7),
        _t1("AMR_Miniapp", 64, 12.93, 3106.0, 99.66, 0.34, 240.3),
        _t1("AMR_Miniapp", 1728, 42.69, 96969.0, 99.45, 0.55, 2271.0),
        _t1("BigFFT", 9, 0.18, 299.2, 0.0, 100.0, 1659.0),
        _t1("BigFFT", 100, 0.50, 3169.0, 0.0, 100.0, 6340.0),
        _t1("BigFFT", 1024, 1.89, 32064.0, 0.0, 100.0, 17003.0),
        _t1("Boxlib_CNS", 64, 572.19, 9292.0, 100.0, 0.0, 16.24),
        _t1("Boxlib_CNS", 256, 169.05, 15227.0, 100.0, 0.0, 90.08),
        _t1("Boxlib_CNS", 256, 150.92, 15227.0, 100.0, 0.0, 100.9, "b"),
        _t1("Boxlib_CNS", 1024, 67.54, 34131.0, 100.0, 0.0, 505.4),
        _t1("Boxlib_MultiGrid_C", 64, 231.42, 23742.0, 99.94, 0.06, 102.6),
        _t1("Boxlib_MultiGrid_C", 256, 62.01, 44535.0, 99.95, 0.05, 718.2),
        _t1("Boxlib_MultiGrid_C", 256, 60.28, 44535.0, 99.95, 0.05, 738.8, "b"),
        _t1("Boxlib_MultiGrid_C", 1024, 20.88, 75181.0, 99.94, 0.06, 3600.9),
        _t1("MOCFE", 64, 0.38, 19.0, 5.01, 94.99, 50.3),
        _t1("MOCFE", 256, 1.10, 81.6, 5.51, 94.49, 74.11),
        _t1("MOCFE", 1024, 3.95, 686.2, 6.96, 93.04, 173.9),
        _t1("Nekbone", 64, 11.83, 5307.0, 100.0, 0.0, 448.8),
        _t1("Nekbone", 256, 3.17, 1272.0, 50.66, 49.34, 401.8),
        _t1("Nekbone", 1024, 5.15, 13232.0, 99.98, 0.02, 2568.8),
        _t1("CrystalRouter", 10, 0.14, 133.8, 100.0, 0.0, 930.3),
        _t1("CrystalRouter", 100, 0.71, 3439.9, 100.0, 0.0, 4854.0),
        _t1("CrystalRouter", 1000, 1.28, 115521.0, 100.0, 0.0, 90491.0),
        _t1("CMC_2D", 64, 842.80, 16.0, 0.0, 100.0, 0.019),
        _t1("CMC_2D", 256, 208.44, 16.1, 0.0, 100.0, 0.077),
        _t1("CMC_2D", 1024, 58.85, 16.4, 0.0, 100.0, 0.279),
        _t1("LULESH", 64, 54.14, 3585.0, 100.0, 0.0, 66.23),
        _t1("LULESH", 64, 44.03, 3585.0, 100.0, 0.0, 81.43, "b"),
        _t1("LULESH", 512, 50.24, 33548.0, 100.0, 0.0, 667.8),
        _t1("FillBoundary", 125, 2.32, 10209.0, 100.0, 0.0, 4393.0),
        _t1("FillBoundary", 1000, 5.26, 92323.0, 100.0, 0.0, 17549.0),
        _t1("MiniFE", 18, 59.70, 1615.0, 100.0, 0.0, 27.06),
        _t1("MiniFE", 144, 61.06, 16586.0, 99.99, 0.01, 271.63),
        _t1("MiniFE", 1152, 84.75, 147264.0, 99.96, 0.04, 1737.7),
        _t1("MultiGrid_C", 125, 0.77, 374.0, 100.0, 0.0, 4889.0),
        _t1("MultiGrid_C", 1000, 3.57, 2973.0, 100.0, 0.0, 832.83),
        _t1("PARTISN", 168, 2.2e6, 42123.0, 99.96, 0.04, 0.02),
        _t1("SNAP", 168, 1.2e6, 128561.0, 100.0, 0.0, 0.11),
    ]
}


def _t3(app, ranks, peers, dist, sel, th, tah, tu, fh, fah, fu, dh, dah, du, variant=""):
    return PaperTable3Row(
        app, ranks, variant, peers, dist, sel,
        th, tah, tu, fh, fah, fu, dh, dah, du,
    )


#: Paper Table 3, verbatim.  Packet-hop columns keep the paper's printed
#: precision (often one significant digit for the dragonfly).
TABLE3: dict[tuple[str, int, str], PaperTable3Row] = {
    (r.app, r.ranks, r.variant): r
    for r in [
        _t3("AMG", 8, 7, 3.7, 2.8, 4.2e3, 1.57, 0.0052, 5.7e3, 2.00, 0.0303, 8e3, 2.83, 0.0116),
        _t3("AMG", 27, 26, 8.7, 4.2, 2.9e4, 1.74, 0.0012, 3.5e4, 2.00, 0.0034, 7e4, 4.01, 0.0034),
        _t3("AMG", 216, 127, 35.8, 5.2, 5.5e5, 2.36, 0.0008, 8.2e5, 3.41, 0.0032, 1e6, 4.14, 0.0021),
        _t3("AMG", 1728, 293, 143.8, 5.6, 6.0e6, 2.62, 0.0001, 8.5e6, 3.62, 0.0004, 1e7, 4.28, 0.0002),
        _t3("AMR_Miniapp", 64, 39, 27.1, 8.3, 5.9e6, 2.93, 0.0034, 6.6e6, 3.20, 0.0058, 9e6, 4.19, 0.0048),
        _t3("AMR_Miniapp", 1728, 490, 348.3, 13.0, 8.9e9, 8.97, 0.0278, 4.9e9, 4.86, 0.0229, 5e9, 4.74, 0.0119),
        _t3("BigFFT", 9, None, None, None, 1.0e6, 1.56, 0.6721, 1.2e6, 1.78, 3.0725, 2e6, 2.91, 1.2943),
        _t3("BigFFT", 100, None, None, None, 7.7e7, 3.40, 7.4849, 2.7e8, 3.52, 10.5544, 3e8, 4.36, 7.6985),
        _t3("BigFFT", 1024, None, None, None, 6.4e10, 8.00, 47.2317, 3.5e10, 4.35, 38.4346, 4e10, 4.69, 22.1491),
        _t3("Boxlib_CNS", 64, 63, 35.1, 5.7, 5.7e6, 2.99, 0.0002, 6.5e6, 3.23, 0.0003, 9e6, 4.23, 0.0003),
        _t3("Boxlib_CNS", 256, 255, 109.2, 5.4, 1.5e7, 4.93, 0.0004, 1.2e7, 3.75, 0.0005, 2e7, 4.49, 0.0004),
        _t3("Boxlib_CNS", 256, 255, 109.2, 5.4, 1.5e7, 4.93, 0.0005, 1.2e7, 3.75, 0.0006, 2e7, 4.49, 0.0004, "b"),
        _t3("Boxlib_CNS", 1024, 1023, 661.5, 20.8, 1.1e8, 7.97, 0.0012, 6.4e7, 4.35, 0.0010, 7e7, 4.68, 0.0006),
        _t3("Boxlib_MultiGrid_C", 64, 26, 27.1, 4.4, 2.6e7, 2.92, 0.0011, 3.0e7, 3.19, 0.0020, 4e7, 4.19, 0.0017),
        _t3("Boxlib_MultiGrid_C", 256, 26, 54.3, 4.4, 3.9e8, 4.94, 0.0035, 3.0e8, 3.76, 0.0045, 4e8, 4.50, 0.0032),
        _t3("Boxlib_MultiGrid_C", 256, 26, 54.3, 4.4, 3.9e8, 4.94, 0.0036, 3.0e8, 3.76, 0.0046, 4e8, 4.50, 0.0033, "b"),
        _t3("Boxlib_MultiGrid_C", 1024, 26, 109.1, 4.9, 8.9e9, 7.96, 0.0106, 4.9e9, 4.33, 0.0092, 5e9, 4.67, 0.0054),
        _t3("MOCFE", 64, 12, 51.3, 8.9, 2.4e6, 2.96, 0.0498, 2.7e6, 3.28, 0.0769, 3e6, 4.24, 0.0605),
        _t3("MOCFE", 256, 20, 195.3, 14.0, 6.2e7, 4.96, 0.1216, 4.7e7, 3.80, 0.1368, 6e7, 4.53, 0.0895),
        _t3("MOCFE", 1024, 20, 771.8, 13.3, 3.2e9, 7.98, 0.4495, 1.7e9, 4.36, 0.3656, 2e9, 4.69, 0.2108),
        _t3("Nekbone", 64, 27, 15.8, 4.8, 4.0e7, 2.92, 0.0027, 4.6e7, 3.25, 0.0090, 6e7, 4.24, 0.0081),
        _t3("Nekbone", 256, 15, 28.4, 5.4, 1.2e9, 4.99, 0.3447, 9.0e8, 3.80, 0.3882, 1e9, 4.53, 0.2541),
        _t3("Nekbone", 1024, 36, 127.9, 10.2, 2.5e10, 7.96, 0.0029, 1.4e10, 4.35, 0.0057, 1e10, 4.69, 0.0035),
        _t3("CrystalRouter", 10, 4, 6.4, 3.0, 2.4e5, 1.74, 0.0469, 2.7e5, 2.00, 0.1938, 4e5, 3.18, 0.0882),
        _t3("CrystalRouter", 100, 8, 44.3, 5.8, 1.4e6, 2.41, 0.0408, 7.4e6, 2.76, 0.0637, 1e7, 3.61, 0.0490),
        _t3("CrystalRouter", 1000, 11, 334.3, 8.9, 2.8e8, 4.69, 0.1475, 1.9e8, 3.26, 0.1531, 2e8, 3.82, 0.0959),
        _t3("CMC_2D", 64, None, None, None, 7.9e5, 3.00, 2.0e-5, 8.4e5, 3.28, 3.0e-5, 1e6, 4.25, 2.4e-5),
        _t3("CMC_2D", 256, None, None, None, 5.2e6, 5.00, 0.0001, 4.0e6, 3.81, 0.0001, 5e6, 4.54, 0.0001),
        _t3("CMC_2D", 1024, None, None, None, 3.4e7, 8.00, 0.0008, 2.0e7, 4.36, 0.0007, 2e7, 4.69, 0.0004),
        _t3("LULESH", 64, 26, 15.7, 4.5, 2.3e6, 2.70, 0.0004, 3.8e6, 3.17, 0.0013, 5e6, 4.18, 0.0011),
        _t3("LULESH", 64, 26, 15.7, 4.5, 2.3e6, 2.70, 0.0004, 3.8e6, 3.17, 0.0016, 5e6, 4.18, 0.0013, "b"),
        _t3("LULESH", 512, 26, 63.7, 5.0, 1.7e8, 5.80, 0.0005, 1.3e8, 3.88, 0.0020, 2e8, 4.60, 0.0012),
        _t3("FillBoundary", 125, 26, 42.3, 4.8, 6.6e6, 3.27, 0.0319, 6.9e6, 3.32, 0.0466, 9e6, 4.13, 0.0351),
        _t3("FillBoundary", 1000, 26, 219.1, 5.3, 9.9e7, 7.13, 0.0245, 6.6e7, 4.15, 0.0248, 8e7, 4.55, 0.0160),
        _t3("MiniFE", 18, 8, 7.4, 3.4, 8.9e5, 1.82, 0.0008, 1.1e6, 1.90, 0.0031, 2e6, 3.69, 0.0015),
        _t3("MiniFE", 144, 22, 31.5, 4.6, 4.5e7, 3.97, 0.0017, 4.2e7, 3.62, 0.0025, 5e7, 4.40, 0.0017),
        _t3("MiniFE", 1152, 22, 91.8, 5.1, 4.6e9, 7.98, 0.0039, 2.6e9, 4.47, 0.0037, 3e9, 4.71, 0.0022),
        _t3("MultiGrid_C", 125, 22, 59.7, 5.5, 1.2e6, 3.52, 0.0038, 1.3e6, 3.57, 0.0056, 2e6, 4.33, 0.0041),
        _t3("MultiGrid_C", 1000, 22, 392.0, 5.4, 1.0e8, 7.43, 0.0013, 6.0e7, 4.31, 0.0013, 7e7, 4.66, 0.0008),
        _t3("PARTISN", 168, 167, 13.8, 3.4, 8.0e7, 2.70, 7.4e-8, 1.0e8, 3.04, 1.6e-7, 1e8, 3.88, 1.2e-7),
        _t3("SNAP", 168, 48, 139.1, 9.8, 1.6e8, 3.85, 4.2e-7, 1.5e8, 3.74, 6.2e-7, 2e8, 4.41, 4.0e-7),
    ]
}


#: Paper Table 4 — rank locality (percent) under 1D/2D/3D re-linearization.
TABLE4: dict[tuple[str, int], tuple[int, int, int]] = {
    ("AMG", 216): (3, 17, 100),
    ("AMG", 1728): (1, 8, 100),
    ("Boxlib_CNS", 64): (3, 13, 21),
    ("Boxlib_CNS", 256): (1, 8, 13),
    ("Boxlib_CNS", 1024): (0, 3, 7),
    ("LULESH", 64): (6, 24, 100),
    ("LULESH", 512): (2, 6, 100),
    ("MultiGrid_C", 125): (2, 6, 17),
    ("MultiGrid_C", 1000): (0, 3, 9),
    ("PARTISN", 168): (7, 100, 22),
}


def table1_row(app: str, ranks: int, variant: str = "") -> PaperTable1Row:
    """Look up a published Table-1 row."""
    try:
        return TABLE1[(app, ranks, variant)]
    except KeyError:
        raise KeyError(f"paper Table 1 has no row for {app}@{ranks}/{variant!r}") from None


def table3_row(app: str, ranks: int, variant: str = "") -> PaperTable3Row:
    """Look up a published Table-3 row."""
    try:
        return TABLE3[(app, ranks, variant)]
    except KeyError:
        raise KeyError(f"paper Table 3 has no row for {app}@{ranks}/{variant!r}") from None
