"""Per-job congestion attribution and the interference report.

Given a composed workload simulated with telemetry, this module answers
"who caused that congestion region, and what did it cost each tenant?":

- :func:`per_job_link_loads` splits the simulation's structural per-link
  service counts by owning job — each pair's packets are charged to the
  job of its source rank over every link of its route, so the per-job
  rows sum exactly to ``setup.serve_counts``.
- :func:`attribute_regions` charges the services inside each congestion
  region's hot (link, window) cells to jobs by their link-occupancy
  shares, yielding per-region blamed-bytes breakdowns and a
  victim/aggressor participant list.
- :func:`interference_report` orchestrates the whole pipeline: composite
  simulation (with telemetry), per-job solo baselines under the *same*
  placement (the job's own submatrix, interference removed), region
  attribution, and per-job slowdown/blame aggregation.

The attribution is *static by link, dynamic by window*: occupancy shares
come from the routes and packet counts (exact, engine-independent), while
the hot cells come from the windowed telemetry of the actual run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..comm.matrix import matrix_from_trace
from ..core.packets import MAX_PAYLOAD_BYTES
from ..model.engine import BANDWIDTH_BYTES_PER_S
from ..sim.common import SimSetup, prepare_simulation
from ..telemetry.collector import TelemetryConfig
from ..telemetry.congestion import CongestionRegion, find_congestion_regions
from ..util import fmt_float
from .compose import ComposedWorkload

__all__ = [
    "per_job_link_loads",
    "RegionBlame",
    "attribute_regions",
    "JobInterference",
    "InterferenceReport",
    "interference_report",
    "render_interference_report",
    "victim_peak_link_load",
]


def per_job_link_loads(setup: SimSetup, num_jobs: int | None = None) -> np.ndarray:
    """Per-job structural link loads, ``float64[num_jobs, num_links]``.

    Entry ``[j, l]`` counts the (scaled) packets job ``j`` pushes through
    compact link ``l``; columns sum to ``setup.serve_counts`` exactly.
    Requires a setup prepared with ``job_of_rank``.
    """
    if setup.pair_job is None:
        raise ValueError(
            "setup carries no job identity; prepare it with job_of_rank="
        )
    if num_jobs is None:
        num_jobs = int(setup.pair_job.max()) + 1
    # route_links runs are grouped by ascending pair ID (stable sort in
    # prepare_simulation), so repeating each pair by its route length
    # aligns rows with their owning pair.
    num_pairs = len(setup.pair_packets)
    row_pair = np.repeat(np.arange(num_pairs, dtype=np.int64), setup.route_lens)
    row_job = setup.pair_job[row_pair]
    flat = row_job * setup.num_links + setup.route_links
    loads = np.bincount(
        flat,
        weights=setup.pair_packets[row_pair].astype(np.float64),
        minlength=num_jobs * setup.num_links,
    )
    return loads.reshape(num_jobs, setup.num_links)


def victim_peak_link_load(setup: SimSetup, job_id: int) -> float:
    """Peak total load on any link the job's traffic traverses.

    The max is over **total** serve counts (all tenants combined) but only
    on links the job actually uses — the congestion the job is exposed to,
    in scaled-packet units.  NaN when the job has no crossing traffic.
    """
    loads = per_job_link_loads(setup)
    mask = loads[job_id] > 0
    if not mask.any():
        return float("nan")
    return float(setup.serve_counts[mask].max())


@dataclass(frozen=True, eq=False)
class RegionBlame:
    """One congestion region with its services charged to jobs."""

    region: CongestionRegion
    blamed_bytes: np.ndarray  # float64[num_jobs]
    share: np.ndarray  # float64[num_jobs], sums to 1 (NaN if region empty)
    participants: tuple[int, ...]  # jobs with share >= share_threshold
    is_shared: bool  # >= 2 participants: genuine inter-job interference


def attribute_regions(
    regions: list[CongestionRegion],
    report,
    setup: SimSetup,
    payload: int = MAX_PAYLOAD_BYTES,
    share_threshold: float = 0.05,
) -> list[RegionBlame]:
    """Charge each region's hot-cell services to jobs by occupancy share.

    For a hot cell ``(l, w)`` the ``serve_series[l, w]`` services are split
    in proportion to each job's share of link ``l``'s total structural
    load — the windowed telemetry localises congestion in time, the routes
    decide who owns it.  ``report`` must come from the same run as
    ``setup`` (their compact link spaces coincide).
    """
    if not regions:
        return []
    loads = per_job_link_loads(setup)
    totals = setup.serve_counts.astype(np.float64)
    # Link-occupancy shares; links with no structural load never become
    # hot, but guard the division anyway.
    safe = np.where(totals > 0, totals, 1.0)
    link_share = loads / safe  # [num_jobs, num_links]

    out = []
    for region in regions:
        if region.cell_links is None or region.cell_windows is None:
            raise ValueError(
                "region carries no cell arrays; use find_congestion_regions"
            )
        services = report.serve_series[
            region.cell_links, region.cell_windows
        ].astype(np.float64)
        blamed = link_share[:, region.cell_links] @ services  # [num_jobs]
        blamed_bytes = blamed * float(payload)
        total = blamed.sum()
        share = blamed / total if total > 0 else np.full_like(blamed, np.nan)
        participants = tuple(
            int(j) for j in np.flatnonzero(share >= share_threshold)
        )
        out.append(
            RegionBlame(
                region=region,
                blamed_bytes=blamed_bytes,
                share=share,
                participants=participants,
                is_shared=len(participants) >= 2,
            )
        )
    return out


@dataclass(frozen=True, eq=False)
class JobInterference:
    """One tenant's interference outcome in a composed run."""

    job_id: int
    label: str
    is_noise: bool
    makespan: float  # the job's delivery makespan in the composite run
    solo_makespan: float  # same placement, interference removed
    slowdown: float  # makespan / solo_makespan (NaN when undefined)
    blamed_bytes: float  # total hot-region bytes charged to this job
    blame_share: float  # this job's share of all blamed bytes (NaN if none)
    shared_regions: int  # regions where this job met another participant


@dataclass(frozen=True, eq=False)
class InterferenceReport:
    """Full attribution of one composed run."""

    labels: tuple[str, ...]
    jobs: tuple[JobInterference, ...]
    regions: tuple[RegionBlame, ...]
    threshold: float
    share_threshold: float
    composite_makespan: float

    @property
    def shared_region_count(self) -> int:
        return sum(1 for r in self.regions if r.is_shared)

    def job(self, job_id: int) -> JobInterference:
        return self.jobs[job_id]


def interference_report(
    workload: ComposedWorkload,
    topology,
    mapping=None,
    bandwidth: float = BANDWIDTH_BYTES_PER_S,
    payload: int = MAX_PAYLOAD_BYTES,
    hop_latency: float = 100e-9,
    volume_scale: float = 1.0,
    max_packets: int = 2_000_000,
    seed: int = 0,
    engine: str = "auto",
    routing: str = "minimal",
    routing_seed: int = 0,
    telemetry: TelemetryConfig | None = None,
    threshold: float = 0.7,
    share_threshold: float = 0.05,
) -> InterferenceReport:
    """Simulate a composed workload and attribute its congestion to jobs.

    Each job's solo baseline holds the placement fixed: the composite
    matrix restricted to the job's own traffic is simulated under the same
    mapping, routing, and parameters, so the slowdown isolates pure
    interference (no placement effects).
    """
    from ..sim.engine import simulate_network

    if telemetry is None:
        telemetry = TelemetryConfig()
    trace = workload.trace
    matrix = matrix_from_trace(trace, payload=payload)
    common = dict(
        mapping=mapping,
        execution_time=trace.meta.execution_time,
        bandwidth=bandwidth,
        payload=payload,
        hop_latency=hop_latency,
        volume_scale=volume_scale,
        max_packets=max_packets,
        seed=seed,
        routing=routing,
        routing_seed=routing_seed,
    )
    result = simulate_network(
        matrix,
        topology,
        engine=engine,
        telemetry=telemetry,
        job_of_rank=workload.job_of_rank,
        **common,
    )
    setup = prepare_simulation(
        matrix, topology, job_of_rank=workload.job_of_rank, **common
    )

    regions: list[CongestionRegion] = []
    blames: list[RegionBlame] = []
    if result.telemetry is not None and setup is not None:
        regions = find_congestion_regions(result.telemetry, topology, threshold)
        blames = attribute_regions(
            regions, result.telemetry, setup, payload, share_threshold
        )

    num_jobs = workload.num_jobs
    blamed_totals = np.zeros(num_jobs, dtype=np.float64)
    shared_counts = np.zeros(num_jobs, dtype=np.int64)
    for blame in blames:
        blamed_totals += blame.blamed_bytes
        if blame.is_shared:
            for j in blame.participants:
                shared_counts[j] += 1
    grand_total = float(blamed_totals.sum())

    jobs = []
    for placement in workload.jobs:
        j = placement.job_id
        makespan = (
            float(result.job_makespans[j])
            if result.job_makespans is not None
            else float("nan")
        )
        solo = simulate_network(
            workload.job_matrix(matrix, j),
            topology,
            engine=engine,
            **common,
        )
        solo_makespan = float(solo.makespan) if solo.packets_simulated else float("nan")
        slowdown = (
            makespan / solo_makespan
            if np.isfinite(makespan) and solo_makespan > 0
            else float("nan")
        )
        jobs.append(
            JobInterference(
                job_id=j,
                label=placement.label,
                is_noise=placement.is_noise,
                makespan=makespan,
                solo_makespan=solo_makespan,
                slowdown=slowdown,
                blamed_bytes=float(blamed_totals[j]),
                blame_share=(
                    float(blamed_totals[j] / grand_total)
                    if grand_total > 0
                    else float("nan")
                ),
                shared_regions=int(shared_counts[j]),
            )
        )

    return InterferenceReport(
        labels=workload.labels,
        jobs=tuple(jobs),
        regions=tuple(blames),
        threshold=threshold,
        share_threshold=share_threshold,
        composite_makespan=float(result.makespan),
    )


def render_interference_report(report: InterferenceReport) -> str:
    """ASCII summary of an :class:`InterferenceReport`."""
    lines = [
        f"interference report: {'+'.join(report.labels)} "
        f"(threshold {report.threshold:.2f}, "
        f"{len(report.regions)} regions, "
        f"{report.shared_region_count} shared)",
        f"  composite makespan {fmt_float(report.composite_makespan, '.3e')} s",
        "  job                    role    slowdown   blamed MB   share  shared-regions",
    ]
    for job in report.jobs:
        role = "noise" if job.is_noise else "app"
        lines.append(
            f"  {job.label:<22} {role:<7} "
            f"{fmt_float(job.slowdown, '8.3f'):>8}   "
            f"{fmt_float(job.blamed_bytes / (1024 * 1024), '9.2f'):>9}   "
            f"{fmt_float(job.blame_share, '5.3f'):>5}  "
            f"{job.shared_regions:>14d}"
        )
    return "\n".join(lines)
