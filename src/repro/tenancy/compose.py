"""The multi-tenant workload composer.

``compose_workload`` places N tenant jobs on disjoint rank sets of one
shared machine (via :mod:`repro.tenancy.allocate`), generates each job's
solo trace, remaps its communicator-local rank IDs onto the allocated
global IDs, and merges the per-job EventBlock streams into a single
composite :class:`~repro.core.trace.Trace`.

Job identity is carried by two artifacts rather than a per-event column:

- ``job_of_rank`` — an ``int64[total_ranks]`` table mapping every global
  rank to its owning job.  Because jobs occupy disjoint rank sets and
  every MPI record (p2p or collective) stays within one job's
  communicators, ``job_of_rank[caller]`` recovers the job of any event,
  matrix row, or simulated packet exactly.  The sim engines accept it via
  ``simulate_network(job_of_rank=...)`` and report per-job makespans.
- per-job communicators — each part's communicator ``C`` appears in the
  composite table as ``"<label>:C"`` with globally remapped members, so
  collective expansion reproduces the solo fan-outs on the allocated
  ranks and the composite trace remains fully self-describing.

**Solo identity guarantee:** composing a single job with zero noise
returns the solo trace object unchanged — records, telemetry, and cache
keys are bit-identical to a solo run by construction.  (Every allocation
policy is the identity for one job because per-job rank sets are sorted
ascending and complete.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..apps.base import SyntheticApp
from ..apps.registry import get_app
from ..comm.matrix import CommMatrix
from ..core.blocks import KIND_COLLECTIVE, EventBlock
from ..core.communicator import (
    CartesianCommunicator,
    Communicator,
    CommunicatorTable,
)
from ..core.trace import Trace, TraceMetadata
from .allocate import allocate_ranks, job_of_rank_table

__all__ = ["TenantSpec", "JobPlacement", "ComposedWorkload", "compose_workload"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant job: an application at a rank count.

    ``app`` is a registry name (Table-1, scale, or noise tier) or a
    pre-built :class:`~repro.apps.base.SyntheticApp` instance — the latter
    lets callers tune noise generators without registering them.
    """

    app: str | SyntheticApp
    ranks: int
    variant: str = ""
    seed: int = 0

    def __post_init__(self) -> None:
        if self.ranks <= 0:
            raise ValueError("TenantSpec.ranks must be positive")

    def resolve(self) -> SyntheticApp:
        return self.app if isinstance(self.app, SyntheticApp) else get_app(self.app)

    @property
    def app_name(self) -> str:
        return self.app.name if isinstance(self.app, SyntheticApp) else self.app


@dataclass(frozen=True, eq=False)
class JobPlacement:
    """Where one tenant landed: its job ID, label, and global rank set."""

    job_id: int
    label: str
    spec: TenantSpec
    ranks: np.ndarray  # int64, sorted ascending global rank IDs
    is_noise: bool

    @property
    def num_ranks(self) -> int:
        return len(self.ranks)


@dataclass(eq=False)
class ComposedWorkload:
    """A composite trace plus the placement metadata that produced it."""

    trace: Trace
    jobs: tuple[JobPlacement, ...]
    job_of_rank: np.ndarray  # int64[total_ranks]
    allocation: str
    alloc_seed: int = 0
    _solo_cache: dict[int, Trace] = field(default_factory=dict, repr=False)

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    @property
    def num_ranks(self) -> int:
        return self.trace.meta.num_ranks

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(job.label for job in self.jobs)

    def app_job_ids(self) -> list[int]:
        """Job IDs of the tenant applications (non-noise)."""
        return [job.job_id for job in self.jobs if not job.is_noise]

    def noise_job_ids(self) -> list[int]:
        return [job.job_id for job in self.jobs if job.is_noise]

    def solo_trace(self, job_id: int) -> Trace:
        """The job's solo trace (local rank space), regenerated on demand."""
        if job_id not in self._solo_cache:
            job = self.jobs[job_id]
            self._solo_cache[job_id] = _generate_part(job.spec)
        return self._solo_cache[job_id]

    def job_matrix(self, matrix: CommMatrix, job_id: int) -> CommMatrix:
        """The composite matrix restricted to one job's traffic.

        Rows are selected by source rank; since every record stays within
        one job's rank set, this captures the job's destinations too.  The
        result keeps the composite rank space, so it can be simulated
        under the *same* mapping — that is the solo baseline used for
        slowdown attribution (placement held fixed, interference removed).
        """
        mask = self.job_of_rank[matrix.src] == job_id
        return CommMatrix(
            matrix.num_ranks,
            matrix.src[mask],
            matrix.dst[mask],
            matrix.nbytes[mask],
            matrix.messages[mask],
            matrix.packets[mask],
        )


def _generate_part(spec: TenantSpec) -> Trace:
    return spec.resolve().generate(spec.ranks, variant=spec.variant, seed=spec.seed)


def _job_labels(specs: list[TenantSpec]) -> list[str]:
    names = [spec.app_name for spec in specs]
    labels = []
    for job_id, name in enumerate(names):
        labels.append(f"{name}#{job_id}" if names.count(name) > 1 else name)
    return labels


def _remap_communicator(comm: Communicator, name: str, gmap: np.ndarray) -> Communicator:
    members = tuple(int(gmap[m]) for m in comm.members)
    if isinstance(comm, CartesianCommunicator):
        return CartesianCommunicator(name, members, comm.dims, comm.periods)
    return Communicator(name, members)


def _remap_block(
    block: EventBlock, gmap: np.ndarray, comm_names: tuple[str, ...]
) -> EventBlock:
    """Rewrite one part block into the composite rank space.

    ``caller`` and p2p ``peer`` columns are translated through the
    allocation map; ``root`` stays communicator-local (the remapped
    communicator carries the new local→global mapping); all payload
    columns are shared by reference — the remap is O(rows), not O(bytes).
    """
    peer = block.peer
    p2p = block.kind != KIND_COLLECTIVE
    if p2p.any():
        peer = peer.copy()
        peer[p2p] = gmap[block.peer[p2p]]
    return EventBlock(
        kind=block.kind,
        caller=gmap[block.caller],
        peer=peer,
        count=block.count,
        dtype_id=block.dtype_id,
        op=block.op,
        root=block.root,
        comm_id=block.comm_id,
        tag=block.tag,
        func_id=block.func_id,
        repeat=block.repeat,
        t_enter=block.t_enter,
        t_leave=block.t_leave,
        dtype_names=block.dtype_names,
        comm_names=comm_names,
        func_names=block.func_names,
    )


def compose_workload(
    jobs,
    noise=(),
    allocation: str = "contiguous",
    alloc_seed: int = 0,
    validate: bool = True,
) -> ComposedWorkload:
    """Co-schedule tenant jobs (plus noise aggressors) on one machine.

    ``jobs`` and ``noise`` are iterables of :class:`TenantSpec`; noise
    specs are tagged so attribution can split victims from aggressors.
    Jobs are numbered in submission order, applications first.
    """
    app_specs = list(jobs)
    noise_specs = list(noise)
    specs = app_specs + noise_specs
    if not specs:
        raise ValueError("compose_workload needs at least one job")

    parts = [_generate_part(spec) for spec in specs]
    sizes = [spec.ranks for spec in specs]
    total = sum(sizes)
    allocations = allocate_ranks(sizes, allocation, alloc_seed)
    table = job_of_rank_table(allocations, total)
    labels = _job_labels(specs)
    placements = tuple(
        JobPlacement(
            job_id=j,
            label=labels[j],
            spec=specs[j],
            ranks=allocations[j],
            is_noise=j >= len(app_specs),
        )
        for j in range(len(specs))
    )

    if len(specs) == 1:
        # Single tenant: every allocation policy is the identity, so the
        # solo trace IS the composite — bit-identical by construction.
        workload = ComposedWorkload(
            trace=parts[0],
            jobs=placements,
            job_of_rank=table,
            allocation=allocation,
            alloc_seed=alloc_seed,
        )
        workload._solo_cache[0] = parts[0]
        return workload

    communicators = CommunicatorTable.for_world(total)
    blocks: list[EventBlock] = []
    for placement, part in zip(placements, parts):
        gmap = placement.ranks
        rename = {}
        for name in part.communicators.names():
            new_name = f"{placement.label}:{name}"
            communicators.add(
                _remap_communicator(part.communicators.get(name), new_name, gmap)
            )
            rename[name] = new_name
        for block in part.blocks():
            blocks.append(
                _remap_block(
                    block, gmap, tuple(rename[n] for n in block.comm_names)
                )
            )

    meta = TraceMetadata(
        app="+".join(labels),
        num_ranks=total,
        execution_time=max(part.meta.execution_time for part in parts),
        uses_derived_types=any(part.meta.uses_derived_types for part in parts),
    )
    trace = Trace.from_blocks(
        meta, blocks, communicators=communicators, validate=validate
    )
    if all(isinstance(spec.app, str) for spec in specs):
        # Registry-named specs fully determine the composite content, so
        # the trace can carry cheap cache provenance (repro.cache uses it
        # instead of digesting the event stream).  Custom app instances
        # have unhashable tuning — those traces fall back to the digest.
        trace._repro_cache_key = (
            "composed-trace",
            allocation,
            alloc_seed,
            tuple(
                (spec.app_name, spec.ranks, spec.variant, spec.seed)
                for spec in specs
            ),
            len(app_specs),
        )
    workload = ComposedWorkload(
        trace=trace,
        jobs=placements,
        job_of_rank=table,
        allocation=allocation,
        alloc_seed=alloc_seed,
    )
    for j, part in enumerate(parts):
        workload._solo_cache[j] = part
    return workload
