"""Rank-allocation policies for co-scheduled jobs.

An allocation splits the global rank space ``0..total-1`` of one shared
machine into disjoint, complete per-job rank sets.  Three policies cover
the span studied in the co-scheduling literature (Jha et al., PAPERS.md):

- ``contiguous`` — each job gets one consecutive block, in submission
  order.  This is what batch schedulers aim for and gives each job the
  best possible intra-job locality.
- ``round_robin`` — global ranks are dealt cyclically to the jobs that
  still have capacity, maximally interleaving them.  This is the
  adversarial fragmentation case: every job's neighbours on the machine
  belong to other jobs.
- ``random`` — a seeded permutation of the rank space, split by job
  size.  Models a fragmented scheduler queue.

Every policy returns per-job arrays of **sorted ascending** global rank
IDs, so local rank ``i`` of a job maps to the ``i``-th smallest global
rank it owns.  Sorting makes the single-job allocation the identity under
every policy — the composer relies on this for its solo bit-identity
guarantee.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ALLOCATIONS", "allocate_ranks", "job_of_rank_table"]

#: Recognised allocation policy names, in documentation order.
ALLOCATIONS = ("contiguous", "round_robin", "random")


def allocate_ranks(
    sizes: tuple[int, ...] | list[int],
    policy: str = "contiguous",
    seed: int = 0,
) -> list[np.ndarray]:
    """Split ``sum(sizes)`` global ranks into disjoint per-job sets.

    Returns one ``int64`` array of sorted ascending global rank IDs per
    job.  The union of the arrays is exactly ``0..sum(sizes)-1`` and the
    arrays are pairwise disjoint, for every policy and seed.

    ``seed`` only affects ``policy="random"``.
    """
    sizes = [int(s) for s in sizes]
    if not sizes:
        raise ValueError("allocate_ranks needs at least one job")
    if any(s <= 0 for s in sizes):
        raise ValueError(f"job sizes must be positive, got {sizes}")
    total = sum(sizes)
    if policy == "contiguous":
        bounds = np.cumsum([0] + sizes)
        return [
            np.arange(bounds[j], bounds[j + 1], dtype=np.int64)
            for j in range(len(sizes))
        ]
    if policy == "round_robin":
        # Deal ranks cyclically, skipping jobs that are already full.  With
        # equal sizes this is a pure stride pattern; with unequal sizes the
        # smaller jobs drop out of the rotation as they fill.
        remaining = list(sizes)
        out: list[list[int]] = [[] for _ in sizes]
        job = 0
        for rank in range(total):
            while remaining[job] == 0:
                job = (job + 1) % len(sizes)
            out[job].append(rank)
            remaining[job] -= 1
            job = (job + 1) % len(sizes)
        return [np.asarray(ranks, dtype=np.int64) for ranks in out]
    if policy == "random":
        rng = np.random.default_rng(np.random.SeedSequence([0x7E4A, seed]))
        perm = rng.permutation(total).astype(np.int64)
        bounds = np.cumsum([0] + sizes)
        return [
            np.sort(perm[bounds[j] : bounds[j + 1]])
            for j in range(len(sizes))
        ]
    raise ValueError(
        f"unknown allocation policy {policy!r}; known: {', '.join(ALLOCATIONS)}"
    )


def job_of_rank_table(allocations: list[np.ndarray], total: int) -> np.ndarray:
    """Invert an allocation: ``int64[total]`` mapping global rank → job ID."""
    table = np.full(total, -1, dtype=np.int64)
    for job, ranks in enumerate(allocations):
        table[ranks] = job
    if (table < 0).any():
        raise ValueError("allocation does not cover the full rank space")
    return table
