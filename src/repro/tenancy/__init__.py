"""Multi-tenant workload composition and interference analysis.

Real systems co-schedule many jobs on one network; every analysis in this
library up to now ran a single application on a pristine topology.  This
package closes the gap:

- :mod:`repro.tenancy.allocate` — allocation policies that carve one
  machine's rank space into disjoint per-job rank sets (contiguous,
  round-robin, random).
- :mod:`repro.tenancy.compose` — the workload composer: generates each
  job's solo trace, remaps its ranks onto the allocated global IDs, and
  merges the per-job EventBlock streams into one composite
  :class:`~repro.core.trace.Trace` with a ``job_of_rank`` table that
  carries job identity through matrix build, both sim engines, and
  telemetry.
- :mod:`repro.tenancy.attribution` — per-job link-occupancy shares,
  congestion-region blame (victim vs. aggressor), and the per-job
  interference report (slowdown vs. solo baseline, blamed-bytes
  breakdown, shared-region count).

Background-noise aggressors (uniform / hot-spot) live with the other
synthetic apps in :mod:`repro.apps.noise`; the ``interference_aware``
routing policy that prices links with a victim's traffic matrix lives in
:mod:`repro.routing.interference`.
"""

from .allocate import ALLOCATIONS, allocate_ranks, job_of_rank_table
from .attribution import (
    InterferenceReport,
    JobInterference,
    RegionBlame,
    attribute_regions,
    interference_report,
    per_job_link_loads,
    render_interference_report,
    victim_peak_link_load,
)
from .compose import ComposedWorkload, JobPlacement, TenantSpec, compose_workload

__all__ = [
    "ALLOCATIONS",
    "allocate_ranks",
    "job_of_rank_table",
    "TenantSpec",
    "JobPlacement",
    "ComposedWorkload",
    "compose_workload",
    "per_job_link_loads",
    "RegionBlame",
    "attribute_regions",
    "JobInterference",
    "InterferenceReport",
    "interference_report",
    "render_interference_report",
    "victim_peak_link_load",
]
