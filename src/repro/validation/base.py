"""Invariant-checker core: violations, the registry, and check contexts.

Every pipeline artifact obeys a conservation law — bytes leaving ranks must
reappear as matrix mass, link loads must account for every (byte, hop)
pair, windowed occupancy can never exceed wall-clock capacity.  This module
defines the vocabulary: an :class:`Invariant` is a named, referenced check
function over a :class:`CheckContext` (one scenario's artifacts); a failed
predicate yields :class:`Violation` records instead of raising, so one run
reports *all* broken laws, not the first.

Checks register themselves into :data:`REGISTRY` via the :func:`invariant`
decorator (see :mod:`repro.validation.invariants`) and declare which
context artifacts they need (``static``, ``sim``, ``telemetry``,
``cache``), so a context built without a simulation simply skips the
dynamic checks rather than erroring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

import numpy as np

__all__ = [
    "Violation",
    "Invariant",
    "CheckContext",
    "REGISTRY",
    "invariant",
    "all_invariants",
    "run_invariants",
]

#: Relative tolerance for float conservation sums (bincount reductions over
#: exact int64 inputs agree to ~1 ulp per term; 1e-9 leaves headroom).
REL_TOL = 1e-9


@dataclass(frozen=True)
class Violation:
    """One broken invariant in one scenario.

    ``severity`` is ``"error"`` (a conservation law failed — the artifact is
    wrong) or ``"warning"`` (suspicious but possibly legitimate; promoted to
    failure under ``--strict``).
    """

    invariant: str
    severity: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.invariant}: {self.message}"


@dataclass(frozen=True)
class Invariant:
    """A registered check: metadata plus the predicate function.

    ``reference`` cites the paper equation or repo module the law comes
    from; ``requires`` names the context artifacts the check consumes.
    """

    name: str
    summary: str
    reference: str
    requires: frozenset[str]
    fn: Callable[["CheckContext"], Iterator[Violation]]

    def applicable(self, ctx: "CheckContext") -> bool:
        return self.requires <= ctx.available


@dataclass
class CheckContext:
    """Artifacts of one (workload, topology, mapping, routing) scenario.

    ``static`` artifacts (trace through route incidence) come from
    :func:`repro.validation.suite.build_static_context`;
    ``sim``/``telemetry`` are attached only when the scenario was
    simulated, and ``cache`` marks that the cache-roundtrip artifacts (a
    second, disk-roundtripped copy of the trace and matrices) are present.
    A context may carry any subset — checks whose artifacts are missing
    are skipped.  Node-pair aggregates (``pair_*``)
    cover the *crossing* pairs only, in the same order the route incidence
    indexes them.
    """

    label: str
    trace: object = None
    p2p_matrix: object = None  # CommMatrix, collectives excluded
    full_matrix: object = None  # CommMatrix, collectives flattened in
    topology: object = None
    mapping: object = None  # Mapping (rank -> node)
    routing: str = "minimal"
    routing_seed: int = 0
    collective: str = "flat"  # engine behind full_matrix's collective mass
    analysis: object = None  # NetworkAnalysis of full_matrix
    incidence: object = None  # RouteIncidence over crossing node pairs
    pair_src: np.ndarray | None = None  # int64[crossing pairs]
    pair_dst: np.ndarray | None = None
    pair_bytes: np.ndarray | None = None
    pair_packets: np.ndarray | None = None
    sim: object = None  # SimulationResult
    telemetry: object = None  # TelemetryReport
    roundtrip: dict = field(default_factory=dict)  # cache-roundtrip copies
    composed: object = None  # ComposedWorkload (multi-tenant scenarios)

    @property
    def available(self) -> frozenset[str]:
        tags = set()
        if self.trace is not None and self.incidence is not None:
            tags.add("static")
        if self.sim is not None:
            tags.add("sim")
        if self.telemetry is not None:
            tags.add("telemetry")
        if self.roundtrip:
            tags.add("cache")
        if self.composed is not None:
            tags.add("composed")
        return frozenset(tags)


#: Name -> Invariant, in registration order (dicts preserve insertion).
REGISTRY: dict[str, Invariant] = {}


def invariant(
    name: str,
    summary: str,
    reference: str,
    requires: Iterable[str] = ("static",),
):
    """Register a check function under ``name`` (decorator)."""

    def register(fn: Callable) -> Callable:
        if name in REGISTRY:
            raise ValueError(f"invariant {name!r} registered twice")
        REGISTRY[name] = Invariant(
            name=name,
            summary=summary,
            reference=reference,
            requires=frozenset(requires),
            fn=fn,
        )
        return fn

    return register


def all_invariants() -> list[Invariant]:
    """Every registered invariant, in registration order."""
    # Importing the catalogue registers it (idempotent thereafter).
    from . import invariants  # noqa: F401

    return list(REGISTRY.values())


def run_invariants(
    ctx: CheckContext, names: Iterable[str] | None = None
) -> list[Violation]:
    """Run every applicable registered check against one context.

    ``names`` restricts to a subset; unknown names raise ``ValueError`` so
    typos in CLI filters fail loudly.  Checks whose required artifacts are
    absent from the context are skipped, not failed.
    """
    catalogue = all_invariants()
    if names is not None:
        wanted = list(names)
        unknown = [n for n in wanted if n not in REGISTRY]
        if unknown:
            raise ValueError(
                f"unknown invariant(s) {unknown}; known: {sorted(REGISTRY)}"
            )
        catalogue = [REGISTRY[n] for n in wanted]
    violations: list[Violation] = []
    for inv in catalogue:
        if not inv.applicable(ctx):
            continue
        violations.extend(inv.fn(ctx))
    return violations
