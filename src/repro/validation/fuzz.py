"""Differential fuzz harness: seeded random scenarios, four-way diffed.

Every seed draws one :class:`FuzzCase` — a (workload, topology, mapping,
routing) configuration from the small end of the study grid — and drives it
through each pair of interchangeable implementations the repo maintains:

- **trace front-ends**: columnar (EventBlock) vs per-event generation must
  be bit-identical (traces and the matrices built from them);
- **simulation engines**: batched NumPy kernel vs reference heap loop must
  agree on every observable and produce bitwise-equal telemetry;
- **cache tiers**: a cold compute vs a disk-cache reload must return the
  identical artifact;

and then runs the full invariant catalogue on the resulting context.  Any
difference or invariant error is a *discrepancy*; the harness reports it
together with a shrunken minimal reproducer (:mod:`.shrink`).

Determinism: a case is a pure function of its seed, so a failing seed is a
complete bug report.  CI runs a fixed seed set
(:data:`CI_SEEDS`) as a smoke test.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field, replace

import numpy as np

from ..apps.registry import get_app, iter_configurations
from ..comm.matrix import matrix_from_trace
from ..mapping.base import Mapping
from ..routing import ROUTINGS
from ..telemetry import TelemetryConfig, reports_equal
from .base import run_invariants
from .invariants import (
    incidences_identical,
    matrices_identical,
    traces_identical,
)
from .suite import (
    TOPOLOGY_KINDS,
    attach_simulation,
    build_static_context,
    build_topology,
    simulation_volume_scale,
)

__all__ = [
    "CI_SEEDS",
    "FuzzCase",
    "FuzzOutcome",
    "FuzzReport",
    "draw_case",
    "run_case",
    "run_fuzz",
]

#: The bounded CI smoke set (fixed, see .github/workflows/ci.yml).
CI_SEEDS = tuple(range(8))

#: Keep fuzz workloads small: every draw stays at or below this rank count,
#: so one case (two trace builds, two sims, a cache roundtrip) runs in well
#: under a second.
MAX_FUZZ_RANKS = 64

MAPPINGS = ("consecutive", "random")


@dataclass(frozen=True)
class FuzzCase:
    """One fully-determined fuzz scenario (a pure function of ``seed``)."""

    seed: int
    app: str
    ranks: int
    variant: str
    topology: str
    routing: str
    mapping: str
    trace_seed: int
    routing_seed: int
    sim_seed: int

    @property
    def minimal_tuple(self) -> tuple[str, int, str, str]:
        """The (app, ranks, topology, policy) identity the reporter shrinks."""
        return (self.app, self.ranks, self.topology, self.routing)

    def describe(self) -> str:
        label = f"{self.app}@{self.ranks}"
        if self.variant:
            label += f"/{self.variant}"
        return (
            f"seed {self.seed}: {label} on {self.topology}, "
            f"{self.routing} routing, {self.mapping} mapping"
        )


def case_pool(max_ranks: int = MAX_FUZZ_RANKS) -> list[tuple[str, int, str]]:
    """The (app, ranks, variant) configurations a fuzz draw picks from."""
    return [
        (app.name, point.ranks, point.variant)
        for app, point in iter_configurations(max_ranks=max_ranks)
    ]


def draw_case(seed: int, max_ranks: int = MAX_FUZZ_RANKS) -> FuzzCase:
    """Deterministically draw one case from ``seed``."""
    rng = np.random.default_rng(seed)
    pool = case_pool(max_ranks)
    app, ranks, variant = pool[int(rng.integers(len(pool)))]
    return FuzzCase(
        seed=seed,
        app=app,
        ranks=ranks,
        variant=variant,
        topology=TOPOLOGY_KINDS[int(rng.integers(len(TOPOLOGY_KINDS)))],
        routing=tuple(ROUTINGS)[int(rng.integers(len(ROUTINGS)))],
        mapping=MAPPINGS[int(rng.integers(len(MAPPINGS)))],
        trace_seed=int(rng.integers(4)),
        routing_seed=int(rng.integers(4)),
        sim_seed=int(rng.integers(4)),
    )


@dataclass
class FuzzOutcome:
    """Result of one case: empty ``discrepancies`` means it passed."""

    case: FuzzCase
    discrepancies: list[str] = field(default_factory=list)
    minimal: FuzzCase | None = None  # shrunken reproducer, failures only

    @property
    def ok(self) -> bool:
        return not self.discrepancies


@dataclass
class FuzzReport:
    """All outcomes of one fuzz run."""

    outcomes: list[FuzzOutcome] = field(default_factory=list)

    @property
    def failures(self) -> list[FuzzOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = []
        for outcome in self.outcomes:
            status = "ok" if outcome.ok else "FAIL"
            lines.append(f"{outcome.case.describe()}: {status}")
            for d in outcome.discrepancies:
                lines.append(f"  {d}")
            if outcome.minimal is not None:
                app, ranks, topo, routing = outcome.minimal.minimal_tuple
                lines.append(
                    f"  minimal reproducer: ({app}, {ranks}, {topo}, "
                    f"{routing}) [seed {outcome.minimal.seed}]"
                )
        lines.append(
            f"{len(self.outcomes)} case(s), {len(self.failures)} failure(s)"
        )
        return "\n".join(lines)


def _sims_equal(a, b) -> list[str]:
    """Differences between two SimulationResult objects (empty if equal)."""
    diffs = []
    if a != b:  # scalar fields (arrays are compare=False)
        diffs.append("simulation scalar observables differ between engines")
    if not (
        np.array_equal(a.link_ids, b.link_ids)
        and np.array_equal(a.link_serve_counts, b.link_serve_counts)
    ):
        diffs.append("per-link serve counts differ between engines")
    if not reports_equal(a.telemetry, b.telemetry):
        diffs.append("telemetry reports are not bit-identical between engines")
    return diffs


def run_case(
    case: FuzzCase,
    target_packets: int = 8_000,
    windows: int = 8,
) -> FuzzOutcome:
    """Drive one case through every differential pair plus the invariants."""
    from .. import cache
    from ..sim.engine import simulate_network

    outcome = FuzzOutcome(case=case)
    app = get_app(case.app)

    # Trace front-ends: columnar vs per-event must match bit for bit.
    trace = app.generate(
        case.ranks, variant=case.variant, seed=case.trace_seed, columnar=True
    )
    legacy = app.generate(
        case.ranks, variant=case.variant, seed=case.trace_seed, columnar=False
    )
    if not traces_identical(trace, legacy):
        outcome.discrepancies.append(
            "columnar and per-event trace generation differ"
        )
    if not matrices_identical(
        matrix_from_trace(trace), matrix_from_trace(legacy)
    ):
        outcome.discrepancies.append(
            "matrices built from columnar vs per-event traces differ"
        )

    topology = build_topology(case.topology, case.ranks)
    if case.mapping == "random":
        mapping = Mapping.random(
            case.ranks, topology.num_nodes, seed=case.seed
        )
    else:
        mapping = Mapping.consecutive(case.ranks, topology.num_nodes)

    ctx = build_static_context(
        trace,
        topology,
        routing=case.routing,
        routing_seed=case.routing_seed,
        mapping=mapping,
    )

    # Engines: batched vs reference, identical seeds and telemetry.
    volume_scale = simulation_volume_scale(ctx, target_packets)
    sims = {}
    for engine in ("batched", "reference"):
        sims[engine] = simulate_network(
            ctx.full_matrix,
            topology,
            mapping=mapping,
            execution_time=trace.meta.execution_time,
            volume_scale=volume_scale,
            seed=case.sim_seed,
            engine=engine,
            routing=case.routing,
            routing_seed=case.routing_seed,
            telemetry=TelemetryConfig(windows=windows),
        )
    outcome.discrepancies.extend(
        _sims_equal(sims["batched"], sims["reference"])
    )
    ctx.sim = sims["batched"]
    ctx.telemetry = sims["batched"].telemetry

    # Cache: a cold compute vs a warm disk reload must return the identical
    # artifact (throwaway cache dir; global config restored afterwards).
    prev_disk = cache._disk_dir
    try:
        with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
            cache.configure(disk_dir=tmp)
            cache.clear(memory=True)
            cold_trace = cache.cached_trace(
                case.app, case.ranks, variant=case.variant, seed=case.trace_seed
            )
            cold_matrix = cache.cached_matrix(cold_trace)
            cold_inc = cache.cached_route_incidence(
                topology,
                ctx.pair_src,
                ctx.pair_dst,
                routing=case.routing,
                seed=case.routing_seed,
                pair_weights=ctx.pair_bytes,
            )
            cache.clear(memory=True)
            warm_trace = cache.cached_trace(
                case.app, case.ranks, variant=case.variant, seed=case.trace_seed
            )
            warm_matrix = cache.cached_matrix(warm_trace)
            warm_inc = cache.cached_route_incidence(
                topology,
                ctx.pair_src,
                ctx.pair_dst,
                routing=case.routing,
                seed=case.routing_seed,
                pair_weights=ctx.pair_bytes,
            )
            ctx.roundtrip = {
                "trace": (cold_trace, warm_trace),
                "full_matrix": (cold_matrix, warm_matrix),
                "incidence": (cold_inc, warm_inc),
            }
            if not traces_identical(trace, cold_trace):
                outcome.discrepancies.append(
                    "cached trace differs from directly generated trace"
                )
            if not incidences_identical(ctx.incidence, cold_inc):
                outcome.discrepancies.append(
                    "cached route incidence differs from direct computation"
                )
    finally:
        cache._disk_dir = prev_disk
        cache.clear(memory=True)

    # Finally, every registered invariant over the assembled context.
    for violation in run_invariants(ctx):
        if violation.severity == "error":
            outcome.discrepancies.append(str(violation))
    return outcome


def run_fuzz(
    seeds=CI_SEEDS,
    max_ranks: int = MAX_FUZZ_RANKS,
    target_packets: int = 8_000,
    shrink_failures: bool = True,
    progress=None,
) -> FuzzReport:
    """Run the harness over ``seeds``; shrink any failing case."""
    from .shrink import shrink_case

    report = FuzzReport()
    for seed in seeds:
        case = draw_case(int(seed), max_ranks=max_ranks)
        if progress is not None:
            progress(case.describe())
        outcome = run_case(case, target_packets=target_packets)
        if not outcome.ok and shrink_failures:
            outcome.minimal = shrink_case(
                case, target_packets=target_packets
            )
        report.outcomes.append(outcome)
    return report


def replay(case: FuzzCase, **overrides) -> FuzzOutcome:
    """Re-run a (possibly modified) case — the shrink loop's probe."""
    return run_case(replace(case, **overrides))
