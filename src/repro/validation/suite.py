"""Run the invariant catalogue over the study grid (``repro check``).

One *scenario* is a (workload, topology, routing policy) triple; the suite
builds each scenario's :class:`~repro.validation.base.CheckContext` — trace,
matrices, route incidence, static analysis, and (optionally) a bounded
dynamic simulation with windowed telemetry — and runs every applicable
invariant against it.  A per-application disk-cache roundtrip scenario
exercises the cache invariants against a throwaway cache directory, never
the user's configured one.

Simulation cost is bounded by ``target_packets``: the suite picks the
smallest ``volume_scale`` that keeps the scaled packet count at or below
the target (the 1/k-volume-at-1/k-bandwidth sampling of
:mod:`repro.sim.engine`), so even the 38M-packet configurations check in
well under a second each.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field

import numpy as np

from ..apps.registry import iter_configurations
from ..cache import cached_matrix, cached_route_incidence, cached_trace
from ..mapping.base import Mapping
from ..model.engine import _node_pair_aggregate, analyze_network
from ..routing import ROUTINGS
from ..topology.configs import config_for
from .base import CheckContext, Violation, all_invariants, run_invariants

__all__ = [
    "TOPOLOGY_KINDS",
    "ScenarioResult",
    "SuiteReport",
    "build_static_context",
    "attach_simulation",
    "cache_roundtrip_context",
    "composed_context",
    "run_check_suite",
]

TOPOLOGY_KINDS = ("torus3d", "fattree", "dragonfly")


def build_topology(kind: str, ranks: int):
    """Table-2 topology instance of ``kind`` sized for ``ranks``."""
    cfg = config_for(ranks)
    try:
        builder = {
            "torus3d": cfg.build_torus,
            "fattree": cfg.build_fat_tree,
            "dragonfly": cfg.build_dragonfly,
        }[kind]
    except KeyError:
        raise ValueError(
            f"unknown topology {kind!r}; known: {list(TOPOLOGY_KINDS)}"
        ) from None
    return builder()


@dataclass
class ScenarioResult:
    """Outcome of one scenario: which checks ran, what they found."""

    label: str
    checks: int
    violations: list[Violation] = field(default_factory=list)

    @property
    def errors(self) -> int:
        return sum(1 for v in self.violations if v.severity == "error")

    @property
    def warnings(self) -> int:
        return sum(1 for v in self.violations if v.severity == "warning")


@dataclass
class SuiteReport:
    """All scenario outcomes of one ``repro check`` run."""

    scenarios: list[ScenarioResult] = field(default_factory=list)

    @property
    def checks(self) -> int:
        return sum(s.checks for s in self.scenarios)

    @property
    def errors(self) -> int:
        return sum(s.errors for s in self.scenarios)

    @property
    def warnings(self) -> int:
        return sum(s.warnings for s in self.scenarios)

    def ok(self, strict: bool = False) -> bool:
        return self.errors == 0 and (not strict or self.warnings == 0)

    def render(self, verbose: bool = False) -> str:
        lines = []
        for s in self.scenarios:
            if s.violations:
                lines.append(f"{s.label}:")
                lines.extend(f"  {v}" for v in s.violations)
            elif verbose:
                lines.append(f"{s.label}: ok ({s.checks} checks)")
        lines.append(
            f"{len(self.scenarios)} scenarios, {self.checks} checks: "
            f"{self.errors} error(s), {self.warnings} warning(s)"
        )
        return "\n".join(lines)


def _applicable_count(ctx: CheckContext) -> int:
    return sum(1 for inv in all_invariants() if inv.applicable(ctx))


def build_static_context(
    trace,
    topology,
    routing: str = "minimal",
    routing_seed: int = 0,
    mapping: Mapping | None = None,
    collective: str = "flat",
) -> CheckContext:
    """Assemble the static artifacts of one scenario.

    The route incidence is requested with the same key
    :func:`repro.model.engine.analyze_network` uses (crossing node pairs,
    byte weights), so the two share one cached entry.  ``collective``
    selects the engine whose expansion fills the full matrix (labels only
    mention it when it is not the default ``flat``).
    """
    p2p_matrix = cached_matrix(trace, include_collectives=False)
    full_matrix = cached_matrix(trace, collective=collective)
    if mapping is None:
        mapping = Mapping.consecutive(full_matrix.num_ranks, topology.num_nodes)
    analysis = analyze_network(
        full_matrix,
        topology,
        mapping=mapping,
        execution_time=trace.meta.execution_time,
        routing=routing,
        routing_seed=routing_seed,
    )
    src_n, dst_n, nbytes, packets = _node_pair_aggregate(full_matrix, mapping)
    crossing = src_n != dst_n
    pair_src = src_n[crossing]
    pair_dst = dst_n[crossing]
    pair_bytes = nbytes[crossing]
    incidence = cached_route_incidence(
        topology,
        pair_src,
        pair_dst,
        routing=routing,
        seed=routing_seed,
        pair_weights=pair_bytes,
    )
    label = f"{trace.meta.label} on {topology.kind}/{routing}"
    if collective != "flat":
        label += f"/{collective}"
    return CheckContext(
        label=label,
        trace=trace,
        p2p_matrix=p2p_matrix,
        full_matrix=full_matrix,
        topology=topology,
        mapping=mapping,
        routing=routing,
        routing_seed=routing_seed,
        collective=collective,
        analysis=analysis,
        incidence=incidence,
        pair_src=pair_src,
        pair_dst=pair_dst,
        pair_bytes=pair_bytes,
        pair_packets=packets[crossing],
    )


def simulation_volume_scale(ctx: CheckContext, target_packets: int) -> float:
    """Smallest integer ``volume_scale`` keeping the run at/below target."""
    crossing_packets = int(ctx.pair_packets.sum()) if len(ctx.pair_packets) else 0
    if crossing_packets <= target_packets:
        return 1.0
    return float(-(-crossing_packets // target_packets))  # ceil division


def attach_simulation(
    ctx: CheckContext,
    target_packets: int = 20_000,
    windows: int = 12,
    engine: str = "auto",
    seed: int = 0,
) -> CheckContext:
    """Simulate the scenario (bounded by ``target_packets``) and attach
    the result + telemetry report to the context."""
    from ..sim.engine import simulate_network
    from ..telemetry import TelemetryConfig

    result = simulate_network(
        ctx.full_matrix,
        ctx.topology,
        mapping=ctx.mapping,
        execution_time=ctx.trace.meta.execution_time,
        volume_scale=simulation_volume_scale(ctx, target_packets),
        seed=seed,
        engine=engine,
        routing=ctx.routing,
        routing_seed=ctx.routing_seed,
        telemetry=TelemetryConfig(windows=windows),
    )
    ctx.sim = result
    ctx.telemetry = result.telemetry
    return ctx


def cache_roundtrip_context(
    app: str,
    ranks: int,
    variant: str = "",
    seed: int = 0,
    topology_kind: str = "torus3d",
) -> CheckContext:
    """Store-then-reload every cacheable artifact through a throwaway disk
    cache and collect (original, reloaded) pairs for the roundtrip check.

    The process-global cache configuration is restored afterwards; the
    in-memory tier is cleared so the reload pass genuinely reads from disk.
    """
    from .. import cache

    prev_disk = cache._disk_dir
    try:
        with tempfile.TemporaryDirectory(prefix="repro-check-") as tmp:
            cache.configure(disk_dir=tmp)
            cache.clear(memory=True)
            trace = cached_trace(app, ranks, variant=variant, seed=seed)
            p2p = cached_matrix(trace, include_collectives=False)
            full = cached_matrix(trace)
            topology = build_topology(topology_kind, ranks)
            mapping = Mapping.consecutive(full.num_ranks, topology.num_nodes)
            src_n, dst_n, nbytes, _ = _node_pair_aggregate(full, mapping)
            crossing = src_n != dst_n
            inc = cached_route_incidence(
                topology, src_n[crossing], dst_n[crossing]
            )
            cache.clear(memory=True)  # force the second pass onto disk
            trace2 = cached_trace(app, ranks, variant=variant, seed=seed)
            p2p2 = cached_matrix(trace2, include_collectives=False)
            full2 = cached_matrix(trace2)
            inc2 = cached_route_incidence(
                topology, src_n[crossing], dst_n[crossing]
            )
            roundtrip = {
                "trace": (trace, trace2),
                "p2p_matrix": (p2p, p2p2),
                "full_matrix": (full, full2),
                "incidence": (inc, inc2),
            }
    finally:
        cache._disk_dir = prev_disk
        cache.clear(memory=True)
    label = f"{app}@{ranks}" + (f"/{variant}" if variant else "")
    return CheckContext(label=f"{label} cache roundtrip", roundtrip=roundtrip)


def composed_context(
    topology_kind: str = "torus3d",
    routing: str = "minimal",
    seed: int = 0,
    sim: bool = True,
    target_packets: int = 20_000,
    windows: int = 12,
) -> CheckContext:
    """One representative multi-tenant scenario for the composed checks.

    A Table-1 app co-scheduled with a hot-spot aggressor under the
    adversarial round-robin allocation — the placement that interleaves
    the tenants most aggressively, so a remapping bug cannot hide behind
    contiguous rank blocks.  The composite trace runs the full catalogue
    (static, sim, telemetry) plus the composed-byte-conservation check.
    """
    from ..tenancy import TenantSpec, compose_workload

    workload = compose_workload(
        [TenantSpec("LULESH", 64, seed=seed)],
        noise=[TenantSpec("HotspotNoise", 64, seed=seed)],
        allocation="round_robin",
    )
    topology = build_topology(topology_kind, workload.num_ranks)
    ctx = build_static_context(workload.trace, topology, routing=routing)
    ctx.label = f"composed {workload.trace.meta.label} on {topology.kind}/{routing}"
    ctx.composed = workload
    if sim:
        attach_simulation(
            ctx, target_packets=target_packets, windows=windows, seed=seed
        )
    return ctx


def run_check_suite(
    max_ranks: int | None = None,
    apps: tuple[str, ...] | None = None,
    topologies: tuple[str, ...] = TOPOLOGY_KINDS,
    routings: tuple[str, ...] | None = None,
    collectives: tuple[str, ...] = ("flat",),
    sim: bool = True,
    sim_routings: tuple[str, ...] | None = None,
    target_packets: int = 20_000,
    windows: int = 12,
    seed: int = 0,
    cache_roundtrip: bool = True,
    composed: bool = False,
    invariant_names: tuple[str, ...] | None = None,
    progress=None,
) -> SuiteReport:
    """Run the invariant catalogue over apps x topologies x routings.

    ``apps=None`` means every registered application; a tuple restricts
    the sweep to those names (unknown names are rejected).
    ``routings=None`` means every registered policy.  ``collectives``
    multiplies the grid by collective-algorithm engines, so every engine's
    expansion passes the same conservation catalogue (the default keeps
    the historical flat-only grid).  ``sim_routings``
    restricts which of those also get a (more expensive) dynamic
    simulation; ``None`` simulates them all, ``()`` simulates none.
    ``composed=True`` appends one multi-tenant scenario per topology kind
    (opt-in so the default grid — and its pinned scenario counts — stays
    unchanged).  ``progress`` is an optional callable receiving each
    scenario label before it runs (the CLI wires stderr echo through it).
    """
    if routings is None:
        routings = tuple(ROUTINGS)
    for routing in routings:
        if routing not in ROUTINGS:
            raise ValueError(
                f"unknown routing policy {routing!r}; known: {list(ROUTINGS)}"
            )
    if sim_routings is None:
        sim_routings = routings
    from ..collectives.registry import COLLECTIVES

    for collective in collectives:
        if collective not in COLLECTIVES:
            raise ValueError(
                f"unknown collective algorithm {collective!r}; "
                f"known: {list(COLLECTIVES)}"
            )
    if apps is not None:
        from ..apps.registry import APPS

        unknown = [a for a in apps if a not in APPS]
        if unknown:
            raise ValueError(
                f"unknown application(s) {unknown}; known: {list(APPS)}"
            )
    report = SuiteReport()

    for app, point in iter_configurations(max_ranks=max_ranks):
        if apps is not None and app.name not in apps:
            continue
        trace = cached_trace(
            app.name, point.ranks, variant=point.variant, seed=seed
        )
        for kind in topologies:
            topology = build_topology(kind, point.ranks)
            for routing in routings:
                for collective in collectives:
                    ctx = build_static_context(
                        trace, topology, routing=routing, collective=collective
                    )
                    if sim and routing in sim_routings:
                        attach_simulation(
                            ctx,
                            target_packets=target_packets,
                            windows=windows,
                            seed=seed,
                        )
                    if progress is not None:
                        progress(ctx.label)
                    violations = run_invariants(ctx, names=invariant_names)
                    report.scenarios.append(
                        ScenarioResult(
                            label=ctx.label,
                            checks=_applicable_count(ctx),
                            violations=violations,
                        )
                    )
        if cache_roundtrip:
            ctx = cache_roundtrip_context(
                app.name, point.ranks, variant=point.variant, seed=seed
            )
            if progress is not None:
                progress(ctx.label)
            violations = run_invariants(ctx, names=invariant_names)
            report.scenarios.append(
                ScenarioResult(
                    label=ctx.label,
                    checks=_applicable_count(ctx),
                    violations=violations,
                )
            )
    if composed:
        for kind in topologies:
            ctx = composed_context(
                topology_kind=kind,
                seed=seed,
                sim=sim,
                target_packets=target_packets,
                windows=windows,
            )
            if progress is not None:
                progress(ctx.label)
            violations = run_invariants(ctx, names=invariant_names)
            report.scenarios.append(
                ScenarioResult(
                    label=ctx.label,
                    checks=_applicable_count(ctx),
                    violations=violations,
                )
            )
    return report
