"""The invariant catalogue: every registered conservation check.

Each check cites the law it enforces (paper equation or repo module) and
yields :class:`~repro.validation.base.Violation` records for every breach.
All checks are cheap relative to producing the artifacts they inspect —
integer reductions, a bounded route-walk sample — so the full catalogue can
run on every scenario of the study grid (``repro check``) and inside the
differential fuzzer.

Float-summed conservation quantities (link loads, windowed occupancy) are
compared with a relative tolerance of :data:`~repro.validation.base.REL_TOL`
— bincount reductions over exact int64 inputs agree to ~1 ulp per term —
while purely integer quantities (bytes, packets, hops, serve counts) must
match exactly.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from ..core.blocks import KIND_P2P_SEND
from ..routing.validate import walks_are_valid
from ..topology.base import RouteIncidence
from .base import REL_TOL, CheckContext, Violation, invariant

__all__ = [
    "traces_identical",
    "matrices_identical",
    "incidences_identical",
]

#: Route-walk validation runs a per-pair Python loop; bound the sample so
#: the check stays O(1) relative to grid size.
WALK_SAMPLE = 64


def _err(name: str, message: str) -> Violation:
    return Violation(invariant=name, severity="error", message=message)


def _warn(name: str, message: str) -> Violation:
    return Violation(invariant=name, severity="warning", message=message)


def _close(a: float, b: float, rel: float = REL_TOL) -> bool:
    return math.isclose(a, b, rel_tol=rel, abs_tol=1e-12)


# ------------------------------------------------------------- equality helpers


def _decoded_columns(trace) -> dict[str, np.ndarray]:
    """Concatenated per-record columns with interned ids decoded to names.

    Block *partitioning* is an emitter detail (the columnar front-end emits
    p2p and collective records as separate blocks; the per-event path
    materializes one block), and interned name ids are block-local — so
    records are compared on their decoded values, concatenated across
    blocks in record order.
    """
    from ..core.blocks import EventBlock

    numeric = [c for c in EventBlock._COLUMN_DTYPES if not c.endswith("_id")]
    parts: dict[str, list[np.ndarray]] = {
        c: [] for c in numeric + ["dtype", "comm", "func"]
    }
    for block in trace.blocks():
        for column in numeric:
            parts[column].append(getattr(block, column))
        for column, ids, names in (
            ("dtype", block.dtype_id, block.dtype_names),
            ("comm", block.comm_id, block.comm_names),
            ("func", block.func_id, block.func_names),
        ):
            decoded = np.full(len(ids), "", dtype=object)
            mask = ids >= 0
            if mask.any():
                decoded[mask] = np.asarray(names, dtype=object)[ids[mask]]
            parts[column].append(decoded)
    return {
        c: np.concatenate(v) if v else np.empty(0) for c, v in parts.items()
    }


def traces_identical(a, b) -> bool:
    """Bit-exact trace equality via columnar blocks (no event objects).

    Equivalent to ``a == b`` (same metadata, same record stream) but
    without materializing per-event objects, so it is usable on the
    largest configurations.  Insensitive to block partitioning.
    """
    if a.meta != b.meta:
        return False
    ca, cb = _decoded_columns(a), _decoded_columns(b)
    return all(np.array_equal(ca[c], cb[c]) for c in ca)


def matrices_identical(a, b) -> bool:
    """Bit-exact :class:`~repro.comm.matrix.CommMatrix` equality."""
    if a.num_ranks != b.num_ranks:
        return False
    return all(
        np.array_equal(getattr(a, col), getattr(b, col))
        for col in ("src", "dst", "nbytes", "messages", "packets")
    )


def incidences_identical(a, b) -> bool:
    """Bit-exact :class:`~repro.topology.base.RouteIncidence` equality."""
    return np.array_equal(a.pair_index, b.pair_index) and np.array_equal(
        a.link_id, b.link_id
    )


def _p2p_sent_bytes_per_rank(trace) -> np.ndarray:
    """Bytes injected by each rank's point-to-point sends (from blocks)."""
    sent = np.zeros(trace.meta.num_ranks, dtype=np.int64)
    for block in trace.blocks():
        mask = block.kind == KIND_P2P_SEND
        if not mask.any():
            continue
        sizes = np.array(
            [trace.datatypes.size_of(n) for n in block.dtype_names],
            dtype=np.int64,
        )
        nbytes = block.count[mask] * sizes[block.dtype_id[mask]]
        nbytes *= block.repeat[mask]
        np.add.at(sent, block.caller[mask], nbytes)
    return sent


# ------------------------------------------------------------- static checks


@invariant(
    "trace-matrix-bytes",
    "Every p2p byte a rank sends appears as matrix mass for that rank",
    "paper §4.1 (traffic matrix construction); repro.comm.matrix",
)
def check_trace_matrix_bytes(ctx: CheckContext) -> Iterator[Violation]:
    name = "trace-matrix-bytes"
    sent = _p2p_sent_bytes_per_rank(ctx.trace)
    matrix_out = ctx.p2p_matrix.out_bytes_per_rank()
    if int(sent.sum()) != ctx.p2p_matrix.total_bytes:
        yield _err(
            name,
            f"trace p2p sends total {int(sent.sum())} bytes but the p2p "
            f"matrix holds {ctx.p2p_matrix.total_bytes}",
        )
    bad = np.nonzero(sent != matrix_out)[0]
    if bad.size:
        r = int(bad[0])
        yield _err(
            name,
            f"{bad.size} rank(s) lose bytes trace->matrix; first: rank {r} "
            f"sent {int(sent[r])}, matrix row holds {int(matrix_out[r])}",
        )


@invariant(
    "link-volume-conservation",
    "Sum of per-link byte loads equals sum of volume x hops over pairs",
    "Eq. 3 (packet hops); repro.topology.base.RouteIncidence.link_loads",
)
def check_link_volume(ctx: CheckContext) -> Iterator[Violation]:
    name = "link-volume-conservation"
    inc = ctx.incidence
    num_pairs = len(ctx.pair_src)
    _, loads = inc.link_loads(ctx.pair_bytes)
    if loads.size and float(loads.min()) < 0:
        yield _err(name, f"negative link load {float(loads.min())}")
    hops = np.bincount(inc.pair_index, minlength=num_pairs)
    expected = int((ctx.pair_bytes * hops).sum())
    total = float(loads.sum())
    if not _close(total, float(expected)):
        yield _err(
            name,
            f"link loads sum to {total}, but volume x hops over the pairs "
            f"is {expected} ({ctx.routing} routing)",
        )
    if ctx.analysis is not None and len(inc.used_links()) != ctx.analysis.used_links:
        yield _err(
            name,
            f"incidence uses {len(inc.used_links())} links but the analysis "
            f"reports {ctx.analysis.used_links}",
        )


@invariant(
    "route-walks",
    "Sampled routes form a single walk from source to destination node",
    "Eulerian-walk characterization; repro.routing.validate",
)
def check_route_walks(ctx: CheckContext) -> Iterator[Violation]:
    name = "route-walks"
    n = len(ctx.pair_src)
    if n == 0:
        return
    sample = np.unique(
        np.linspace(0, n - 1, num=min(n, WALK_SAMPLE)).astype(np.int64)
    )
    remap = np.full(n, -1, dtype=np.int64)
    remap[sample] = np.arange(len(sample), dtype=np.int64)
    keep = remap[ctx.incidence.pair_index] >= 0
    sub = RouteIncidence(
        remap[ctx.incidence.pair_index[keep]], ctx.incidence.link_id[keep]
    )
    ok = walks_are_valid(
        ctx.topology, ctx.pair_src[sample], ctx.pair_dst[sample], sub
    )
    if not ok.all():
        bad = sample[np.nonzero(~ok)[0]]
        p = int(bad[0])
        yield _err(
            name,
            f"{len(bad)}/{len(sample)} sampled routes are not valid walks "
            f"under {ctx.routing}; first: node pair "
            f"({int(ctx.pair_src[p])} -> {int(ctx.pair_dst[p])})",
        )


@invariant(
    "hops-lower-bound",
    "Per-pair route length is at least the true walk lower bound",
    "Eq. 4 (average hops); Topology.walk_hops_lower_bound — NOT hops_array, "
    "which Valiant legitimately undercuts on the dragonfly",
)
def check_hops_lower_bound(ctx: CheckContext) -> Iterator[Violation]:
    name = "hops-lower-bound"
    n = len(ctx.pair_src)
    if n == 0:
        return
    route_hops = np.bincount(ctx.incidence.pair_index, minlength=n)
    min_hops = ctx.topology.walk_hops_lower_bound(ctx.pair_src, ctx.pair_dst)
    short = np.nonzero(route_hops < min_hops)[0]
    if short.size:
        p = int(short[0])
        yield _err(
            name,
            f"{short.size} pair(s) route below the walk lower bound under "
            f"{ctx.routing}; first: ({int(ctx.pair_src[p])} -> "
            f"{int(ctx.pair_dst[p])}) takes {int(route_hops[p])} hops, "
            f"minimum is {int(min_hops[p])}",
        )
    if ctx.analysis is not None:
        floor = int((ctx.pair_packets * min_hops).sum())
        if ctx.analysis.packet_hops < floor:
            yield _err(
                name,
                f"analysis reports {ctx.analysis.packet_hops} packet hops, "
                f"below the shortest-path floor {floor}",
            )


@invariant(
    "eq5-utilization",
    "Eq. 5 utilization lies in [0, 1] and average hops is non-negative",
    "Eq. 5 (network utilization), paper §4.2.3",
)
def check_eq5_utilization(ctx: CheckContext) -> Iterator[Violation]:
    name = "eq5-utilization"
    a = ctx.analysis
    if a is None:
        return
    u = a.utilization
    if math.isnan(u):
        yield _err(name, "utilization is NaN")
    elif not 0.0 <= u <= 1.0 + REL_TOL:
        yield _err(name, f"utilization {u} outside [0, 1]")
    if a.avg_hops < 0:
        yield _err(name, f"average hops {a.avg_hops} is negative")
    share = a.global_link_packet_share
    if share is not None and not 0.0 <= share <= 1.0 + REL_TOL:
        yield _err(name, f"global-link packet share {share} outside [0, 1]")


# ------------------------------------------------------------- dynamic checks


@invariant(
    "sim-structure",
    "Simulation counters are self-consistent (hops, links, delay bounds)",
    "repro.sim.common (structural observables)",
    requires=("sim",),
)
def check_sim_structure(ctx: CheckContext) -> Iterator[Violation]:
    name = "sim-structure"
    s = ctx.sim
    if s.packets_simulated == 0:
        if s.total_hops or s.used_links or s.makespan:
            yield _err(name, "empty simulation carries nonzero observables")
        return
    if s.link_serve_counts is not None:
        served = int(np.asarray(s.link_serve_counts).sum())
        if served != s.total_hops:
            yield _err(
                name,
                f"link serve counts sum to {served}, total_hops is "
                f"{s.total_hops}",
            )
        used = int((np.asarray(s.link_serve_counts) > 0).sum())
        if used != s.used_links:
            yield _err(
                name,
                f"{used} links served packets, used_links is {s.used_links}",
            )
    if s.makespan + 1e-12 < s.injection_window:
        yield _err(
            name,
            f"makespan {s.makespan} precedes the injection window "
            f"{s.injection_window}",
        )
    if not 0.0 <= s.dynamic_utilization <= 1.0 + REL_TOL:
        yield _err(
            name, f"dynamic utilization {s.dynamic_utilization} outside [0, 1]"
        )
    if not 0.0 <= s.congested_packet_share <= 1.0 + REL_TOL:
        yield _err(
            name,
            f"congested packet share {s.congested_packet_share} outside [0, 1]",
        )
    if not 0.0 <= s.peak_link_busy_fraction <= 1.0 + REL_TOL:
        yield _err(
            name,
            f"peak link busy fraction {s.peak_link_busy_fraction} "
            f"outside [0, 1]",
        )
    if not 0.0 <= s.mean_queue_delay <= s.max_queue_delay + 1e-15:
        yield _err(
            name,
            f"mean queue delay {s.mean_queue_delay} outside "
            f"[0, max={s.max_queue_delay}]",
        )
    if s.p99_queue_delay > s.max_queue_delay + 1e-15:
        yield _err(
            name,
            f"p99 queue delay {s.p99_queue_delay} exceeds max "
            f"{s.max_queue_delay}",
        )
    inflation = s.makespan_inflation
    if not math.isnan(inflation) and inflation < 1.0 - REL_TOL:
        yield _err(name, f"makespan inflation {inflation} below 1.0")


@invariant(
    "telemetry-occupancy",
    "Windowed busy time never exceeds window capacity, and sums to the "
    "run's total busy time",
    "congestion-signal sanity (Jha et al.); repro.telemetry.collector",
    requires=("telemetry",),
)
def check_telemetry_occupancy(ctx: CheckContext) -> Iterator[Violation]:
    name = "telemetry-occupancy"
    r = ctx.telemetry
    occ = r.occupancy
    if occ.size == 0:
        return
    lo = float(occ.min())
    if lo < -1e-12:
        yield _err(name, f"negative occupancy {lo}")
    if r.window_dt > 0:
        cap = r.window_dt * (1.0 + 1e-9) + 1e-12
        hi = float(occ.max())
        if hi > cap:
            yield _err(
                name,
                f"occupancy {hi} exceeds window capacity {r.window_dt}",
            )
    total_busy = float(occ.sum())
    expected = float(r.serve_series.sum()) * r.service
    if not _close(total_busy, expected, rel=1e-6):
        yield _err(
            name,
            f"occupancy sums to {total_busy} busy seconds, services x "
            f"service time is {expected}",
        )


@invariant(
    "telemetry-flow",
    "Injected == delivered == simulated packets, per node and per window",
    "flow conservation; repro.telemetry.collector",
    requires=("telemetry", "sim"),
)
def check_telemetry_flow(ctx: CheckContext) -> Iterator[Violation]:
    name = "telemetry-flow"
    r = ctx.telemetry
    s = ctx.sim
    packets = s.packets_simulated
    for label, series in (
        ("injections per node", r.injections),
        ("ejections per node", r.ejections),
        ("injected series", r.injected_series),
        ("delivered series", r.delivered_series),
    ):
        total = int(np.asarray(series).sum())
        if total != packets:
            yield _err(
                name,
                f"{label} sum to {total}, packets simulated is {packets}",
            )
    if s.link_serve_counts is not None:
        if not np.array_equal(r.link_ids, s.link_ids):
            yield _err(name, "telemetry and simulation disagree on link IDs")
        else:
            per_link = r.serve_series.sum(axis=1)
            if not np.array_equal(per_link, s.link_serve_counts):
                bad = np.nonzero(per_link != s.link_serve_counts)[0]
                yield _err(
                    name,
                    f"{bad.size} link(s) disagree between windowed serve "
                    f"series and simulation serve counts",
                )
    total_services = int(r.serve_series.sum())
    for label, hist in (
        ("queue-depth histogram", r.queue_depth_hist),
        ("stall histogram", r.stall_hist),
    ):
        total = int(np.asarray(hist).sum())
        if total != total_services:
            yield _err(
                name,
                f"{label} counts {total} hops, services recorded is "
                f"{total_services}",
            )


# ------------------------------------------------------------- cache checks


@invariant(
    "cache-roundtrip",
    "Disk-cache roundtrips reproduce artifacts bit-identically",
    "content-keyed caching; repro.cache",
    requires=("cache",),
)
def check_cache_roundtrip(ctx: CheckContext) -> Iterator[Violation]:
    name = "cache-roundtrip"
    comparators = {
        "trace": traces_identical,
        "p2p_matrix": matrices_identical,
        "full_matrix": matrices_identical,
        "incidence": incidences_identical,
    }
    for kind, (original, reloaded) in ctx.roundtrip.items():
        same = comparators.get(kind, lambda a, b: a == b)
        if not same(original, reloaded):
            yield _err(
                name,
                f"{kind} changed across a disk-cache roundtrip for "
                f"{ctx.label}",
            )


# ------------------------------------------------------------ streaming checks

#: Deliberately tiny chunk budget (~850 rows) so every seed-scale trace
#: splits into many chunks, and a small compaction threshold so the
#: incremental merge path runs several times per matrix.
STREAM_CHUNK_BYTES = 1 << 16
STREAM_COMPACT_ROWS = 512
#: Packet bound for the differential simulation leg.
STREAM_SIM_PACKETS = 4_000


@invariant(
    "streaming-equivalence",
    "Chunked streaming replay reproduces the in-memory matrices and sim",
    "out-of-core streaming; repro.core.stream, repro.comm.matrix",
)
def check_streaming_equivalence(ctx: CheckContext) -> Iterator[Violation]:
    name = "streaming-equivalence"
    from ..comm.matrix import matrix_from_stream
    from ..core.stream import BlockStream

    stream = BlockStream.from_trace(ctx.trace).rechunk(STREAM_CHUNK_BYTES)
    diverged = False
    for label, expected, include in (
        ("p2p", ctx.p2p_matrix, False),
        ("full", ctx.full_matrix, True),
    ):
        streamed = matrix_from_stream(
            stream,
            include_collectives=include,
            compact_rows=STREAM_COMPACT_ROWS,
            collective=ctx.collective,
        )
        if not matrices_identical(streamed, expected):
            diverged = True
            yield _err(
                name,
                f"streamed {label} matrix diverges from the in-memory build "
                f"({STREAM_CHUNK_BYTES}-byte chunks, compaction every "
                f"{STREAM_COMPACT_ROWS} rows)",
            )
    if ctx.sim is None or diverged:
        return
    # Matrix identity makes the two sim feeds carry the same packet
    # population; one bounded differential run still exercises the
    # simulate_stream wiring end to end.
    from ..sim.engine import simulate_network, simulate_stream

    total = int(ctx.full_matrix.packets.sum())
    scale = (
        float(-(-total // STREAM_SIM_PACKETS))
        if total > STREAM_SIM_PACKETS
        else 1.0
    )
    kwargs = dict(
        mapping=ctx.mapping,
        execution_time=ctx.trace.meta.execution_time,
        volume_scale=scale,
        seed=ctx.routing_seed,
        routing=ctx.routing,
        routing_seed=ctx.routing_seed,
    )
    streamed_sim = simulate_stream(
        stream, ctx.topology, collective=ctx.collective, **kwargs
    )
    direct_sim = simulate_network(ctx.full_matrix, ctx.topology, **kwargs)
    if streamed_sim != direct_sim or not np.array_equal(
        streamed_sim.link_serve_counts, direct_sim.link_serve_counts
    ):
        yield _err(
            name,
            f"streamed simulation diverges from the in-memory feed "
            f"(volume scale {scale}, makespan {streamed_sim.makespan} "
            f"vs {direct_sim.makespan})",
        )


@invariant(
    "composed-byte-conservation",
    "Each tenant's bytes survive the multi-tenant merge exactly",
    "multi-tenant composition; repro.tenancy.compose",
    requires=("composed",),
)
def check_composed_byte_conservation(ctx: CheckContext) -> Iterator[Violation]:
    name = "composed-byte-conservation"
    from ..comm.matrix import matrix_from_trace

    workload = ctx.composed
    matrix = ctx.full_matrix
    if matrix is None:
        matrix = matrix_from_trace(workload.trace)
    table = workload.job_of_rank
    # Rank-space sanity: disjoint, complete job rank sets.
    if (table < 0).any():
        yield _err(name, "job_of_rank leaves ranks unassigned")
        return
    for job in workload.jobs:
        if not np.array_equal(np.sort(job.ranks), job.ranks):
            yield _err(
                name, f"job {job.label}: allocated ranks are not sorted"
            )
        if not np.array_equal(table[job.ranks], np.full(len(job.ranks), job.job_id)):
            yield _err(
                name,
                f"job {job.label}: job_of_rank disagrees with its rank set",
            )
    # Byte conservation: the composite matrix restricted to one job must
    # carry exactly the bytes/messages/packets of the job's solo matrix —
    # rank remapping is a bijection and collective expansion sees the same
    # communicator structure under the prefixed names.
    total_bytes = 0
    for job in workload.jobs:
        sub = workload.job_matrix(matrix, job.job_id)
        solo = matrix_from_trace(workload.solo_trace(job.job_id))
        for column in ("nbytes", "messages", "packets"):
            got = int(getattr(sub, column).sum())
            want = int(getattr(solo, column).sum())
            if got != want:
                yield _err(
                    name,
                    f"job {job.label}: composite {column} {got} != "
                    f"solo {column} {want}",
                )
        total_bytes += sub.total_bytes
    if total_bytes != matrix.total_bytes:
        yield _err(
            name,
            f"per-job byte totals sum to {total_bytes} but the composite "
            f"matrix carries {matrix.total_bytes} — cross-job traffic or "
            f"lost rows",
        )


# --------------------------------------------------------- collective checks

#: Synthetic communicator battery for the per-engine conservation laws:
#: one non-power-of-two and one power-of-two size, root 0 and a non-zero
#: root, with a ``count`` the sizes do not divide (remainder handling).
_COLL_SIZES = (5, 8)
_COLL_COUNT = 25


def _collective_law_violations() -> tuple[str, ...]:
    """Byte-conservation breaches of every registered collective engine.

    Expands every op through every registry engine on synthetic
    communicators and checks the per-member net-flow laws the flat
    expansion defines (tree schedules may relay bytes, so relayed ops are
    held to exact *net* deliveries and the unrooted exchanges to the
    flat volume floor).  The battery is deterministic and trace-free, so
    it runs once per process and the per-scenario check replays the
    memoized verdict.
    """
    from ..collectives import even_split
    from ..collectives.registry import COLLECTIVES, get_algorithm
    from ..core.communicator import Communicator
    from ..core.events import CollectiveOp

    problems: list[str] = []
    ops = [op for op in CollectiveOp if op is not CollectiveOp.BARRIER]
    u = _COLL_COUNT
    for engine_name in COLLECTIVES:
        engine = get_algorithm(engine_name)
        for n in _COLL_SIZES:
            members = tuple(range(50, 50 + n))
            comm = Communicator(name=f"check{n}", members=members)
            callers = np.array(members, dtype=np.int64)
            calls = np.ones(n, dtype=np.int64)
            for op in ops:
                for root in sorted({0, 2 % n}):
                    nbytes = np.full(n, u, dtype=np.int64)
                    if op is CollectiveOp.GATHERV:
                        # Heterogeneous contributions: exact per-caller
                        # accounting, not an even approximation.
                        nbytes = nbytes + np.arange(n, dtype=np.int64)
                    roots = np.full(n, root, dtype=np.int64)
                    batches = engine.expand_batch(
                        op, comm, callers, nbytes, roots, calls
                    )
                    inflow = np.zeros(n, dtype=np.int64)
                    outflow = np.zeros(n, dtype=np.int64)
                    out_incl = np.zeros(n, dtype=np.int64)
                    for src, dst, bpm, bcalls in (b[:4] for b in batches):
                        vol = bpm * bcalls
                        ls = np.searchsorted(callers, src)
                        ld = np.searchsorted(callers, dst)
                        np.add.at(out_incl, ls, vol)
                        cross = src != dst
                        np.add.at(outflow, ls[cross], vol[cross])
                        np.add.at(inflow, ld[cross], vol[cross])

                    def bad(member, got, law) -> None:
                        problems.append(
                            f"{engine_name}/{op.value} n={n} root={root} "
                            f"member {member}: {got} B violates {law}"
                        )

                    others = [i for i in range(n) if i != root]
                    if op is CollectiveOp.BCAST:
                        for i in others:
                            if inflow[i] != u:
                                bad(i, int(inflow[i]), f"inflow == {u}")
                    elif op is CollectiveOp.SCATTER:
                        net = inflow - outflow
                        for i in others:
                            if net[i] != u:
                                bad(i, int(net[i]), f"net delivery == {u}")
                        if -net[root] != (n - 1) * u:
                            bad(root, int(-net[root]),
                                f"root net-out == {(n - 1) * u}")
                    elif op is CollectiveOp.SCATTERV:
                        shares = even_split(u, n)
                        net = inflow - outflow
                        for i in others:
                            if net[i] != shares[i]:
                                bad(i, int(net[i]),
                                    f"net delivery == {int(shares[i])}")
                        want = int(shares.sum() - shares[root])
                        if -net[root] != want:
                            bad(root, int(-net[root]), f"root net-out == {want}")
                    elif op is CollectiveOp.REDUCE:
                        for i in others:
                            if outflow[i] != u:
                                bad(i, int(outflow[i]), f"outflow == {u}")
                    elif op is CollectiveOp.GATHER:
                        net = outflow - inflow
                        for i in others:
                            if net[i] != u:
                                bad(i, int(net[i]), f"net contribution == {u}")
                        if -net[root] != (n - 1) * u:
                            bad(root, int(-net[root]),
                                f"root net-in == {(n - 1) * u}")
                    elif op is CollectiveOp.GATHERV:
                        net = outflow - inflow
                        want_root = int(nbytes.sum() - nbytes[root])
                        for i in others:
                            if net[i] != nbytes[i]:
                                bad(i, int(net[i]),
                                    f"net contribution == {int(nbytes[i])}")
                        if -net[root] != want_root:
                            bad(root, int(-net[root]),
                                f"root net-in == {want_root}")
                    elif op is CollectiveOp.ALLREDUCE:
                        floor = u - (u + n - 1) // n
                        for i in range(n):
                            if inflow[i] < floor or outflow[i] < floor:
                                bad(i, int(min(inflow[i], outflow[i])),
                                    f"in/outflow >= {floor}")
                    elif op in (CollectiveOp.ALLGATHER, CollectiveOp.ALLGATHERV):
                        floor = (n - 2) * u
                        for i in range(n):
                            if inflow[i] < floor:
                                bad(i, int(inflow[i]), f"inflow >= {floor}")
                    elif op is CollectiveOp.ALLTOALL:
                        for i in range(n):
                            if out_incl[i] != n * u:
                                bad(i, int(out_incl[i]),
                                    f"outflow incl self == {n * u}")
                    elif op in (CollectiveOp.ALLTOALLV, CollectiveOp.REDUCE_SCATTER):
                        want = int(even_split(u, n).sum())
                        for i in range(n):
                            if out_incl[i] != want:
                                bad(i, int(out_incl[i]),
                                    f"outflow incl self == {want}")
                    elif op in (CollectiveOp.SCAN, CollectiveOp.EXSCAN):
                        for i in range(n):
                            want = 0 if i == n - 1 else u
                            if outflow[i] != want:
                                bad(i, int(outflow[i]), f"outflow == {want}")
    return tuple(problems)


_LAW_CACHE: tuple[str, ...] | None = None


@invariant(
    "collective-byte-conservation",
    "Every collective-algorithm engine conserves collective bytes exactly",
    "collective -> p2p expansion, paper §4.4; repro.collectives",
)
def check_collective_byte_conservation(ctx: CheckContext) -> Iterator[Violation]:
    name = "collective-byte-conservation"
    global _LAW_CACHE
    if _LAW_CACHE is None:
        _LAW_CACHE = _collective_law_violations()
    for message in _LAW_CACHE:
        yield _err(name, message)
    # Scenario accounting: the scenario engine's expanded volume must be
    # exactly the collective mass of the full matrix — translate, the
    # matrix builder, and the volume accountant agree byte for byte.
    from ..collectives import collective_volume

    if ctx.full_matrix is None or ctx.p2p_matrix is None:
        return
    delta = ctx.full_matrix.total_bytes - ctx.p2p_matrix.total_bytes
    expected = collective_volume(ctx.trace, collective=ctx.collective)
    if delta != expected:
        yield _err(
            name,
            f"full-minus-p2p matrix mass is {delta} B but the "
            f"{ctx.collective!r} engine expands {expected} B of collectives",
        )


# ----------------------------------------------------------- critpath checks

#: Iteration clamp for the acyclicity check's DAG build — structure (and
#: hence acyclicity) is invariant under repeat truncation, so a small clamp
#: keeps the check cheap on the repeat-heavy transport apps.
DAG_CHECK_MAX_REPEAT = 4


@invariant(
    "critpath-matching",
    "Every p2p channel balances: sends equal receives in calls and bytes",
    "FIFO message matching; repro.critpath.match",
)
def check_critpath_matching(ctx: CheckContext) -> Iterator[Violation]:
    name = "critpath-matching"
    from ..critpath.match import channel_audit, ensure_receives

    audit = channel_audit(ensure_receives(ctx.trace))
    if not audit.balanced:
        bad = np.nonzero(
            (audit.send_calls != audit.recv_calls)
            | (audit.send_bytes != audit.recv_bytes)
        )[0]
        i = int(bad[0])
        yield _err(
            name,
            f"{bad.size} channel(s) unbalanced; first: "
            f"{audit.channel_label(i)} has {int(audit.send_calls[i])} "
            f"send(s) / {int(audit.send_bytes[i])} B vs "
            f"{int(audit.recv_calls[i])} recv(s) / "
            f"{int(audit.recv_bytes[i])} B",
        )
        return
    # Cross-layer conservation: per-(src, dst) matched byte totals must
    # equal the p2p traffic matrix exactly — the matcher and the matrix
    # builder read the same rows, so any disagreement is a lost message.
    m = ctx.p2p_matrix
    codes = audit.src * np.int64(m.num_ranks) + audit.dst
    order = np.argsort(codes, kind="stable")
    uniq, start = np.unique(codes[order], return_index=True)
    per_pair = np.add.reduceat(audit.send_bytes[order], start)
    matrix_codes = m.src * np.int64(m.num_ranks) + m.dst
    if not (
        np.array_equal(uniq, matrix_codes)
        and np.array_equal(per_pair, m.nbytes)
    ):
        matched = dict(zip(uniq.tolist(), per_pair.tolist()))
        for s, d, b in zip(m.src, m.dst, m.nbytes):
            got = matched.pop(int(s) * m.num_ranks + int(d), 0)
            if got != int(b):
                yield _err(
                    name,
                    f"pair ({int(s)}, {int(d)}): matcher sees {got} B "
                    f"but the p2p matrix holds {int(b)} B",
                )
                return
        extra = next(iter(matched))
        yield _err(
            name,
            f"matcher sees traffic on pair "
            f"({extra // m.num_ranks}, {extra % m.num_ranks}) absent from "
            f"the p2p matrix",
        )


@invariant(
    "dag-acyclicity",
    "The happens-before graph of every scenario trace is a DAG",
    "Kahn elimination; repro.critpath.dag",
)
def check_dag_acyclicity(ctx: CheckContext) -> Iterator[Violation]:
    name = "dag-acyclicity"
    from ..cache import cached_critpath_dag
    from ..critpath.dag import CycleError
    from ..critpath.match import MatchError

    try:
        dag = cached_critpath_dag(
            ctx.trace,
            max_repeat=DAG_CHECK_MAX_REPEAT,
            collective=ctx.collective,
        )
        dag.assert_acyclic()
    except MatchError as exc:
        yield _err(name, f"matching failed before the DAG was built: {exc}")
        return
    except CycleError as exc:
        yield _err(name, str(exc))
        return
    if dag.num_events and not dag.num_edges:
        yield _err(
            name, "non-empty trace produced a DAG with no edges"
        )
