"""Cross-layer validation: invariant checker and differential fuzz harness.

The pipeline keeps four interchangeable implementations of almost every
stage (per-event vs columnar traces, reference vs batched simulators, five
routing policies, cached vs cold paths).  This package makes their
correctness an always-on artifact instead of a test-time hope:

- :mod:`.base` / :mod:`.invariants` — a registry of cheap conservation
  checks runnable on any pipeline artifact (byte, hop, packet, and busy-
  time conservation; Eq. 4/5 bounds; cache roundtrip identity);
- :mod:`.suite` — runs the catalogue over the study grid
  (``repro check``);
- :mod:`.fuzz` / :mod:`.shrink` — seeded differential fuzzing across
  every implementation pair, with minimal-reproducer shrinking
  (``repro fuzz``).

See ``docs/validation.md`` for the catalogue with references.
"""

from .base import (
    REGISTRY,
    CheckContext,
    Invariant,
    Violation,
    all_invariants,
    invariant,
    run_invariants,
)
from .fuzz import (
    CI_SEEDS,
    FuzzCase,
    FuzzOutcome,
    FuzzReport,
    draw_case,
    run_case,
    run_fuzz,
)
from .shrink import shrink_case
from .suite import (
    ScenarioResult,
    SuiteReport,
    attach_simulation,
    build_static_context,
    cache_roundtrip_context,
    run_check_suite,
)

__all__ = [
    "REGISTRY",
    "CheckContext",
    "Invariant",
    "Violation",
    "all_invariants",
    "invariant",
    "run_invariants",
    "CI_SEEDS",
    "FuzzCase",
    "FuzzOutcome",
    "FuzzReport",
    "draw_case",
    "run_case",
    "run_fuzz",
    "shrink_case",
    "ScenarioResult",
    "SuiteReport",
    "attach_simulation",
    "build_static_context",
    "cache_roundtrip_context",
    "run_check_suite",
]
