"""Shrinking reporter: reduce a failing fuzz case to a minimal reproducer.

A raw failing seed can name a large workload under an adaptive policy with
a shuffled mapping — too much surface to debug.  The shrinker greedily
simplifies one dimension at a time (variant, mapping, routing, topology,
seeds, then smaller configurations and finally smaller applications),
keeping a simplification only if the case *still fails*, until no
simplification survives.  The result's ``minimal_tuple`` —
(app, ranks, topology, policy) — is the reproducer the fuzz report prints.

Greedy one-dimensional descent is sound here because every probe re-runs
the full differential harness (:func:`repro.validation.fuzz.run_case`):
whatever subset of dimensions the bug actually needs, the shrinker can
never land on a passing case.  Probes are bounded so shrinking a flaky or
expensive failure cannot dominate the fuzz run.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterator

from .fuzz import FuzzCase, case_pool, run_case

__all__ = ["shrink_case"]

#: Upper bound on shrink probes (each probe is one full differential run).
MAX_PROBES = 24


def _candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Single-step simplifications of ``case``, most drastic last."""
    if case.variant:
        # Variants share the base pattern; drop to the plain configuration
        # only if the app has one at this rank count.
        if (case.app, case.ranks, "") in case_pool():
            yield replace(case, variant="")
    if case.mapping != "consecutive":
        yield replace(case, mapping="consecutive")
    if case.routing != "minimal":
        yield replace(case, routing="minimal")
    if case.topology != "torus3d":
        yield replace(case, topology="torus3d")
    for name in ("trace_seed", "routing_seed", "sim_seed"):
        if getattr(case, name) != 0:
            yield replace(case, **{name: 0})
    # Smaller configurations of the same app (smallest first), then other
    # apps with smaller configurations entirely.
    pool = case_pool()
    same_app = sorted(
        r
        for (a, r, v) in pool
        if a == case.app and v == case.variant and r < case.ranks
    )
    for ranks in same_app:
        yield replace(case, ranks=ranks)
    others = sorted(
        (r, a, v) for (a, r, v) in pool if a != case.app and r < case.ranks
    )
    for ranks, app, variant in others:
        yield replace(case, app=app, ranks=ranks, variant=variant)


def shrink_case(
    case: FuzzCase,
    target_packets: int = 8_000,
    max_probes: int = MAX_PROBES,
) -> FuzzCase:
    """Greedily minimize ``case`` while it keeps failing.

    Returns the simplest still-failing case found within the probe budget
    (``case`` itself if nothing simpler fails).
    """

    def still_fails(candidate: FuzzCase) -> bool:
        return not run_case(candidate, target_packets=target_packets).ok

    current = case
    probes = 0
    progressed = True
    while progressed and probes < max_probes:
        progressed = False
        for candidate in _candidates(current):
            if probes >= max_probes:
                break
            probes += 1
            if still_fails(candidate):
                current = candidate
                progressed = True
                break
    return current
