"""Content-keyed memoization for the expensive pipeline stages.

The study grid re-derives the same intermediate artifacts many times: the
41-configuration Table-3 reproduction regenerates traces that Figure 3/5 and
the claims report need again; a sweep evaluates one traffic matrix against
several bandwidths, recomputing identical route incidences per point.  This
module gives the three hot producers a shared cache:

- :func:`cached_trace` — synthetic traces, keyed on
  ``(app, ranks, variant, seed, emit_receives)`` (the full determinism
  domain of :func:`repro.apps.registry.generate_trace`);
- :func:`cached_matrix` — traffic matrices, keyed on the trace's content
  key plus ``(include_p2p, include_collectives, payload)``;
- :func:`cached_mapping` — optimized rank→node mappings, keyed on the
  matrix content key, the topology fingerprint, and ``(method, seed)``
  (a sweep evaluates the same mapping against several routings and
  bandwidths; spectral/bisection optimization dwarfs everything else at
  scale, so recomputing it per cell dominated sweep time);
- :func:`cached_route_incidence` — route incidences, keyed on the topology
  fingerprint (:meth:`repro.topology.base.Topology.fingerprint`), the
  routing policy's :meth:`~repro.routing.base.RoutingPolicy.cache_token`
  (policy name, plus the seed for randomized policies), and a BLAKE2 digest
  of the queried ``(src, dst)`` pair arrays — extended with the per-pair
  weights when a load-aware policy (UGAL) routes on them.

Two tiers: a per-process in-memory LRU (always on) and an optional on-disk
cache enabled with :func:`configure` or the ``REPRO_CACHE_DIR`` environment
variable / ``repro --cache-dir``.  Traces persist as chunked spill
directories of per-column ``.npy`` segments (warm hits memory-map the
segments, so a cached trace costs address space rather than RSS; traces
that cannot be expressed that way fall back to pickle), matrices as
pickle, incidences as ``.npz``.  Keys are pure content
keys, so the disk cache never needs invalidation for same-version runs; bump
:data:`CACHE_VERSION` when a generator or routing algorithm changes
semantics.

Cached objects are shared — treat them as immutable.  ``Trace`` is the one
mutable type handled here; never ``add()`` events to a cached trace.

Telemetry configuration never enters a cache key: collectors observe a
simulation without changing the traces, matrices, or route incidences it
consumes, so instrumented and plain runs share the same cached artifacts
(``tests/test_telemetry.py::TestCacheHygiene`` pins this down).
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from . import timings

__all__ = [
    "CACHE_VERSION",
    "CacheStats",
    "configure",
    "clear",
    "stats",
    "cached_trace",
    "cached_matrix",
    "cached_mapping",
    "cached_node_pairs",
    "cached_pair_hops",
    "cached_route_incidence",
    "cached_critpath_dag",
    "trace_content_key",
    "matrix_content_key",
    "array_digest",
]

#: Bump when trace generators, matrix construction, routing, or the on-disk
#: layout change semantics — entries from other versions are never read.
#: v2: traces store columnar event blocks as ``.npz`` instead of pickle.
#: v3: route-incidence keys carry the routing policy token (name + seed for
#: randomized policies), so pluggable routing never aliases minimal entries.
#: v4: traces persist as chunked spill directories (per-chunk per-column
#: ``.npy`` segments + manifest) that warm hits memory-map instead of
#: loading, so a cached trace costs address space, not RSS.
#: v5: mappings join the disk cache (node-pair aggregates join the memory
#: tier only — they are matrix-sized, so spilling them costs more than the
#: argsort they save).
#: v6: multi-tenant composition (repro.tenancy) — composite traces carry
#: per-job prefixed sub-communicators and the ``interference_aware``
#: routing token embeds a victim-load digest; cold-start once so no v5
#: entry can alias a composed-era key.
#: v7: critical-path engine (repro.critpath) — happens-before DAGs join
#: the memory tier keyed on trace provenance plus the repeat clamp, and
#: synthesized-receive expansion changes what a trace key denotes for the
#: DAG region; cold-start so no v6 entry can alias a critpath-era key.
#: v8: pluggable collective-algorithm engines — matrix and critpath-DAG
#: keys carry the engine's ``cache_token()``, and the binomial tree
#: expansion fixed its subtree-size conservation bugs (scatterv remainder
#: truncation, mismatched tree orientation), so tree-expanded artifacts
#: from v7 must never be read back.
CACHE_VERSION = 8


@dataclass
class CacheStats:
    """Hit/miss counters of one cache region."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "disk_hits": self.disk_hits}


class _LRU:
    """A small OrderedDict-based LRU with per-region statistics."""

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._data: OrderedDict[Any, Any] = OrderedDict()
        self.stats = CacheStats()

    def get(self, key: Any) -> Any:
        try:
            value = self._data[key]
        except KeyError:
            self.stats.misses += 1
            return _MISS
        self._data.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: Any, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()
        self.stats = CacheStats()


_MISS = object()

_log = logging.getLogger("repro.cache")


def _evict_corrupt(path: Path, exc: Exception) -> None:
    """Log and delete an unreadable disk entry so it is recomputed once.

    Corruption here means any failure to load a file whose name matched the
    current :data:`CACHE_VERSION` and key digest — truncation (killed
    writer on a filesystem without atomic rename), foreign bytes, or a stale
    class layout.  Version *mismatches* never reach this path: the version
    is part of the filename, so other-version entries are simply never
    opened.  Eviction keeps the corrupt file from being re-parsed (and
    re-logged) on every later lookup.
    """
    _log.warning(
        "evicting corrupt cache entry %s (%s: %s)",
        path.name,
        type(exc).__name__,
        exc,
    )
    try:
        if path.is_dir():
            import shutil

            shutil.rmtree(path, ignore_errors=True)
        else:
            path.unlink()
    except OSError:
        pass  # already gone, or read-only cache dir: stays a plain miss

#: In-memory regions.  Incidences can be large (one row per packet-route
#: link), so that region is kept smaller than the trace/matrix ones.
_DEFAULT_SIZES = {
    "trace": 64,
    "matrix": 128,
    "incidence": 128,
    "mapping": 256,
    "pairs": 64,
    "hops": 128,
    "digests": 1024,
    "critpath": 32,
}
_regions: dict[str, _LRU] = {
    name: _LRU(size) for name, size in _DEFAULT_SIZES.items()
}

_disk_dir: Path | None = (
    Path(os.environ["REPRO_CACHE_DIR"]) if os.environ.get("REPRO_CACHE_DIR") else None
)


def configure(
    disk_dir: str | os.PathLike | None = None,
    *,
    memory_items: dict[str, int] | None = None,
    disable_disk: bool = False,
) -> None:
    """Reconfigure cache tiers.

    ``disk_dir`` enables (or moves) the on-disk tier; ``disable_disk`` turns
    it off regardless of the environment.  ``memory_items`` resizes the
    in-memory regions (``{"trace": 64, "matrix": 128, "incidence": 32}``).
    """
    global _disk_dir
    if disable_disk:
        _disk_dir = None
    elif disk_dir is not None:
        _disk_dir = Path(disk_dir)
        _disk_dir.mkdir(parents=True, exist_ok=True)
    if memory_items:
        for name, size in memory_items.items():
            if name not in _regions:
                raise ValueError(f"unknown cache region {name!r}")
            if size <= 0:
                raise ValueError("cache region sizes must be positive")
            _regions[name].maxsize = size


def clear(memory: bool = True, disk: bool = False) -> None:
    """Drop cached entries (memory always per-region; disk only if asked)."""
    if memory:
        for region in _regions.values():
            region.clear()
    if disk and _disk_dir is not None and _disk_dir.is_dir():
        for path in _disk_dir.glob(f"v{CACHE_VERSION}-*"):
            if path.is_dir():  # spill-directory trace entries
                import shutil

                shutil.rmtree(path, ignore_errors=True)
            else:
                path.unlink(missing_ok=True)


def stats() -> dict[str, dict[str, int]]:
    """Hit/miss counters per region."""
    return {name: region.stats.as_dict() for name, region in _regions.items()}


# ------------------------------------------------------------------ keys


def array_digest(*arrays: np.ndarray) -> str:
    """BLAKE2 content digest of one or more arrays (dtype/shape included)."""
    h = hashlib.blake2b(digest_size=16)
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def trace_content_key(trace: Any) -> tuple:
    """A stable content key for a trace.

    Traces produced by :func:`cached_trace` carry their generation key as
    provenance (``_repro_cache_key``), making this free.  Foreign traces
    (e.g. converted dumpi recordings) fall back to a digest of the pickled
    event stream — exact but O(events).
    """
    key = getattr(trace, "_repro_cache_key", None)
    if key is not None:
        return key
    meta = trace.meta
    digest = hashlib.blake2b(
        pickle.dumps(trace.events, protocol=pickle.HIGHEST_PROTOCOL),
        digest_size=16,
    ).hexdigest()
    return ("trace-content", meta.app, meta.num_ranks, meta.variant, digest)


def matrix_content_key(matrix: Any) -> tuple:
    """A stable content key for a traffic matrix.

    Matrices produced by :func:`cached_matrix` carry their generation key as
    provenance (``_repro_cache_key``), making this free.  Foreign matrices
    fall back to a digest of the five parallel pair columns — exact but
    O(pairs).
    """
    key = getattr(matrix, "_repro_cache_key", None)
    if key is not None:
        return key
    digest = array_digest(
        matrix.src, matrix.dst, matrix.nbytes, matrix.messages, matrix.packets
    )
    return ("matrix-content", matrix.num_ranks, digest)


def _key_digest(key: tuple) -> str:
    raw = repr((CACHE_VERSION, key)).encode()
    return hashlib.blake2b(raw, digest_size=16).hexdigest()


# ------------------------------------------------------------------ disk tier


def _disk_path(region: str, key: tuple, suffix: str) -> Path | None:
    if _disk_dir is None:
        return None
    return _disk_dir / f"v{CACHE_VERSION}-{region}-{_key_digest(key)}{suffix}"


def _atomic_write(path: Path, write_fn) -> None:
    """Write via a temp file + fsync + rename so readers never see a torn entry.

    Concurrent writers of the same key are safe: each writes its own
    ``mkstemp`` file and the ``os.replace`` is atomic, so readers observe
    either a complete entry or a miss, never a partial file — last rename
    wins, and both writers produced identical bytes for a content key.  The
    ``fsync`` before the rename closes the power-loss window where the
    rename is durable but the data is not (the classic torn-entry source on
    journaled filesystems); ``tests/test_cache_concurrency.py`` hammers one
    key from eight processes to pin the concurrent-writer behaviour down.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            write_fn(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _disk_load_pickle(path: Path | None) -> Any:
    if path is None or not path.is_file():
        return _MISS
    try:
        with path.open("rb") as fh:
            return pickle.load(fh)
    except Exception as exc:
        # Any unreadable entry (truncated, foreign bytes, stale class layout)
        # is a miss: pickle surfaces arbitrary exception types on bad input.
        _evict_corrupt(path, exc)
        return _MISS


def _disk_store_pickle(path: Path | None, value: Any) -> None:
    if path is None:
        return
    _atomic_write(path, lambda fh: pickle.dump(value, fh, pickle.HIGHEST_PROTOCOL))


# ------------------------------------------------ trace <-> spill directories


def _disk_store_trace_spill(path: Path | None, trace) -> bool:
    """Persist a block-native trace as a chunked spill directory.

    Delegates to :func:`repro.core.stream.write_spill` after re-slicing the
    trace's blocks to the default chunk budget, so every segment file stays
    bounded regardless of trace size.  Returns ``False`` when the trace is
    not spill-representable (event-object traces, committed derived
    layouts, sub-communicators — the caller falls back to pickle).
    """
    if path is None or not trace.has_native_blocks:
        return False
    from .core.stream import BlockStream, write_spill

    stream = BlockStream.from_trace(trace).rechunk()
    return write_spill(stream, path) is not None


def _disk_load_trace_spill(path: Path | None) -> Any:
    """Load a spilled trace with memory-mapped columns (miss if absent).

    Warm hits map the segment files instead of reading them: the returned
    trace's column arrays are paged in on demand and reclaimable under
    memory pressure, so a warm cache never charges trace-sized RSS.
    """
    if path is None or not path.is_dir():
        return _MISS
    from .core.stream import load_spill_trace

    try:
        return load_spill_trace(path, mmap=True)
    except Exception as exc:
        # Corrupt/foreign spills surface JSON, key, or value errors; all of
        # them mean "miss" and the trace is regenerated.
        _evict_corrupt(path, exc)
        return _MISS


# ------------------------------------------------------------------ producers


def cached_trace(
    name: str,
    ranks: int,
    variant: str = "",
    seed: int = 0,
    emit_receives: bool = False,
):
    """Memoized :func:`repro.apps.registry.generate_trace`."""
    from .apps.registry import generate_trace

    key = ("trace", name, ranks, variant, seed, emit_receives)
    region = _regions["trace"]
    value = region.get(key)
    if value is not _MISS:
        return value
    spill_path = _disk_path("trace", key, ".spill")
    pkl_path = _disk_path("trace", key, ".pkl")
    value = _disk_load_trace_spill(spill_path)
    if value is _MISS:
        value = _disk_load_pickle(pkl_path)
    if value is not _MISS:
        region.stats.disk_hits += 1
    else:
        value = generate_trace(
            name, ranks, variant=variant, seed=seed, emit_receives=emit_receives
        )
        value._repro_cache_key = key  # provenance: makes trace_content_key free
        if not _disk_store_trace_spill(spill_path, value):
            _disk_store_pickle(pkl_path, value)
    if getattr(value, "_repro_cache_key", None) is None:
        value._repro_cache_key = key
    region.put(key, value)
    return value


def cached_matrix(
    trace,
    include_p2p: bool = True,
    include_collectives: bool = True,
    payload: int | None = None,
    collective: str = "flat",
):
    """Memoized :func:`repro.comm.matrix.matrix_from_trace`.

    The key carries the collective engine's ``cache_token()`` so no two
    engines (flat, binomial, ring, ...) ever alias one entry.
    """
    from .collectives.registry import get_algorithm
    from .comm.matrix import matrix_from_trace
    from .core.packets import MAX_PAYLOAD_BYTES

    if payload is None:
        payload = MAX_PAYLOAD_BYTES
    engine = get_algorithm(collective)
    key = (
        "matrix",
        trace_content_key(trace),
        include_p2p,
        include_collectives,
        payload,
        engine.cache_token(),
    )
    region = _regions["matrix"]
    value = region.get(key)
    if value is not _MISS:
        return value
    path = _disk_path("matrix", key, ".pkl")
    value = _disk_load_pickle(path)
    if value is not _MISS:
        region.stats.disk_hits += 1
    else:
        value = matrix_from_trace(
            trace,
            include_p2p=include_p2p,
            include_collectives=include_collectives,
            payload=payload,
            collective=engine,
        )
        _disk_store_pickle(path, value)
    if getattr(value, "_repro_cache_key", None) is None:
        # CommMatrix is frozen; provenance rides outside the dataclass fields.
        object.__setattr__(value, "_repro_cache_key", key)
    region.put(key, value)
    return value


def cached_mapping(matrix, topology, method: str = "greedy", seed: int = 0):
    """Memoized :func:`repro.mapping.optimized.optimize_mapping`.

    A sweep grid evaluates one (matrix, topology, method) mapping against
    every routing policy and bandwidth, and optimization (greedy refinement,
    spectral, recursive bisection) is the single most expensive per-cell
    stage at scale — so unlike the other producers this one is hot even
    *within* a single sweep.  ``consecutive`` mappings are returned directly
    (an ``arange`` is cheaper than a cache probe); topologies without a
    structural fingerprint bypass the cache like route incidences do.
    """
    from .mapping.optimized import optimize_mapping

    if method == "consecutive":
        value = optimize_mapping(matrix, topology, method=method, seed=seed)
        # Deterministic by construction — provenance needs no digest.
        _set_provenance(
            value,
            ("mapping-consecutive", matrix.num_ranks, topology.num_nodes),
        )
        return value
    fingerprint = topology.fingerprint()
    if fingerprint is None:
        with timings.stage("mapping"):
            return optimize_mapping(matrix, topology, method=method, seed=seed)
    key = ("mapping", matrix_content_key(matrix), fingerprint, method, seed)
    region = _regions["mapping"]
    value = region.get(key)
    if value is not _MISS:
        return value
    path = _disk_path("mapping", key, ".pkl")
    value = _disk_load_pickle(path)
    if value is not _MISS:
        region.stats.disk_hits += 1
    else:
        with timings.stage("mapping"):
            value = optimize_mapping(matrix, topology, method=method, seed=seed)
        _disk_store_pickle(path, value)
    _set_provenance(value, key)
    region.put(key, value)
    return value


def _set_provenance(value, key) -> None:
    """Attach a content key to a (frozen) artifact for derived-cache keys."""
    if getattr(value, "_repro_cache_key", None) is None:
        object.__setattr__(value, "_repro_cache_key", key)


def cached_node_pairs(matrix, mapping):
    """Memoized node-pair traffic aggregate of ``(matrix, mapping)``.

    :func:`repro.model.engine.analyze_network` starts every run by folding
    the rank-pair matrix onto node pairs — an argsort-and-reduce over the
    whole matrix that a sweep repeats identically for every routing policy
    and bandwidth sharing one placement.  When both inputs carry provenance
    content keys (i.e. came from :func:`cached_matrix` /
    :func:`cached_mapping`), the aggregate is memoized under them; ad-hoc
    matrices or mappings fall through to a plain computation.

    Memory-only by design: at one rank per node the aggregate is the size
    of the matrix itself, so spilling it to disk costs more in fsync'd I/O
    than the argsort it saves — recompute is the cheaper miss path.
    """
    from .model.engine import _node_pair_aggregate

    matrix_key = getattr(matrix, "_repro_cache_key", None)
    mapping_key = getattr(mapping, "_repro_cache_key", None)
    if matrix_key is None or mapping_key is None:
        return _node_pair_aggregate(matrix, mapping)
    key = ("pairs", matrix_key, mapping_key)
    region = _regions["pairs"]
    value = region.get(key)
    if value is not _MISS:
        return value
    value = _node_pair_aggregate(matrix, mapping)
    region.put(key, value)
    return value


def cached_critpath_dag(trace, max_repeat: int | None = None, collective: str = "flat"):
    """Memoized happens-before DAG of ``(trace, max_repeat, collective)``.

    :func:`repro.critpath.analyze.analyze_trace` rebuilds nothing when one
    trace is profiled across several topologies and routing policies: the
    DAG depends only on the trace content, the repeat clamp, and the
    collective engine (tree schedules change the happens-before shape), so
    it is keyed on the trace's generation provenance plus the engine's
    ``cache_token()``.  Foreign traces (no provenance) fall through to a
    plain build — hashing the event stream would cost as much as the
    expansion it saves.

    Memory-only by design: the DAG's lazily built CSR indexes and level
    schedule are the expensive part and would not survive a pickle round
    trip ergonomically, and the arrays are expansion-sized.
    """
    from .collectives.registry import get_algorithm
    from .critpath.dag import build_dag

    engine = get_algorithm(collective)
    trace_key = getattr(trace, "_repro_cache_key", None)
    if trace_key is None:
        return build_dag(trace, max_repeat=max_repeat, collective=engine)
    key = ("critpath-dag", trace_key, max_repeat, engine.cache_token())
    region = _regions["critpath"]
    value = region.get(key)
    if value is not _MISS:
        return value
    value = build_dag(trace, max_repeat=max_repeat, collective=engine)
    region.put(key, value)
    return value


def cached_pair_hops(topology, src, dst, matrix=None, mapping=None):
    """Memoized closed-form hop counts of a node-pair batch.

    The minimal-routing analysis path recomputes ``topology.hops_array``
    for every (bandwidth, payload, policy-variant) cell sharing one
    placement; with provenance-carrying inputs the result is a pure
    function of ``(topology, matrix, mapping)`` and is memoized in memory.
    """
    fingerprint = topology.fingerprint()
    matrix_key = getattr(matrix, "_repro_cache_key", None)
    mapping_key = getattr(mapping, "_repro_cache_key", None)
    if fingerprint is None or matrix_key is None or mapping_key is None:
        return topology.hops_array(src, dst)
    key = ("hops", fingerprint, matrix_key, mapping_key)
    region = _regions["hops"]
    value = region.get(key)
    if value is not _MISS:
        return value
    value = topology.hops_array(src, dst)
    region.put(key, value)
    return value


def cached_route_incidence(
    topology,
    src: np.ndarray,
    dst: np.ndarray,
    routing="minimal",
    seed: int = 0,
    pair_weights: np.ndarray | None = None,
    content_token: tuple | None = None,
):
    """Memoized route incidence under any :mod:`repro.routing` policy.

    ``routing`` is a policy name or a pre-built
    :class:`~repro.routing.base.RoutingPolicy` instance; the default
    ``"minimal"`` memoizes :meth:`Topology.route_incidence` exactly as
    before.  The cache key carries the policy's ``cache_token()`` — name
    plus seed for randomized policies — so no two policies (or two seeds of
    one randomized policy) ever share an entry.  For load-aware policies
    (UGAL) with ``pair_weights`` supplied, the weights join the content
    digest, since they steer the adaptive placements.

    Topologies without a structural fingerprint (custom subclasses that do
    not override :meth:`fingerprint`) bypass the cache.

    Keys carry a content digest of the query arrays rather than any
    provenance token deliberately: the digest aliases identical queries
    that arrive under different provenances (e.g. two payloads share one
    matrix sparsity pattern, so their crossing pair arrays — and their
    incidence — are the same entry), which roughly halves the incidence
    working set of a payload-crossed sweep grid.

    ``content_token`` is an optional *digest memo* key, not an entry key: a
    provenance tuple that uniquely determines ``(src, dst, pair_weights)``
    (the engine passes its matrix/mapping provenance pair).  When supplied,
    the BLAKE2 digest of the query arrays — the dominant warm-lookup cost
    for million-pair batches — is remembered under it, while cache entries
    stay digest-keyed so the cross-provenance aliasing above is preserved.
    """
    from .routing import get_policy
    from .topology.base import RouteIncidence

    policy = get_policy(routing, seed=seed)
    fingerprint = topology.fingerprint()
    if fingerprint is None:
        with timings.stage("routing"):
            return policy.route_incidence(
                topology, src, dst, pair_weights=pair_weights
            )

    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    load_aware = policy.load_aware and pair_weights is not None
    digest = None
    token_key = None
    if content_token is not None:
        token_key = ("incidence-digest", content_token, load_aware)
        memo = _regions["digests"].get(token_key)
        if memo is not _MISS:
            digest = memo
    if digest is None:
        if load_aware:
            weights = np.asarray(pair_weights, dtype=np.float64)
            digest = array_digest(src, dst, weights)
        else:
            digest = array_digest(src, dst)
        if token_key is not None:
            _regions["digests"].put(token_key, digest)
    key = ("incidence", fingerprint, policy.cache_token(), digest)
    region = _regions["incidence"]
    value = region.get(key)
    if value is not _MISS:
        return value
    path = _disk_path("incidence", key, ".npz")
    if path is not None and path.is_file():
        try:
            with np.load(path) as data:
                value = RouteIncidence(data["pair_index"], data["link_id"])
            region.stats.disk_hits += 1
        except Exception as exc:
            # np.load raises zipfile/pickle/value errors on corrupt archives;
            # treat any of them as a miss and recompute.
            _evict_corrupt(path, exc)
            value = _MISS
    if value is _MISS:
        with timings.stage("routing"):
            value = policy.route_incidence(
                topology, src, dst, pair_weights=pair_weights
            )
        if path is not None:
            _atomic_write(
                path,
                lambda fh: np.savez(
                    fh, pair_index=value.pair_index, link_id=value.link_id
                ),
            )
    region.put(key, value)
    return value
