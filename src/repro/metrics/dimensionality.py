"""Dimensionality analysis of rank locality (paper §5.1, Table 4).

The linear rank-distance metric only captures one-dimensional neighbour
structure: in a 2D or 3D domain decomposition, spatial neighbours in higher
dimensions sit at a constant *linear* offset (Figure 2).  Re-interpreting the
rank IDs as row-major coordinates on a d-dimensional grid and measuring a
grid distance recovers the structure.

The default grid metric is **Manhattan** (L1) distance, which generalizes
the 1D definition ``|src - dst|`` (Eq. 1): face neighbours sit at distance
1, stencil diagonals at 2–3.  The paper's Table 4 is only consistent with an
L1-style metric — e.g. CNS at 64 ranks reports 21% 3D locality (distance
~4.8), which exceeds the (4,4,4) grid's Chebyshev diameter of 3 but fits its
Manhattan diameter of 9.  Chebyshev distance (all 26 stencil neighbours at
distance 1) is available via ``metric="chebyshev"`` for comparison.
"""

from __future__ import annotations

import numpy as np

from ..comm.matrix import CommMatrix
from .weighted import weighted_quantile

__all__ = [
    "grid_shape",
    "rank_coordinates",
    "grid_distances",
    "manhattan_distances",
    "chebyshev_distances",
    "rank_distance_nd",
    "rank_locality_nd",
    "locality_by_dimension",
]

DEFAULT_SHARE = 0.9


def _prime_factors(n: int) -> list[int]:
    """Prime factorization, descending order."""
    factors = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return sorted(factors, reverse=True)


def grid_shape(num_ranks: int, ndims: int) -> tuple[int, ...]:
    """Balanced ``ndims``-dimensional grid with exactly ``num_ranks`` cells.

    Mirrors ``MPI_Dims_create``: prime factors of ``num_ranks`` are assigned
    largest-first to the currently smallest dimension, yielding factors as
    close to ``num_ranks**(1/ndims)`` as the factorization allows.  The
    result is sorted descending (slowest-varying dimension first), matching
    MPI's convention.
    """
    if num_ranks <= 0:
        raise ValueError("num_ranks must be positive")
    if ndims <= 0:
        raise ValueError("ndims must be positive")
    dims = [1] * ndims
    for f in _prime_factors(num_ranks):
        dims[int(np.argmin(dims))] *= f
    return tuple(sorted(dims, reverse=True))


def rank_coordinates(ranks: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Row-major coordinates of rank IDs on the given grid, shape ``(k, d)``."""
    ranks = np.asarray(ranks, dtype=np.int64)
    size = int(np.prod(shape))
    if ranks.size and (ranks.min() < 0 or ranks.max() >= size):
        raise ValueError(f"rank IDs out of range for grid of size {size}")
    coords = np.empty((len(ranks), len(shape)), dtype=np.int64)
    rem = ranks.copy()
    for axis in range(len(shape) - 1, -1, -1):
        coords[:, axis] = rem % shape[axis]
        rem //= shape[axis]
    return coords


def grid_distances(
    src: np.ndarray,
    dst: np.ndarray,
    shape: tuple[int, ...],
    metric: str = "manhattan",
) -> np.ndarray:
    """Grid distance between rank pairs on a row-major grid."""
    cs = rank_coordinates(src, shape)
    cd = rank_coordinates(dst, shape)
    diff = np.abs(cs - cd)
    if metric == "manhattan":
        return diff.sum(axis=1)
    if metric == "chebyshev":
        return diff.max(axis=1)
    raise ValueError(f"unknown grid metric {metric!r}")


def manhattan_distances(
    src: np.ndarray, dst: np.ndarray, shape: tuple[int, ...]
) -> np.ndarray:
    """Manhattan (L1) distance between rank pairs on a row-major grid."""
    return grid_distances(src, dst, shape, "manhattan")


def chebyshev_distances(
    src: np.ndarray, dst: np.ndarray, shape: tuple[int, ...]
) -> np.ndarray:
    """Chebyshev (max-coordinate) distance between rank pairs on a grid."""
    return grid_distances(src, dst, shape, "chebyshev")


def rank_distance_nd(
    matrix: CommMatrix,
    shape: tuple[int, ...],
    share: float = DEFAULT_SHARE,
    metric: str = "manhattan",
) -> float:
    """Byte-weighted ``share``-quantile of the grid rank distance."""
    if int(np.prod(shape)) != matrix.num_ranks:
        raise ValueError(
            f"grid {shape} has {int(np.prod(shape))} cells, "
            f"matrix has {matrix.num_ranks} ranks"
        )
    mask = matrix.src != matrix.dst
    if not mask.any():
        return float("nan")
    dist = grid_distances(matrix.src[mask], matrix.dst[mask], shape, metric)
    weights = matrix.nbytes[mask]
    if weights.sum() == 0:
        return float("nan")
    return weighted_quantile(dist, weights, share)


def rank_locality_nd(
    matrix: CommMatrix,
    shape: tuple[int, ...],
    share: float = DEFAULT_SHARE,
    metric: str = "manhattan",
) -> float:
    """Rank locality in [0, 1] on a d-dimensional grid (1.0 = all neighbours)."""
    d = rank_distance_nd(matrix, shape, share, metric)
    if np.isnan(d):
        return float("nan")
    return min(1.0, 1.0 / d) if d > 0 else 1.0


def locality_by_dimension(
    matrix: CommMatrix,
    ndims: tuple[int, ...] = (1, 2, 3),
    share: float = DEFAULT_SHARE,
    metric: str = "manhattan",
) -> dict[int, float]:
    """Rank locality under balanced 1D/2D/3D re-linearization (Table 4).

    The workload's intrinsic dimensionality shows up as the dimension where
    locality peaks (or saturates at 100%).
    """
    return {
        d: rank_locality_nd(matrix, grid_shape(matrix.num_ranks, d), share, metric)
        for d in ndims
    }
