"""Per-trace MPI-level metric summary (the left half of Table 3)."""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..comm.matrix import CommMatrix, matrix_from_trace
from ..core.trace import Trace
from ..util import fmt_float
from .locality import rank_distance, rank_locality
from .peers import peers
from .selectivity import selectivity

__all__ = ["MPILevelMetrics", "mpi_level_metrics"]


@dataclass(frozen=True)
class MPILevelMetrics:
    """Hardware-agnostic metrics of one trace (paper §5).

    All three metrics consider point-to-point traffic only; apps without any
    p2p traffic get ``peers = 0`` and NaN distances (N/A in the paper).
    """

    app: str
    variant: str
    num_ranks: int
    peers: int
    rank_distance_90: float
    rank_locality_90: float
    selectivity_90: float

    @property
    def has_p2p(self) -> bool:
        return self.peers > 0

    @property
    def label(self) -> str:
        base = f"{self.app}@{self.num_ranks}"
        return f"{base}/{self.variant}" if self.variant else base

    def format_row(self) -> str:
        """One aligned text row (N/A for all-collective workloads).

        Individual metrics can be NaN even with ``peers > 0`` (e.g. p2p
        pairs that carry zero bytes); each cell renders independently so no
        "nan" ever reaches the table.
        """
        if not self.has_p2p:
            return f"{self.label:<28} {'N/A':>6} {'N/A':>10} {'N/A':>10}"
        return (
            f"{self.label:<28} {self.peers:>6d} "
            f"{fmt_float(self.rank_distance_90, '.1f'):>10} "
            f"{fmt_float(self.selectivity_90, '.1f'):>10}"
        )


def mpi_level_metrics(
    trace: Trace, matrix: CommMatrix | None = None
) -> MPILevelMetrics:
    """Compute peers, rank distance and selectivity for one trace.

    ``matrix`` may be passed to reuse an already-built *p2p-only* traffic
    matrix; otherwise one is built here (collectives excluded, per §5).
    """
    if matrix is None:
        matrix = matrix_from_trace(trace, include_collectives=False)
    n_peers = peers(matrix)
    if n_peers == 0:
        return MPILevelMetrics(
            app=trace.meta.app,
            variant=trace.meta.variant,
            num_ranks=trace.meta.num_ranks,
            peers=0,
            rank_distance_90=math.nan,
            rank_locality_90=math.nan,
            selectivity_90=math.nan,
        )
    return MPILevelMetrics(
        app=trace.meta.app,
        variant=trace.meta.variant,
        num_ranks=trace.meta.num_ranks,
        peers=n_peers,
        rank_distance_90=rank_distance(matrix),
        rank_locality_90=rank_locality(matrix),
        selectivity_90=selectivity(matrix),
    )
