"""Communication heat maps and their summary statistics.

The paper's methodological starting point (§4): locality "is mostly
characterized by communication patterns represented in heat maps so far",
which are "well suited for humans" but "become increasingly unclear with
the number of ranks" and "are not qualified to be interpreted abstractly".

This module provides exactly that baseline — down-sampled heat maps with an
ASCII rendering for human inspection — plus the abstract summary statistics
(sparsity, bandwidth concentration, diagonal dominance) that bridge toward
the paper's metrics, so the motivation can be demonstrated side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..comm.matrix import CommMatrix

__all__ = ["HeatmapSummary", "downsample", "render_ascii", "heatmap_summary"]

_SHADES = " .:-=+*#%@"


def downsample(matrix: CommMatrix, bins: int = 32) -> np.ndarray:
    """Aggregate the rank-pair byte matrix into a ``bins x bins`` density.

    Ranks are grouped into contiguous blocks (the usual heat-map
    down-sampling); the result holds total bytes per block pair.
    """
    if bins <= 0:
        raise ValueError("bins must be positive")
    n = matrix.num_ranks
    bins = min(bins, n)
    row = (matrix.src * bins) // n
    col = (matrix.dst * bins) // n
    out = np.zeros((bins, bins), dtype=np.float64)
    np.add.at(out, (row, col), matrix.nbytes)
    return out


def render_ascii(matrix: CommMatrix, bins: int = 32) -> str:
    """Log-scaled ASCII heat map (the human-readable baseline view)."""
    grid = downsample(matrix, bins)
    peak = grid.max()
    if peak <= 0:
        return "\n".join(" " * grid.shape[1] for _ in range(grid.shape[0]))
    # log scale: empty cells blank, then 9 shades over the dynamic range
    with np.errstate(divide="ignore"):
        logs = np.where(grid > 0, np.log10(grid), -np.inf)
    lo = logs[np.isfinite(logs)].min()
    hi = np.log10(peak)
    span = max(hi - lo, 1e-12)
    lines = []
    for row in range(grid.shape[0]):
        chars = []
        for col in range(grid.shape[1]):
            if grid[row, col] <= 0:
                chars.append(" ")
            else:
                level = (logs[row, col] - lo) / span
                chars.append(_SHADES[1 + int(level * (len(_SHADES) - 2))])
        lines.append("".join(chars))
    return "\n".join(lines)


@dataclass(frozen=True)
class HeatmapSummary:
    """Abstract statistics of the pair-volume distribution."""

    num_ranks: int
    fill: float  # fraction of off-diagonal pairs with any traffic
    diagonal_band_share: float  # byte share within |src-dst| <= band
    band: int
    top_pairs_for_90pct: int  # pairs covering 90% of bytes
    gini: float  # inequality of pair volumes (1 = one pair carries all)

    @property
    def concentration(self) -> float:
        """Share of possible pairs needed for 90% of bytes (lower = sparser)."""
        possible = self.num_ranks * (self.num_ranks - 1)
        return self.top_pairs_for_90pct / possible if possible else 0.0


def heatmap_summary(matrix: CommMatrix, band: int = 1) -> HeatmapSummary:
    """Summarize a heat map's structure without rendering it.

    These are the "abstract comparisons" heat maps cannot provide directly:
    how full the matrix is, how much traffic hugs the diagonal (cheap 1D
    locality), and how concentrated the volume is.
    """
    n = matrix.num_ranks
    off = matrix.src != matrix.dst
    src = matrix.src[off]
    dst = matrix.dst[off]
    vols = matrix.nbytes[off].astype(np.float64)
    possible = n * (n - 1)
    if len(vols) == 0 or vols.sum() == 0:
        return HeatmapSummary(n, 0.0, 0.0, band, 0, 0.0)

    total = vols.sum()
    near = np.abs(src - dst) <= band
    sorted_desc = np.sort(vols)[::-1]
    cum = np.cumsum(sorted_desc)
    top_pairs = int(np.searchsorted(cum, 0.9 * total - 1e-9) + 1)

    sorted_asc = sorted_desc[::-1]
    index = np.arange(1, len(sorted_asc) + 1)
    gini = float(
        (2 * (index * sorted_asc).sum()) / (len(sorted_asc) * total)
        - (len(sorted_asc) + 1) / len(sorted_asc)
    )

    return HeatmapSummary(
        num_ranks=n,
        fill=len(vols) / possible,
        diagonal_band_share=float(vols[near].sum() / total),
        band=band,
        top_pairs_for_90pct=top_pairs,
        gini=gini,
    )
