"""Hardware-agnostic MPI-level locality metrics (paper §4.1 and §5)."""

from .dimensionality import (
    chebyshev_distances,
    grid_distances,
    grid_shape,
    locality_by_dimension,
    manhattan_distances,
    rank_coordinates,
    rank_distance_nd,
    rank_locality_nd,
)
from .heatmap import HeatmapSummary, heatmap_summary, render_ascii
from .locality import distance_histogram, pair_distances, rank_distance, rank_locality
from .peers import peers, peers_per_rank
from .selectivity import (
    mean_selectivity_curve,
    partner_volumes,
    per_rank_selectivity,
    selectivity,
    selectivity_curve,
)
from .summary import MPILevelMetrics, mpi_level_metrics
from .weighted import weighted_quantile

__all__ = [
    "chebyshev_distances",
    "grid_distances",
    "manhattan_distances",
    "grid_shape",
    "locality_by_dimension",
    "rank_coordinates",
    "rank_distance_nd",
    "rank_locality_nd",
    "HeatmapSummary",
    "heatmap_summary",
    "render_ascii",
    "distance_histogram",
    "pair_distances",
    "rank_distance",
    "rank_locality",
    "peers",
    "peers_per_rank",
    "mean_selectivity_curve",
    "partner_volumes",
    "per_rank_selectivity",
    "selectivity",
    "selectivity_curve",
    "MPILevelMetrics",
    "mpi_level_metrics",
    "weighted_quantile",
]
