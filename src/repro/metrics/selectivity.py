"""Selectivity (paper §4.1.2).

For a given source rank, sort its point-to-point destinations by exchanged
byte volume; *selectivity* is the number of top destinations needed to cover
90% of that rank's total p2p volume.  The application-level value reported in
Table 3 is the mean over all ranks that send any p2p traffic.

This module also produces the cumulative-share curves of Figures 1, 3 and 4:
x — destinations sorted by volume (rank 1 = heaviest partner), y — cumulative
share of the source rank's traffic.
"""

from __future__ import annotations

import numpy as np

from ..comm.matrix import CommMatrix

__all__ = [
    "per_rank_selectivity",
    "selectivity",
    "partner_volumes",
    "selectivity_curve",
    "mean_selectivity_curve",
]

DEFAULT_SHARE = 0.9


def _sorted_partner_bytes(matrix: CommMatrix) -> dict[int, np.ndarray]:
    """Per source rank: partner byte volumes sorted descending (self excluded)."""
    mask = matrix.src != matrix.dst
    src = matrix.src[mask]
    nbytes = matrix.nbytes[mask]
    out: dict[int, np.ndarray] = {}
    if src.size == 0:
        return out
    order = np.argsort(src, kind="stable")
    src = src[order]
    nbytes = nbytes[order]
    boundaries = np.flatnonzero(np.diff(src)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(src)]))
    for s, e in zip(starts, ends):
        vols = np.sort(nbytes[s:e])[::-1]
        out[int(src[s])] = vols
    return out


def _partners_to_cover(volumes_desc: np.ndarray, share: float) -> int:
    """Smallest k such that the top-k volumes reach ``share`` of the total."""
    total = volumes_desc.sum()
    if total == 0:
        return 0
    cum = np.cumsum(volumes_desc)
    return int(np.searchsorted(cum, share * total - 1e-9) + 1)


def per_rank_selectivity(
    matrix: CommMatrix, share: float = DEFAULT_SHARE
) -> dict[int, int]:
    """Selectivity of every rank that sends p2p traffic."""
    if not 0 < share <= 1:
        raise ValueError(f"share must be in (0, 1], got {share}")
    return {
        rank: _partners_to_cover(vols, share)
        for rank, vols in _sorted_partner_bytes(matrix).items()
        if vols.sum() > 0
    }


def selectivity(matrix: CommMatrix, share: float = DEFAULT_SHARE) -> float:
    """Application-level selectivity: mean of the per-rank values.

    NaN when no rank sends point-to-point traffic (all-collective workloads,
    reported N/A in the paper).
    """
    per_rank = per_rank_selectivity(matrix, share)
    if not per_rank:
        return float("nan")
    return float(np.mean(list(per_rank.values())))


def partner_volumes(matrix: CommMatrix, rank: int) -> np.ndarray:
    """Byte volume to each partner of ``rank``, sorted descending (Figure 1)."""
    dsts, nbytes = matrix.row(rank)
    off = dsts != rank
    return np.sort(nbytes[off])[::-1]


def selectivity_curve(matrix: CommMatrix, rank: int) -> np.ndarray:
    """Cumulative traffic share of ``rank``'s sorted partners.

    ``curve[k-1]`` is the share of the rank's p2p volume covered by its top-k
    partners; the final entry is 1.0.  Empty when the rank sends nothing.
    """
    vols = partner_volumes(matrix, rank)
    total = vols.sum()
    if total == 0:
        return np.zeros(0, dtype=np.float64)
    return np.cumsum(vols) / total


def mean_selectivity_curve(matrix: CommMatrix, max_partners: int | None = None) -> np.ndarray:
    """Average cumulative-share curve across all sending ranks (Figures 3/4).

    Ranks with fewer partners than the curve length are padded with 1.0
    (their whole volume is already covered).  Returns an empty array when no
    rank sends p2p traffic.
    """
    per_rank = _sorted_partner_bytes(matrix)
    curves = []
    longest = 0
    for vols in per_rank.values():
        total = vols.sum()
        if total == 0:
            continue
        curves.append(np.cumsum(vols) / total)
        longest = max(longest, len(vols))
    if not curves:
        return np.zeros(0, dtype=np.float64)
    if max_partners is not None:
        longest = min(longest, max_partners)
    acc = np.zeros(longest, dtype=np.float64)
    for curve in curves:
        if len(curve) >= longest:
            acc += curve[:longest]
        else:
            acc[: len(curve)] += curve
            acc[len(curve) :] += 1.0
    return acc / len(curves)
