"""Peers metric (Klenk et al. [7], reused in paper §5).

*Peers* is the peak number of distinct point-to-point destination ranks any
single rank addresses during the run.  It bounds — but, as the paper shows,
vastly overestimates — the size of the communication set that actually
matters (compare selectivity).
"""

from __future__ import annotations

import numpy as np

from ..comm.matrix import CommMatrix

__all__ = ["peers", "peers_per_rank"]


def peers_per_rank(matrix: CommMatrix) -> np.ndarray:
    """Distinct p2p destinations of every rank (self excluded)."""
    return matrix.partners_per_rank()


def peers(matrix: CommMatrix) -> int:
    """Peak number of p2p destination ranks addressed by any rank.

    Returns 0 for traces without point-to-point traffic (N/A in the paper's
    tables).
    """
    per_rank = peers_per_rank(matrix)
    return int(per_rank.max()) if per_rank.size else 0
