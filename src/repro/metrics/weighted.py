"""Weighted quantile utilities.

The paper quantizes both of its MPI-level metrics at the 90% traffic share:
*"the maximum spatial distance for which 90% of the overall traffic is
covered"*.  Reported values are fractional (e.g. a rank distance of 3.7 over
integer distances), so the implementation interpolates the cumulative
coverage function: with distinct values sorted ascending and ``cum(v)`` the
share of total weight at values ``<= v``, the ``q``-quantile interpolates
linearly between consecutive ``(value, cum)`` points.

Consequences that matter for the locality metrics:

- if the smallest value already covers ``q`` of the weight, the quantile is
  (at most) that value — neighbour-dominated traffic yields distance <= 1;
- a crossing inside a value's coverage block lands fractionally below it,
  matching the paper's 3.7 / 15.7 style results.
"""

from __future__ import annotations

import numpy as np

__all__ = ["weighted_quantile"]


def weighted_quantile(values: np.ndarray, weights: np.ndarray, q: float) -> float:
    """Interpolated ``q``-quantile of ``values`` weighted by ``weights``.

    Duplicate values are merged and zero-weight values are dropped before
    interpolation — a value carrying no weight is outside the distribution's
    support and must not bend the coverage curve.  For ``q`` at or below the
    first value's coverage the first value is returned (clamped), and
    ``q = 1`` returns the maximum value.

    Raises ``ValueError`` on empty input, negative weights, non-positive
    total weight, or a quantile outside [0, 1].
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    vals = np.asarray(values, dtype=np.float64)
    wts = np.asarray(weights, dtype=np.float64)
    if vals.shape != wts.shape:
        raise ValueError("values and weights must be parallel arrays")
    if vals.size == 0:
        raise ValueError("cannot take a quantile of empty data")
    if np.any(wts < 0):
        raise ValueError("weights must be non-negative")
    total = wts.sum()
    if total <= 0:
        raise ValueError("total weight must be positive")
    supported = wts > 0
    if not supported.all():
        vals = vals[supported]
        wts = wts[supported]

    unique, inverse = np.unique(vals, return_inverse=True)
    merged = np.zeros(len(unique), dtype=np.float64)
    np.add.at(merged, inverse, wts)
    coverage = np.cumsum(merged) / total  # right-edge cumulative shares
    # np.interp clamps below coverage[0] to unique[0] and at 1.0 to the max.
    return float(np.interp(q, coverage, unique))
