"""Rank locality (paper §4.1.1).

*Rank distance* between two MPI ranks is the absolute difference of their
numerical IDs (Eq. 1); *locality* is its reciprocal (Eq. 2), so communicating
with a direct neighbour (distance 1) means 100% locality.  The paper
quantizes the metric as the distance covering 90% of the point-to-point
traffic volume — here computed as an interpolated byte-weighted quantile —
and reports it per application as *Rank Distance (90%)* in Table 3.

The metric is hardware-agnostic: it depends only on rank numbering, not on
any topology or mapping.  Self-traffic (``src == dst``) is excluded — it has
distance 0 and never crosses the network.
"""

from __future__ import annotations

import numpy as np

from ..comm.matrix import CommMatrix
from .weighted import weighted_quantile

__all__ = [
    "pair_distances",
    "rank_distance",
    "rank_locality",
    "distance_histogram",
]

#: The paper's quantization threshold: 90% of traffic volume.
DEFAULT_SHARE = 0.9


def pair_distances(matrix: CommMatrix) -> tuple[np.ndarray, np.ndarray]:
    """Linear rank distances and byte weights for all off-diagonal pairs."""
    mask = matrix.src != matrix.dst
    dist = np.abs(matrix.src[mask] - matrix.dst[mask])
    return dist, matrix.nbytes[mask]


def rank_distance(matrix: CommMatrix, share: float = DEFAULT_SHARE) -> float:
    """Byte-weighted ``share``-quantile of the linear rank distance.

    Returns NaN when the matrix has no off-diagonal traffic (e.g. for
    all-collective workloads analyzed at the p2p level, reported as N/A in
    the paper's tables).
    """
    dist, weights = pair_distances(matrix)
    if dist.size == 0 or weights.sum() == 0:
        return float("nan")
    return weighted_quantile(dist, weights, share)


def rank_locality(matrix: CommMatrix, share: float = DEFAULT_SHARE) -> float:
    """Rank locality in [0, 1]: reciprocal of :func:`rank_distance` (Eq. 2).

    A value of 1.0 means 90% of traffic stays within direct rank neighbours.
    NaN when there is no point-to-point traffic.
    """
    d = rank_distance(matrix, share)
    if np.isnan(d):
        return float("nan")
    # Distances below one can arise from quantile interpolation when nearly
    # all traffic is neighbour traffic; locality is capped at 100%.
    return min(1.0, 1.0 / d) if d > 0 else 1.0


def distance_histogram(matrix: CommMatrix) -> tuple[np.ndarray, np.ndarray]:
    """Byte volume per linear rank distance.

    Returns ``(distances, volumes)`` with distances sorted ascending —
    the raw distribution underlying :func:`rank_distance`, useful for
    plotting locality profiles.
    """
    dist, weights = pair_distances(matrix)
    if dist.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    unique, inverse = np.unique(dist, return_inverse=True)
    volumes = np.zeros(len(unique), dtype=np.int64)
    np.add.at(volumes, inverse, weights)
    return unique, volumes
