"""Static topology models: 3D torus, fat tree, dragonfly (paper §2.2, §4.4)."""

from .base import RouteIncidence, Topology
from .configs import (
    TABLE2,
    TABLE2_SIZES,
    TopologyConfig,
    build_all,
    config_for,
    dragonfly_params_for,
    fat_tree_stages_for,
    torus_dims_for,
)
from .cost import CostModel, TopologyCost, topology_cost
from .dragonfly import Dragonfly
from .fattree import FatTree
from .mesh import Mesh3D
from .torus import Torus3D

__all__ = [
    "RouteIncidence",
    "Topology",
    "TABLE2",
    "TABLE2_SIZES",
    "TopologyConfig",
    "build_all",
    "config_for",
    "dragonfly_params_for",
    "fat_tree_stages_for",
    "torus_dims_for",
    "CostModel",
    "TopologyCost",
    "topology_cost",
    "Dragonfly",
    "FatTree",
    "Mesh3D",
    "Torus3D",
]
