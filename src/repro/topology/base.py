"""Topology abstraction.

A topology is a *non-temporal* network model (paper §4.2): it answers, for
node pairs, (a) how many link traversals (**hops**) a packet takes under the
topology's deterministic shortest-path routing, and (b) *which* links the
route uses — enough to count used links for the utilization metric (Eq. 5)
and to study link-load distributions.  No timing, congestion, or adaptive
behaviour is modeled, exactly like the paper.

Hop conventions (validated against the paper's Table 3):

- **3D torus** — switches are integrated into the NIC, so a hop is one
  inter-node link traversal; same-node traffic is 0 hops.
- **fat tree / dragonfly** — the node↔switch injection/ejection links count
  as hops (two nodes on the same switch are 2 hops apart).

Routes are exposed in a vectorized form: arrays of node pairs in, arrays of
hop counts or ``(pair_index, link_id)`` incidence pairs out.  Link IDs are
opaque non-negative int64 identifiers, unique within one topology instance;
``describe_link`` decodes them for humans.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = ["Topology", "RouteIncidence"]


@dataclass(frozen=True)
class RouteIncidence:
    """Sparse pair→link incidence of a batch of routes.

    ``pair_index[i]`` says that route ``pair_index[i]`` (an index into the
    query arrays) traverses ``link_id[i]``.  A route of h hops contributes h
    incidence rows; 0-hop (same node) routes contribute none.
    """

    pair_index: np.ndarray  # int64[m]
    link_id: np.ndarray  # int64[m]

    def __post_init__(self) -> None:
        if self.pair_index.shape != self.link_id.shape:
            raise ValueError("pair_index and link_id must be parallel arrays")

    @property
    def num_incidences(self) -> int:
        return len(self.link_id)

    def used_links(self) -> np.ndarray:
        """Sorted unique link IDs appearing in any route.

        Memoized on the instance: incidences are shared via
        :func:`repro.cache.cached_route_incidence`, and the ``np.unique``
        over millions of incidence rows dominated warm sweep cells.
        Incidence arrays are treated as immutable repo-wide.
        """
        cached = getattr(self, "_used_links", None)
        if cached is None:
            cached = np.unique(self.link_id)
            object.__setattr__(self, "_used_links", cached)
        return cached

    def link_loads(self, pair_weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Aggregate a per-pair weight (bytes, packets, ...) onto links.

        Returns ``(link_ids, loads)`` with link_ids sorted unique.
        """
        cached = getattr(self, "_link_inverse", None)
        if cached is None:
            cached = np.unique(self.link_id, return_inverse=True)
            object.__setattr__(self, "_used_links", cached[0])
            object.__setattr__(self, "_link_inverse", cached)
        ids, inverse = cached
        # bincount beats np.add.at by ~10x at these shapes (see
        # benchmarks/test_perf_sim.py) and accumulates in the same input
        # order, so the float sums are bit-identical.
        weights = np.asarray(pair_weights, dtype=np.float64)[self.pair_index]
        loads = np.bincount(inverse, weights=weights, minlength=len(ids))
        return ids, loads


class Topology(abc.ABC):
    """Static network model with deterministic shortest-path routing."""

    #: Short identifier ("torus3d", "fattree", "dragonfly").
    kind: str = "topology"

    @property
    @abc.abstractmethod
    def num_nodes(self) -> int:
        """Number of compute-node attachment points."""

    @property
    @abc.abstractmethod
    def diameter(self) -> int:
        """Maximum hop count between any two distinct nodes."""

    @abc.abstractmethod
    def hops_array(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Hop count of the shortest route for each node pair (vectorized)."""

    @abc.abstractmethod
    def route_incidence(self, src: np.ndarray, dst: np.ndarray) -> RouteIncidence:
        """Every link on every pair's deterministic route."""

    @abc.abstractmethod
    def nominal_links(self, used_nodes: int) -> float:
        """Link count the paper's utilization formula charges for ``used_nodes``.

        Paper §4.2.3: fat tree — ``nodes * stages`` with only half the links
        for the last stage; torus — three links per node; dragonfly — the
        per-router links (p node ports + a−1 local + h global) divided by p
        nodes, i.e. 3.5–3.8 links/node for the standard configurations.
        """

    @abc.abstractmethod
    def describe_link(self, link_id: int) -> str:
        """Human-readable description of a link ID (for debugging/reports)."""

    # -- conveniences (shared implementations) --------------------------------

    def fingerprint(self) -> tuple | None:
        """Structural identity for content-keyed caching.

        Two instances with equal fingerprints must produce identical routes
        for identical queries.  Returns ``None`` (bypass caching, see
        :func:`repro.cache.cached_route_incidence`) unless overridden.
        """
        return None

    def walk_hops_lower_bound(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """A true lower bound on the link count of *any* valid walk per pair.

        For most topologies this is exactly :meth:`hops_array`.  It is kept
        as a separate method because the two are not the same thing:
        ``hops_array`` is the length of the topology's *deterministic
        minimal route*, which non-minimal policies (Valiant, UGAL) may
        legitimately undercut when the route graph offers a shorter walk
        the minimal scheme cannot take (see the dragonfly override).
        Validation code must bound routes with this method, never with
        ``hops_array`` directly.
        """
        return self.hops_array(src, dst)

    def hops(self, src: int, dst: int) -> int:
        """Scalar hop count."""
        return int(
            self.hops_array(
                np.array([src], dtype=np.int64), np.array([dst], dtype=np.int64)
            )[0]
        )

    def route_links(self, src: int, dst: int) -> list[int]:
        """Link IDs of one route, in traversal order where meaningful."""
        inc = self.route_incidence(
            np.array([src], dtype=np.int64), np.array([dst], dtype=np.int64)
        )
        return [int(x) for x in inc.link_id]

    def _check_nodes(self, src: np.ndarray, dst: np.ndarray) -> None:
        for arr, label in ((src, "src"), (dst, "dst")):
            if arr.size and (arr.min() < 0 or arr.max() >= self.num_nodes):
                raise ValueError(
                    f"{label} node IDs out of range for {self.num_nodes}-node "
                    f"{self.kind}"
                )

    def average_hops_uniform(self) -> float:
        """Mean hop count over all ordered distinct node pairs.

        A topology-intrinsic figure of merit (uniform-traffic average
        distance), useful for cross-topology comparisons and tests.
        """
        n = self.num_nodes
        # Evaluate in row blocks to bound memory at O(n) per block.
        total = 0.0
        idx = np.arange(n, dtype=np.int64)
        for s in range(n):
            src = np.full(n, s, dtype=np.int64)
            h = self.hops_array(src, idx)
            total += float(h.sum())
        return total / (n * (n - 1))
