"""Dragonfly topology (paper §2.2.2, Kim et al. [5]).

A dragonfly is parameterized by ``(a, h, p)``: each group has ``a`` routers,
every router connects ``p`` nodes and ``h`` global links; groups are
all-to-all connected through the global links.  The balanced recommendation
``a = 2h = 2p`` (used for all of the paper's configurations) gives
``g = a*h + 1`` groups — exactly one global link per group pair — and
``N = g*a*p`` nodes.

Global links follow the **palm-tree** pattern: global port ``l`` of group
``G`` (ports numbered ``0 .. a*h-1``, router ``l // h`` owns port ``l``)
connects to group ``(G + l + 1) mod g``; the opposite end is port
``a*h - 1 - l`` of the target group.  This assignment is self-consistent and
spreads the links evenly over routers.

Routing is minimal: node → source router → (local hop to the gateway router
owning the right global port, if needed) → global link → (local hop to the
destination router, if needed) → node.  Hop counts therefore span 2 (same
router) to 5 (cross-group with two local detours), matching the paper.
Local links within a group form a complete graph among the ``a`` routers.

The paper notes that "in practice usually adaptive routing is used in
dragonfly networks, which often results in even longer paths" (§7);
:meth:`Dragonfly.valiant_hops` provides the classic static surrogate —
Valiant routing through a random intermediate group — so that remark can be
quantified (see the routing ablation benchmark).  Full *link-level*
non-minimal routing (Valiant and load-adaptive UGAL route incidences, not
just hop counts) lives in :mod:`repro.routing`; its Valiant engine draws
intermediate groups through :meth:`Dragonfly.valiant_intermediate_groups`,
the same sampler ``valiant_hops`` uses, so both agree seed for seed.
"""

from __future__ import annotations

import numpy as np

from .base import RouteIncidence, Topology

__all__ = ["Dragonfly"]


class Dragonfly(Topology):
    """Dragonfly with palm-tree global links and minimal routing."""

    kind = "dragonfly"

    def __init__(self, a: int, h: int, p: int) -> None:
        if a <= 0 or h <= 0 or p <= 0:
            raise ValueError(f"a, h, p must be positive, got ({a},{h},{p})")
        self.a = a
        self.h = h
        self.p = p
        self.num_groups = a * h + 1
        self._num_nodes = self.num_groups * a * p

    def __repr__(self) -> str:
        return f"Dragonfly(a={self.a}, h={self.h}, p={self.p})"

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def diameter(self) -> int:
        # node + local + global + local + node; degenerate with a == 1.
        return 5 if self.a > 1 else 3

    def fingerprint(self) -> tuple:
        return ("dragonfly", self.a, self.h, self.p)

    @property
    def is_balanced(self) -> bool:
        """True for the recommended a = 2h = 2p configuration."""
        return self.a == 2 * self.h and self.a == 2 * self.p

    # -- structure helpers -------------------------------------------------------

    def group_of(self, nodes: np.ndarray) -> np.ndarray:
        return np.asarray(nodes, dtype=np.int64) // (self.a * self.p)

    def router_of(self, nodes: np.ndarray) -> np.ndarray:
        """Router index *within the group* of each node."""
        return (np.asarray(nodes, dtype=np.int64) // self.p) % self.a

    def gateway_routers(
        self, src_group: np.ndarray, dst_group: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Routers holding the two ends of the global link between group pairs.

        Returns ``(router_in_src_group, router_in_dst_group)`` (in-group
        indices) under the palm-tree assignment.  Groups must differ.
        """
        g = self.num_groups
        port = (dst_group - src_group - 1) % g  # 0 .. a*h - 1
        back_port = self.a * self.h - 1 - port
        return port // self.h, back_port // self.h

    # -- hops ---------------------------------------------------------------------

    def hops_array(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        self._check_nodes(src, dst)

        hops = np.zeros(len(src), dtype=np.int64)
        differ = src != dst
        gs = self.group_of(src)
        gd = self.group_of(dst)
        rs = self.router_of(src)
        rd = self.router_of(dst)

        same_group = differ & (gs == gd)
        # same router: node + node = 2; different router: + local = 3
        hops[same_group] = np.where(rs[same_group] == rd[same_group], 2, 3)

        cross = differ & (gs != gd)
        if cross.any():
            gw_src, gw_dst = self.gateway_routers(gs[cross], gd[cross])
            extra = (rs[cross] != gw_src).astype(np.int64) + (
                rd[cross] != gw_dst
            ).astype(np.int64)
            hops[cross] = 3 + extra  # node + global + node (+ local detours)
        return hops

    def walk_hops_lower_bound(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """True walk lower bound: ``min(hops_array, 4)`` for cross-group pairs.

        On a dragonfly ``hops_array`` is the *direct minimal route* length —
        forced through the single global link of the group pair, plus up to
        two local detours — and that is **not** a graph-distance lower
        bound.  A walk crossing two global links costs at least
        ``node + global + global + node = 4`` hops, and when the gateway
        routers of an intermediate group happen to align with the endpoint
        routers, exactly 4 is achievable while the direct route needs 5.
        Valiant draws such routes in practice.  Any cross-group walk uses
        either the one direct global link (>= ``hops_array`` hops) or at
        least two global links (>= 4 hops), so the elementwise minimum is a
        tight true bound.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        bound = self.hops_array(src, dst)
        cross = (src != dst) & (self.group_of(src) != self.group_of(dst))
        bound[cross] = np.minimum(bound[cross], 4)
        return bound

    # -- links ----------------------------------------------------------------------

    @property
    def _local_base(self) -> int:
        return self._num_nodes  # node link ids occupy [0, N)

    @property
    def _links_per_group(self) -> int:
        return self.a * (self.a - 1) // 2

    @property
    def _global_base(self) -> int:
        return self._num_nodes + self.num_groups * self._links_per_group

    @property
    def num_links(self) -> int:
        """Distinct physical links: node + local + global (each counted once)."""
        global_links = self.num_groups * (self.num_groups - 1) // 2
        return self._global_base + global_links

    def _local_link_id(
        self, group: np.ndarray, r1: np.ndarray, r2: np.ndarray
    ) -> np.ndarray:
        """Undirected local link between two in-group routers (r1 != r2)."""
        lo = np.minimum(r1, r2)
        hi = np.maximum(r1, r2)
        # triangular index of the unordered pair (lo, hi) with lo < hi < a
        tri = lo * (2 * self.a - lo - 1) // 2 + (hi - lo - 1)
        return self._local_base + group * self._links_per_group + tri

    def _global_link_id(self, g1: np.ndarray, g2: np.ndarray) -> np.ndarray:
        """Undirected global link between two groups (exactly one per pair)."""
        lo = np.minimum(g1, g2)
        hi = np.maximum(g1, g2)
        g = self.num_groups
        tri = lo * (2 * g - lo - 1) // 2 + (hi - lo - 1)
        return self._global_base + tri

    def route_incidence(self, src: np.ndarray, dst: np.ndarray) -> RouteIncidence:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        self._check_nodes(src, dst)
        pair_ids = np.arange(len(src), dtype=np.int64)

        gs = self.group_of(src)
        gd = self.group_of(dst)
        rs = self.router_of(src)
        rd = self.router_of(dst)
        differ = src != dst

        pair_chunks: list[np.ndarray] = []
        link_chunks: list[np.ndarray] = []

        def emit(mask: np.ndarray, links: np.ndarray) -> None:
            pair_chunks.append(pair_ids[mask])
            link_chunks.append(links)

        if differ.any():
            emit(differ, src[differ])  # injection node link
            emit(differ, dst[differ])  # ejection node link

        same_group_local = differ & (gs == gd) & (rs != rd)
        if same_group_local.any():
            emit(
                same_group_local,
                self._local_link_id(
                    gs[same_group_local], rs[same_group_local], rd[same_group_local]
                ),
            )

        cross = differ & (gs != gd)
        if cross.any():
            gw_src, gw_dst = self.gateway_routers(gs[cross], gd[cross])
            emit(cross, self._global_link_id(gs[cross], gd[cross]))
            detour_src = cross.copy()
            detour_src[cross] = rs[cross] != gw_src
            if detour_src.any():
                sub = rs[cross] != gw_src
                emit(
                    detour_src,
                    self._local_link_id(gs[cross][sub], rs[cross][sub], gw_src[sub]),
                )
            detour_dst = cross.copy()
            detour_dst[cross] = rd[cross] != gw_dst
            if detour_dst.any():
                sub = rd[cross] != gw_dst
                emit(
                    detour_dst,
                    self._local_link_id(gd[cross][sub], rd[cross][sub], gw_dst[sub]),
                )

        if pair_chunks:
            return RouteIncidence(
                np.concatenate(pair_chunks), np.concatenate(link_chunks)
            )
        empty = np.zeros(0, dtype=np.int64)
        return RouteIncidence(empty, empty.copy())

    def is_global_link(self, link_ids: np.ndarray) -> np.ndarray:
        """Boolean mask: which link IDs are inter-group (global) links."""
        return np.asarray(link_ids, dtype=np.int64) >= self._global_base

    def crosses_groups(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Boolean per pair: does the minimal route use a global link?"""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        return self.group_of(src) != self.group_of(dst)

    def valiant_intermediate_groups(
        self,
        src_groups: np.ndarray,
        dst_groups: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Uniformly random intermediate group per pair, excluding endpoints.

        One bulk draw plus rejection resampling of clashes, tested against
        *both* endpoint groups each round — resampling against one endpoint
        at a time can reintroduce a clash with the other and leak a
        degenerate intermediate.  Requires at least three groups (otherwise
        no valid intermediate exists for a cross-group pair).  This is the
        *shared sampler*: both :meth:`valiant_hops` and the link-level
        Valiant/UGAL engines in :mod:`repro.routing` consume it, so for one
        rng state they pick identical intermediate groups — the basis of
        the oracle test tying the two together.
        """
        g = self.num_groups
        if g < 3:
            raise ValueError(
                f"Valiant needs >= 3 groups for an intermediate, have {g}"
            )
        gi = rng.integers(0, g, size=len(src_groups))
        clash = (gi == src_groups) | (gi == dst_groups)
        while clash.any():
            gi[clash] = rng.integers(0, g, size=int(clash.sum()))
            clash = (gi == src_groups) | (gi == dst_groups)
        return gi

    def valiant_hops(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Hop counts under Valiant (randomized non-minimal) routing.

        Cross-group packets first route minimally to a router in a uniformly
        random *intermediate* group, then minimally to the destination —
        the classic congestion-avoidance scheme adaptive (UGAL) routing
        degenerates to under load.  Intra-group traffic stays minimal.

        The intermediate leg ends at the router where the packet *arrives*
        in the intermediate group (no extra node hops there), so the path is
        src-node → ... → global → (local) → global → ... → dst-node.

        This is the hops-only *oracle* for the link-level Valiant engine in
        :mod:`repro.routing`: ``get_policy("valiant", seed).hops_array(...)``
        reproduces these counts exactly for the same rng seed, because both
        draw intermediate groups via :meth:`valiant_intermediate_groups`.
        Use the routing policy when actual link routes (loads, utilization,
        simulation) are needed; this surrogate stays as the independent
        cross-check.
        """
        if rng is None:
            rng = np.random.default_rng(0)
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        self._check_nodes(src, dst)

        hops = self.hops_array(src, dst)  # minimal baseline
        gs = self.group_of(src)
        gd = self.group_of(dst)
        cross = (src != dst) & (gs != gd)
        if not cross.any():
            return hops

        # random intermediate group, different from both endpoints
        gi = self.valiant_intermediate_groups(gs[cross], gd[cross], rng)

        rs = self.router_of(src)[cross]
        rd = self.router_of(dst)[cross]
        # leg 1: source router -> gateway to intermediate group -> arrive at
        # the router holding the back-port in the intermediate group
        gw1_src, gw1_mid = self.gateway_routers(gs[cross], gi)
        leg1 = 1 + (rs != gw1_src).astype(np.int64) + 1  # node + detour + global
        # leg 2: from the arrival router, reach the gateway to the
        # destination group, cross, detour to the destination router, eject
        gw2_mid, gw2_dst = self.gateway_routers(gi, gd[cross])
        leg2 = (
            (gw1_mid != gw2_mid).astype(np.int64)  # local move inside intermediate
            + 1  # second global link
            + (rd != gw2_dst).astype(np.int64)
            + 1  # ejection
        )
        valiant = leg1 + leg2
        out = hops.copy()
        out[cross] = valiant
        return out

    def nominal_links(self, used_nodes: int) -> float:
        """Per-router link accounting scaled to used nodes (paper §4.2.3).

        Each router owns ``p`` node links, ``a - 1`` local links and ``h``
        global links; per node that is ``(p + a - 1 + h) / p`` — between 3.5
        and 3.8 for the paper's standard configurations.
        """
        if used_nodes < 0:
            raise ValueError("used_nodes must be >= 0")
        used = min(used_nodes, self._num_nodes)
        return used * (self.p + self.a - 1 + self.h) / self.p

    def describe_link(self, link_id: int) -> str:
        link_id = int(link_id)
        if link_id < self._local_base:
            return f"dragonfly node link at node {link_id}"
        if link_id < self._global_base:
            rel = link_id - self._local_base
            group, tri = divmod(rel, self._links_per_group)
            return f"dragonfly local link group {group} pair-index {tri}"
        tri = link_id - self._global_base
        return f"dragonfly global link pair-index {tri}"
