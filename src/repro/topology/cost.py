"""Topology hardware-cost accounting.

The paper motivates the dragonfly as "minimiz[ing] the usage of costly
optical links" (§2.2.2) and compares topologies by links-per-node (§7).
This module makes those cost arguments explicit for the three Table-2
families:

- **switch count** (48-port switch equivalents for the fat tree; integrated
  NIC-switches for the torus; group routers for the dragonfly),
- **electrical vs optical link counts** — cables within a rack/group are
  electrical, long-reach cables optical.  Convention: torus links and
  fat-tree node/leaf links are electrical; fat-tree upper stages and
  dragonfly global links are optical; dragonfly node/local links are
  electrical,
- a scalar **cost estimate** from per-component price weights so
  configurations can be compared per attached node.

The absolute prices are illustrative (defaults: switch 1.0, electrical link
0.1, optical link 0.4 — optical ~4x electrical, the ratio the dragonfly
design targets); comparisons across topologies at a fixed scale are the
point.
"""

from __future__ import annotations

from dataclasses import dataclass

from .dragonfly import Dragonfly
from .fattree import FatTree
from .mesh import Mesh3D
from .torus import Torus3D

__all__ = ["CostModel", "TopologyCost", "topology_cost"]


@dataclass(frozen=True)
class TopologyCost:
    """Component counts and cost of one topology instance."""

    kind: str
    num_nodes: int
    switches: int
    electrical_links: int
    optical_links: int
    cost: float

    @property
    def total_links(self) -> int:
        return self.electrical_links + self.optical_links

    @property
    def optical_share(self) -> float:
        return self.optical_links / self.total_links if self.total_links else 0.0

    @property
    def cost_per_node(self) -> float:
        return self.cost / self.num_nodes if self.num_nodes else 0.0


@dataclass(frozen=True)
class CostModel:
    """Per-component price weights (arbitrary units)."""

    switch_cost: float = 1.0
    electrical_link_cost: float = 0.1
    optical_link_cost: float = 0.4

    def __post_init__(self) -> None:
        if min(self.switch_cost, self.electrical_link_cost, self.optical_link_cost) < 0:
            raise ValueError("costs must be >= 0")

    def price(self, switches: int, electrical: int, optical: int) -> float:
        return (
            switches * self.switch_cost
            + electrical * self.electrical_link_cost
            + optical * self.optical_link_cost
        )


def topology_cost(
    topology: Torus3D | FatTree | Dragonfly,
    model: CostModel | None = None,
) -> TopologyCost:
    """Component counts and scalar cost of a topology instance."""
    model = model or CostModel()

    if isinstance(topology, (Mesh3D, Torus3D)):
        # every node integrates a 6-port switch; all cables electrical
        switches = topology.num_nodes
        electrical = topology.num_links
        optical = 0
    elif isinstance(topology, FatTree):
        k = topology.k
        n = topology.num_nodes
        if topology.stages == 1:
            switches = 1
            electrical = n  # node cables only
            optical = 0
        else:
            leaves = topology.num_leaves
            if topology.stages == 2:
                switches = leaves + leaves // 2  # top stage: half the switches
                electrical = n  # node-to-leaf cables
                optical = leaves * k  # leaf-to-top, long reach
            else:
                pods = topology.num_pods
                mids = pods * k
                tops = (pods * k) // 2
                switches = leaves + mids + tops
                electrical = n + leaves * k  # in-pod cabling
                optical = pods * k * k  # pod-to-core
    elif isinstance(topology, Dragonfly):
        g = topology.num_groups
        switches = g * topology.a
        # node + local cables are short (electrical); globals are optical
        electrical = topology.num_nodes + g * (
            topology.a * (topology.a - 1) // 2
        )
        optical = g * (g - 1) // 2
    else:
        raise TypeError(f"no cost model for topology {type(topology).__name__}")

    return TopologyCost(
        kind=topology.kind,
        num_nodes=topology.num_nodes,
        switches=switches,
        electrical_links=electrical,
        optical_links=optical,
        cost=model.price(switches, electrical, optical),
    )
