"""Topology configurations at scale (paper Table 2).

For every problem size the paper fixes one configuration per topology:

- **torus** — the smallest 3D box fitting the ranks, with near-balanced,
  non-increasing dimensions (Table 2 column 1);
- **fat tree** — radix 48 with the smallest sufficient stage count
  (48 / 576 / 13824 nodes);
- **dragonfly** — the smallest standard ``a = 2h = 2p`` configuration
  (72 / 342 / 1056 / 2550 nodes).

The exact Table-2 rows are pinned in :data:`TABLE2`; for sizes the paper did
not use, the same selection rules extend naturally (see
:func:`torus_dims_for`, :func:`fat_tree_stages_for`, :func:`dragonfly_params_for`).
"""

from __future__ import annotations

from dataclasses import dataclass

from .dragonfly import Dragonfly
from .fattree import FatTree
from .torus import Torus3D

__all__ = [
    "TopologyConfig",
    "TABLE2",
    "TABLE2_SIZES",
    "torus_dims_for",
    "fat_tree_stages_for",
    "dragonfly_params_for",
    "config_for",
    "build_all",
]


@dataclass(frozen=True)
class TopologyConfig:
    """One Table-2 row: the three topology configurations for a size."""

    size: int
    torus_dims: tuple[int, int, int]
    fat_tree_stages: int
    dragonfly_ahp: tuple[int, int, int]

    @property
    def torus_nodes(self) -> int:
        x, y, z = self.torus_dims
        return x * y * z

    @property
    def fat_tree_nodes(self) -> int:
        return FatTree(48, self.fat_tree_stages).num_nodes

    @property
    def dragonfly_nodes(self) -> int:
        a, h, p = self.dragonfly_ahp
        return (a * h + 1) * a * p

    def build_torus(self) -> Torus3D:
        return Torus3D(self.torus_dims)

    def build_fat_tree(self) -> FatTree:
        return FatTree(48, self.fat_tree_stages)

    def build_dragonfly(self) -> Dragonfly:
        return Dragonfly(*self.dragonfly_ahp)


#: The paper's Table 2, keyed by problem size.
TABLE2: dict[int, TopologyConfig] = {
    size: TopologyConfig(size, torus, stages, ahp)
    for size, torus, stages, ahp in [
        (8, (2, 2, 2), 1, (4, 2, 2)),
        (9, (3, 2, 2), 1, (4, 2, 2)),
        (10, (3, 2, 2), 1, (4, 2, 2)),
        (18, (3, 3, 2), 1, (4, 2, 2)),
        (27, (3, 3, 3), 1, (4, 2, 2)),
        (64, (4, 4, 4), 2, (4, 2, 2)),
        (100, (5, 5, 4), 2, (6, 3, 3)),
        (125, (5, 5, 5), 2, (6, 3, 3)),
        (144, (6, 6, 4), 2, (6, 3, 3)),
        (168, (7, 6, 4), 2, (6, 3, 3)),
        (216, (6, 6, 6), 2, (6, 3, 3)),
        (256, (8, 8, 4), 2, (6, 3, 3)),
        (512, (8, 8, 8), 2, (8, 4, 4)),
        (1000, (10, 10, 10), 3, (8, 4, 4)),
        (1024, (16, 8, 8), 3, (8, 4, 4)),
        (1152, (12, 12, 8), 3, (10, 5, 5)),
        (1728, (12, 12, 12), 3, (10, 5, 5)),
    ]
}

#: Problem sizes of Table 2, ascending.
TABLE2_SIZES: tuple[int, ...] = tuple(sorted(TABLE2))

#: Standard balanced dragonflies used by the paper, smallest first.
_STANDARD_DRAGONFLIES: tuple[tuple[int, int, int], ...] = (
    (4, 2, 2),
    (6, 3, 3),
    (8, 4, 4),
    (10, 5, 5),
    (12, 6, 6),
    (14, 7, 7),
    (16, 8, 8),
)


def torus_dims_for(num_ranks: int) -> tuple[int, int, int]:
    """Smallest near-balanced 3D torus box holding ``num_ranks`` nodes.

    Reproduces Table 2 exactly for the paper's sizes: among all boxes
    ``x >= y >= z`` with ``x*y*z >= num_ranks``, pick the one with the fewest
    nodes, breaking ties by the smallest imbalance ``x - z``, then by
    lexicographic order.  The search space is bounded by the cube root.
    """
    if num_ranks <= 0:
        raise ValueError("num_ranks must be positive")
    if num_ranks in TABLE2:
        return TABLE2[num_ranks].torus_dims
    best: tuple[int, int, tuple[int, int, int]] | None = None
    # z <= y <= x and z**3 <= volume; a generous bound keeps the scan tiny.
    limit = int(round(num_ranks ** (1 / 3))) + 2
    for z in range(1, limit + 1):
        y = z
        while y * z * z <= max(num_ranks * 4, 8):
            x = -(-num_ranks // (y * z))  # smallest x with x*y*z >= n
            if x < y:
                y += 1
                continue
            volume = x * y * z
            cand = (volume, x - z, (x, y, z))
            if best is None or cand < best:
                best = cand
            y += 1
    assert best is not None
    return best[2]


def fat_tree_stages_for(num_ranks: int, radix: int = 48) -> int:
    """Smallest stage count whose fat tree holds ``num_ranks`` nodes."""
    if num_ranks <= 0:
        raise ValueError("num_ranks must be positive")
    for stages in (1, 2, 3):
        if FatTree(radix, stages).num_nodes >= num_ranks:
            return stages
    raise ValueError(
        f"{num_ranks} ranks exceed a 3-stage radix-{radix} fat tree "
        f"({FatTree(radix, 3).num_nodes} nodes)"
    )


def dragonfly_params_for(num_ranks: int) -> tuple[int, int, int]:
    """Smallest standard (a = 2h = 2p) dragonfly holding ``num_ranks`` nodes."""
    if num_ranks <= 0:
        raise ValueError("num_ranks must be positive")
    if num_ranks in TABLE2:
        return TABLE2[num_ranks].dragonfly_ahp
    for a, h, p in _STANDARD_DRAGONFLIES:
        if (a * h + 1) * a * p >= num_ranks:
            return (a, h, p)
    raise ValueError(f"{num_ranks} ranks exceed the largest standard dragonfly")


def config_for(num_ranks: int) -> TopologyConfig:
    """The Table-2 row for a size, extended by the same rules off-table."""
    if num_ranks in TABLE2:
        return TABLE2[num_ranks]
    return TopologyConfig(
        size=num_ranks,
        torus_dims=torus_dims_for(num_ranks),
        fat_tree_stages=fat_tree_stages_for(num_ranks),
        dragonfly_ahp=dragonfly_params_for(num_ranks),
    )


def build_all(num_ranks: int) -> dict[str, Torus3D | FatTree | Dragonfly]:
    """Instantiate all three configured topologies for a problem size."""
    cfg = config_for(num_ranks)
    return {
        "torus3d": cfg.build_torus(),
        "fattree": cfg.build_fat_tree(),
        "dragonfly": cfg.build_dragonfly(),
    }
