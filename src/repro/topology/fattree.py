"""Fat tree topology (paper §2.2.2, Leiserson [10]).

A radix-``r`` fat tree built from ``r``-port switches with ``st`` stages.
With the paper's radix 48:

- 1 stage: a single switch, up to 48 nodes;
- 2 stages: 24 leaf switches x 24 nodes = 576 nodes;
- 3 stages: 24 pods x 576 = 13824 nodes.

Every non-top stage provides constant bisection bandwidth by splitting the
radix half down / half up (k = r/2 = 24); the top stage uses half the
switches.  Routing is deterministic up/down through the nearest common
ancestor stage, with destination-based (d-mod-k) upward lane selection — the
standard deterministic shortest-path scheme for fat trees.

Hop convention: node↔switch traversals count, so two nodes on the same leaf
switch are 2 hops apart, same pod 4, cross-pod 6.

Link identifiers (folded-Clos view — one bidirectional link per up/down pair):

- level 0 (node↔leaf):   one per node;
- level 1 (leaf↔mid):    ``(leaf, lane1)``, ``k`` per leaf — N links total;
- level 2 (mid↔top):     ``(pod, lane1, lane2)`` — N links total.

The paper's utilization accounting charges ``nodes * stages`` links with
only half for the last stage, i.e. ``nodes * (stages - 0.5)``; that is what
:meth:`nominal_links` returns (scaled to the used nodes).
"""

from __future__ import annotations

import numpy as np

from .base import RouteIncidence, Topology

__all__ = ["FatTree"]


class FatTree(Topology):
    """A k-ary fat tree with deterministic d-mod-k shortest-path routing."""

    kind = "fattree"

    def __init__(self, radix: int = 48, stages: int = 1) -> None:
        if radix < 2 or radix % 2:
            raise ValueError(f"radix must be even and >= 2, got {radix}")
        if not 1 <= stages <= 3:
            raise ValueError(f"stages must be 1..3, got {stages}")
        self.radix = radix
        self.stages = stages
        self.k = radix // 2
        if stages == 1:
            # A single switch can use its full radix for nodes.
            self._num_nodes = radix
        else:
            self._num_nodes = self.k**stages

    def __repr__(self) -> str:
        return f"FatTree(radix={self.radix}, stages={self.stages})"

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def diameter(self) -> int:
        return 2 * self.stages

    def fingerprint(self) -> tuple:
        return ("fattree", self.radix, self.stages)

    # -- structure helpers ------------------------------------------------------

    def leaf_of(self, nodes: np.ndarray) -> np.ndarray:
        """Leaf-switch index of each node."""
        if self.stages == 1:
            return np.zeros_like(np.asarray(nodes, dtype=np.int64))
        return np.asarray(nodes, dtype=np.int64) // self.k

    def pod_of(self, nodes: np.ndarray) -> np.ndarray:
        """Pod index (stage-2 subtree) of each node."""
        if self.stages < 3:
            return np.zeros_like(np.asarray(nodes, dtype=np.int64))
        return np.asarray(nodes, dtype=np.int64) // (self.k * self.k)

    @property
    def num_leaves(self) -> int:
        return 1 if self.stages == 1 else self._num_nodes // self.k

    @property
    def num_pods(self) -> int:
        return 1 if self.stages < 3 else self._num_nodes // (self.k * self.k)

    def _nca_level(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Stage of the nearest common ancestor: 0 = same node, 1 = same
        leaf, 2 = same pod, 3 = cross-pod."""
        level = np.zeros(len(src), dtype=np.int64)
        differ = src != dst
        level[differ] = 1
        if self.stages >= 2:
            diff_leaf = self.leaf_of(src) != self.leaf_of(dst)
            level[diff_leaf] = 2
        if self.stages >= 3:
            diff_pod = self.pod_of(src) != self.pod_of(dst)
            level[diff_pod] = 3
        return level

    # -- hops ---------------------------------------------------------------------

    def hops_array(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        self._check_nodes(src, dst)
        return 2 * self._nca_level(src, dst)

    # -- links ----------------------------------------------------------------------

    @property
    def _l1_base(self) -> int:
        return self._num_nodes  # level-0 ids occupy [0, N)

    @property
    def _l2_base(self) -> int:
        return self._num_nodes + self.num_leaves * self.k

    @property
    def num_links(self) -> int:
        """Distinct links: node + leaf-uplink + core levels (each once)."""
        if self.stages < 3:
            return self._l2_base
        return self._l2_base + self.num_pods * self.k * self.k

    def route_incidence(self, src: np.ndarray, dst: np.ndarray) -> RouteIncidence:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        # Deterministic shortest-path routing: d-mod-k upward lane selection.
        return self.route_incidence_lanes(
            src, dst, dst % self.k, (dst // self.k) % self.k
        )

    def route_incidence_lanes(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        lane1: np.ndarray,
        lane2: np.ndarray,
    ) -> RouteIncidence:
        """Up/down routes with caller-chosen upward lanes.

        ``lane1``/``lane2`` (parallel to the pair arrays, reduced mod ``k``)
        pick the stage-1 and stage-2 upward lane per pair; every choice is an
        equal-cost shortest path through the folded Clos.  The deterministic
        default (:meth:`route_incidence`) is d-mod-k: ``lane1 = dst % k``,
        ``lane2 = (dst // k) % k``; :mod:`repro.routing` builds the ECMP
        (hash-spread) and explicit d-mod-k policies on this hook.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        self._check_nodes(src, dst)
        lane1 = np.asarray(lane1, dtype=np.int64) % self.k
        lane2 = np.asarray(lane2, dtype=np.int64) % self.k
        level = self._nca_level(src, dst)
        pair_ids = np.arange(len(src), dtype=np.int64)

        pair_chunks: list[np.ndarray] = []
        link_chunks: list[np.ndarray] = []

        def emit(mask: np.ndarray, links: np.ndarray) -> None:
            pair_chunks.append(pair_ids[mask])
            link_chunks.append(links)

        moving = level >= 1
        if moving.any():
            emit(moving, src[moving])  # node -> leaf injection link
            emit(moving, dst[moving])  # leaf -> node ejection link

        if self.stages >= 2:
            up1 = level >= 2
            if up1.any():
                l1 = lane1[up1]
                emit(up1, self._l1_base + self.leaf_of(src[up1]) * self.k + l1)
                emit(up1, self._l1_base + self.leaf_of(dst[up1]) * self.k + l1)

        if self.stages >= 3:
            up2 = level >= 3
            if up2.any():
                l1 = lane1[up2]
                l2 = lane2[up2]
                src_pod = self.pod_of(src[up2])
                dst_pod = self.pod_of(dst[up2])
                emit(
                    up2,
                    self._l2_base + (src_pod * self.k + l1) * self.k + l2,
                )
                emit(
                    up2,
                    self._l2_base + (dst_pod * self.k + l1) * self.k + l2,
                )

        if pair_chunks:
            return RouteIncidence(
                np.concatenate(pair_chunks), np.concatenate(link_chunks)
            )
        empty = np.zeros(0, dtype=np.int64)
        return RouteIncidence(empty, empty.copy())

    def nominal_links(self, used_nodes: int) -> float:
        """``used_nodes * stages`` links, half for the last stage (paper §4.2.3)."""
        if used_nodes < 0:
            raise ValueError("used_nodes must be >= 0")
        used = min(used_nodes, self._num_nodes)
        return used * (self.stages - 0.5)

    def describe_link(self, link_id: int) -> str:
        link_id = int(link_id)
        if link_id < self._l1_base:
            return f"fattree node link at node {link_id}"
        if link_id < self._l2_base:
            rel = link_id - self._l1_base
            leaf, lane = divmod(rel, self.k)
            return f"fattree L1 link leaf {leaf} lane {lane}"
        rel = link_id - self._l2_base
        pod_lane1, lane2 = divmod(rel, self.k)
        pod, lane1 = divmod(pod_lane1, self.k)
        return f"fattree L2 link pod {pod} lanes ({lane1},{lane2})"
