"""3D torus topology (paper §2.2.2).

Nodes are arranged on an ``(X, Y, Z)`` grid with wrap-around links in every
dimension.  The switch is integrated into the NIC (direct topology), so the
hop count between two nodes is the torus Manhattan distance — per dimension
the shorter way around the ring — with no extra injection/ejection hops.

Routing is deterministic **dimension-order** (x, then y, then z), taking the
shorter ring direction per dimension and breaking ties (distance exactly
half the ring) toward increasing coordinates.  Link identifiers: every node
owns its three "positive" links (+x, +y, +z to the neighbouring node), so a
torus has exactly ``3 * num_nodes`` links — the paper's counting.
"""

from __future__ import annotations

import numpy as np

from .base import RouteIncidence, Topology

__all__ = ["Torus3D"]


class Torus3D(Topology):
    """A 3D torus with dimension-order shortest-path routing."""

    kind = "torus3d"

    def __init__(self, dims: tuple[int, int, int]) -> None:
        if len(dims) != 3:
            raise ValueError(f"Torus3D needs exactly three dims, got {dims}")
        if any(d <= 0 for d in dims):
            raise ValueError(f"torus dims must be positive, got {dims}")
        self.dims = tuple(int(d) for d in dims)
        self._num_nodes = dims[0] * dims[1] * dims[2]

    def __repr__(self) -> str:
        return f"Torus3D{self.dims}"

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def diameter(self) -> int:
        return sum(d // 2 for d in self.dims)

    def fingerprint(self) -> tuple:
        return ("torus3d", self.dims)

    # -- coordinates --------------------------------------------------------

    def coordinates(self, nodes: np.ndarray) -> np.ndarray:
        """Row-major (x, y, z) coordinates, shape ``(k, 3)``."""
        nodes = np.asarray(nodes, dtype=np.int64)
        X, Y, Z = self.dims
        out = np.empty((len(nodes), 3), dtype=np.int64)
        out[:, 2] = nodes % Z
        out[:, 1] = (nodes // Z) % Y
        out[:, 0] = nodes // (Y * Z)
        return out

    def node_at(self, x: int, y: int, z: int) -> int:
        X, Y, Z = self.dims
        if not (0 <= x < X and 0 <= y < Y and 0 <= z < Z):
            raise ValueError(f"coordinates ({x},{y},{z}) out of range for {self.dims}")
        return (x * Y + y) * Z + z

    # -- hops -----------------------------------------------------------------

    def _ring_deltas(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Signed per-dimension steps along the shorter ring direction.

        Shape ``(k, 3)``; positive means increasing coordinates.  Ties
        (delta exactly half the ring size) go the positive way.
        """
        cs = self.coordinates(src)
        cd = self.coordinates(dst)
        sizes = np.array(self.dims, dtype=np.int64)
        forward = (cd - cs) % sizes  # steps going +
        backward = forward - sizes  # equivalent negative move
        take_forward = forward <= (-backward)  # tie -> forward
        return np.where(take_forward, forward, backward)

    def hops_array(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        # Per-dimension 1D arithmetic instead of the (k, 3) coordinate
        # layout of _ring_deltas: ~2.7x faster on million-pair queries
        # (see benchmarks/test_micro.py), and hop counts do not need the
        # signed tie-break that routing does.
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        self._check_nodes(src, dst)
        X, Y, Z = self.dims
        total = np.zeros(len(src), dtype=np.int64)
        for size, s_c, d_c in (
            (Z, src % Z, dst % Z),
            (Y, (src // Z) % Y, (dst // Z) % Y),
            (X, src // (Y * Z), dst // (Y * Z)),
        ):
            forward = (d_c - s_c) % size
            total += np.minimum(forward, size - forward)
        return total

    # -- links ----------------------------------------------------------------

    @property
    def num_links(self) -> int:
        """Total undirected links: three per node (+x, +y, +z)."""
        return 3 * self._num_nodes

    def _link_id(self, owner_nodes: np.ndarray, dim: int) -> np.ndarray:
        """Undirected link owned by ``owner`` in the positive ``dim`` direction."""
        return owner_nodes * 3 + dim

    def route_incidence(self, src: np.ndarray, dst: np.ndarray) -> RouteIncidence:
        return self.route_incidence_ordered(src, dst, (0, 1, 2))

    def route_incidence_ordered(
        self, src: np.ndarray, dst: np.ndarray, order: tuple[int, int, int]
    ) -> RouteIncidence:
        """Shortest routes walked in an explicit dimension order.

        ``order`` is a permutation of ``(0, 1, 2)``; the default
        :meth:`route_incidence` uses ``(0, 1, 2)`` (x, then y, then z).  All
        six orders are equal-cost shortest paths — :mod:`repro.routing`'s
        ECMP policy hash-spreads pairs over them.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        self._check_nodes(src, dst)
        if sorted(order) != [0, 1, 2]:
            raise ValueError(f"order must permute (0, 1, 2), got {order}")
        deltas = self._ring_deltas(src, dst)  # (k, 3)
        coords = self.coordinates(src)  # walked in place per dimension
        sizes = np.array(self.dims, dtype=np.int64)

        pair_chunks: list[np.ndarray] = []
        link_chunks: list[np.ndarray] = []
        pair_ids = np.arange(len(src), dtype=np.int64)

        for dim in order:
            d = deltas[:, dim]
            steps = np.abs(d)
            direction = np.sign(d)
            max_steps = int(steps.max()) if len(steps) else 0
            for step in range(max_steps):
                active = steps > step
                if not active.any():
                    break
                cur = coords[active].copy()
                dirs = direction[active]
                # The undirected link between coordinate c and c+1 (mod size)
                # in `dim` is owned by the lower endpoint along the ring.
                owner = cur.copy()
                backward = dirs < 0
                owner[backward, dim] = (owner[backward, dim] - 1) % sizes[dim]
                owner_nodes = (owner[:, 0] * self.dims[1] + owner[:, 1]) * self.dims[
                    2
                ] + owner[:, 2]
                pair_chunks.append(pair_ids[active])
                link_chunks.append(self._link_id(owner_nodes, dim))
                # advance the walk
                coords[active, dim] = (coords[active, dim] + dirs) % sizes[dim]

        if pair_chunks:
            return RouteIncidence(
                np.concatenate(pair_chunks), np.concatenate(link_chunks)
            )
        empty = np.zeros(0, dtype=np.int64)
        return RouteIncidence(empty, empty.copy())

    def snake_order(self) -> np.ndarray:
        """Boustrophedon traversal of all nodes: consecutive entries are
        grid-adjacent (1 hop apart, no wraparound needed).

        Used by locality-aware mappings: placing a 1D rank ordering along
        this curve turns 1D adjacency into physical adjacency, which plain
        row-major numbering only provides in the fastest dimension.
        """
        X, Y, Z = self.dims
        order = np.empty(self._num_nodes, dtype=np.int64)
        i = 0
        for x in range(X):
            ys = range(Y) if x % 2 == 0 else range(Y - 1, -1, -1)
            for yi, y in enumerate(ys):
                forward = (x * Y + yi) % 2 == 0
                zs = range(Z) if forward else range(Z - 1, -1, -1)
                for z in zs:
                    order[i] = (x * Y + y) * Z + z
                    i += 1
        return order

    def nominal_links(self, used_nodes: int) -> float:
        """Three links per used node (one per dimension, paper §4.2.3)."""
        if used_nodes < 0:
            raise ValueError("used_nodes must be >= 0")
        return 3.0 * min(used_nodes, self._num_nodes)

    def describe_link(self, link_id: int) -> str:
        node, dim = divmod(int(link_id), 3)
        x, y, z = self.coordinates(np.array([node]))[0]
        return f"torus link +{'xyz'[dim]} at ({x},{y},{z})"
