"""3D mesh — the torus without wrap-around links (ablation topology).

The paper attributes part of the torus's quality to the wrap-around links
that halve each ring's diameter (§2.2.2).  The mesh is the natural ablation
target: identical structure minus the wrap links, so any difference in hop
counts isolates the wrap-around contribution.

Routing stays dimension-order; without rings there is exactly one minimal
direction per dimension.  Links: each node owns its +x/+y/+z link when the
neighbour exists, so a mesh has ``3XYZ - (YZ + XZ + XY)`` links.
"""

from __future__ import annotations

import numpy as np

from .torus import Torus3D

__all__ = ["Mesh3D"]


class Mesh3D(Torus3D):
    """A 3D mesh: the torus topology with wrap-around removed."""

    kind = "mesh3d"

    def __repr__(self) -> str:
        return f"Mesh3D{self.dims}"

    @property
    def diameter(self) -> int:
        return sum(d - 1 for d in self.dims)

    def _ring_deltas(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Signed per-dimension steps — no wrap, always the direct path."""
        return self.coordinates(dst) - self.coordinates(src)

    def hops_array(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        self._check_nodes(src, dst)
        X, Y, Z = self.dims
        total = np.abs(src % Z - dst % Z)
        total += np.abs((src // Z) % Y - (dst // Z) % Y)
        total += np.abs(src // (Y * Z) - dst // (Y * Z))
        return total

    @property
    def num_links(self) -> int:
        X, Y, Z = self.dims
        return (X - 1) * Y * Z + X * (Y - 1) * Z + X * Y * (Z - 1)

    def nominal_links(self, used_nodes: int) -> float:
        """Scale the true mesh link count to the used-node share."""
        if used_nodes < 0:
            raise ValueError("used_nodes must be >= 0")
        share = min(used_nodes, self._num_nodes) / self._num_nodes
        return self.num_links * share

    def describe_link(self, link_id: int) -> str:
        node, dim = divmod(int(link_id), 3)
        x, y, z = self.coordinates(np.array([node]))[0]
        return f"mesh link +{'xyz'[dim]} at ({x},{y},{z})"
