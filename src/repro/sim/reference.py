"""Reference implementation: the per-event heap loop.

This is the original dynamic simulator — one ``heapq`` event per packet-hop,
processed strictly in ``(time, sequence)`` order.  It is kept as the
semantic ground truth for the batched kernel in :mod:`repro.sim.engine`:
``tests/test_sim_equivalence.py`` asserts seed-for-seed *bit-identical*
results between the two across topologies and load regimes.

The loop defines the simulation semantics precisely:

- every link is an output-queued FIFO server with constant service time
  ``payload / bandwidth``;
- a packet arriving at time ``t`` starts service at ``max(t, link_free)``,
  holds the link for one service time, and arrives at its next hop one
  ``hop_latency`` later;
- queueing delay is the accumulated ``begin - t`` over a packet's hops.

Use :func:`simulate_network_reference` directly only for validation and
benchmarking — it is orders of magnitude slower than the batched engine on
dense workloads.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..comm.matrix import CommMatrix
from ..core.packets import MAX_PAYLOAD_BYTES
from ..mapping.base import Mapping
from ..model.engine import BANDWIDTH_BYTES_PER_S
from ..topology.base import Topology
from .common import (
    SimSetup,
    SimulationResult,
    assemble_result,
    attach_telemetry,
    empty_result,
    prepare_simulation,
)

__all__ = ["simulate_network_reference", "run_reference"]


def run_reference(setup: SimSetup, collector=None) -> SimulationResult:
    """Run the per-event loop over prepared simulation state.

    ``collector`` is an optional :class:`repro.telemetry.TelemetryCollector`;
    when enabled it receives every service this loop performs (buffered as
    plain lists, handed over as arrays once at the end) and its report is
    attached to the result.
    """
    total_packets = setup.total_packets
    inject_pair = setup.inject_pair
    route_starts = setup.route_starts
    route_lens = setup.route_lens
    route_links = setup.route_links
    service = setup.service
    hop_latency = setup.hop_latency

    # Event loop: (time, seq, packet_index, hop_index).
    events: list[tuple[float, int, int, int]] = [
        (float(t), i, i, 0) for i, t in enumerate(setup.inject_time)
    ]
    heapq.heapify(events)
    seq = total_packets

    link_free: dict[int, float] = {}
    serve_count: dict[int, int] = {}
    wait = np.zeros(total_packets, dtype=np.float64)  # cumulative queueing
    delivered_at = np.zeros(total_packets, dtype=np.float64)

    recording = collector is not None and collector.enabled
    if recording:
        collector.reserve(setup.total_hops)
    rec_links: list[int] = []
    rec_begins: list[float] = []
    rec_waits: list[float] = []

    while events:
        t, _, pkt, hop = heapq.heappop(events)
        pair = inject_pair[pkt]
        if hop >= route_lens[pair]:
            delivered_at[pkt] = t
            continue
        link = int(route_links[route_starts[pair] + hop])
        free = link_free.get(link, 0.0)
        begin = max(t, free)
        done = begin + service
        link_free[link] = done
        serve_count[link] = serve_count.get(link, 0) + 1
        wait[pkt] += begin - t
        if recording:
            rec_links.append(link)
            rec_begins.append(begin)
            rec_waits.append(begin - t)
        seq += 1
        heapq.heappush(events, (done + hop_latency, seq, pkt, hop + 1))

    counts = np.zeros(setup.num_links, dtype=np.int64)
    for link, count in serve_count.items():
        counts[link] = count
    if recording:
        collector.record_services(
            np.array(rec_links, dtype=np.int64),
            np.array(rec_begins, dtype=np.float64),
            np.array(rec_waits, dtype=np.float64),
        )
    result = assemble_result(setup, wait, delivered_at, counts)
    return attach_telemetry(result, setup, collector, delivered_at)


def simulate_network_reference(
    matrix: CommMatrix,
    topology: Topology,
    mapping: Mapping | None = None,
    execution_time: float = 1.0,
    bandwidth: float = BANDWIDTH_BYTES_PER_S,
    payload: int = MAX_PAYLOAD_BYTES,
    hop_latency: float = 100e-9,
    volume_scale: float = 1.0,
    max_packets: int = 2_000_000,
    seed: int = 0,
    routing: str = "minimal",
    routing_seed: int = 0,
    telemetry=None,
) -> SimulationResult:
    """Event-by-event simulation (see :func:`repro.sim.simulate_network`)."""
    setup = prepare_simulation(
        matrix,
        topology,
        mapping=mapping,
        execution_time=execution_time,
        bandwidth=bandwidth,
        payload=payload,
        hop_latency=hop_latency,
        volume_scale=volume_scale,
        max_packets=max_packets,
        seed=seed,
        routing=routing,
        routing_seed=routing_seed,
    )
    if setup is None:
        return empty_result()
    from .engine import resolve_collector

    return run_reference(setup, collector=resolve_collector(telemetry))
