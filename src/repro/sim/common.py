"""Shared state of the dynamic-simulation engines.

Both engines — the reference per-event heap loop (:mod:`repro.sim.reference`)
and the batched NumPy kernel (:mod:`repro.sim.engine`) — consume one
:class:`SimSetup` built here, so they see *identical* inputs: the same
crossing-pair filter, the same deterministic routes, the same scaled packet
counts, and the same RNG draw for injection times.  That makes seed-for-seed
bit equality between the engines a property of the event-processing order
alone (which both define as FIFO per link, served by arrival time).

Structural observables are computed here once, because they do not depend on
event timing at all: every packet traverses every link of its pair's route
exactly once, so per-link service counts, total hops, used links, and total
busy time are pure functions of (routes x packet counts).  Both engines
share :func:`busy_total` so the float reduction order is identical too.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..telemetry.collector import TelemetryCollector, TelemetryReport

from ..cache import cached_route_incidence
from ..comm.matrix import CommMatrix
from ..core.packets import MAX_PAYLOAD_BYTES
from ..mapping.base import Mapping
from ..model.engine import BANDWIDTH_BYTES_PER_S
from ..topology.base import Topology

__all__ = [
    "SimulationResult",
    "SimSetup",
    "prepare_simulation",
    "empty_result",
    "assemble_result",
    "attach_telemetry",
]


@dataclass(frozen=True)
class SimulationResult:
    """Observables of one dynamic simulation run.

    Convention for degenerate runs: a simulation with no network-crossing
    packets returns all-zero counters (``packets_simulated == 0``), and the
    ratio properties return NaN rather than a misleading neutral value —
    ``makespan_inflation`` is *undefined* (not 1.0) when nothing was
    injected or the injection window is empty (e.g. a single packet).
    Check ``packets_simulated`` or use ``math.isnan`` before aggregating.
    """

    packets_simulated: int
    total_hops: int
    makespan: float  # last packet delivery time
    injection_window: float  # time span over which packets were injected
    link_busy_time_total: float
    used_links: int
    mean_queue_delay: float  # seconds a packet waited, averaged over packets
    p99_queue_delay: float
    max_queue_delay: float
    congested_packet_share: float  # packets that waited at least one service time
    #: Busy fraction of the single busiest link over the makespan (1.0 means
    #: some link served packets back to back for the whole run).
    peak_link_busy_fraction: float = 0.0
    #: Per-link observables in compact-link order (``link_ids[i]`` is the
    #: topology link that performed ``link_serve_counts[i]`` services).
    #: Arrays are excluded from ``==`` (compare them with np.array_equal);
    #: ``None`` on degenerate runs with no network traffic.
    link_ids: np.ndarray | None = field(default=None, compare=False, repr=False)
    link_serve_counts: np.ndarray | None = field(
        default=None, compare=False, repr=False
    )
    #: Windowed telemetry (populated only when the run was instrumented via
    #: ``simulate_network(..., telemetry=...)``; ``None`` otherwise).
    telemetry: "TelemetryReport | None" = field(
        default=None, compare=False, repr=False
    )
    #: Per-job delivery makespans, ``float64[num_jobs]`` (populated only for
    #: composed workloads simulated with ``job_of_rank``; NaN for jobs that
    #: injected no crossing packets; ``None`` otherwise).
    job_makespans: np.ndarray | None = field(
        default=None, compare=False, repr=False
    )

    @property
    def dynamic_utilization(self) -> float:
        """Mean busy fraction of the used links over the makespan."""
        if not self.used_links or self.makespan <= 0:
            return 0.0
        return self.link_busy_time_total / (self.used_links * self.makespan)

    @property
    def makespan_inflation(self) -> float:
        """Makespan relative to the injection window (1.0 = no backlog).

        NaN when undefined: no packets were simulated, or all packets were
        injected at one instant (``injection_window == 0``).
        """
        if self.packets_simulated == 0 or self.injection_window <= 0:
            return float("nan")
        return self.makespan / self.injection_window


@dataclass(frozen=True)
class SimSetup:
    """Precomputed inputs shared by both simulation engines."""

    total_packets: int
    num_links: int  # compact link-index space (= used links, all are served)
    link_ids: np.ndarray  # int64[num_links]: compact index -> topology link ID
    route_links: np.ndarray  # int64[m]: compact link IDs, per-pair runs in hop order
    route_starts: np.ndarray  # int64[num_pairs]
    route_lens: np.ndarray  # int64[num_pairs]
    pair_packets: np.ndarray  # int64[num_pairs]: scaled packets per pair
    pair_src: np.ndarray  # int64[num_pairs]: source node of each crossing pair
    pair_dst: np.ndarray  # int64[num_pairs]: destination node of each pair
    inject_pair: np.ndarray  # int64[total_packets]
    inject_time: np.ndarray  # float64[total_packets]
    service: float  # seconds one packet occupies one link
    hop_latency: float
    serve_counts: np.ndarray  # int64[num_links]: services each link performs
    total_hops: int
    #: Owning job of each crossing pair (``int64[num_pairs]``, from the
    #: composer's ``job_of_rank`` table); ``None`` for solo runs.  Presence
    #: only adds per-job accounting — packet schedules are unaffected.
    pair_job: np.ndarray | None = None

    @property
    def injection_window(self) -> float:
        return float(self.inject_time.max() - self.inject_time.min())


def prepare_simulation(
    matrix: CommMatrix,
    topology: Topology,
    mapping: Mapping | None = None,
    execution_time: float = 1.0,
    bandwidth: float = BANDWIDTH_BYTES_PER_S,
    payload: int = MAX_PAYLOAD_BYTES,
    hop_latency: float = 100e-9,
    volume_scale: float = 1.0,
    max_packets: int = 2_000_000,
    seed: int = 0,
    routing: str = "minimal",
    routing_seed: int = 0,
    job_of_rank: np.ndarray | None = None,
) -> SimSetup | None:
    """Validate parameters and build the shared simulation state.

    Returns ``None`` when no packet crosses the network (the caller returns
    :func:`empty_result`).  Raises exactly as the original simulator did.
    ``routing`` selects the :mod:`repro.routing` policy whose routes the
    packets walk; both engines consume the resulting :class:`SimSetup`, so
    their seed-for-seed bit equality holds under every policy.

    ``job_of_rank`` (from :mod:`repro.tenancy`) tags each crossing pair with
    its owning job so the engines can report per-job makespans; it changes
    no route, injection time, or service decision.
    """
    if execution_time <= 0:
        raise ValueError("execution_time must be positive")
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    if volume_scale < 1.0:
        raise ValueError("volume_scale must be >= 1")
    if mapping is None:
        mapping = Mapping.consecutive(matrix.num_ranks, topology.num_nodes)

    src_n = mapping.node_of(matrix.src)
    dst_n = mapping.node_of(matrix.dst)
    crossing = src_n != dst_n
    src_n = src_n[crossing]
    dst_n = dst_n[crossing]
    pair_packets = matrix.packets[crossing]

    scaled = np.maximum(pair_packets // int(volume_scale), 1) if len(
        pair_packets
    ) else pair_packets
    total_packets = int(scaled.sum()) if len(scaled) else 0
    if total_packets == 0:
        return None
    if total_packets > max_packets:
        raise ValueError(
            f"{total_packets} packets exceed max_packets={max_packets}; "
            f"raise volume_scale (currently {volume_scale})"
        )

    # Per-pair routes as flat link-index runs, in traversal order.  The
    # load-aware policies adapt to the scaled per-pair packet counts — the
    # traffic the simulation actually injects.
    incidence = cached_route_incidence(
        topology,
        src_n,
        dst_n,
        routing=routing,
        seed=routing_seed,
        pair_weights=scaled,
    )
    order = np.argsort(incidence.pair_index, kind="stable")
    sorted_pairs = incidence.pair_index[order]
    sorted_links = incidence.link_id[order]
    pair_ids = np.arange(len(src_n))
    route_starts = np.searchsorted(sorted_pairs, pair_ids)
    route_ends = np.searchsorted(sorted_pairs, pair_ids, side="right")
    route_lens = route_ends - route_starts

    # Compact the opaque link IDs into a dense [0, num_links) index space so
    # engines can use flat arrays for per-link state.
    link_ids, route_links = np.unique(sorted_links, return_inverse=True)
    route_links = route_links.astype(np.int64, copy=False)

    # Structural observables: each packet serves each route link once, so
    # counts are (packets per pair) scattered over that pair's route links.
    # Counts stay below max_packets (~2e6), far inside float64's exact-int
    # range, so bincount's float weights lose nothing.
    serve_counts = np.bincount(
        route_links,
        weights=scaled[sorted_pairs].astype(np.float64),
        minlength=len(link_ids),
    ).astype(np.int64)
    total_hops = int(serve_counts.sum())

    service = payload / (bandwidth / volume_scale)
    rng = np.random.default_rng(seed)
    inject_pair = np.repeat(pair_ids.astype(np.int64), scaled)
    inject_time = rng.uniform(0.0, execution_time, size=total_packets)

    pair_job = None
    if job_of_rank is not None:
        table = np.asarray(job_of_rank, dtype=np.int64)
        if table.shape != (matrix.num_ranks,):
            raise ValueError(
                f"job_of_rank must have shape ({matrix.num_ranks},), "
                f"got {table.shape}"
            )
        pair_job = table[matrix.src][crossing]

    return SimSetup(
        total_packets=total_packets,
        num_links=len(link_ids),
        link_ids=link_ids,
        route_links=route_links,
        route_starts=route_starts.astype(np.int64, copy=False),
        route_lens=route_lens.astype(np.int64, copy=False),
        pair_packets=scaled.astype(np.int64, copy=False),
        pair_src=src_n.astype(np.int64, copy=False),
        pair_dst=dst_n.astype(np.int64, copy=False),
        inject_pair=inject_pair,
        inject_time=inject_time,
        service=float(service),
        hop_latency=float(hop_latency),
        serve_counts=serve_counts,
        total_hops=total_hops,
        pair_job=pair_job,
    )


def empty_result() -> SimulationResult:
    """The all-zero result of a simulation with no network traffic."""
    return SimulationResult(0, 0, 0.0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 0.0)


def busy_total(serve_counts: np.ndarray, service: float) -> float:
    """Total link busy time, reduced in canonical (compact link) order.

    Busy time per link is exactly ``count * service``; summing the per-link
    array in compact-index order makes the float reduction identical across
    engines regardless of the order links were first touched.
    """
    return float((serve_counts * service).sum())


def assemble_result(
    setup: SimSetup,
    wait: np.ndarray,
    delivered_at: np.ndarray,
    serve_counts: np.ndarray,
) -> SimulationResult:
    """Build the result from per-packet timings (identical in both engines)."""
    congested = float((wait >= setup.service).sum()) / setup.total_packets
    makespan = float(delivered_at.max())
    serve_counts = np.asarray(serve_counts, dtype=np.int64)
    peak = (
        float(serve_counts.max()) * setup.service / makespan
        if makespan > 0 and serve_counts.size
        else 0.0
    )
    job_makespans = None
    if setup.pair_job is not None:
        # Per-job delivery makespans: max delivered_at over each job's own
        # packets.  Jobs with no crossing packets report NaN, matching the
        # library-wide undefined-ratio convention.
        pkt_job = setup.pair_job[setup.inject_pair]
        num_jobs = int(setup.pair_job.max()) + 1
        job_makespans = np.zeros(num_jobs, dtype=np.float64)
        np.maximum.at(job_makespans, pkt_job, delivered_at)
        counts = np.bincount(pkt_job, minlength=num_jobs)
        job_makespans[counts == 0] = np.nan
    return SimulationResult(
        packets_simulated=setup.total_packets,
        total_hops=setup.total_hops,
        makespan=makespan,
        injection_window=setup.injection_window,
        link_busy_time_total=busy_total(serve_counts, setup.service),
        used_links=int((serve_counts > 0).sum()),
        mean_queue_delay=float(wait.mean()),
        p99_queue_delay=float(np.quantile(wait, 0.99)),
        max_queue_delay=float(wait.max()),
        congested_packet_share=congested,
        peak_link_busy_fraction=peak,
        link_ids=setup.link_ids,
        link_serve_counts=serve_counts,
        job_makespans=job_makespans,
    )


def attach_telemetry(
    result: SimulationResult,
    setup: SimSetup,
    collector: "TelemetryCollector | None",
    delivered_at: np.ndarray,
) -> SimulationResult:
    """Finalize an enabled collector and attach its report to the result.

    A ``None`` or disabled collector returns ``result`` unchanged, so the
    uninstrumented fast path costs one attribute check.
    """
    if collector is None or not collector.enabled:
        return result
    report = collector.finalize(setup, result, delivered_at)
    return dataclasses.replace(result, telemetry=report)
