"""Dynamic packet-level network simulation (the paper's stated future work)."""

from .engine import SimulationResult, simulate_network

__all__ = ["SimulationResult", "simulate_network"]
