"""Dynamic packet-level network simulation (the paper's stated future work).

Two bit-identical engines: the batched NumPy kernel behind
:func:`simulate_network` (auto-dispatching) and the per-event heap loop
:func:`simulate_network_reference` kept as semantic ground truth.
"""

from .common import SimSetup, prepare_simulation
from .engine import SimulationResult, run_batched, simulate_network, simulate_stream
from .reference import run_reference, simulate_network_reference

__all__ = [
    "SimulationResult",
    "SimSetup",
    "prepare_simulation",
    "run_batched",
    "run_reference",
    "simulate_network",
    "simulate_stream",
    "simulate_network_reference",
]
