"""Dynamic packet-level network simulation — the paper's future work.

The paper is explicit about its static model's limits: "without the
temporal character of a simulation, the results do not contain any
information about the interaction of traffic flows" (§4.2), and closes with
"it seems very promising to address dynamic effects in future work" (§8).
This module implements that future work at packet granularity:

- every message is split into 4 kB packets (as in the static model);
- packets are injected over the traced execution time and walk their
  deterministic route hop by hop;
- every link is an output-queued FIFO server: a packet occupies a link for
  ``payload / bandwidth`` seconds and waits while the link serves earlier
  arrivals — this is where flow *interaction* (queueing, congestion)
  appears;
- the simulation is event-driven (one heap event per packet-hop) and fully
  deterministic given the seed.

Outputs directly test the static model's headline claims: dynamic per-link
utilization (the paper argues static utilization is an *upper bound* —
§8), queueing-delay distributions (the "probability of congestions" the
utilization metric is a proxy for, §4.2.3), and makespan inflation.

Cost is one event per packet-hop; large traces can be sampled with
``volume_scale`` (simulate a 1/k volume at 1/k bandwidth — utilization and
queueing behaviour are first-order invariant under this scaling, a standard
fluid-limit argument).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..comm.matrix import CommMatrix
from ..core.packets import MAX_PAYLOAD_BYTES
from ..mapping.base import Mapping
from ..topology.base import Topology
from ..model.engine import BANDWIDTH_BYTES_PER_S

__all__ = ["SimulationResult", "simulate_network"]


@dataclass(frozen=True)
class SimulationResult:
    """Observables of one dynamic simulation run."""

    packets_simulated: int
    total_hops: int
    makespan: float  # last packet delivery time
    injection_window: float  # time span over which packets were injected
    link_busy_time_total: float
    used_links: int
    mean_queue_delay: float  # seconds a packet waited, averaged over packets
    p99_queue_delay: float
    max_queue_delay: float
    congested_packet_share: float  # packets that waited at least one service time

    @property
    def dynamic_utilization(self) -> float:
        """Mean busy fraction of the used links over the makespan."""
        if not self.used_links or self.makespan <= 0:
            return 0.0
        return self.link_busy_time_total / (self.used_links * self.makespan)

    @property
    def makespan_inflation(self) -> float:
        """Makespan relative to the injection window (1.0 = no backlog)."""
        if self.injection_window <= 0:
            return 1.0
        return self.makespan / self.injection_window


def simulate_network(
    matrix: CommMatrix,
    topology: Topology,
    mapping: Mapping | None = None,
    execution_time: float = 1.0,
    bandwidth: float = BANDWIDTH_BYTES_PER_S,
    payload: int = MAX_PAYLOAD_BYTES,
    hop_latency: float = 100e-9,
    volume_scale: float = 1.0,
    max_packets: int = 2_000_000,
    seed: int = 0,
) -> SimulationResult:
    """Run the event-driven packet simulation for one configuration.

    Parameters
    ----------
    matrix:
        Traffic matrix (collectives flattened, as for the static model).
    execution_time:
        Packets are injected uniformly (with jitter) over this window —
        the traced wall time, matching the static utilization's denominator.
    volume_scale:
        Simulate ``1/volume_scale`` of each pair's packets at
        ``bandwidth / volume_scale``; utilization/queueing statistics are
        invariant to first order.  Use > 1 for large traces.
    max_packets:
        Safety cap; raises if the (scaled) packet count exceeds it.
    """
    if execution_time <= 0:
        raise ValueError("execution_time must be positive")
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    if volume_scale < 1.0:
        raise ValueError("volume_scale must be >= 1")
    if mapping is None:
        mapping = Mapping.consecutive(matrix.num_ranks, topology.num_nodes)

    src_n = mapping.node_of(matrix.src)
    dst_n = mapping.node_of(matrix.dst)
    crossing = src_n != dst_n
    src_n = src_n[crossing]
    dst_n = dst_n[crossing]
    pair_packets = matrix.packets[crossing]

    scaled = np.maximum(pair_packets // int(volume_scale), 1) if len(
        pair_packets
    ) else pair_packets
    total_packets = int(scaled.sum()) if len(scaled) else 0
    if total_packets == 0:
        return SimulationResult(0, 0, 0.0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 0.0)
    if total_packets > max_packets:
        raise ValueError(
            f"{total_packets} packets exceed max_packets={max_packets}; "
            f"raise volume_scale (currently {volume_scale})"
        )

    # Per-pair routes as flat link-id arrays.
    incidence = topology.route_incidence(src_n, dst_n)
    order = np.argsort(incidence.pair_index, kind="stable")
    sorted_pairs = incidence.pair_index[order]
    sorted_links = incidence.link_id[order]
    route_starts = np.searchsorted(sorted_pairs, np.arange(len(src_n)))
    route_ends = np.searchsorted(sorted_pairs, np.arange(len(src_n)), side="right")

    service = payload / (bandwidth / volume_scale)
    rng = np.random.default_rng(seed)

    # Injection times: uniform over the execution window.
    inject_pair = np.repeat(np.arange(len(src_n)), scaled)
    inject_time = rng.uniform(0.0, execution_time, size=total_packets)
    injection_window = float(inject_time.max() - inject_time.min())

    # Event loop: (time, seq, packet_index, hop_index).
    events: list[tuple[float, int, int, int]] = [
        (float(t), i, i, 0) for i, t in enumerate(inject_time)
    ]
    heapq.heapify(events)
    seq = total_packets

    link_free: dict[int, float] = {}
    link_busy: dict[int, float] = {}
    wait = np.zeros(total_packets, dtype=np.float64)  # cumulative queueing
    delivered_at = np.zeros(total_packets, dtype=np.float64)
    total_hops = 0

    while events:
        t, _, pkt, hop = heapq.heappop(events)
        pair = inject_pair[pkt]
        start_idx = route_starts[pair] + hop
        if start_idx >= route_ends[pair]:
            delivered_at[pkt] = t
            continue
        link = int(sorted_links[start_idx])
        free = link_free.get(link, 0.0)
        begin = max(t, free)
        done = begin + service
        link_free[link] = done
        link_busy[link] = link_busy.get(link, 0.0) + service
        wait[pkt] += begin - t
        total_hops += 1
        seq += 1
        heapq.heappush(events, (done + hop_latency, seq, pkt, hop + 1))

    queue_delay = wait  # total time spent queueing across all hops
    congested = float((queue_delay >= service).sum()) / total_packets

    return SimulationResult(
        packets_simulated=total_packets,
        total_hops=total_hops,
        makespan=float(delivered_at.max()),
        injection_window=injection_window,
        link_busy_time_total=float(sum(link_busy.values())),
        used_links=len(link_busy),
        mean_queue_delay=float(queue_delay.mean()),
        p99_queue_delay=float(np.quantile(queue_delay, 0.99)),
        max_queue_delay=float(queue_delay.max()),
        congested_packet_share=congested,
    )
