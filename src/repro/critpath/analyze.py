"""Critical paths, latency sensitivity, and the latency-tolerance table.

The longest path through the happens-before DAG under the LogGP cost
model is the modelled runtime; the number of L terms on that path is the
*algebraic* network-latency sensitivity dT/dL (each message edge carries
exactly one L, and the path is piecewise linear in L).  The DP tie-breaks
equal-cost paths toward the larger L count, which makes the algebraic
count equal the forward finite difference exactly for a small enough
step — ``repro bench critpath`` cross-checks the two on every registry
app and requires agreement within 1%.

The *latency tolerance* of an app is the latency increase that inflates
its critical path by 1%: ``0.01 * T / (dT/dL)``.  Ranking the mini-apps
by it is the results family neither the source paper nor the volume-based
layers produce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .cost import DEFAULT_PARAMS, LogGPParams, edge_costs, message_edge_hops
from .dag import HappensBeforeDag

__all__ = [
    "DEFAULT_MAX_REPEAT",
    "CriticalPath",
    "CritPathAnalysis",
    "critical_path",
    "latency_sensitivity",
    "analyze_trace",
    "latency_table",
]

#: Default iteration-truncation clamp for whole-app analyses.  Expansion
#: cost is bounded by rows x clamp while every phase keeps up to 64
#: iterations of unrolled structure; the Nekbone/PARTISN/SNAP configs whose
#: exact expansion is 16-34M calls analyze in seconds instead of minutes.
DEFAULT_MAX_REPEAT = 64

#: Finite-difference step as a fraction of L.  1/512 keeps a dyadic L
#: dyadic, so the default-parameter cross-check is exact arithmetic.
FD_REL_STEP = 1.0 / 512.0


@dataclass(frozen=True)
class CriticalPath:
    """Longest-path result: modelled makespan and its L-term count."""

    makespan_s: float
    l_terms: int


def critical_path(
    dag: HappensBeforeDag, cost: np.ndarray, lterm: np.ndarray
) -> CriticalPath:
    """Longest path via Kahn-order DP over the level schedule.

    ``dist[v] = max over incoming edges (dist[src] + cost)``, computed one
    Kahn level at a time with ``np.maximum.reduceat`` over the pre-gathered
    predecessor spans.  A second reduceat pass propagates the maximum
    L-term count among the edges that achieve ``dist[v]`` (exact float
    comparison — candidates achieving the max are bit-equal by
    definition), so ties resolve toward the latency-sensitive path and the
    algebraic dT/dL matches the forward finite difference.
    """
    schedule = dag.level_schedule()
    if dag.num_nodes == 0:
        return CriticalPath(0.0, 0)
    dist = np.zeros(dag.num_nodes, dtype=np.float64)
    lcnt = np.zeros(dag.num_nodes, dtype=np.int64)
    edge_src = dag.edge_src
    for lvl in range(1, schedule.num_levels):
        nodes = schedule.levels[lvl]
        eidx = schedule.pred_eidx[lvl]
        starts = schedule.starts[lvl]
        counts = schedule.counts[lvl]
        src = edge_src[eidx]
        cand = dist[src] + cost[eidx]
        best = np.maximum.reduceat(cand, starts)
        cand_l = lcnt[src] + lterm[eidx]
        on_max = cand == np.repeat(best, counts)
        best_l = np.maximum.reduceat(np.where(on_max, cand_l, -1), starts)
        dist[nodes] = best
        lcnt[nodes] = best_l
    makespan = float(dist.max())
    l_terms = int(lcnt[dist == makespan].max())
    return CriticalPath(makespan, l_terms)


@dataclass(frozen=True)
class SensitivityResult:
    """Algebraic vs finite-difference dT/dL of one DAG."""

    makespan_s: float
    l_terms: int
    algebraic: float
    finite_difference: float

    @property
    def rel_err(self) -> float:
        return abs(self.finite_difference - self.algebraic) / max(
            self.algebraic, 1.0
        )


def latency_sensitivity(
    dag: HappensBeforeDag,
    params: LogGPParams = DEFAULT_PARAMS,
    hops: np.ndarray | None = None,
    rel_step: float = FD_REL_STEP,
) -> SensitivityResult:
    """dT/dL both ways: L-term count and a forward finite difference.

    The cost model is piecewise linear in L and the DP tie-breaks toward
    the maximum L count, so for a step small enough that the critical path
    does not change, the forward difference equals the L-term count — with
    the dyadic default parameters, bit-exactly.
    """
    base_cost, lterm = edge_costs(dag, params, hops)
    base = critical_path(dag, base_cost, lterm)
    eps = params.latency_s * rel_step
    up_cost, _ = edge_costs(dag, params.with_latency(params.latency_s + eps), hops)
    up = critical_path(dag, up_cost, lterm)
    fd = (up.makespan_s - base.makespan_s) / eps
    return SensitivityResult(
        makespan_s=base.makespan_s,
        l_terms=base.l_terms,
        algebraic=float(base.l_terms),
        finite_difference=fd,
    )


@dataclass(frozen=True)
class CritPathAnalysis:
    """One app's critical-path profile under a placement and routing."""

    app: str
    ranks: int
    topology: str
    routing: str
    nodes: int
    edges: int
    msg_edges: int
    makespan_s: float
    l_terms: int
    sensitivity: float  # algebraic dT/dL (= l_terms)
    fd_sensitivity: float  # NaN when the cross-check was skipped
    tolerance_s: float  # latency increase inflating T by 1%; NaN if no L terms
    collective: str = "flat"  # collective-algorithm engine of the DAG

    @property
    def fd_rel_err(self) -> float:
        if math.isnan(self.fd_sensitivity):
            return float("nan")
        return abs(self.fd_sensitivity - self.sensitivity) / max(
            self.sensitivity, 1.0
        )


def analyze_trace(
    trace,
    topology=None,
    mapping=None,
    routing="minimal",
    routing_seed: int = 0,
    params: LogGPParams = DEFAULT_PARAMS,
    max_repeat: int | None = DEFAULT_MAX_REPEAT,
    fd_check: bool = True,
    collective: str = "flat",
) -> CritPathAnalysis:
    """Full critical-path analysis of one trace.

    ``topology=None`` models a zero-diameter network (no per-hop term);
    otherwise hops come from the routing policy's walks under ``mapping``
    (consecutive by default).  ``collective`` picks the engine whose
    schedule shapes the DAG's collective edges.  The DAG is memoized per
    trace content key via :func:`repro.cache.cached_critpath_dag`, so
    repeated analyses of one trace across topologies and routings rebuild
    nothing.
    """
    from ..cache import cached_critpath_dag
    from ..collectives.registry import get_algorithm

    engine = get_algorithm(collective)
    dag = cached_critpath_dag(trace, max_repeat=max_repeat, collective=engine)
    hops = None
    topo_name = "none"
    if topology is not None:
        if mapping is None:
            from ..mapping.base import Mapping

            mapping = Mapping.consecutive(dag.num_ranks, topology.num_nodes)
        hops = message_edge_hops(
            dag, topology, mapping, routing=routing, routing_seed=routing_seed
        )
        topo_name = type(topology).__name__
    if fd_check:
        sens = latency_sensitivity(dag, params, hops)
        makespan, l_terms = sens.makespan_s, sens.l_terms
        fd = sens.finite_difference
    else:
        cost, lterm = edge_costs(dag, params, hops)
        cp = critical_path(dag, cost, lterm)
        makespan, l_terms = cp.makespan_s, cp.l_terms
        fd = float("nan")
    tolerance = (0.01 * makespan / l_terms) if l_terms > 0 else float("nan")
    routing_name = routing if isinstance(routing, str) else routing.name
    return CritPathAnalysis(
        app=trace.meta.app,
        ranks=trace.meta.num_ranks,
        topology=topo_name,
        routing=routing_name,
        nodes=dag.num_nodes,
        edges=dag.num_edges,
        msg_edges=dag.num_message_edges,
        makespan_s=makespan,
        l_terms=l_terms,
        sensitivity=float(l_terms),
        fd_sensitivity=fd,
        tolerance_s=tolerance,
        collective=engine.name,
    )


def latency_table(
    topology: str = "torus3d",
    routing: str = "minimal",
    max_ranks: int | None = None,
    params: LogGPParams = DEFAULT_PARAMS,
    max_repeat: int | None = DEFAULT_MAX_REPEAT,
    fd_check: bool = True,
    apps=None,
    collective: str = "flat",
) -> list[CritPathAnalysis]:
    """Latency-tolerance profile of every registry app (smallest config).

    One row per mini-app at its smallest configuration not exceeding
    ``max_ranks``, analyzed on ``topology`` under ``routing`` with
    consecutive mapping.  Rows come back in registry order, ready for
    :func:`repro.analysis.tables.render_latency_table`.
    """
    from ..apps.registry import iter_configurations
    from ..cache import cached_trace
    from ..validation.suite import build_topology

    smallest: dict[str, int] = {}
    for app, point in iter_configurations(max_ranks):
        if apps is not None and app.name not in apps:
            continue
        if app.name not in smallest or point.ranks < smallest[app.name]:
            smallest[app.name] = point.ranks
    rows: list[CritPathAnalysis] = []
    for name, ranks in smallest.items():
        trace = cached_trace(name, ranks)
        topo = build_topology(topology, ranks)
        analysis = analyze_trace(
            trace,
            topology=topo,
            routing=routing,
            params=params,
            max_repeat=max_repeat,
            fd_check=fd_check,
            collective=collective,
        )
        # Report under the sweep-facing topology name, not the class name.
        rows.append(
            CritPathAnalysis(
                **{
                    **analysis.__dict__,
                    "topology": topology,
                }
            )
        )
    return rows
