"""Critical-path / latency-tolerance engine.

Every other analysis in the repo is volume-based: traffic matrices count
bytes, locality metrics rank hop distances, and trace timestamps feed only
the Eq. 5 utilization metric.  This package adds the *temporal* axis that
LLAMP-style analyses need: a happens-before dependency DAG over the
repeat-expanded trace events, a parameterized LogGP cost model whose
per-hop term comes from the routing policy's walk lengths, and a
Kahn-order longest-path pass that yields per-app critical paths and
network-latency sensitivities (dT/dL).

Layer map:

- :mod:`repro.critpath.match` — vectorized FIFO send/recv matching per
  (src, dst, comm, tag) channel over columnar EventBlocks, with
  repeat-compression expansion, collective instance alignment, and a
  per-event oracle matcher pinned bit-identical.
- :mod:`repro.critpath.dag` — CSR-encoded happens-before DAG
  (program-order + message edges) with Kahn cycle detection.
- :mod:`repro.critpath.cost` — the LogGP parameter set and per-edge cost
  vectors (L, o, g, G, plus hops x hop_s from the routing policy).
- :mod:`repro.critpath.analyze` — longest-path DP, algebraic vs
  finite-difference dT/dL, and the latency-tolerance table across the
  registry mini-apps.
"""

from .analyze import (
    DEFAULT_MAX_REPEAT,
    CritPathAnalysis,
    CriticalPath,
    analyze_trace,
    critical_path,
    latency_sensitivity,
    latency_table,
)
from .cost import DEFAULT_PARAMS, LogGPParams, edge_costs, message_edge_hops
from .dag import (
    EDGE_COLLECTIVE,
    EDGE_P2P,
    EDGE_PROGRAM,
    CycleError,
    HappensBeforeDag,
    build_dag,
)
from .match import (
    ChannelAudit,
    EventTable,
    MatchError,
    MatchResult,
    channel_audit,
    collective_edges,
    ensure_receives,
    expand_events,
    match_events,
    match_events_oracle,
)

__all__ = [
    "DEFAULT_MAX_REPEAT",
    "DEFAULT_PARAMS",
    "ChannelAudit",
    "CritPathAnalysis",
    "CriticalPath",
    "CycleError",
    "EDGE_COLLECTIVE",
    "EDGE_P2P",
    "EDGE_PROGRAM",
    "EventTable",
    "HappensBeforeDag",
    "LogGPParams",
    "MatchError",
    "MatchResult",
    "analyze_trace",
    "build_dag",
    "channel_audit",
    "collective_edges",
    "critical_path",
    "edge_costs",
    "ensure_receives",
    "expand_events",
    "latency_sensitivity",
    "latency_table",
    "match_events",
    "match_events_oracle",
    "message_edge_hops",
]
