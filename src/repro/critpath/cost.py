"""Parameterized LogGP cost model over happens-before edges.

Every message edge costs ``o + L + hops*hop_s + (k-1)*G + o`` — the LogGP
send overhead, wire latency, a per-hop term taken from the *routing
policy's actual walk lengths* (so topology, mapping, and routing all feed
the critical path), the per-byte gap for a k-byte payload, and the
receive overhead.  Program-order edges cost the issue gap ``g``.

The default parameters are **dyadic** (exact binary fractions).  Edge
costs are then integer multiples of ``2**-33`` s, path sums stay exactly
representable in float64 far beyond any realistic trace, and the
longest-path DP is exact arithmetic: the finite-difference sensitivity in
:mod:`repro.critpath.analyze` reproduces the algebraic L-term count to
the last bit rather than to rounding noise.  Custom parameters work too;
the cross-check then holds to the documented 1% tolerance instead of
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .dag import EDGE_PROGRAM, HappensBeforeDag

__all__ = [
    "LogGPParams",
    "DEFAULT_PARAMS",
    "message_edge_hops",
    "edge_costs",
]


@dataclass(frozen=True)
class LogGPParams:
    """LogGP parameters, in seconds (and seconds/byte, seconds/hop).

    Defaults are dyadic floats near the usual HPC ballpark: L ~ 1.9 us,
    o ~ 0.95 us, g ~ 0.48 us, G = 2**-33 s/B (~8.6 GB/s, the dyadic
    neighbour of the repo's 12 GB/s link bandwidth), hop ~ 60 ns.
    """

    latency_s: float = 2.0**-19  # L: wire latency per message
    overhead_s: float = 2.0**-20  # o: CPU overhead per send and per recv
    gap_s: float = 2.0**-21  # g: issue gap between successive calls
    gap_per_byte_s: float = 2.0**-33  # G: per-byte gap ((k-1)*G per message)
    hop_s: float = 2.0**-24  # per traversed link, from the routing walks

    def __post_init__(self) -> None:
        if self.latency_s <= 0:
            raise ValueError("latency_s must be positive")
        for name in ("overhead_s", "gap_s", "gap_per_byte_s", "hop_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def with_latency(self, latency_s: float) -> "LogGPParams":
        """The same parameter set at a different wire latency."""
        return replace(self, latency_s=latency_s)


DEFAULT_PARAMS = LogGPParams()


def message_edge_hops(
    dag: HappensBeforeDag,
    topology,
    mapping,
    routing="minimal",
    routing_seed: int = 0,
) -> np.ndarray:
    """Per-edge hop counts under a placement and routing policy.

    Returns ``int64[num_edges]``: the number of links the routing policy's
    walk traverses between the endpoint nodes of each message edge (0 for
    program-order edges and co-located endpoints).  Walk lengths come from
    the policy's route incidence — the same artifact the load and
    telemetry layers consume — via the content-keyed incidence cache, so
    critical-path costs and link loads always agree on the route taken.
    """
    from ..cache import cached_route_incidence

    if mapping.num_ranks < dag.num_ranks:
        raise ValueError(
            f"mapping covers {mapping.num_ranks} ranks but the trace has "
            f"{dag.num_ranks}"
        )
    hops = np.zeros(dag.num_edges, dtype=np.int64)
    msg = dag.message_mask()
    if not msg.any():
        return hops
    midx = np.flatnonzero(msg)
    src_nodes = mapping.nodes[dag.node_rank[dag.edge_src[midx]]]
    dst_nodes = mapping.nodes[dag.node_rank[dag.edge_dst[midx]]]
    crossing = src_nodes != dst_nodes
    if not crossing.any():
        return hops
    codes = src_nodes[crossing] * np.int64(topology.num_nodes) + dst_nodes[crossing]
    uniq, inverse = np.unique(codes, return_inverse=True)
    usrc = uniq // topology.num_nodes
    udst = uniq % topology.num_nodes
    incidence = cached_route_incidence(
        topology, usrc, udst, routing=routing, seed=routing_seed
    )
    per_pair = np.bincount(incidence.pair_index, minlength=len(uniq))
    hops[midx[crossing]] = per_pair[inverse]
    return hops


def edge_costs(
    dag: HappensBeforeDag,
    params: LogGPParams = DEFAULT_PARAMS,
    hops: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-edge (cost seconds, L-term count) vectors.

    ``hops`` is the per-edge hop vector from :func:`message_edge_hops`
    (``None`` models a zero-diameter network).  Each message edge carries
    exactly one L term — the fact the algebraic sensitivity counts.
    """
    cost = np.full(dag.num_edges, params.gap_s, dtype=np.float64)
    lterm = np.zeros(dag.num_edges, dtype=np.int64)
    msg = dag.edge_kind != EDGE_PROGRAM
    if msg.any():
        nbytes = dag.edge_bytes[msg]
        base = 2.0 * params.overhead_s + params.latency_s
        cost[msg] = (
            base
            + np.maximum(nbytes - 1, 0) * params.gap_per_byte_s
        )
        if hops is not None:
            cost[msg] += hops[msg] * params.hop_s
        lterm[msg] = 1
    return cost, lterm
