"""CSR-encoded happens-before DAG with Kahn-order cycle detection.

Nodes are the repeat-expanded trace events, plus one *completion* node per
collective event.  The split matters for rooted two-phase collectives: an
ALLREDUCE's fan-in edges must all arrive before its fan-out edges depart,
which a single node per event cannot express without a 2-cycle between
the root and every member.  With the split, fan-in arrives at the root's
completion node and the fan-out departs from it, so the reduce and
broadcast phases chain — and the graph stays acyclic by construction for
any trace whose matching is consistent.

Edge families:

- **program order** (:data:`EDGE_PROGRAM`): each rank's events chained in
  trace order (the end node of event i to the start node of event i+1),
  plus the internal start→completion edge of every collective event.
- **p2p messages** (:data:`EDGE_P2P`): matched send→recv pairs from
  :func:`repro.critpath.match.match_events`.
- **collective messages** (:data:`EDGE_COLLECTIVE`): per-instance
  fan-in/fan-out edges from the collective→p2p translation.

The DAG stores a flat edge list plus lazily built predecessor/successor
CSR indexes and a level schedule (Kahn frontiers with pre-gathered
predecessor-edge spans) that the longest-path DP replays once per cost
vector — so a finite-difference sensitivity check pays for the schedule
once, not per evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.blocks import KIND_COLLECTIVE
from .match import collective_edges, ensure_receives, expand_events, match_events

__all__ = [
    "EDGE_PROGRAM",
    "EDGE_P2P",
    "EDGE_COLLECTIVE",
    "CycleError",
    "HappensBeforeDag",
    "LevelSchedule",
    "build_dag",
]

EDGE_PROGRAM = 0
EDGE_P2P = 1
EDGE_COLLECTIVE = 2


class CycleError(ValueError):
    """The happens-before graph is not a DAG (Kahn elimination stalled)."""


@dataclass
class LevelSchedule:
    """Kahn frontiers with pre-gathered predecessor-edge spans.

    ``levels[i]`` are the nodes whose dependencies complete at level i;
    for i >= 1, ``pred_eidx[i]`` concatenates their incoming edge IDs and
    ``starts[i]``/``counts[i]`` delimit the per-node groups (every node
    past level 0 has at least one predecessor, so ``np.maximum.reduceat``
    over the groups is always well-formed).
    """

    levels: list[np.ndarray]
    pred_eidx: list[np.ndarray]
    starts: list[np.ndarray]
    counts: list[np.ndarray]

    @property
    def num_levels(self) -> int:
        return len(self.levels)


def _span_gather(
    indptr: np.ndarray, order: np.ndarray, nodes: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate CSR spans of ``nodes``: (edge ids, group starts, counts)."""
    counts = indptr[nodes + 1] - indptr[nodes]
    total = int(counts.sum())
    starts = np.concatenate(([0], np.cumsum(counts)[:-1])) if len(counts) else counts
    if total == 0:
        return np.empty(0, dtype=np.int64), starts, counts
    idx = np.repeat(indptr[nodes] - starts, counts) + np.arange(
        total, dtype=np.int64
    )
    return order[idx], starts, counts


@dataclass
class HappensBeforeDag:
    """A happens-before DAG over repeat-expanded trace events.

    Nodes ``0..num_events-1`` are the expanded events in trace order;
    nodes ``num_events..num_nodes-1`` are the completion nodes of the
    collective events (``completion_of`` maps event -> completion node, -1
    for p2p events).  ``node_rank[v]`` is the MPI rank that executes node
    ``v``.  Edge arrays are parallel; ``edge_bytes`` is 0 on program-order
    edges.
    """

    num_nodes: int
    num_events: int
    num_ranks: int
    node_rank: np.ndarray  # int64[num_nodes]
    completion_of: np.ndarray  # int64[num_events], -1 for p2p events
    edge_src: np.ndarray  # int64[E]
    edge_dst: np.ndarray  # int64[E]
    edge_bytes: np.ndarray  # int64[E]
    edge_kind: np.ndarray  # uint8[E]
    _pred: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )
    _succ: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )
    _schedule: LevelSchedule | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def num_edges(self) -> int:
        return len(self.edge_src)

    def message_mask(self) -> np.ndarray:
        return self.edge_kind != EDGE_PROGRAM

    @property
    def num_message_edges(self) -> int:
        return int(np.count_nonzero(self.message_mask()))

    def _csr(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        order = np.argsort(keys, kind="stable")
        indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum(np.bincount(keys, minlength=self.num_nodes), out=indptr[1:])
        return indptr, order

    def pred_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """(indptr, edge-id order) of incoming edges, grouped by dst node."""
        if self._pred is None:
            self._pred = self._csr(self.edge_dst)
        return self._pred

    def succ_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """(indptr, edge-id order) of outgoing edges, grouped by src node."""
        if self._succ is None:
            self._succ = self._csr(self.edge_src)
        return self._succ

    def level_schedule(self) -> LevelSchedule:
        """Kahn level decomposition; raises :class:`CycleError` on a cycle."""
        if self._schedule is not None:
            return self._schedule
        pred_indptr, pred_order = self.pred_csr()
        succ_indptr, succ_order = self.succ_csr()
        indeg = np.diff(pred_indptr).astype(np.int64)
        frontier = np.flatnonzero(indeg == 0)
        levels: list[np.ndarray] = []
        pred_eidx: list[np.ndarray] = []
        starts_l: list[np.ndarray] = []
        counts_l: list[np.ndarray] = []
        processed = 0
        while frontier.size:
            processed += frontier.size
            eidx, starts, counts = _span_gather(
                pred_indptr, pred_order, frontier
            )
            levels.append(frontier)
            pred_eidx.append(eidx)
            starts_l.append(starts)
            counts_l.append(counts)
            out_eidx, _, _ = _span_gather(succ_indptr, succ_order, frontier)
            if out_eidx.size == 0:
                break
            dsts = self.edge_dst[out_eidx]
            uniq, cnt = np.unique(dsts, return_counts=True)
            indeg[uniq] -= cnt
            frontier = uniq[indeg[uniq] == 0]
        if processed < self.num_nodes:
            stuck = np.flatnonzero(indeg > 0)[:5]
            raise CycleError(
                f"happens-before graph contains a cycle: "
                f"{self.num_nodes - processed} of {self.num_nodes} nodes "
                f"never become ready under Kahn elimination "
                f"(e.g. nodes {stuck.tolist()})"
            )
        self._schedule = LevelSchedule(levels, pred_eidx, starts_l, counts_l)
        return self._schedule

    def assert_acyclic(self) -> None:
        """Raise :class:`CycleError` if the graph has a cycle."""
        self.level_schedule()


def build_dag(
    trace, max_repeat: int | None = None, collective: str = "flat"
) -> HappensBeforeDag:
    """Build the happens-before DAG of a trace.

    ``max_repeat`` is the deterministic iteration-truncation knob passed
    through to :func:`expand_events` (``None`` = exact expansion).
    ``collective`` selects the collective-algorithm engine whose message
    edges (and phase structure) the DAG encodes — tree schedules change
    the happens-before shape, not just the byte weights.  The trace's
    receive side is synthesized when absent (:func:`ensure_receives`), so
    any send-only synthetic trace works directly.
    """
    trace = ensure_receives(trace)
    table = expand_events(trace, max_repeat)
    n = len(table)
    coll = np.flatnonzero(table.kind == KIND_COLLECTIVE)
    ncoll = len(coll)
    completion = np.full(n, -1, dtype=np.int64)
    completion[coll] = n + np.arange(ncoll, dtype=np.int64)
    num_nodes = n + ncoll
    node_rank = np.concatenate([table.rank, table.rank[coll]])
    # The node where an event's local work ends: its completion node for
    # collectives, the event itself for p2p records.
    end_node = np.where(completion >= 0, completion, np.arange(n, dtype=np.int64))

    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    byts: list[np.ndarray] = []
    kinds: list[np.ndarray] = []

    def add(src, dst, nbytes, kind) -> None:
        srcs.append(np.asarray(src, dtype=np.int64))
        dsts.append(np.asarray(dst, dtype=np.int64))
        byts.append(np.asarray(nbytes, dtype=np.int64))
        kinds.append(np.full(len(srcs[-1]), kind, dtype=np.uint8))

    if ncoll:
        add(coll, completion[coll], np.zeros(ncoll, dtype=np.int64), EDGE_PROGRAM)
    if n:
        order = np.argsort(table.rank, kind="stable")
        same = table.rank[order][1:] == table.rank[order][:-1]
        prev = order[:-1][same]
        nxt = order[1:][same]
        add(
            end_node[prev], nxt, np.zeros(len(prev), dtype=np.int64), EDGE_PROGRAM
        )
    matched = match_events(table)
    if len(matched):
        add(matched.send_event, matched.recv_event, matched.nbytes, EDGE_P2P)
    csrc, cdst, cbytes, after = collective_edges(
        table, trace.communicators, collective=collective
    )
    if len(csrc):
        src_nodes = np.where(after, completion[csrc], csrc)
        add(src_nodes, completion[cdst], cbytes, EDGE_COLLECTIVE)

    if srcs:
        edge_src = np.concatenate(srcs)
        edge_dst = np.concatenate(dsts)
        edge_bytes = np.concatenate(byts)
        edge_kind = np.concatenate(kinds)
    else:
        edge_src = np.empty(0, dtype=np.int64)
        edge_dst = np.empty(0, dtype=np.int64)
        edge_bytes = np.empty(0, dtype=np.int64)
        edge_kind = np.empty(0, dtype=np.uint8)
    return HappensBeforeDag(
        num_nodes=num_nodes,
        num_events=n,
        num_ranks=table.num_ranks,
        node_rank=node_rank,
        completion_of=completion,
        edge_src=edge_src,
        edge_dst=edge_dst,
        edge_bytes=edge_bytes,
        edge_kind=edge_kind,
    )
