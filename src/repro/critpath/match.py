"""Vectorized FIFO send/recv matching over columnar EventBlocks.

MPI's non-overtaking rule makes point-to-point matching purely positional:
on one (src, dst, comm, tag) channel the k-th send matches the k-th
receive, in each side's program order.  Over the repeat-expanded event
stream that is a sort, not a search — both sides are lexsorted by channel
(stably, so FIFO position within a channel is preserved), after which the
k-th sorted send pairs with the k-th sorted recv.  The per-event oracle
(:func:`match_events_oracle`) replays the same rule with per-channel
queues one event at a time; ``repro bench critpath`` pins the two
bit-identical on a 1728-rank AMG trace.

Collectives are aligned by *call sequence*: MPI orders collectives on a
communicator by position alone, so the i-th collective call on a
communicator forms one logical instance across all members.  Each
instance's fan-in/fan-out message set comes from the existing
collective→p2p translation (:func:`repro.collectives.patterns.
expand_collective_batch`), so the DAG's collective edges carry exactly
the bytes the traffic matrices account.

Traces that record only the send side (the synthetic generators' default)
are totalized by :func:`ensure_receives`, which synthesizes the matching
``MPI_Irecv`` row directly after every send row — the same interleaved
layout ``emit_receives=True`` produces natively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.blocks import (
    KIND_COLLECTIVE,
    KIND_P2P_RECV,
    KIND_P2P_SEND,
    OPS,
    EventBlock,
)
from ..core.trace import Trace

__all__ = [
    "MatchError",
    "EventTable",
    "MatchResult",
    "ChannelAudit",
    "ensure_receives",
    "expand_events",
    "channel_audit",
    "match_events",
    "match_events_oracle",
    "collective_edges",
    "expand_collective_batch_phased",
]


class MatchError(ValueError):
    """A trace's traffic cannot be matched into a happens-before structure.

    Raised with a diagnostic naming the offending channel (or communicator)
    and the unbalanced counts, so truncated or corrupted traces fail loudly
    instead of producing a silently wrong DAG.
    """


# --------------------------------------------------------------- event table


@dataclass
class EventTable:
    """Repeat-expanded flat view of a trace's records.

    Event IDs are positions in (block, row, repeat-instance) order.  Block
    emission preserves per-rank ordering, so restricting the ID sequence to
    one rank's events yields that rank's program order — the property both
    the FIFO matcher and the DAG's program-order edges rely on.

    ``comm`` holds table-global communicator IDs (per-block interned names
    are re-interned across blocks); ``nbytes`` is the payload of a *single*
    call (count x element size).
    """

    num_ranks: int
    rank: np.ndarray  # int64[n] caller
    kind: np.ndarray  # uint8[n]
    peer: np.ndarray  # int64[n] (-1 on collective rows)
    nbytes: np.ndarray  # int64[n]
    comm: np.ndarray  # int64[n] -> comm_names
    tag: np.ndarray  # int64[n]
    op: np.ndarray  # int16[n] (-1 on p2p rows)
    root: np.ndarray  # int64[n] comm-local root
    comm_names: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.rank)


def expand_events(trace: Trace, max_repeat: int | None = None) -> EventTable:
    """Flatten a trace's blocks into one repeat-expanded :class:`EventTable`.

    ``max_repeat`` clamps each row's repeat count before expansion — a
    deterministic iteration-truncation knob for apps whose fully unrolled
    call count is in the tens of millions (the per-row clamp keeps matched
    send/recv rows aligned because generators emit them with equal repeat
    counts).  ``None`` expands exactly.
    """
    if max_repeat is not None and max_repeat < 1:
        raise ValueError("max_repeat must be >= 1")
    size_of = trace.datatypes.size_of
    comm_gids: dict[str, int] = {}
    parts: dict[str, list[np.ndarray]] = {
        name: []
        for name in ("rank", "kind", "peer", "nbytes", "comm", "tag", "op", "root")
    }
    for block in trace.blocks():
        sizes = np.array(
            [size_of(name) for name in block.dtype_names], dtype=np.int64
        )
        gids = np.array(
            [comm_gids.setdefault(name, len(comm_gids)) for name in block.comm_names],
            dtype=np.int64,
        )
        rep = block.repeat
        if max_repeat is not None:
            rep = np.minimum(rep, max_repeat)
        idx = np.repeat(np.arange(len(block), dtype=np.int64), rep)
        parts["rank"].append(block.caller[idx])
        parts["kind"].append(block.kind[idx])
        parts["peer"].append(block.peer[idx])
        parts["nbytes"].append((block.count * sizes[block.dtype_id])[idx])
        parts["comm"].append(gids[block.comm_id.astype(np.int64)][idx])
        parts["tag"].append(block.tag[idx])
        parts["op"].append(block.op[idx])
        parts["root"].append(block.root[idx])

    def cat(name: str, dtype) -> np.ndarray:
        arrays = parts[name]
        if not arrays:
            return np.empty(0, dtype=dtype)
        return np.concatenate(arrays)

    names = [""] * len(comm_gids)
    for name, gid in comm_gids.items():
        names[gid] = name
    return EventTable(
        num_ranks=trace.meta.num_ranks,
        rank=cat("rank", np.int64),
        kind=cat("kind", np.uint8),
        peer=cat("peer", np.int64),
        nbytes=cat("nbytes", np.int64),
        comm=cat("comm", np.int64),
        tag=cat("tag", np.int64),
        op=cat("op", np.int16),
        root=cat("root", np.int64),
        comm_names=tuple(names),
    )


# ---------------------------------------------------------- receive synthesis


def ensure_receives(trace: Trace) -> Trace:
    """Totalize a send-only trace by synthesizing its receive side.

    The synthetic generators record only sends by default (traffic is
    accounted on the send side).  A happens-before DAG needs both ends of
    every message, so for traces with no ``KIND_P2P_RECV`` rows at all this
    inserts the mirrored ``MPI_Irecv`` row directly after each send row —
    the same interleaved layout ``emit_receives=True`` emits natively,
    which trivially satisfies channel FIFO balance.  Traces that already
    carry receive rows (native ``emit_receives`` traces, dumpi recordings)
    are returned unchanged.
    """
    blocks = trace.blocks()
    if any((b.kind == KIND_P2P_RECV).any() for b in blocks):
        return trace
    if not any((b.kind == KIND_P2P_SEND).any() for b in blocks):
        return trace
    out: list[EventBlock] = []
    for block in blocks:
        send = block.kind == KIND_P2P_SEND
        num_sends = int(send.sum())
        if num_sends == 0:
            out.append(block)
            continue
        k = len(block)
        # New position of original row i: shifted down by one slot per
        # send row strictly before it; each send's mirror lands right after.
        before = np.concatenate(([0], np.cumsum(send)[:-1]))
        pos = np.arange(k, dtype=np.int64) + before
        rpos = pos[send] + 1
        func_names = list(block.func_names)
        if "MPI_Irecv" not in func_names:
            func_names.append("MPI_Irecv")
        recv_fid = func_names.index("MPI_Irecv")
        cols: dict[str, np.ndarray] = {}
        for name, dtype in EventBlock._COLUMN_DTYPES.items():
            src_col = getattr(block, name)
            col = np.empty(k + num_sends, dtype=dtype)
            col[pos] = src_col
            col[rpos] = src_col[send]
            cols[name] = col
        cols["kind"][rpos] = KIND_P2P_RECV
        cols["caller"][rpos] = block.peer[send]
        cols["peer"][rpos] = block.caller[send]
        cols["func_id"][rpos] = recv_fid
        out.append(
            EventBlock(
                dtype_names=block.dtype_names,
                comm_names=block.comm_names,
                func_names=tuple(func_names),
                **cols,
            )
        )
    return Trace.from_blocks(
        trace.meta, out, trace.datatypes, trace.communicators
    )


# ------------------------------------------------------------- channel audit


@dataclass
class ChannelAudit:
    """Per-channel send/recv call and byte totals (row-level, no expansion).

    One entry per (src, dst, comm, tag) channel, in lexicographic channel
    order.  Totals count the *repeat-expanded* calls, computed from the
    compressed rows directly, so the audit is O(rows) even for traces whose
    expansion would be tens of millions of events — this is what the
    ``critpath-matching`` invariant runs on every tier-1 scenario.
    """

    src: np.ndarray  # int64[channels]
    dst: np.ndarray
    comm: np.ndarray
    tag: np.ndarray
    send_calls: np.ndarray  # int64[channels]
    recv_calls: np.ndarray
    send_bytes: np.ndarray
    recv_bytes: np.ndarray
    comm_names: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.src)

    @property
    def balanced(self) -> bool:
        return bool(
            np.array_equal(self.send_calls, self.recv_calls)
            and np.array_equal(self.send_bytes, self.recv_bytes)
        )

    def channel_label(self, i: int) -> str:
        return (
            f"(src={int(self.src[i])}, dst={int(self.dst[i])}, "
            f"comm={self.comm_names[int(self.comm[i])]!r}, tag={int(self.tag[i])})"
        )


def channel_audit(trace: Trace) -> ChannelAudit:
    """Aggregate a trace's p2p rows into per-channel send/recv totals."""
    size_of = trace.datatypes.size_of
    comm_gids: dict[str, int] = {}
    srcs, dsts, comms, tags, sides, calls, nbytes = ([] for _ in range(7))
    for block in trace.blocks():
        sizes = np.array(
            [size_of(name) for name in block.dtype_names], dtype=np.int64
        )
        gids = np.array(
            [comm_gids.setdefault(name, len(comm_gids)) for name in block.comm_names],
            dtype=np.int64,
        )
        for kind, is_send in ((KIND_P2P_SEND, True), (KIND_P2P_RECV, False)):
            mask = block.kind == kind
            if not mask.any():
                continue
            caller = block.caller[mask]
            peer = block.peer[mask]
            srcs.append(caller if is_send else peer)
            dsts.append(peer if is_send else caller)
            comms.append(gids[block.comm_id.astype(np.int64)[mask]])
            tags.append(block.tag[mask])
            rep = block.repeat[mask]
            sides.append(np.full(len(rep), is_send, dtype=bool))
            calls.append(rep)
            nbytes.append(rep * block.count[mask] * sizes[block.dtype_id[mask]])
    names = [""] * len(comm_gids)
    for name, gid in comm_gids.items():
        names[gid] = name
    if not srcs:
        empty = np.empty(0, dtype=np.int64)
        return ChannelAudit(
            empty, empty, empty, empty, empty, empty, empty, empty, tuple(names)
        )
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    comm = np.concatenate(comms)
    tag = np.concatenate(tags)
    side = np.concatenate(sides)
    call = np.concatenate(calls)
    byte = np.concatenate(nbytes)
    order = np.lexsort((tag, comm, dst, src))
    src, dst, comm, tag = src[order], dst[order], comm[order], tag[order]
    side, call, byte = side[order], call[order], byte[order]
    new = np.empty(len(src), dtype=bool)
    new[0] = True
    new[1:] = (
        (src[1:] != src[:-1])
        | (dst[1:] != dst[:-1])
        | (comm[1:] != comm[:-1])
        | (tag[1:] != tag[:-1])
    )
    group = np.cumsum(new) - 1
    ngroups = int(group[-1]) + 1
    totals = []
    for mask in (side, ~side):
        for weight in (call, byte):
            acc = np.zeros(ngroups, dtype=np.int64)
            np.add.at(acc, group[mask], weight[mask])
            totals.append(acc)
    return ChannelAudit(
        src=src[new],
        dst=dst[new],
        comm=comm[new],
        tag=tag[new],
        send_calls=totals[0],
        send_bytes=totals[1],
        recv_calls=totals[2],
        recv_bytes=totals[3],
        comm_names=tuple(names),
    )


# ----------------------------------------------------------------- matching


@dataclass
class MatchResult:
    """Matched point-to-point pairs over a repeat-expanded event table.

    Parallel arrays: matched pair ``i`` is the message from expanded event
    ``send_event[i]`` to ``recv_event[i]`` carrying ``nbytes[i]`` bytes.
    Pairs are ordered by channel (lexicographic (src, dst, comm, tag)),
    FIFO position within a channel — the canonical order both the
    vectorized matcher and the per-event oracle produce, which is what
    makes bit-identity a meaningful gate.
    """

    send_event: np.ndarray  # int64[m]
    recv_event: np.ndarray  # int64[m]
    nbytes: np.ndarray  # int64[m]

    def __len__(self) -> int:
        return len(self.send_event)


def _unbalanced_message(
    s_keys: tuple[np.ndarray, ...],
    r_keys: tuple[np.ndarray, ...],
    comm_names: tuple[str, ...],
) -> str:
    """Diagnose which channels have unequal send/recv counts."""

    def counts(keys: tuple[np.ndarray, ...]) -> dict[tuple, int]:
        if keys[0].size == 0:
            return {}
        stacked = np.stack(keys, axis=1)
        uniq, cnt = np.unique(stacked, axis=0, return_counts=True)
        return {tuple(int(v) for v in row): int(c) for row, c in zip(uniq, cnt)}

    sc = counts(s_keys)
    rc = counts(r_keys)
    bad = sorted(k for k in set(sc) | set(rc) if sc.get(k, 0) != rc.get(k, 0))
    parts = []
    for src, dst, comm, tag in bad[:3]:
        parts.append(
            f"(src={src}, dst={dst}, comm={comm_names[comm]!r}, tag={tag}): "
            f"{sc.get((src, dst, comm, tag), 0)} send(s) vs "
            f"{rc.get((src, dst, comm, tag), 0)} recv(s)"
        )
    suffix = ", ..." if len(bad) > 3 else ""
    return (
        f"unmatched point-to-point traffic on {len(bad)} channel(s): "
        + "; ".join(parts)
        + suffix
    )


def match_events(table: EventTable) -> MatchResult:
    """Vectorized FIFO matcher: one stable sort per side, then zip.

    Expanded event IDs ascend in program order per rank, so a stable
    channel sort preserves each channel's FIFO order on both sides; after
    verifying the two sorted channel-key sequences are identical, the k-th
    sorted send *is* the match of the k-th sorted recv.  Imbalanced
    channels (truncated traces) raise :class:`MatchError` naming the
    channels and counts.
    """
    sid = np.flatnonzero(table.kind == KIND_P2P_SEND)
    rid = np.flatnonzero(table.kind == KIND_P2P_RECV)
    s_keys = (table.rank[sid], table.peer[sid], table.comm[sid], table.tag[sid])
    r_keys = (table.peer[rid], table.rank[rid], table.comm[rid], table.tag[rid])
    s_order = _channel_sort(*s_keys)
    r_order = _channel_sort(*r_keys)
    s_sorted = tuple(k[s_order] for k in s_keys)
    r_sorted = tuple(k[r_order] for k in r_keys)
    if len(sid) != len(rid) or not all(
        np.array_equal(a, b) for a, b in zip(s_sorted, r_sorted)
    ):
        raise MatchError(
            _unbalanced_message(s_keys, r_keys, table.comm_names)
        )
    send_event = sid[s_order]
    recv_event = rid[r_order]
    send_bytes = table.nbytes[send_event]
    recv_bytes = table.nbytes[recv_event]
    if not np.array_equal(send_bytes, recv_bytes):
        i = int(np.flatnonzero(send_bytes != recv_bytes)[0])
        raise MatchError(
            f"matched send/recv payload mismatch on channel "
            f"(src={int(s_sorted[0][i])}, dst={int(s_sorted[1][i])}, "
            f"comm={table.comm_names[int(s_sorted[2][i])]!r}, "
            f"tag={int(s_sorted[3][i])}): "
            f"send {int(send_bytes[i])} B vs recv {int(recv_bytes[i])} B"
        )
    return MatchResult(send_event, recv_event, send_bytes)


def _channel_sort(
    src: np.ndarray, dst: np.ndarray, comm: np.ndarray, tag: np.ndarray
) -> np.ndarray:
    """Stable sort by (src, dst, comm, tag).

    When the key ranges are small enough, the four keys are packed into a
    single int64 and sorted in one pass — 3-4x faster than a four-key
    lexsort on multi-million-event tables, with an identical (stable)
    permutation.  Arbitrary (e.g. negative or huge) tag values fall back
    to the general lexsort.
    """
    n = len(src)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    maxes = [int(k.max()) + 1 if n else 1 for k in (src, dst, comm, tag)]
    mins = [int(k.min()) for k in (src, dst, comm, tag)]
    if min(mins) >= 0:
        span = 1
        for m in maxes:
            span *= m
        if span < 2**62:
            code = ((src * maxes[1] + dst) * maxes[2] + comm) * maxes[3] + tag
            return np.argsort(code, kind="stable")
    return np.lexsort((tag, comm, dst, src))


def match_events_oracle(table: EventTable) -> MatchResult:
    """Per-event reference matcher: one channel queue at a time.

    Walks the expanded event stream one record at a time, appending each
    send and recv to its channel's queue, then pairs queues positionally in
    sorted channel order — the textbook statement of the non-overtaking
    rule.  Kept deliberately scalar as the semantic oracle the vectorized
    matcher is pinned against (``repro bench critpath`` requires
    bit-identical pair arrays and a >=5x vectorized speedup).
    """
    channels: dict[tuple[int, int, int, int], tuple[list[int], list[int]]] = {}
    rank, kind, peer = table.rank, table.kind, table.peer
    comm, tag = table.comm, table.tag
    for e in range(len(table)):
        k = kind[e]
        if k == KIND_P2P_SEND:
            key = (int(rank[e]), int(peer[e]), int(comm[e]), int(tag[e]))
            channels.setdefault(key, ([], []))[0].append(e)
        elif k == KIND_P2P_RECV:
            key = (int(peer[e]), int(rank[e]), int(comm[e]), int(tag[e]))
            channels.setdefault(key, ([], []))[1].append(e)
    sends: list[int] = []
    recvs: list[int] = []
    for key in sorted(channels):
        s, r = channels[key]
        if len(s) != len(r):
            src, dst, c, t = key
            raise MatchError(
                f"unmatched point-to-point traffic on 1 channel(s): "
                f"(src={src}, dst={dst}, comm={table.comm_names[c]!r}, "
                f"tag={t}): {len(s)} send(s) vs {len(r)} recv(s)"
            )
        sends.extend(s)
        recvs.extend(r)
    send_event = np.array(sends, dtype=np.int64)
    recv_event = np.array(recvs, dtype=np.int64)
    return MatchResult(send_event, recv_event, table.nbytes[send_event])


# ------------------------------------------------------- collective instances


def collective_edges(
    table: EventTable, communicators, collective="flat"
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Fan-in/fan-out message edges between aligned collective instances.

    MPI orders collectives on a communicator purely by call position, so
    the i-th collective call by each member forms one logical instance.
    Each instance's message set is produced by the ``collective`` engine's
    phased batch expansion, and every message becomes an edge between the
    sender's and receiver's event for that instance.  Self-messages (the
    translation's paper convention includes them for volume accounting)
    are dropped — a rank's dependence on itself is already program order.

    Returns ``(src_event, dst_event, nbytes, after)`` parallel arrays;
    ``after[i]`` marks messages that semantically depart only after the
    sender finished *receiving* within the same collective (the broadcast
    half of ALLREDUCE, every SCAN/EXSCAN chain link, the non-root rounds
    of tree schedules), which the DAG routes from the sender's completion
    node to keep the phases sequential.

    Raises :class:`MatchError` on misaligned sequences: a member calling a
    different number of collectives than its peers, or instance k
    recording different ops/roots across participants.
    """
    from ..collectives.registry import get_algorithm

    engine = get_algorithm(collective)
    cid = np.flatnonzero(table.kind == KIND_COLLECTIVE)
    empty = np.empty(0, dtype=np.int64)
    if cid.size == 0:
        return empty, empty.copy(), empty.copy(), np.empty(0, dtype=bool)
    comm_c = table.comm[cid]
    rank_c = table.rank[cid]
    order = np.lexsort((rank_c, comm_c))  # stable: event order within groups
    sid = cid[order]
    sc = comm_c[order]
    sr = rank_c[order]
    new = np.empty(len(sid), dtype=bool)
    new[0] = True
    new[1:] = (sc[1:] != sc[:-1]) | (sr[1:] != sr[:-1])
    pos = np.arange(len(sid), dtype=np.int64)
    group = np.cumsum(new) - 1
    inst = pos - pos[new][group]

    out_src: list[np.ndarray] = []
    out_dst: list[np.ndarray] = []
    out_bytes: list[np.ndarray] = []
    out_after: list[np.ndarray] = []
    for gid in np.unique(sc):
        name = table.comm_names[int(gid)]
        comm = communicators.get(name)
        members = np.asarray(comm.members, dtype=np.int64)
        n = len(members)
        sel = sc == gid
        ranks_g = sr[sel]
        events_g = sid[sel]
        inst_g = inst[sel]
        mmax = int(members.max())
        to_local = np.full(mmax + 1, -1, dtype=np.int64)
        to_local[members] = np.arange(n, dtype=np.int64)
        in_range = (ranks_g >= 0) & (ranks_g <= mmax)
        local_g = np.where(in_range, to_local[np.clip(ranks_g, 0, mmax)], -1)
        if local_g.min() < 0:
            bad = int(ranks_g[local_g < 0][0])
            raise MatchError(
                f"rank {bad} records collectives on communicator {name!r} "
                f"but is not a member"
            )
        counts = np.bincount(local_g, minlength=n)
        if counts.min() != counts.max():
            lo = int(np.argmin(counts))
            hi = int(np.argmax(counts))
            raise MatchError(
                f"collective participation mismatch on communicator "
                f"{name!r}: rank {int(members[hi])} called "
                f"{int(counts[hi])} collective(s) but rank "
                f"{int(members[lo])} called {int(counts[lo])}"
            )
        k = int(counts[0])
        if k == 0 or n == 1:
            continue
        lookup = np.empty((n, k), dtype=np.int64)
        lookup[local_g, inst_g] = events_g
        op_mat = table.op[lookup]
        root_mat = table.root[lookup]
        bytes_mat = table.nbytes[lookup]
        for mat, what in ((op_mat, "op"), (root_mat, "root")):
            diff = mat != mat[0]
            if diff.any():
                r, i = np.argwhere(diff)[0]
                raise MatchError(
                    f"misaligned collective sequence on communicator "
                    f"{name!r}: instance {int(i)} records {what} "
                    f"{int(mat[r, i])} at rank {int(members[r])} but "
                    f"{what} {int(mat[0, i])} at rank {int(members[0])}"
                )
        ones = np.ones(n, dtype=np.int64)
        for i in range(k):
            op = OPS[int(op_mat[0, i])]
            batches = expand_collective_batch_phased(
                engine, op, comm, members, bytes_mat[:, i], root_mat[:, i], ones
            )
            for bsrc, bdst, bpm, _calls, after in batches:
                keep = bsrc != bdst
                if not keep.any():
                    continue
                bsrc, bdst, bpm = bsrc[keep], bdst[keep], bpm[keep]
                out_src.append(lookup[to_local[bsrc], i])
                out_dst.append(lookup[to_local[bdst], i])
                out_bytes.append(bpm.astype(np.int64, copy=False))
                out_after.append(np.full(len(bsrc), after, dtype=bool))
    if not out_src:
        return empty, empty.copy(), empty.copy(), np.empty(0, dtype=bool)
    return (
        np.concatenate(out_src),
        np.concatenate(out_dst),
        np.concatenate(out_bytes),
        np.concatenate(out_after),
    )


def expand_collective_batch_phased(engine, op, comm, callers, nbytes, roots, calls):
    """Thin indirection over the engine's phased batch expansion.

    Exists so tests can spy on the reuse point; semantics are exactly
    :meth:`repro.collectives.base.CollectiveAlgorithm.expand_batch_phased`.
    """
    return engine.expand_batch_phased(op, comm, callers, nbytes, roots, calls)
