"""The repro-dumpi ASCII trace format.

SST-dumpi stores one record per MPI call with wall-clock enter/leave times
and full call parameters; ``dumpi2ascii`` renders them as text.  This module
defines an equivalent line-oriented ASCII format so the analysis pipeline
can genuinely run from serialized traces:

Header (``%``-prefixed, order fixed)::

    %repro-dumpi 1
    %app AMG
    %ranks 27
    %time 0.156
    %variant b            (optional)
    %derived 1            (optional; app uses opaque derived datatypes)
    %dtype NAME size=N    (optional; one per non-predefined datatype)
    %comm NAME members=0,1,2   (optional; one per non-world communicator)

Records (one per line)::

    P2P  MPI_Isend caller=3 peer=5 count=1024 dtype=MPI_BYTE tag=0 \
         comm=MPI_COMM_WORLD t=0.001,0.002 repeat=50
    COLL MPI_Allreduce caller=3 count=64 dtype=MPI_BYTE root=0 \
         comm=MPI_COMM_WORLD t=0.003,0.004 repeat=50

``repeat`` compresses identical back-to-back calls (see
:mod:`repro.core.events`); ``repeat=1`` may be omitted.  Lines starting with
``#`` and blank lines are ignored.
"""

from __future__ import annotations

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "P2P_TAG",
    "COLL_TAG",
    "format_float",
]

MAGIC = "%repro-dumpi"
FORMAT_VERSION = 1
P2P_TAG = "P2P"
COLL_TAG = "COLL"


def format_float(x: float) -> str:
    """Compact, round-trip-exact float rendering for timestamps."""
    return repr(float(x))
