"""Parse repro-dumpi ASCII traces.

The parser is strict about structure (magic line, required header fields,
known record tags) but tolerant about record order and unknown datatypes —
an unknown datatype name resolves through the registry's opaque 1-byte
convention, exactly how the paper treats underdocumented derived types.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

from ..core.communicator import Communicator
from ..core.datatypes import MPIDatatype
from ..core.events import CollectiveEvent, CollectiveOp, P2P_CALLS, P2PEvent
from ..core.trace import Trace, TraceMetadata
from .format import COLL_TAG, FORMAT_VERSION, MAGIC, P2P_TAG

__all__ = ["ParseError", "read_trace", "load_trace", "loads_trace"]

_OPS_BY_NAME = {op.value: op for op in CollectiveOp}


class ParseError(ValueError):
    """A malformed repro-dumpi trace, with the offending line number."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def _parse_kv(parts: list[str], lineno: int) -> dict[str, str]:
    out: dict[str, str] = {}
    for part in parts:
        if "=" not in part:
            raise ParseError(lineno, f"expected key=value, got {part!r}")
        key, value = part.split("=", 1)
        out[key] = value
    return out


def _require(kv: dict[str, str], key: str, lineno: int) -> str:
    try:
        return kv[key]
    except KeyError:
        raise ParseError(lineno, f"missing required field {key!r}") from None


def _parse_times(kv: dict[str, str], lineno: int) -> tuple[float, float]:
    raw = kv.get("t", "0,0")
    try:
        enter_s, leave_s = raw.split(",")
        return float(enter_s), float(leave_s)
    except ValueError:
        raise ParseError(lineno, f"malformed timestamp pair {raw!r}") from None


def read_trace(stream: TextIO) -> Trace:
    """Parse one trace from an open text stream."""
    header: dict[str, str] = {}
    dtypes: list[tuple[str, int]] = []
    comms: list[tuple[str, tuple[int, ...]]] = []
    records: list[tuple[int, list[str]]] = []

    first = stream.readline()
    if not first.startswith(MAGIC):
        raise ParseError(1, f"not a repro-dumpi trace (expected {MAGIC!r} magic)")
    try:
        version = int(first.split()[1])
    except (IndexError, ValueError):
        raise ParseError(1, "malformed magic line") from None
    if version != FORMAT_VERSION:
        raise ParseError(1, f"unsupported format version {version}")

    for lineno, line in enumerate(stream, start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("%"):
            parts = line[1:].split()
            key = parts[0]
            if key == "dtype":
                kv = _parse_kv(parts[2:], lineno)
                dtypes.append((parts[1], int(_require(kv, "size", lineno))))
            elif key == "comm":
                kv = _parse_kv(parts[2:], lineno)
                members = tuple(
                    int(x) for x in _require(kv, "members", lineno).split(",")
                )
                comms.append((parts[1], members))
            else:
                header[key] = parts[1] if len(parts) > 1 else ""
        else:
            records.append((lineno, line.split()))

    for key in ("app", "ranks", "time"):
        if key not in header:
            raise ParseError(1, f"missing %{key} header")
    meta = TraceMetadata(
        app=header["app"],
        num_ranks=int(header["ranks"]),
        execution_time=float(header["time"]),
        variant=header.get("variant", ""),
        uses_derived_types=header.get("derived", "0") == "1",
    )
    trace = Trace(meta)
    for name, size in dtypes:
        trace.datatypes.commit(MPIDatatype(name, size, derived=True))
    assert trace.communicators is not None
    for name, members in comms:
        trace.communicators.add(Communicator(name, members))

    for lineno, parts in records:
        tag = parts[0]
        if tag == P2P_TAG:
            func = parts[1]
            direction = P2P_CALLS.get(func)
            if direction is None:
                raise ParseError(lineno, f"unknown p2p function {func!r}")
            kv = _parse_kv(parts[2:], lineno)
            t_enter, t_leave = _parse_times(kv, lineno)
            trace.add(
                P2PEvent(
                    caller=int(_require(kv, "caller", lineno)),
                    peer=int(_require(kv, "peer", lineno)),
                    count=int(_require(kv, "count", lineno)),
                    dtype=_require(kv, "dtype", lineno),
                    direction=direction,
                    func=func,
                    tag=int(kv.get("tag", "0")),
                    comm=kv.get("comm", "MPI_COMM_WORLD"),
                    t_enter=t_enter,
                    t_leave=t_leave,
                    repeat=int(kv.get("repeat", "1")),
                )
            )
        elif tag == COLL_TAG:
            func = parts[1]
            op = _OPS_BY_NAME.get(func)
            if op is None:
                raise ParseError(lineno, f"unknown collective {func!r}")
            kv = _parse_kv(parts[2:], lineno)
            t_enter, t_leave = _parse_times(kv, lineno)
            trace.add(
                CollectiveEvent(
                    caller=int(_require(kv, "caller", lineno)),
                    op=op,
                    count=int(kv.get("count", "0")),
                    dtype=kv.get("dtype", "MPI_BYTE"),
                    root=int(kv.get("root", "0")),
                    comm=kv.get("comm", "MPI_COMM_WORLD"),
                    t_enter=t_enter,
                    t_leave=t_leave,
                    repeat=int(kv.get("repeat", "1")),
                )
            )
        else:
            raise ParseError(lineno, f"unknown record tag {tag!r}")
    return trace


def load_trace(path: str | Path) -> Trace:
    """Parse a trace file."""
    with open(path, "r", encoding="utf-8") as fh:
        return read_trace(fh)


def loads_trace(text: str) -> Trace:
    """Parse a trace from a string."""
    return read_trace(io.StringIO(text))
