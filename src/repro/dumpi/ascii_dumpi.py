"""Converter for real SST-dumpi ``dumpi2ascii`` output.

The Sandia trace portal ships binary dumpi traces; ``dumpi2ascii`` renders
them as one text file per rank, with records of the form::

    MPI_Send entering at walltime 11651.672436, cputime 0.000112 seconds in thread 0.
    int count=4096
    MPI_Datatype datatype=2 (MPI_CHAR)
    int dest=5
    int tag=0
    MPI_Comm comm=2 (MPI_COMM_WORLD)
    MPI_Send returning at walltime 11651.672440, cputime 0.000116 seconds in thread 0.

This module parses that layout into :class:`~repro.core.trace.Trace`
objects so the full analysis pipeline runs unchanged on real traces when
they are available.  The parser is deliberately tolerant: unknown MPI
functions are skipped (dumpi records *every* call, most of which carry no
traffic), unknown datatypes resolve through the registry's 1-byte
convention (the paper's treatment of underdocumented derived types), and
per-call fields are matched by name with sensible fallbacks
(``sendcount``/``count``, ``dest``/``source``/``root``).

Cartesian/sub-communicator calls cannot be reconstructed from dumpi output
(the paper excludes such traces, §4.3); records referencing a communicator
other than ``MPI_COMM_WORLD``/``MPI_COMM_SELF`` raise
:class:`UnsupportedCommunicatorError` unless ``strict=False``.
"""

from __future__ import annotations

import re
from dataclasses import replace
from pathlib import Path
from typing import Iterable, TextIO

from ..core.events import CollectiveOp, Direction, P2P_CALLS, P2PEvent, CollectiveEvent
from ..core.trace import Trace, TraceMetadata

__all__ = [
    "UnsupportedCommunicatorError",
    "parse_rank_stream",
    "load_rank_file",
    "load_dumpi2ascii_dir",
    "RANK_FILE_PATTERN",
]

#: dumpi2ascii file naming: <prefix>-<rank>.txt (rank zero-padded).
RANK_FILE_PATTERN = re.compile(r"-(\d+)\.txt$")

_ENTER_RE = re.compile(
    r"^(MPI_\w+) entering at walltime ([0-9.eE+-]+), cputime ([0-9.eE+-]+)"
)
_RETURN_RE = re.compile(
    r"^(MPI_\w+) returning at walltime ([0-9.eE+-]+)"
)
_FIELD_RE = re.compile(
    r"^\s*(?:\w[\w\s*]*\s)?(\w+)=(-?\d+)(?:\s+\(([\w-]+)\))?"
)

_COLLECTIVE_BY_NAME = {op.value: op for op in CollectiveOp}

#: World-like communicator names dumpi prints; everything else is a
#: sub-communicator we cannot resolve.
_WORLD_COMMS = {"MPI_COMM_WORLD", "MPI_COMM_SELF"}


class UnsupportedCommunicatorError(ValueError):
    """A record references a communicator whose rank mapping is unknown."""


class _Record:
    """One MPI call being assembled."""

    __slots__ = ("func", "t_enter", "t_leave", "ints", "names")

    def __init__(self, func: str, t_enter: float) -> None:
        self.func = func
        self.t_enter = t_enter
        self.t_leave = t_enter
        self.ints: dict[str, int] = {}
        self.names: dict[str, str] = {}


def _first(record: _Record, *keys: str, default: int | None = None) -> int | None:
    for key in keys:
        if key in record.ints:
            return record.ints[key]
    return default


def _check_comm(record: _Record, strict: bool) -> bool:
    """True when the record may be translated; raises/False otherwise."""
    comm_name = record.names.get("comm", "MPI_COMM_WORLD")
    if comm_name in _WORLD_COMMS:
        return True
    if strict:
        raise UnsupportedCommunicatorError(
            f"{record.func} uses communicator {comm_name!r}; dumpi traces do "
            "not carry sub-communicator rank mappings (paper §4.3 exclusion)"
        )
    return False


def parse_rank_stream(
    stream: TextIO | Iterable[str],
    rank: int,
    strict: bool = True,
) -> tuple[list, float, float]:
    """Parse one rank's dumpi2ascii text.

    Returns ``(events, first_walltime, last_walltime)``.  Events carry the
    given caller rank; receives are kept (they do not inject traffic but
    complete the record, as in real traces).
    """
    events: list = []
    t_min = float("inf")
    t_max = float("-inf")
    current: _Record | None = None

    for line in stream:
        line = line.rstrip("\n")
        enter = _ENTER_RE.match(line)
        if enter:
            current = _Record(enter.group(1), float(enter.group(2)))
            t_min = min(t_min, current.t_enter)
            continue
        ret = _RETURN_RE.match(line)
        if ret and current is not None and ret.group(1) == current.func:
            current.t_leave = float(ret.group(2))
            t_max = max(t_max, current.t_leave)
            event = _translate(current, rank, strict)
            if event is not None:
                events.append(event)
            current = None
            continue
        if current is not None:
            field = _FIELD_RE.match(line)
            if field:
                key, value, name = field.group(1), int(field.group(2)), field.group(3)
                current.ints[key] = value
                if name:
                    current.names[key] = name
    if t_min > t_max:
        t_min = t_max = 0.0
    return events, t_min, t_max


def _translate(record: _Record, rank: int, strict: bool):
    """Turn one assembled record into a trace event (or None to skip)."""
    func = record.func
    if func in P2P_CALLS:
        if not _check_comm(record, strict):
            return None
        direction = P2P_CALLS[func]
        peer_key = "dest" if direction is Direction.SEND else "source"
        peer = _first(record, peer_key, "dest", "source")
        count = _first(record, "count", default=0)
        if peer is None or peer < 0:  # MPI_ANY_SOURCE etc.
            return None
        return P2PEvent(
            caller=rank,
            peer=int(peer),
            count=int(count or 0),
            dtype=record.names.get("datatype", "MPI_BYTE"),
            direction=direction,
            func=func,
            tag=int(_first(record, "tag", default=0) or 0),
            t_enter=record.t_enter,
            t_leave=record.t_leave,
        )
    op = _COLLECTIVE_BY_NAME.get(func)
    if op is not None:
        if not _check_comm(record, strict):
            return None
        count = _first(
            record, "sendcount", "count", "recvcount", "sendcounts", default=0
        )
        dtype = record.names.get(
            "sendtype", record.names.get("datatype", "MPI_BYTE")
        )
        if op is CollectiveOp.BARRIER:
            count = 0
        return CollectiveEvent(
            caller=rank,
            op=op,
            count=max(int(count or 0), 0),
            dtype=dtype,
            root=int(_first(record, "root", default=0) or 0),
            t_enter=record.t_enter,
            t_leave=record.t_leave,
        )
    return None  # bookkeeping calls (Comm_rank, Wait, Init, ...) carry no traffic


def load_rank_file(path: str | Path, rank: int, strict: bool = True):
    """Parse one per-rank dumpi2ascii file."""
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        return parse_rank_stream(fh, rank, strict)


def load_dumpi2ascii_dir(
    directory: str | Path,
    app: str,
    strict: bool = True,
) -> Trace:
    """Assemble a trace from a directory of dumpi2ascii per-rank files.

    Files are matched by the ``<prefix>-<rank>.txt`` convention; the rank
    count is the number of files, the execution time the span between the
    earliest and latest walltime across ranks.
    """
    directory = Path(directory)
    rank_files: dict[int, Path] = {}
    for path in sorted(directory.glob("*.txt")):
        match = RANK_FILE_PATTERN.search(path.name)
        if match:
            rank_files[int(match.group(1))] = path
    if not rank_files:
        raise FileNotFoundError(
            f"no dumpi2ascii rank files (*-NNNN.txt) under {directory}"
        )
    num_ranks = max(rank_files) + 1
    if set(rank_files) != set(range(num_ranks)):
        missing = sorted(set(range(num_ranks)) - set(rank_files))
        raise ValueError(f"missing rank files for ranks {missing[:10]}")

    all_events = []
    t_min = float("inf")
    t_max = float("-inf")
    for rank in range(num_ranks):
        events, lo, hi = load_rank_file(rank_files[rank], rank, strict)
        all_events.extend(events)
        if events:
            t_min = min(t_min, lo)
            t_max = max(t_max, hi)
    duration = max(t_max - t_min, 1e-9) if t_min <= t_max else 1e-9

    trace = Trace(
        TraceMetadata(app=app, num_ranks=num_ranks, execution_time=duration)
    )
    if not all_events:
        return trace
    # normalize walltimes to start at zero, preserving order
    all_events.sort(key=lambda ev: ev.t_enter)
    for ev in all_events:
        trace.add(
            replace(ev, t_enter=ev.t_enter - t_min, t_leave=ev.t_leave - t_min)
        )
    return trace
