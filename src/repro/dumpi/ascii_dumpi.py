"""Converter for real SST-dumpi ``dumpi2ascii`` output.

The Sandia trace portal ships binary dumpi traces; ``dumpi2ascii`` renders
them as one text file per rank, with records of the form::

    MPI_Send entering at walltime 11651.672436, cputime 0.000112 seconds in thread 0.
    int count=4096
    MPI_Datatype datatype=2 (MPI_CHAR)
    int dest=5
    int tag=0
    MPI_Comm comm=2 (MPI_COMM_WORLD)
    MPI_Send returning at walltime 11651.672440, cputime 0.000116 seconds in thread 0.

This module parses that layout into :class:`~repro.core.trace.Trace`
objects so the full analysis pipeline runs unchanged on real traces when
they are available.  The parser decodes each rank file into columnar
accumulators and the directory loader assembles them directly into
:class:`~repro.core.blocks.EventBlock` arrays — no per-record Python event
objects are created on the loading path (the legacy ``events`` view stays
available lazily).

The parser is deliberately tolerant: unknown MPI functions are skipped
(dumpi records *every* call, most of which carry no traffic), unknown
datatypes resolve through the registry's 1-byte convention (the paper's
treatment of underdocumented derived types), and per-call fields are
matched by name with sensible fallbacks (``sendcount``/``count``,
``dest``/``source``/``root``).

Cartesian/sub-communicator calls cannot be reconstructed from dumpi output
(the paper excludes such traces, §4.3); records referencing a communicator
other than ``MPI_COMM_WORLD``/``MPI_COMM_SELF`` raise
:class:`UnsupportedCommunicatorError` unless ``strict=False``.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, TextIO

import numpy as np

from ..core.blocks import (
    KIND_COLLECTIVE,
    KIND_P2P_RECV,
    KIND_P2P_SEND,
    OP_CODE,
    EventBlock,
    _Interner,
)
from ..core.events import CollectiveOp, Direction, P2P_CALLS
from ..core.trace import Trace, TraceMetadata

__all__ = [
    "UnsupportedCommunicatorError",
    "parse_rank_stream",
    "load_rank_file",
    "load_dumpi2ascii_dir",
    "stream_dumpi2ascii_dir",
    "RANK_FILE_PATTERN",
]

#: dumpi2ascii file naming: <prefix>-<rank>.txt (rank zero-padded).
RANK_FILE_PATTERN = re.compile(r"-(\d+)\.txt$")

_ENTER_RE = re.compile(
    r"^(MPI_\w+) entering at walltime ([0-9.eE+-]+), cputime ([0-9.eE+-]+)"
)
_RETURN_RE = re.compile(
    r"^(MPI_\w+) returning at walltime ([0-9.eE+-]+)"
)
_FIELD_RE = re.compile(
    r"^\s*(?:\w[\w\s*]*\s)?(\w+)=(-?\d+)(?:\s+\(([\w-]+)\))?"
)

_COLLECTIVE_BY_NAME = {op.value: op for op in CollectiveOp}

#: World-like communicator names dumpi prints; everything else is a
#: sub-communicator we cannot resolve.
_WORLD_COMMS = {"MPI_COMM_WORLD", "MPI_COMM_SELF"}

_KIND_OF_DIRECTION = {
    Direction.SEND: KIND_P2P_SEND,
    Direction.RECV: KIND_P2P_RECV,
}


class UnsupportedCommunicatorError(ValueError):
    """A record references a communicator whose rank mapping is unknown."""


class _Record:
    """One MPI call being assembled."""

    __slots__ = ("func", "t_enter", "t_leave", "ints", "names")

    def __init__(self, func: str, t_enter: float) -> None:
        self.func = func
        self.t_enter = t_enter
        self.t_leave = t_enter
        self.ints: dict[str, int] = {}
        self.names: dict[str, str] = {}


class _Columns:
    """Columnar accumulator for one rank's decoded records.

    String fields are interned through shared tables so per-rank columns
    concatenate into one :class:`EventBlock` without re-mapping.
    """

    __slots__ = (
        "kind", "peer", "count", "dtype_id", "op", "root", "tag",
        "func_id", "t_enter", "t_leave", "_dtypes", "_funcs",
    )

    def __init__(self, dtypes: _Interner, funcs: _Interner) -> None:
        self.kind: list[int] = []
        self.peer: list[int] = []
        self.count: list[int] = []
        self.dtype_id: list[int] = []
        self.op: list[int] = []
        self.root: list[int] = []
        self.tag: list[int] = []
        self.func_id: list[int] = []
        self.t_enter: list[float] = []
        self.t_leave: list[float] = []
        self._dtypes = dtypes
        self._funcs = funcs

    def __len__(self) -> int:
        return len(self.kind)

    def add_p2p(
        self,
        direction: Direction,
        peer: int,
        count: int,
        dtype: str,
        func: str,
        tag: int,
        t_enter: float,
        t_leave: float,
    ) -> None:
        self.kind.append(_KIND_OF_DIRECTION[direction])
        self.peer.append(peer)
        self.count.append(count)
        self.dtype_id.append(self._dtypes(dtype))
        self.op.append(-1)
        self.root.append(0)
        self.tag.append(tag)
        self.func_id.append(self._funcs(func))
        self.t_enter.append(t_enter)
        self.t_leave.append(t_leave)

    def add_collective(
        self,
        op: CollectiveOp,
        count: int,
        dtype: str,
        root: int,
        t_enter: float,
        t_leave: float,
    ) -> None:
        self.kind.append(KIND_COLLECTIVE)
        self.peer.append(-1)
        self.count.append(count)
        self.dtype_id.append(self._dtypes(dtype))
        self.op.append(OP_CODE[op])
        self.root.append(root)
        self.tag.append(0)
        self.func_id.append(-1)
        self.t_enter.append(t_enter)
        self.t_leave.append(t_leave)

    def to_block(self, rank: int) -> EventBlock:
        k = len(self)
        return EventBlock(
            kind=np.array(self.kind, dtype=np.uint8),
            caller=np.full(k, rank, dtype=np.int64),
            peer=np.array(self.peer, dtype=np.int64),
            count=np.array(self.count, dtype=np.int64),
            dtype_id=np.array(self.dtype_id, dtype=np.int32),
            op=np.array(self.op, dtype=np.int16),
            root=np.array(self.root, dtype=np.int64),
            comm_id=np.zeros(k, dtype=np.int32),
            tag=np.array(self.tag, dtype=np.int64),
            func_id=np.array(self.func_id, dtype=np.int16),
            repeat=np.ones(k, dtype=np.int64),
            t_enter=np.array(self.t_enter, dtype=np.float64),
            t_leave=np.array(self.t_leave, dtype=np.float64),
            dtype_names=self._dtypes.names() or ("MPI_BYTE",),
            comm_names=("MPI_COMM_WORLD",),
            func_names=self._funcs.names(),
        )


def _first(record: _Record, *keys: str, default: int | None = None) -> int | None:
    for key in keys:
        if key in record.ints:
            return record.ints[key]
    return default


def _check_comm(record: _Record, strict: bool) -> bool:
    """True when the record may be translated; raises/False otherwise."""
    comm_name = record.names.get("comm", "MPI_COMM_WORLD")
    if comm_name in _WORLD_COMMS:
        return True
    if strict:
        raise UnsupportedCommunicatorError(
            f"{record.func} uses communicator {comm_name!r}; dumpi traces do "
            "not carry sub-communicator rank mappings (paper §4.3 exclusion)"
        )
    return False


def _parse_columns(
    stream: TextIO | Iterable[str],
    columns: _Columns,
    strict: bool,
) -> tuple[float, float]:
    """Decode one rank's dumpi2ascii text into ``columns``.

    Returns ``(first_walltime, last_walltime)``.
    """
    t_min = float("inf")
    t_max = float("-inf")
    current: _Record | None = None

    for line in stream:
        line = line.rstrip("\n")
        enter = _ENTER_RE.match(line)
        if enter:
            current = _Record(enter.group(1), float(enter.group(2)))
            t_min = min(t_min, current.t_enter)
            continue
        ret = _RETURN_RE.match(line)
        if ret and current is not None and ret.group(1) == current.func:
            current.t_leave = float(ret.group(2))
            t_max = max(t_max, current.t_leave)
            _translate(current, columns, strict)
            current = None
            continue
        if current is not None:
            field = _FIELD_RE.match(line)
            if field:
                key, value, name = field.group(1), int(field.group(2)), field.group(3)
                current.ints[key] = value
                if name:
                    current.names[key] = name
    if t_min > t_max:
        t_min = t_max = 0.0
    return t_min, t_max


def parse_rank_stream(
    stream: TextIO | Iterable[str],
    rank: int,
    strict: bool = True,
) -> tuple[list, float, float]:
    """Parse one rank's dumpi2ascii text.

    Returns ``(events, first_walltime, last_walltime)``.  Events carry the
    given caller rank; receives are kept (they do not inject traffic but
    complete the record, as in real traces).
    """
    columns = _Columns(_Interner(), _Interner())
    t_min, t_max = _parse_columns(stream, columns, strict)
    return columns.to_block(rank).to_events(), t_min, t_max


def _translate(record: _Record, columns: _Columns, strict: bool) -> None:
    """Decode one assembled record into the columns (or skip it)."""
    func = record.func
    if func in P2P_CALLS:
        if not _check_comm(record, strict):
            return
        direction = P2P_CALLS[func]
        peer_key = "dest" if direction is Direction.SEND else "source"
        peer = _first(record, peer_key, "dest", "source")
        count = _first(record, "count", default=0)
        if peer is None or peer < 0:  # MPI_ANY_SOURCE etc.
            return
        columns.add_p2p(
            direction=direction,
            peer=int(peer),
            count=int(count or 0),
            dtype=record.names.get("datatype", "MPI_BYTE"),
            func=func,
            tag=int(_first(record, "tag", default=0) or 0),
            t_enter=record.t_enter,
            t_leave=record.t_leave,
        )
        return
    op = _COLLECTIVE_BY_NAME.get(func)
    if op is not None:
        if not _check_comm(record, strict):
            return
        count = _first(
            record, "sendcount", "count", "recvcount", "sendcounts", default=0
        )
        dtype = record.names.get(
            "sendtype", record.names.get("datatype", "MPI_BYTE")
        )
        if op is CollectiveOp.BARRIER:
            count = 0
        columns.add_collective(
            op=op,
            count=max(int(count or 0), 0),
            dtype=dtype,
            root=int(_first(record, "root", default=0) or 0),
            t_enter=record.t_enter,
            t_leave=record.t_leave,
        )
    # anything else: bookkeeping calls (Comm_rank, Wait, Init, ...) carry
    # no traffic


def load_rank_file(path: str | Path, rank: int, strict: bool = True):
    """Parse one per-rank dumpi2ascii file."""
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        return parse_rank_stream(fh, rank, strict)


def _rank_files(directory: Path) -> dict[int, Path]:
    """Discover and validate the ``<prefix>-<rank>.txt`` per-rank files."""
    rank_files: dict[int, Path] = {}
    for path in sorted(directory.glob("*.txt")):
        match = RANK_FILE_PATTERN.search(path.name)
        if match:
            rank_files[int(match.group(1))] = path
    if not rank_files:
        raise FileNotFoundError(
            f"no dumpi2ascii rank files (*-NNNN.txt) under {directory}"
        )
    num_ranks = max(rank_files) + 1
    if set(rank_files) != set(range(num_ranks)):
        missing = sorted(set(range(num_ranks)) - set(rank_files))
        raise ValueError(f"missing rank files for ranks {missing[:10]}")
    return rank_files


def _parse_rank(path: Path, strict: bool) -> tuple[_Columns, float, float]:
    """Decode one rank file into fresh columns (file-local name tables)."""
    columns = _Columns(_Interner(), _Interner())
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        lo, hi = _parse_columns(fh, columns, strict)
    return columns, lo, hi


def load_dumpi2ascii_dir(
    directory: str | Path,
    app: str,
    strict: bool = True,
) -> Trace:
    """Assemble a trace from a directory of dumpi2ascii per-rank files.

    Files are matched by the ``<prefix>-<rank>.txt`` convention; the rank
    count is the number of files, the execution time the span between the
    earliest and latest walltime across ranks.  The result is a block-native
    trace: per-rank columns are concatenated, stably sorted by enter time,
    and normalized to start at walltime zero.
    """
    directory = Path(directory)
    rank_files = _rank_files(directory)
    num_ranks = len(rank_files)

    dtypes = _Interner()
    funcs = _Interner()
    blocks: list[EventBlock] = []
    t_min = float("inf")
    t_max = float("-inf")
    for rank in range(num_ranks):
        columns = _Columns(dtypes, funcs)
        with open(
            rank_files[rank], "r", encoding="utf-8", errors="replace"
        ) as fh:
            lo, hi = _parse_columns(fh, columns, strict)
        if len(columns):
            blocks.append(columns.to_block(rank))
            t_min = min(t_min, lo)
            t_max = max(t_max, hi)
    duration = max(t_max - t_min, 1e-9) if t_min <= t_max else 1e-9

    meta = TraceMetadata(app=app, num_ranks=num_ranks, execution_time=duration)
    if not blocks:
        return Trace(meta)

    # Merge the per-rank columns (they share the interner tables), stable
    # sort by enter time, normalize walltimes to start at zero.
    merged = EventBlock(
        kind=np.concatenate([b.kind for b in blocks]),
        caller=np.concatenate([b.caller for b in blocks]),
        peer=np.concatenate([b.peer for b in blocks]),
        count=np.concatenate([b.count for b in blocks]),
        dtype_id=np.concatenate([b.dtype_id for b in blocks]),
        op=np.concatenate([b.op for b in blocks]),
        root=np.concatenate([b.root for b in blocks]),
        comm_id=np.concatenate([b.comm_id for b in blocks]),
        tag=np.concatenate([b.tag for b in blocks]),
        func_id=np.concatenate([b.func_id for b in blocks]),
        repeat=np.concatenate([b.repeat for b in blocks]),
        t_enter=np.concatenate([b.t_enter for b in blocks]),
        t_leave=np.concatenate([b.t_leave for b in blocks]),
        dtype_names=dtypes.names() or ("MPI_BYTE",),
        comm_names=("MPI_COMM_WORLD",),
        func_names=funcs.names(),
    )
    order = np.argsort(merged.t_enter, kind="stable")
    sorted_block = EventBlock(
        kind=merged.kind[order],
        caller=merged.caller[order],
        peer=merged.peer[order],
        count=merged.count[order],
        dtype_id=merged.dtype_id[order],
        op=merged.op[order],
        root=merged.root[order],
        comm_id=merged.comm_id[order],
        tag=merged.tag[order],
        func_id=merged.func_id[order],
        repeat=merged.repeat[order],
        t_enter=merged.t_enter[order] - t_min,
        t_leave=merged.t_leave[order] - t_min,
        dtype_names=merged.dtype_names,
        comm_names=merged.comm_names,
        func_names=merged.func_names,
    )
    return Trace.from_blocks(meta, [sorted_block])


def stream_dumpi2ascii_dir(
    directory: str | Path,
    app: str,
    strict: bool = True,
    chunk_bytes: int | None = None,
):
    """Chunked, re-iterable variant of :func:`load_dumpi2ascii_dir`.

    Returns a :class:`~repro.core.stream.BlockStream` that parses one rank
    file at a time and emits its records as byte-bounded chunks, so peak
    memory is one rank's decoded columns plus one chunk — the
    whole-directory trace is never materialized.  The directory is parsed
    twice: once up front for the walltime extent the metadata needs, and
    once more per consuming pass.

    The one intentional difference from the in-memory loader: records are
    *not* globally time-sorted — they arrive rank-major, chronological
    within each rank, with walltimes normalized to the same global zero.
    The event *multiset* is identical, so every order-insensitive consumer
    (traffic matrices, locality metrics, simulation feeds) produces
    bit-identical results on either path; tests pin the matrix equality.
    """
    from ..core.stream import DEFAULT_CHUNK_BYTES, BlockStream, rechunk_blocks

    if chunk_bytes is None:
        chunk_bytes = DEFAULT_CHUNK_BYTES
    directory = Path(directory)
    rank_files = _rank_files(directory)
    num_ranks = len(rank_files)

    t_min = float("inf")
    t_max = float("-inf")
    for rank in range(num_ranks):
        columns, lo, hi = _parse_rank(rank_files[rank], strict)
        if len(columns):
            t_min = min(t_min, lo)
            t_max = max(t_max, hi)
    duration = max(t_max - t_min, 1e-9) if t_min <= t_max else 1e-9
    offset = t_min if t_min <= t_max else 0.0
    meta = TraceMetadata(app=app, num_ranks=num_ranks, execution_time=duration)

    def rank_blocks():
        for rank in range(num_ranks):
            columns, _, _ = _parse_rank(rank_files[rank], strict)
            if not len(columns):
                continue
            block = columns.to_block(rank)
            yield EventBlock(
                **{
                    name: getattr(block, name)
                    for name in EventBlock._COLUMN_DTYPES
                    if name not in ("t_enter", "t_leave")
                },
                t_enter=block.t_enter - offset,
                t_leave=block.t_leave - offset,
                dtype_names=block.dtype_names,
                comm_names=block.comm_names,
                func_names=block.func_names,
            )

    return BlockStream(meta, lambda: rechunk_blocks(rank_blocks(), chunk_bytes))
