"""On-disk trace repository.

Mirrors the role of Sandia's mini-app trace portal: a directory of dumpi
traces indexed by (application, rank count, variant).  Traces can be stored
explicitly (:meth:`TraceRepository.store`) or materialized on demand from
the synthetic generators (:meth:`TraceRepository.ensure`), giving the rest
of the pipeline a uniform "read trace from repository" entry point whether
the trace came from a file or a generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..core.trace import Trace
from .parser import load_trace
from .writer import dump_trace

__all__ = ["TraceKey", "TraceRepository"]


@dataclass(frozen=True, order=True)
class TraceKey:
    """Repository index entry."""

    app: str
    ranks: int
    variant: str = ""

    @property
    def filename(self) -> str:
        suffix = f"-{self.variant}" if self.variant else ""
        return f"{self.app}.{self.ranks}{suffix}.dumpi.txt"

    @staticmethod
    def from_filename(name: str) -> "TraceKey":
        if not name.endswith(".dumpi.txt"):
            raise ValueError(f"not a repository trace file: {name!r}")
        stem = name[: -len(".dumpi.txt")]
        app, _, scale = stem.rpartition(".")
        if not app:
            raise ValueError(f"malformed trace filename: {name!r}")
        ranks_s, _, variant = scale.partition("-")
        return TraceKey(app=app, ranks=int(ranks_s), variant=variant)

    @staticmethod
    def of(trace: Trace) -> "TraceKey":
        return TraceKey(trace.meta.app, trace.meta.num_ranks, trace.meta.variant)


class TraceRepository:
    """A directory of repro-dumpi traces."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_of(self, key: TraceKey) -> Path:
        return self.root / key.filename

    def __contains__(self, key: TraceKey) -> bool:
        return self.path_of(key).exists()

    def keys(self) -> list[TraceKey]:
        """All traces present on disk, sorted."""
        out = []
        for path in self.root.glob("*.dumpi.txt"):
            try:
                out.append(TraceKey.from_filename(path.name))
            except ValueError:
                continue
        return sorted(out)

    def store(self, trace: Trace) -> Path:
        """Serialize a trace into the repository (overwrites)."""
        return dump_trace(trace, self.path_of(TraceKey.of(trace)))

    def load(self, key: TraceKey) -> Trace:
        path = self.path_of(key)
        if not path.exists():
            raise FileNotFoundError(f"no trace {key} in repository {self.root}")
        trace = load_trace(path)
        stored = TraceKey.of(trace)
        if stored != key:
            raise ValueError(
                f"repository file {path.name} contains trace {stored}, "
                f"expected {key} — repository is inconsistent"
            )
        return trace

    def ensure(self, app: str, ranks: int, variant: str = "", seed: int = 0) -> Trace:
        """Load a trace, generating and caching it if absent.

        The generator import is deferred so a repository of real trace files
        can be used without the synthetic-apps subpackage.
        """
        key = TraceKey(app, ranks, variant)
        if key in self:
            return self.load(key)
        from ..apps.registry import generate_trace

        trace = generate_trace(app, ranks, variant=variant, seed=seed)
        self.store(trace)
        return trace
