"""The repro-dumpi ASCII trace format: writer, parser, repository."""

from .ascii_dumpi import (
    UnsupportedCommunicatorError,
    load_dumpi2ascii_dir,
    load_rank_file,
    parse_rank_stream,
    stream_dumpi2ascii_dir,
)
from .format import FORMAT_VERSION, MAGIC
from .parser import ParseError, load_trace, loads_trace, read_trace
from .repository import TraceKey, TraceRepository
from .writer import dump_trace, dumps_trace, write_trace

__all__ = [
    "UnsupportedCommunicatorError",
    "load_dumpi2ascii_dir",
    "load_rank_file",
    "parse_rank_stream",
    "stream_dumpi2ascii_dir",
    "FORMAT_VERSION",
    "MAGIC",
    "ParseError",
    "load_trace",
    "loads_trace",
    "read_trace",
    "TraceKey",
    "TraceRepository",
    "dump_trace",
    "dumps_trace",
    "write_trace",
]
