"""Serialize traces to the repro-dumpi ASCII format."""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

from ..core.communicator import WORLD_NAME
from ..core.datatypes import PREDEFINED_SIZES
from ..core.events import CollectiveEvent, P2PEvent
from ..core.trace import Trace
from .format import COLL_TAG, FORMAT_VERSION, MAGIC, P2P_TAG, format_float

__all__ = ["write_trace", "dump_trace", "dumps_trace"]


def _used_datatypes(trace: Trace) -> set[str]:
    return {ev.dtype for ev in trace.events}


def write_trace(trace: Trace, stream: TextIO) -> None:
    """Write one trace to an open text stream."""
    meta = trace.meta
    stream.write(f"{MAGIC} {FORMAT_VERSION}\n")
    stream.write(f"%app {meta.app}\n")
    stream.write(f"%ranks {meta.num_ranks}\n")
    stream.write(f"%time {format_float(meta.execution_time)}\n")
    if meta.variant:
        stream.write(f"%variant {meta.variant}\n")
    if meta.uses_derived_types:
        stream.write("%derived 1\n")
    for name in sorted(_used_datatypes(trace)):
        if name not in PREDEFINED_SIZES:
            stream.write(f"%dtype {name} size={trace.datatypes.size_of(name)}\n")
    assert trace.communicators is not None
    for comm_name in trace.communicators.names():
        comm = trace.communicators.get(comm_name)
        if comm_name == WORLD_NAME or comm.is_world_like:
            continue
        members = ",".join(str(m) for m in comm.members)
        stream.write(f"%comm {comm_name} members={members}\n")

    for ev in trace.events:
        if isinstance(ev, P2PEvent):
            parts = [
                P2P_TAG,
                ev.func,
                f"caller={ev.caller}",
                f"peer={ev.peer}",
                f"count={ev.count}",
                f"dtype={ev.dtype}",
                f"tag={ev.tag}",
                f"comm={ev.comm}",
                f"t={format_float(ev.t_enter)},{format_float(ev.t_leave)}",
            ]
        elif isinstance(ev, CollectiveEvent):
            parts = [
                COLL_TAG,
                ev.op.value,
                f"caller={ev.caller}",
                f"count={ev.count}",
                f"dtype={ev.dtype}",
                f"root={ev.root}",
                f"comm={ev.comm}",
                f"t={format_float(ev.t_enter)},{format_float(ev.t_leave)}",
            ]
        else:  # pragma: no cover - TraceEvent is a closed union
            raise TypeError(f"cannot serialize event of type {type(ev)}")
        if ev.repeat != 1:
            parts.append(f"repeat={ev.repeat}")
        stream.write(" ".join(parts) + "\n")


def dump_trace(trace: Trace, path: str | Path) -> Path:
    """Write a trace to a file, creating parent directories as needed."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        write_trace(trace, fh)
    return path


def dumps_trace(trace: Trace) -> str:
    """Render a trace to a string (round-trip tests, small traces)."""
    buf = io.StringIO()
    write_trace(trace, buf)
    return buf.getvalue()
