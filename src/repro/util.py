"""Small shared formatting helpers.

The paper's tables report *N/A* for undefined cells (all-collective
workloads have no rank distance; a simulation with no crossing traffic has
no makespan inflation).  Internally those are NaN — the right arithmetic
convention — but NaN must never leak into rendered output: tables, the
markdown report, and CLI text all format through :func:`fmt_float`, and the
CSV/JSON exporters map NaN to empty cells / ``null`` (see
:mod:`repro.analysis.export`).
"""

from __future__ import annotations

import math

__all__ = ["NA", "fmt_float", "nan_to_none"]

#: The rendered placeholder for undefined values.
NA = "N/A"


def fmt_float(value: float | None, spec: str = "", na: str = NA) -> str:
    """Format ``value`` with ``spec``; NaN/None render as ``na``.

    >>> fmt_float(3.7, ".1f")
    '3.7'
    >>> fmt_float(float("nan"), ".1f")
    'N/A'
    """
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return na
    return format(value, spec)


def nan_to_none(value):
    """NaN (any float NaN) becomes ``None``; everything else passes through."""
    if isinstance(value, float) and math.isnan(value):
        return None
    return value
