"""Interconnect energy model.

The paper motivates its utilization metric with energy: interconnects draw
power statically — SerDes account for ~85% of switch power, internal logic
~15% (Zahn et al. [19], paper §2.2.1) — so a network that transmits data 1%
of the time wastes almost all of its energy.  This module quantifies that
argument:

- static energy of a configuration (links × per-link power × wall time);
- the energetically *useful* share (scaled by utilization);
- savings projections for the two §7 proposals — power-gating idle links
  (bounded by the SerDes share) and frequency/bandwidth scaling with
  super-linear power reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from .engine import NetworkAnalysis

__all__ = ["EnergyModel", "EnergyReport", "SERDES_POWER_SHARE"]

#: Share of link/switch power consumed by SerDes (Zahn et al. [19]).
SERDES_POWER_SHARE = 0.85


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one analyzed configuration."""

    total_energy_j: float
    useful_energy_j: float
    idle_energy_j: float
    gating_savings_j: float
    frequency_scaling_savings_j: float

    @property
    def useful_fraction(self) -> float:
        return self.useful_energy_j / self.total_energy_j if self.total_energy_j else 0.0


@dataclass(frozen=True)
class EnergyModel:
    """Static interconnect power model.

    Parameters
    ----------
    link_power_w:
        Constant power drawn per active link (SerDes + share of switch
        logic).  A few watts per link is typical for the 12 GB/s class of
        interconnect the paper assumes.
    serdes_share:
        Fraction of link power attributable to SerDes — the part that
        idle-period power gating can remove.
    frequency_exponent:
        Power ~ bandwidth**exponent for frequency/voltage scaling;
        exponent > 1 captures the paper's "super-linear" claim.
    """

    link_power_w: float = 3.0
    serdes_share: float = SERDES_POWER_SHARE
    frequency_exponent: float = 2.0

    def __post_init__(self) -> None:
        if self.link_power_w <= 0:
            raise ValueError("link_power_w must be positive")
        if not 0 <= self.serdes_share <= 1:
            raise ValueError("serdes_share must be in [0, 1]")
        if self.frequency_exponent < 1:
            raise ValueError("frequency_exponent must be >= 1")

    def static_energy_j(self, num_links: float, duration_s: float) -> float:
        """Energy drawn by ``num_links`` always-on links over ``duration_s``."""
        if duration_s < 0:
            raise ValueError("duration must be >= 0")
        return self.link_power_w * num_links * duration_s

    def report(self, analysis: NetworkAnalysis) -> EnergyReport:
        """Energy breakdown of one network analysis.

        - *useful* energy scales with utilization (links busy transmitting);
        - *gating* savings: SerDes power removed during the idle fraction;
        - *frequency scaling* savings: running all links at exactly the
          bandwidth needed to sustain the offered load (utilization → 1)
          reduces power by ``utilization**(exponent - 1)`` relative terms.
        """
        util = min(analysis.utilization, 1.0)
        total = self.static_energy_j(analysis.used_links, analysis.execution_time)
        useful = total * util
        idle = total - useful
        gating = idle * self.serdes_share
        # Scaling bandwidth by `util` scales power by util**exponent; the
        # transmission then takes the same wall time (load is fixed), so
        # energy shrinks from `total` to `total * util**exponent`... bounded
        # below by the useful energy at full rate.
        scaled_total = total * util ** (self.frequency_exponent - 1.0)
        frequency_savings = max(total - scaled_total, 0.0)
        return EnergyReport(
            total_energy_j=total,
            useful_energy_j=useful,
            idle_energy_j=idle,
            gating_savings_j=gating,
            frequency_scaling_savings_j=frequency_savings,
        )
