"""Latency translation of the static hop analysis.

The paper notes that packet hops "can directly be translated to network
latency and energy consumption" (§4.2.1).  This module performs that
translation with the standard store-and-forward / cut-through switch
models:

- per-message latency: injection serialization + per-hop switch traversal
  (+ per-hop re-serialization under store-and-forward),
- aggregate *communication time* of a traffic matrix on a topology — a
  lower bound, since the static model has no congestion,
- per-app mean/percentile message-latency distributions.

Default constants are representative of the 12 GB/s interconnect class the
paper assumes (~100 ns per switch traversal, ~5 ns/m of cable at 2 m mean
hop length).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..comm.matrix import CommMatrix
from ..core.packets import MAX_PAYLOAD_BYTES
from ..mapping.base import Mapping
from ..topology.base import Topology
from .engine import BANDWIDTH_BYTES_PER_S

__all__ = ["LatencyModel", "LatencyReport"]


@dataclass(frozen=True)
class LatencyReport:
    """Latency statistics of one (traffic, topology, mapping) combination."""

    mean_message_latency_s: float
    p50_message_latency_s: float
    p99_message_latency_s: float
    max_message_latency_s: float
    total_serial_comm_time_s: float  # sum of all message latencies

    @property
    def mean_message_latency_us(self) -> float:
        return 1e6 * self.mean_message_latency_s


@dataclass(frozen=True)
class LatencyModel:
    """Per-hop network latency model.

    Parameters
    ----------
    switch_latency_s:
        Time through one switch (arbitration + crossbar), per hop.
    wire_latency_s:
        Propagation delay per hop (cable length x ~5 ns/m).
    bandwidth:
        Link bandwidth for serialization delay (paper: 12 GB/s).
    cut_through:
        Cut-through switching serializes the message once (at injection);
        store-and-forward re-serializes the *packet* at every hop.
    """

    switch_latency_s: float = 100e-9
    wire_latency_s: float = 10e-9
    bandwidth: float = BANDWIDTH_BYTES_PER_S
    cut_through: bool = True
    payload: int = MAX_PAYLOAD_BYTES

    def __post_init__(self) -> None:
        if self.switch_latency_s < 0 or self.wire_latency_s < 0:
            raise ValueError("latencies must be >= 0")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")

    # -- single message -----------------------------------------------------

    def message_latency(self, nbytes: int, hops: int) -> float:
        """End-to-end latency of one message over a ``hops``-long route.

        Zero-hop (co-located) messages cost one serialization only.
        """
        if nbytes < 0 or hops < 0:
            raise ValueError("nbytes and hops must be >= 0")
        serialization = nbytes / self.bandwidth
        per_hop = self.switch_latency_s + self.wire_latency_s
        if hops == 0:
            return serialization
        if self.cut_through:
            # head flit pays per-hop latency; body streams behind it
            return serialization + hops * per_hop
        # store-and-forward: every hop re-serializes each packet; the
        # pipeline over packets overlaps all but one packet per extra hop
        packet_serial = min(nbytes, self.payload) / self.bandwidth
        return serialization + hops * per_hop + (hops - 1) * packet_serial

    def message_latency_array(
        self, nbytes: np.ndarray, hops: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`message_latency` (per-message arrays)."""
        nbytes = np.asarray(nbytes, dtype=np.float64)
        hops = np.asarray(hops, dtype=np.float64)
        serialization = nbytes / self.bandwidth
        per_hop = self.switch_latency_s + self.wire_latency_s
        base = serialization + hops * per_hop
        if self.cut_through:
            return base
        packet_serial = np.minimum(nbytes, self.payload) / self.bandwidth
        return base + np.maximum(hops - 1, 0) * packet_serial

    # -- traffic-matrix aggregate ---------------------------------------------

    def report(
        self,
        matrix: CommMatrix,
        topology: Topology,
        mapping: Mapping | None = None,
    ) -> LatencyReport:
        """Message-latency distribution for a traffic matrix.

        Messages of one pair share that pair's route; per-pair mean message
        size is used (the matrix stores aggregates).  Percentiles are
        message-count weighted.
        """
        if mapping is None:
            mapping = Mapping.consecutive(matrix.num_ranks, topology.num_nodes)
        if matrix.num_pairs == 0:
            return LatencyReport(0.0, 0.0, 0.0, 0.0, 0.0)
        src_n = mapping.node_of(matrix.src)
        dst_n = mapping.node_of(matrix.dst)
        hops = topology.hops_array(src_n, dst_n)
        mean_size = matrix.nbytes / np.maximum(matrix.messages, 1)
        lat = self.message_latency_array(mean_size, hops)
        weights = matrix.messages.astype(np.float64)

        order = np.argsort(lat)
        lat_sorted = lat[order]
        cum = np.cumsum(weights[order])
        total_msgs = cum[-1]

        def percentile(q: float) -> float:
            idx = int(np.searchsorted(cum, q * total_msgs))
            return float(lat_sorted[min(idx, len(lat_sorted) - 1)])

        return LatencyReport(
            mean_message_latency_s=float((lat * weights).sum() / total_msgs),
            p50_message_latency_s=percentile(0.50),
            p99_message_latency_s=percentile(0.99),
            max_message_latency_s=float(lat.max()),
            total_serial_comm_time_s=float((lat * weights).sum()),
        )
