"""Static network analysis engine (paper §4.2, §6.2–6.3).

Combines a traffic matrix (collectives already flattened), a topology, and a
rank→node mapping into the paper's system-level metrics:

- **packet hops** (Eq. 3): every message is split into 4 kB packets; each
  packet contributes the hop count of its pair's shortest route.
- **average hops per packet** (Eq. 4): packet hops over *all* packets.
  Packets between co-located ranks (or a collective's root sending to
  itself) count in the denominator with zero hops — the paper's convention,
  visible in Table 3 rows like BigFFT@9 on the single-switch fat tree
  averaging 2·(N−1)/N = 1.78 rather than 2.0.
- **network utilization** (Eq. 5): data volume over ``BW · t · links``, with
  only links that actually transmit data counted (deterministic routes of
  all inter-node pairs).  The default wire volume is the **raw payload
  bytes** — Eq. 5's ``datavolume`` verbatim; this is the only convention
  consistent across the paper's small-message workloads (Nekbone's packet
  counts imply ~4-byte messages whose padded volume would exceed the
  published utilizations a thousandfold) and its large-message ones (for
  BigFFT raw and padded coincide).  ``volume_mode="padded"`` charges a full
  4 kB slot per packet instead.

The model is non-temporal: no congestion, no flow interaction, full
bandwidth assumed per message — identical to the paper's methodology.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import timings
from ..cache import cached_node_pairs, cached_pair_hops, cached_route_incidence
from ..comm.matrix import CommMatrix
from ..core.packets import MAX_PAYLOAD_BYTES
from ..mapping.base import Mapping
from ..routing import get_policy
from ..topology.base import Topology
from ..topology.dragonfly import Dragonfly

__all__ = ["BANDWIDTH_BYTES_PER_S", "NetworkAnalysis", "analyze_network"]

#: Link bandwidth assumed by the paper: 12 GB/s.
BANDWIDTH_BYTES_PER_S = 12e9


@dataclass(frozen=True)
class NetworkAnalysis:
    """System-level metrics of one (traffic, topology, mapping) combination."""

    topology_kind: str
    num_ranks: int
    packet_hops: int
    total_packets: int
    network_bytes: int
    wire_bytes: int
    used_links: int
    nominal_links: float
    execution_time: float
    bandwidth: float
    global_link_packet_share: float | None = None
    routing: str = "minimal"

    @property
    def avg_hops(self) -> float:
        """Eq. 4 — mean hops per packet (zero-hop packets included)."""
        return self.packet_hops / self.total_packets if self.total_packets else 0.0

    @property
    def utilization(self) -> float:
        """Eq. 5 over *used* links, in [0, ...] (1.0 = fully busy links)."""
        denom = self.bandwidth * self.execution_time * self.used_links
        return self.wire_bytes / denom if denom else 0.0

    @property
    def utilization_nominal(self) -> float:
        """Eq. 5 over the paper's per-topology nominal link count."""
        denom = self.bandwidth * self.execution_time * self.nominal_links
        return self.wire_bytes / denom if denom else 0.0

    @property
    def utilization_percent(self) -> float:
        return 100.0 * self.utilization


def _node_pair_aggregate(
    matrix: CommMatrix, mapping: Mapping
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Aggregate rank-pair traffic onto node pairs.

    Returns parallel arrays ``(src_node, dst_node, nbytes, packets)`` with
    unique node pairs (self-pairs included; they carry the zero-hop packets).
    """
    src_nodes = mapping.node_of(matrix.src)
    dst_nodes = mapping.node_of(matrix.dst)
    key = src_nodes * np.int64(mapping.num_nodes) + dst_nodes
    if not len(key):
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy(), empty.copy()
    # Grouped sums over sorted runs (bincount-style aggregation) instead of
    # np.unique + np.add.at: scatter-add is ~10x slower at these shapes, and
    # reduceat keeps the accumulation in exact int64 (bincount's float64
    # weights would silently round sums past 2**53).
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    run_start = np.empty(len(sorted_key), dtype=bool)
    run_start[0] = True
    np.not_equal(sorted_key[1:], sorted_key[:-1], out=run_start[1:])
    starts = np.flatnonzero(run_start)
    unique_keys = sorted_key[starts]
    nbytes = np.add.reduceat(matrix.nbytes[order], starts)
    packets = np.add.reduceat(matrix.packets[order], starts)
    return (
        unique_keys // mapping.num_nodes,
        unique_keys % mapping.num_nodes,
        nbytes,
        packets,
    )


def analyze_network(
    matrix: CommMatrix,
    topology: Topology,
    mapping: Mapping | None = None,
    execution_time: float = 1.0,
    bandwidth: float = BANDWIDTH_BYTES_PER_S,
    volume_mode: str = "raw",
    payload: int = MAX_PAYLOAD_BYTES,
    routing: str = "minimal",
    routing_seed: int = 0,
) -> NetworkAnalysis:
    """Run the full static analysis for one topology.

    Parameters
    ----------
    matrix:
        Traffic matrix *including* flattened collectives for paper-faithful
        results (build with :func:`repro.comm.matrix_from_trace`).
    mapping:
        Defaults to the paper's consecutive one-rank-per-node mapping.
    execution_time:
        Traced wall time (``trace.meta.execution_time``), the ``t`` of Eq. 5.
    volume_mode:
        ``"raw"`` — payload bytes, Eq. 5's ``datavolume`` (default);
        ``"padded"`` — every packet charges a full ``payload`` slot.
    routing:
        :mod:`repro.routing` policy name (``routing_seed`` feeds its rng).
        The default ``"minimal"`` reproduces the paper's deterministic
        shortest-path numbers exactly; non-minimal policies change hop
        counts, used links, and the dragonfly global-link share.
    """
    if volume_mode not in ("padded", "raw"):
        raise ValueError(f"volume_mode must be 'padded' or 'raw', got {volume_mode!r}")
    if execution_time <= 0:
        raise ValueError("execution_time must be positive")
    if mapping is None:
        mapping = Mapping.consecutive(matrix.num_ranks, topology.num_nodes)
    if mapping.num_nodes != topology.num_nodes:
        raise ValueError(
            f"mapping targets {mapping.num_nodes} nodes, topology has "
            f"{topology.num_nodes}"
        )

    policy = get_policy(routing, seed=routing_seed)
    with timings.stage("analysis"):
        src_n, dst_n, nbytes, packets = cached_node_pairs(matrix, mapping)

        total_packets = int(packets.sum())
        crossing = src_n != dst_n
        network_bytes = int(nbytes[crossing].sum())
        if volume_mode == "padded":
            wire_bytes = int(packets[crossing].sum()) * payload
        else:
            wire_bytes = network_bytes

        matrix_key = getattr(matrix, "_repro_cache_key", None)
        mapping_key = getattr(mapping, "_repro_cache_key", None)
        content_token = (
            (matrix_key, mapping_key)
            if matrix_key is not None and mapping_key is not None
            else None
        )
        incidence = cached_route_incidence(
            topology,
            src_n[crossing],
            dst_n[crossing],
            routing=policy,
            pair_weights=nbytes[crossing],
            content_token=content_token,
        )
        used_links = len(incidence.used_links())

        if policy.name == "minimal":
            # Closed-form hop counts — the paper-faithful fast path, kept
            # bit-identical to the pre-routing-subsystem engine.
            hops = cached_pair_hops(topology, src_n, dst_n, matrix, mapping)
        else:
            # Under any other policy hop counts follow the chosen routes:
            # each pair's hops = its incidence row count (0 for self pairs).
            hops = np.zeros(len(src_n), dtype=np.int64)
            hops[crossing] = np.bincount(
                incidence.pair_index, minlength=int(crossing.sum())
            )
        packet_hops = int((packets * hops).sum())

        global_share: float | None = None
        if isinstance(topology, Dragonfly):
            if policy.name == "minimal":
                crosses = topology.crosses_groups(src_n, dst_n)
                packets_on_global = int(packets[crosses].sum())
            else:
                # A pair touches a global link iff its route contains one.
                uses_global = np.zeros(int(crossing.sum()), dtype=bool)
                global_rows = topology.is_global_link(incidence.link_id)
                uses_global[incidence.pair_index[global_rows]] = True
                packets_on_global = int(packets[crossing][uses_global].sum())
            global_share = (
                packets_on_global / total_packets if total_packets else 0.0
            )

    return NetworkAnalysis(
        topology_kind=topology.kind,
        num_ranks=matrix.num_ranks,
        packet_hops=packet_hops,
        total_packets=total_packets,
        network_bytes=network_bytes,
        wire_bytes=wire_bytes,
        used_links=used_links,
        nominal_links=topology.nominal_links(mapping.num_used_nodes),
        execution_time=execution_time,
        bandwidth=bandwidth,
        global_link_packet_share=global_share,
        routing=policy.name,
    )
