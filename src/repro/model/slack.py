"""Bandwidth-slack analysis (the paper's §7 proposal, made concrete).

The discussion section suggests "operating at lower throughput, as reducing
the operating frequency should super-linearly decrease power consumption",
and differentiating link speeds — "operating links with higher utilization,
such as global links in dragonflies, at a higher bandwidth than the
seldomly used local links".

This module computes the enabling quantity: per-link **bandwidth slack** —
the factor by which a link's bandwidth could be reduced before transmitting
its offered load would take longer than the traced execution time.  A link
whose utilization is u can be slowed by 1/u before it saturates; combined
with a power ~ bandwidth^alpha model this bounds the per-link energy
saving, and the distribution across links quantifies the heterogeneous
provisioning the paper proposes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..comm.matrix import CommMatrix
from ..mapping.base import Mapping
from ..routing import get_policy
from ..routing.base import RoutingPolicy
from ..topology.base import Topology
from ..topology.dragonfly import Dragonfly
from .engine import BANDWIDTH_BYTES_PER_S

__all__ = ["SlackReport", "bandwidth_slack"]


@dataclass(frozen=True)
class SlackReport:
    """Per-link bandwidth headroom of one configuration.

    ``slack[i]`` is how many times slower ``link_ids[i]`` could run while
    still moving its offered bytes within the execution time (>= 1 means
    the link keeps up even when slowed; the busiest link has the smallest
    slack).
    """

    link_ids: np.ndarray
    slack: np.ndarray  # float64, same order
    execution_time: float
    bandwidth: float
    global_link_mask: np.ndarray | None = None  # dragonfly only

    @property
    def num_links(self) -> int:
        return len(self.link_ids)

    @property
    def min_slack(self) -> float:
        """Headroom of the busiest link — bounds a uniform slow-down."""
        return float(self.slack.min()) if self.num_links else float("inf")

    @property
    def median_slack(self) -> float:
        return float(np.median(self.slack)) if self.num_links else float("inf")

    def uniform_power_saving(self, alpha: float = 2.0) -> float:
        """Fractional power saving from slowing *all* links by the busiest
        link's slack (power ~ bandwidth**alpha)."""
        s = self.min_slack
        if not np.isfinite(s) or s <= 1.0:
            return 0.0
        return 1.0 - s**-alpha

    def per_link_power_saving(self, alpha: float = 2.0) -> float:
        """Mean fractional saving when every link is individually slowed to
        its own slack — the heterogeneous provisioning the paper proposes."""
        if not self.num_links:
            return 0.0
        clamped = np.maximum(self.slack, 1.0)
        return float(np.mean(1.0 - clamped**-alpha))

    def global_vs_local_slack(self) -> tuple[float, float] | None:
        """Median slack of (global, local+node) links on a dragonfly.

        The paper predicts global links have the least slack (they carry
        most traffic) and local links the most.
        """
        if self.global_link_mask is None:
            return None
        g = self.slack[self.global_link_mask]
        l = self.slack[~self.global_link_mask]
        if len(g) == 0 or len(l) == 0:
            return None
        return float(np.median(g)), float(np.median(l))


def bandwidth_slack(
    matrix: CommMatrix,
    topology: Topology,
    execution_time: float,
    mapping: Mapping | None = None,
    bandwidth: float = BANDWIDTH_BYTES_PER_S,
    routing: str | RoutingPolicy = "minimal",
    routing_seed: int = 0,
) -> SlackReport:
    """Compute per-link bandwidth slack for one configuration.

    slack(link) = execution_time / (offered_bytes / bandwidth): the ratio of
    available time to busy time at full speed, i.e. 1 / utilization of that
    link.  ``routing`` selects the :mod:`repro.routing` policy carrying the
    traffic; non-minimal policies spread load differently and so change
    which links have the least slack.
    """
    if execution_time <= 0:
        raise ValueError("execution_time must be positive")
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    if mapping is None:
        mapping = Mapping.consecutive(matrix.num_ranks, topology.num_nodes)

    src_n = mapping.node_of(matrix.src)
    dst_n = mapping.node_of(matrix.dst)
    crossing = src_n != dst_n
    nbytes = matrix.nbytes[crossing]
    policy = get_policy(routing, seed=routing_seed)
    incidence = policy.route_incidence(
        topology, src_n[crossing], dst_n[crossing], pair_weights=nbytes
    )
    ids, loads = incidence.link_loads(nbytes)
    if len(ids) == 0:
        empty = np.zeros(0)
        return SlackReport(
            np.zeros(0, dtype=np.int64), empty, execution_time, bandwidth
        )
    busy = loads / bandwidth
    slack = execution_time / busy

    global_mask = None
    if isinstance(topology, Dragonfly):
        global_mask = topology.is_global_link(ids)

    return SlackReport(ids, slack, execution_time, bandwidth, global_mask)
