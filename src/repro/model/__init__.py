"""Static network model: hops, utilization, link loads, latency, energy."""

from .energy import SERDES_POWER_SHARE, EnergyModel, EnergyReport
from .engine import BANDWIDTH_BYTES_PER_S, NetworkAnalysis, analyze_network
from .latency import LatencyModel, LatencyReport
from .linkload import LinkLoadStats, link_load_stats, link_loads
from .slack import SlackReport, bandwidth_slack

__all__ = [
    "SERDES_POWER_SHARE",
    "EnergyModel",
    "EnergyReport",
    "BANDWIDTH_BYTES_PER_S",
    "NetworkAnalysis",
    "analyze_network",
    "LatencyModel",
    "LatencyReport",
    "LinkLoadStats",
    "link_load_stats",
    "link_loads",
    "SlackReport",
    "bandwidth_slack",
]
