"""Per-link load distribution.

Beyond the scalar utilization of Eq. 5, the distribution of traffic over
individual links shows *where* a topology concentrates load — e.g. the
paper's observation that ~95% of dragonfly messages cross a global link
implies the few global links carry most of the wire traffic.  These
statistics also back the paper's discussion of operating heavily-used links
at higher bandwidth than seldom-used ones (§7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..comm.matrix import CommMatrix
from ..mapping.base import Mapping
from ..routing import get_policy
from ..routing.base import RoutingPolicy
from ..topology.base import Topology
from ..topology.dragonfly import Dragonfly

__all__ = ["LinkLoadStats", "link_loads", "link_load_stats"]


@dataclass(frozen=True)
class LinkLoadStats:
    """Summary statistics of the byte load carried per used link."""

    num_used_links: int
    total_link_bytes: int  # sum over links == sum over pairs of bytes * hops
    mean_load: float
    max_load: int
    gini: float
    global_link_byte_share: float | None = None  # dragonfly only

    @property
    def max_over_mean(self) -> float:
        """Hot-spot factor: how much hotter the busiest link is than average."""
        return self.max_load / self.mean_load if self.mean_load else 0.0


def link_loads(
    matrix: CommMatrix,
    topology: Topology,
    mapping: Mapping | None = None,
    routing: str | RoutingPolicy = "minimal",
    routing_seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Byte load on every used link under the given routing policy.

    Returns ``(link_ids, loads)``; ``loads[i]`` is the total bytes crossing
    ``link_ids[i]``.  Self-node traffic is excluded (it uses no link).  The
    default ``"minimal"`` policy reproduces the topology's deterministic
    routes exactly; load-aware policies (UGAL) adapt to the per-pair byte
    counts.
    """
    if mapping is None:
        mapping = Mapping.consecutive(matrix.num_ranks, topology.num_nodes)
    src_n = mapping.node_of(matrix.src)
    dst_n = mapping.node_of(matrix.dst)
    crossing = src_n != dst_n
    nbytes = matrix.nbytes[crossing]
    policy = get_policy(routing, seed=routing_seed)
    incidence = policy.route_incidence(
        topology, src_n[crossing], dst_n[crossing], pair_weights=nbytes
    )
    return incidence.link_loads(nbytes)


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative load distribution (0 = uniform)."""
    v = np.sort(np.asarray(values, dtype=np.float64))
    n = len(v)
    total = v.sum()
    if n == 0 or total == 0:
        return 0.0
    index = np.arange(1, n + 1)
    return float((2 * (index * v).sum()) / (n * total) - (n + 1) / n)


def link_load_stats(
    matrix: CommMatrix,
    topology: Topology,
    mapping: Mapping | None = None,
    routing: str | RoutingPolicy = "minimal",
    routing_seed: int = 0,
) -> LinkLoadStats:
    """Distribution statistics of per-link byte loads."""
    ids, loads = link_loads(
        matrix, topology, mapping, routing=routing, routing_seed=routing_seed
    )
    if len(ids) == 0:
        return LinkLoadStats(0, 0, 0.0, 0, 0.0)
    global_share: float | None = None
    if isinstance(topology, Dragonfly):
        mask = topology.is_global_link(ids)
        total = loads.sum()
        global_share = float(loads[mask].sum() / total) if total else 0.0
    return LinkLoadStats(
        num_used_links=len(ids),
        total_link_bytes=int(loads.sum()),
        mean_load=float(loads.mean()),
        max_load=int(loads.max()),
        gini=_gini(loads),
        global_link_byte_share=global_share,
    )
