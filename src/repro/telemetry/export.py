"""Telemetry report persistence: lossless ``.npz`` and summary JSON.

The ``.npz`` round trip is exact (array bytes preserved), so downstream
tooling can reload a report and re-run congestion analysis at different
thresholds without re-simulating.  The JSON form is a compact summary —
scalars plus the histograms — suitable for dashboards and sweep records;
pass ``series=True`` to inline the full per-link series (large).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .collector import TelemetryReport

__all__ = [
    "save_report_npz",
    "load_report_npz",
    "report_to_json_dict",
    "save_report_json",
]

_SCALARS = ("span", "window_dt", "service")
_ARRAYS = (
    "link_ids",
    "serve_series",
    "occupancy",
    "injections",
    "ejections",
    "injected_series",
    "delivered_series",
    "queue_depth_hist",
    "stall_hist",
    "stall_edges",
)


def save_report_npz(report: TelemetryReport, path: str | Path) -> Path:
    """Write a report as a ``.npz`` archive (exact array round trip)."""
    path = Path(path)
    payload = {name: np.array(getattr(report, name)) for name in _SCALARS}
    payload.update({name: getattr(report, name) for name in _ARRAYS})
    with path.open("wb") as fh:
        np.savez(fh, **payload)
    return path


def load_report_npz(path: str | Path) -> TelemetryReport:
    """Reload a report written by :func:`save_report_npz`."""
    with np.load(Path(path), allow_pickle=False) as data:
        kwargs = {name: float(data[name]) for name in _SCALARS}
        kwargs.update({name: data[name] for name in _ARRAYS})
    return TelemetryReport(**kwargs)


def report_to_json_dict(report: TelemetryReport, series: bool = False) -> dict:
    """JSON-serializable summary of a report.

    Always includes the scalar geometry, per-run totals, and the queue/stall
    histograms; ``series=True`` adds the full per-link windowed series.
    """
    out: dict = {
        "span_s": report.span,
        "window_dt_s": report.window_dt,
        "service_s": report.service,
        "num_links": report.num_links,
        "num_windows": report.num_windows,
        "peak_occupancy": report.peak_occupancy,
        "total_busy_s": float(report.occupancy.sum()),
        "injected_series": report.injected_series.tolist(),
        "delivered_series": report.delivered_series.tolist(),
        "queue_depth_hist": report.queue_depth_hist.tolist(),
        "stall_hist": report.stall_hist.tolist(),
        "stall_edges_s": report.stall_edges.tolist(),
    }
    if series:
        out["link_ids"] = report.link_ids.tolist()
        out["serve_series"] = report.serve_series.tolist()
        out["occupancy_s"] = report.occupancy.tolist()
        out["injections"] = report.injections.tolist()
        out["ejections"] = report.ejections.tolist()
    return out


def save_report_json(
    report: TelemetryReport, path: str | Path, series: bool = False
) -> Path:
    """Write the JSON summary form to ``path``."""
    path = Path(path)
    path.write_text(
        json.dumps(report_to_json_dict(report, series=series), indent=2) + "\n",
        encoding="utf-8",
    )
    return path
