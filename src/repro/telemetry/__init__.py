"""Network telemetry & congestion analysis for the packet simulators.

A pluggable instrumentation layer both sim engines feed identically (see
:mod:`repro.telemetry.collector` for the bit-identity argument), plus the
congestion-region analysis (:mod:`repro.telemetry.congestion`), per-policy
comparisons (:mod:`repro.telemetry.compare`), ASCII timeline rendering
(:mod:`repro.telemetry.render`), and npz/json persistence
(:mod:`repro.telemetry.export`).

Quick start::

    from repro.sim import simulate_network
    from repro.telemetry import TelemetryConfig, congestion_summary

    result = simulate_network(matrix, topo, telemetry=TelemetryConfig(windows=48))
    print(result.telemetry.peak_occupancy)
    print(congestion_summary(result.telemetry, topo, threshold=0.7))
"""

from .collector import (
    NullCollector,
    TelemetryCollector,
    TelemetryConfig,
    TelemetryReport,
    WindowedCollector,
    reports_equal,
)
from .compare import adversarial_hot_group_matrix, congestion_by_routing
from .congestion import (
    CongestionRegion,
    CongestionSummary,
    congestion_summary,
    find_congestion_regions,
)
from .export import (
    load_report_npz,
    report_to_json_dict,
    save_report_json,
    save_report_npz,
)
from .render import render_congestion_timeline, render_summary

__all__ = [
    "TelemetryConfig",
    "TelemetryCollector",
    "NullCollector",
    "WindowedCollector",
    "TelemetryReport",
    "reports_equal",
    "CongestionRegion",
    "CongestionSummary",
    "find_congestion_regions",
    "congestion_summary",
    "congestion_by_routing",
    "adversarial_hot_group_matrix",
    "render_congestion_timeline",
    "render_summary",
    "save_report_npz",
    "load_report_npz",
    "save_report_json",
    "report_to_json_dict",
]
