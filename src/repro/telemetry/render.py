"""ASCII congestion-timeline rendering (heatmap-style shades).

Reuses the shade ramp of :mod:`repro.metrics.heatmap` so the telemetry
timeline reads exactly like the communication heat maps: one row per link
(busiest first), one column per time window, shade = busy fraction of the
link in that window.  A footer row counts hot links per window, making
congestion-region onset and dissolution visible at a glance.
"""

from __future__ import annotations

import numpy as np

from ..metrics.heatmap import _SHADES
from ..topology.base import Topology
from ..util import fmt_float
from .collector import TelemetryReport

__all__ = ["render_congestion_timeline", "render_summary"]


def _shade(fraction: float) -> str:
    if fraction <= 0:
        return " "
    level = min(max(fraction, 0.0), 1.0)
    return _SHADES[1 + int(level * (len(_SHADES) - 2))]


def render_congestion_timeline(
    report: TelemetryReport,
    topology: Topology | None = None,
    threshold: float = 0.7,
    top: int = 12,
) -> str:
    """Per-link occupancy timeline of the ``top`` busiest links.

    With a ``topology``, rows are labeled by
    :meth:`~repro.topology.base.Topology.describe_link`; otherwise by raw
    link ID.  The footer row prints the number of hot links per window
    (``.`` none, digits, ``+`` for ten or more).
    """
    raw = report.occupancy_fraction()
    if not raw.size:
        return "(no link activity recorded)"
    # A NaN makespan (empty traffic) yields NaN window_dt and fractions;
    # label those "N/A" and shade them blank instead of crashing — same
    # convention as every other NaN-rendering surface (repro.util).
    frac = np.where(np.isfinite(raw), raw, 0.0)
    totals = report.occupancy.sum(axis=1)
    order = np.argsort(-totals, kind="stable")[:top]

    labels = []
    for idx in order:
        link_id = int(report.link_ids[idx])
        if topology is not None:
            labels.append(topology.describe_link(link_id))
        else:
            labels.append(f"link {link_id}")
    width = max(len(label) for label in labels)

    lines = [
        f"occupancy timeline: {report.num_windows} windows x "
        f"{fmt_float(report.window_dt, '.3e')} s "
        f"(span {fmt_float(report.span, '.3e')} s), "
        f"top {len(order)} of {report.num_links} links"
    ]
    for idx, label in zip(order, labels):
        row = "".join(_shade(f) for f in frac[idx])
        peak = float(raw[idx].max())
        lines.append(f"{label:<{width}} |{row}| peak {fmt_float(peak, '.2f')}")

    hot_counts = (frac >= threshold).sum(axis=0)
    footer = "".join(
        "." if c == 0 else (str(c) if c < 10 else "+") for c in hot_counts
    )
    lines.append(
        f"{'hot links >= ' + format(threshold, '.2f'):<{width}} |{footer}|"
    )
    return "\n".join(lines)


def render_summary(summary) -> str:
    """Render a :class:`~repro.telemetry.congestion.CongestionSummary`."""
    if summary.num_regions == 0:
        return (
            f"no congestion regions at threshold {summary.threshold:.2f} "
            f"(no link-window reached that busy fraction)"
        )
    return "\n".join(
        [
            f"congestion regions (threshold {summary.threshold:.2f}):",
            f"  regions:            {summary.num_regions}",
            f"  peak region size:   {summary.peak_region_links} links",
            f"  max region spread:  {summary.max_region_spread} links",
            f"  longest region:     {summary.longest_region_s:.3e} s",
            f"  total hot time:     {summary.total_hot_seconds:.3e} link-s",
            f"  hot windows:        {summary.hot_windows}",
            f"  first onset window: {summary.first_onset_window}",
        ]
    )
