"""Congestion regions: hot-link grouping over topology adjacency.

Jha et al.'s supercomputer congestion study characterizes interconnect
congestion not link by link but as **congestion regions** — connected sets
of highly-utilized links that appear, grow, persist, and dissolve over
time.  This module reproduces that analysis on top of a
:class:`~repro.telemetry.collector.TelemetryReport`:

1. **Hot-link thresholding** — a (link, window) cell is *hot* when the
   link's busy fraction in that window reaches ``threshold``.
2. **Spatial grouping** — hot links of one window are grouped into regions
   by topology adjacency: two links are adjacent when they share an
   endpoint vertex (node, switch, or router), decoded from the opaque link
   IDs by :func:`repro.routing.validate.link_endpoints`.
3. **Temporal linking** — a region in window ``w`` continues a region of
   window ``w-1`` when they share a link; regions that merge are one
   region.  Each resulting :class:`CongestionRegion` carries its onset,
   duration, and spread (peak concurrent links).

The implementation is one union-find over hot (link, window) cells with
spatial edges (shared endpoint, same window) and temporal edges (same
link, consecutive windows) — linear in the number of hot cells.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..routing.validate import link_endpoints
from ..topology.base import Topology
from .collector import TelemetryReport

__all__ = [
    "CongestionRegion",
    "CongestionSummary",
    "find_congestion_regions",
    "congestion_summary",
]


@dataclass(frozen=True, eq=False)
class CongestionRegion:
    """One spatio-temporal congestion region.

    ``links`` holds the *compact* link indices (rows of the report's
    series) the region ever covered; map through ``report.link_ids`` for
    topology link IDs.
    """

    onset_window: int  # first window the region was hot
    end_window: int  # last window (inclusive)
    peak_links: int  # largest concurrent hot-link count
    link_windows: int  # total hot (link, window) cells
    links: np.ndarray  # int64: union of compact link indices
    window_dt: float
    #: The exact hot cells of this region, as parallel (compact link,
    #: window) arrays of length ``link_windows`` — the attribution layer
    #: (:mod:`repro.tenancy.attribution`) charges each cell's services to
    #: jobs by link-occupancy share.  ``None`` on regions built by hand.
    cell_links: np.ndarray | None = None
    cell_windows: np.ndarray | None = None

    @property
    def duration_windows(self) -> int:
        return self.end_window - self.onset_window + 1

    @property
    def duration_s(self) -> float:
        return self.duration_windows * self.window_dt

    @property
    def spread(self) -> int:
        """Distinct links the region ever covered."""
        return len(self.links)


@dataclass(frozen=True)
class CongestionSummary:
    """Aggregate congestion statistics of one run at one threshold."""

    threshold: float
    num_regions: int
    peak_region_links: int  # largest concurrent hot-link count of any region
    max_region_spread: int  # most distinct links any region covered
    longest_region_s: float  # longest region duration in seconds
    total_hot_seconds: float  # sum of hot (link, window) cells x window_dt
    hot_windows: int  # windows with at least one hot link
    first_onset_window: int  # -1 when nothing was hot

    def as_dict(self) -> dict:
        return {
            "threshold": self.threshold,
            "num_regions": self.num_regions,
            "peak_region_links": self.peak_region_links,
            "max_region_spread": self.max_region_spread,
            "longest_region_s": self.longest_region_s,
            "total_hot_seconds": self.total_hot_seconds,
            "hot_windows": self.hot_windows,
            "first_onset_window": self.first_onset_window,
        }


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, a: int) -> int:
        parent = self.parent
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


def find_congestion_regions(
    report: TelemetryReport,
    topology: Topology,
    threshold: float = 0.7,
) -> list[CongestionRegion]:
    """Group hot (link, window) cells into spatio-temporal regions.

    Returned regions are sorted by onset window (ties: larger first).
    ``topology`` must be the instance the simulation ran on — its link IDs
    decode the report's rows into endpoint vertices.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    hot = report.hot_links(threshold)
    hot_link, hot_win = np.nonzero(hot)
    if not len(hot_link):
        return []

    u, v = link_endpoints(topology, report.link_ids)
    cells = {
        (int(l), int(w)): i for i, (l, w) in enumerate(zip(hot_link, hot_win))
    }
    uf = _UnionFind(len(hot_link))

    # Spatial edges: within one window, links sharing an endpoint vertex.
    # Group by (window, vertex): every hot link contributes its two
    # endpoints; cells listed under one (window, vertex) are pairwise
    # connected through that vertex.
    by_vertex: dict[tuple[int, int], int] = {}
    for i, (l, w) in enumerate(zip(hot_link, hot_win)):
        for vertex in (int(u[l]), int(v[l])):
            key = (int(w), vertex)
            first = by_vertex.setdefault(key, i)
            if first != i:
                uf.union(first, i)

    # Temporal edges: the same link hot in consecutive windows.
    for i, (l, w) in enumerate(zip(hot_link, hot_win)):
        j = cells.get((int(l), int(w) - 1))
        if j is not None:
            uf.union(i, j)

    groups: dict[int, list[int]] = {}
    for i in range(len(hot_link)):
        groups.setdefault(uf.find(i), []).append(i)

    regions = []
    for members in groups.values():
        ls = hot_link[members]
        ws = hot_win[members]
        per_window = np.bincount(ws - ws.min())
        regions.append(
            CongestionRegion(
                onset_window=int(ws.min()),
                end_window=int(ws.max()),
                peak_links=int(per_window.max()),
                link_windows=len(members),
                links=np.unique(ls),
                window_dt=report.window_dt,
                cell_links=ls,
                cell_windows=ws,
            )
        )
    regions.sort(key=lambda r: (r.onset_window, -r.link_windows))
    return regions


def congestion_summary(
    report: TelemetryReport,
    topology: Topology,
    threshold: float = 0.7,
) -> CongestionSummary:
    """One-shot :func:`find_congestion_regions` + aggregation."""
    regions = find_congestion_regions(report, topology, threshold)
    hot = report.hot_links(threshold)
    hot_cells = int(hot.sum())
    hot_windows = int(hot.any(axis=0).sum())
    return CongestionSummary(
        threshold=threshold,
        num_regions=len(regions),
        peak_region_links=max((r.peak_links for r in regions), default=0),
        max_region_spread=max((r.spread for r in regions), default=0),
        longest_region_s=max((r.duration_s for r in regions), default=0.0),
        total_hot_seconds=hot_cells * report.window_dt,
        hot_windows=hot_windows,
        first_onset_window=(
            min((r.onset_window for r in regions), default=-1)
        ),
    )
