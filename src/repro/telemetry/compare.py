"""Per-policy congestion comparison — the routing story, quantified.

De Sensi et al. show application-aware Dragonfly routing flattens the
congestion timeline that minimal routing produces on adversarial traffic;
our UGAL engine reproduces the peak-load side of that story.  This module
quantifies the *temporal* side: it runs the instrumented simulator once
per routing policy on the same traffic and reduces each run's telemetry to
comparable congestion statistics (peak region size, region duration, hot
time, makespan), asserted in ``tests/test_telemetry.py`` and recorded by
``repro bench telemetry``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .collector import TelemetryConfig
from .congestion import congestion_summary

__all__ = ["congestion_by_routing", "adversarial_hot_group_matrix"]


def adversarial_hot_group_matrix(topology, packets_per_pair: int = 40):
    """The dragonfly worst case: every node of group 0 floods group 1.

    All minimal routes funnel through the single global link between the
    two groups; balanced policies (Valiant, UGAL) spread the load over
    intermediate groups.  Returns a :class:`~repro.comm.matrix.CommMatrix`.
    """
    from ..comm.matrix import CommMatrixBuilder

    per_group = topology.num_nodes // topology.num_groups
    g0 = np.arange(per_group, dtype=np.int64)
    g1 = g0 + per_group
    src, dst = np.meshgrid(g0, g1, indexing="ij")
    src, dst = src.ravel(), dst.ravel()
    packets = np.full(len(src), packets_per_pair, dtype=np.int64)
    builder = CommMatrixBuilder(topology.num_nodes)
    builder.add_arrays(src, dst, packets * 4096, packets, packets)
    return builder.finalize()


def congestion_by_routing(
    matrix,
    topology,
    routings: tuple[str, ...] = ("minimal", "ugal"),
    execution_time: float = 1.0,
    threshold: float = 0.7,
    windows: int = 48,
    volume_scale: float = 1.0,
    seed: int = 0,
    routing_seed: int = 0,
    engine: str = "auto",
) -> list[dict[str, Any]]:
    """Instrumented simulation of one traffic matrix under each policy.

    Returns one flat record per policy (export-compatible) with the run's
    aggregate observables and its congestion-region summary at
    ``threshold``.  All runs share seed, traffic, and topology, so the
    records differ only through the routes.
    """
    from ..sim.engine import simulate_network

    config = TelemetryConfig(windows=windows)
    records: list[dict[str, Any]] = []
    for routing in routings:
        result = simulate_network(
            matrix,
            topology,
            execution_time=execution_time,
            volume_scale=volume_scale,
            seed=seed,
            engine=engine,
            routing=routing,
            routing_seed=routing_seed,
            telemetry=config,
        )
        summary = congestion_summary(result.telemetry, topology, threshold)
        records.append(
            {
                "routing": routing,
                "makespan_s": result.makespan,
                "makespan_inflation": result.makespan_inflation,
                "peak_link_busy_fraction": result.peak_link_busy_fraction,
                "peak_window_occupancy": result.telemetry.peak_occupancy,
                "mean_queue_delay_s": result.mean_queue_delay,
                "congested_packet_share": result.congested_packet_share,
                **summary.as_dict(),
            }
        )
    return records
