"""Telemetry collectors: windowed time series of one simulation run.

The dynamic simulators report end-of-run aggregates; the phenomena that
distinguish topologies and routing policies — transient hotspots, queue
buildup, congestion onset — are *temporal*.  A collector turns either sim
engine into an observable system without changing its semantics:

- the engine hands the collector every **service** it performs, as
  ``(link, begin, wait)`` triples (compact link index, service start time,
  queueing delay of that hop);
- :meth:`WindowedCollector.finalize` reduces the buffered services into a
  :class:`TelemetryReport`: per-link occupancy/serve-count series over
  ``windows`` equal time windows spanning the makespan, per-node
  injection/ejection counters, and queue-depth / stall-time histograms.

**Bit-identity between engines.**  The two engines emit services in
different global orders (the reference loop in event-pop order, the batched
kernel link-grouped per window), so the collector never float-reduces in
arrival order.  Integer reductions (serve counts, histograms, flow series)
are order-independent bincounts; the one float reduction — the occupancy
correction for services straddling a window boundary — runs over the
canonical ``(link, begin)`` order.  That order is a *total* order (per-link
begin times strictly increase: each service starts after the previous one
finished) and both engines emit each link's services already begin-sorted,
so a stable sort by link alone recovers it.  The report is therefore a pure
function of the run's service multiset, which both engines produce
identically, making telemetry bit-identical seed for seed
(``tests/test_telemetry.py``).

**Zero overhead when disabled.**  The engines guard every recording call
with ``collector is None or not collector.enabled``; the default is no
collector at all, and :class:`NullCollector` (``enabled = False``) costs
the same single attribute check (ratio asserted in
``benchmarks/test_perf_telemetry.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "TelemetryConfig",
    "TelemetryCollector",
    "NullCollector",
    "WindowedCollector",
    "TelemetryReport",
    "reports_equal",
]


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs of the windowed collector (all content-free for caching:
    telemetry config never enters a :mod:`repro.cache` key, because it does
    not influence routes, traces, or matrices — see ``tests/test_telemetry``).
    """

    windows: int = 48  # time windows spanning [0, makespan]
    queue_depth_bins: int = 32  # histogram bins for per-hop queue depth
    stall_octaves: int = 20  # stall-time histogram: powers of 2 x service

    def __post_init__(self) -> None:
        if self.windows <= 0:
            raise ValueError("windows must be positive")
        if self.queue_depth_bins <= 1:
            raise ValueError("queue_depth_bins must be at least 2")
        if self.stall_octaves <= 0:
            raise ValueError("stall_octaves must be positive")


@dataclass(frozen=True, eq=False)
class TelemetryReport:
    """Windowed observables of one instrumented run.

    Array shapes: ``L`` compact links (``link_ids`` maps to topology link
    IDs), ``W`` time windows of ``window_dt`` seconds covering
    ``[0, span)``, ``N`` topology nodes.  All counters are exact integers;
    ``occupancy`` holds busy *seconds* per (link, window).
    """

    span: float  # makespan the windows cover
    window_dt: float
    service: float  # seconds one service occupies a link
    link_ids: np.ndarray  # int64[L]: compact index -> topology link ID
    serve_series: np.ndarray  # int64[L, W]: services begun per window
    occupancy: np.ndarray  # float64[L, W]: busy seconds per window
    injections: np.ndarray  # int64[N]: packets injected per source node
    ejections: np.ndarray  # int64[N]: packets delivered per destination node
    injected_series: np.ndarray  # int64[W]: packets injected per window
    delivered_series: np.ndarray  # int64[W]: packets delivered per window
    queue_depth_hist: np.ndarray  # int64[D]: hops that saw depth d ahead
    stall_hist: np.ndarray  # int64[S]: per-hop waits per stall bin
    stall_edges: np.ndarray  # float64[S-1]: upper edges (x service) of bins

    @property
    def num_links(self) -> int:
        return len(self.link_ids)

    @property
    def num_windows(self) -> int:
        return self.serve_series.shape[1]

    def occupancy_fraction(self) -> np.ndarray:
        """Busy fraction per (link, window) in [0, 1]."""
        if self.window_dt <= 0:
            return np.zeros_like(self.occupancy)
        return self.occupancy / self.window_dt

    @property
    def peak_occupancy(self) -> float:
        """Largest per-window busy fraction over all links."""
        frac = self.occupancy_fraction()
        return float(frac.max()) if frac.size else 0.0

    def hot_links(self, threshold: float) -> np.ndarray:
        """Boolean[L, W]: link occupancy fraction at or above ``threshold``."""
        return self.occupancy_fraction() >= threshold


def reports_equal(a: TelemetryReport | None, b: TelemetryReport | None) -> bool:
    """Exact (bitwise) equality of two reports — the engine-equivalence test."""
    if a is None or b is None:
        return a is b
    if (a.span, a.window_dt, a.service) != (b.span, b.window_dt, b.service):
        return False
    arrays = (
        "link_ids",
        "serve_series",
        "occupancy",
        "injections",
        "ejections",
        "injected_series",
        "delivered_series",
        "queue_depth_hist",
        "stall_hist",
        "stall_edges",
    )
    return all(
        np.array_equal(getattr(a, name), getattr(b, name)) for name in arrays
    )


class TelemetryCollector:
    """Interface both sim engines feed (see module docstring).

    ``enabled`` is checked once per recording site; disabled collectors are
    never called further.  ``record_services`` receives parallel arrays of
    the services one engine step performed; engines call ``reserve`` once
    with the run's total service count so buffering collectors can
    preallocate (retaining thousands of small per-step arrays instead would
    defeat the allocator's buffer reuse inside the engine loop).
    """

    enabled: bool = True

    def reserve(self, num_services: int) -> None:
        """Optional capacity hint, sent once before any recording."""

    def record_services(
        self, links: np.ndarray, begins: np.ndarray, waits: np.ndarray
    ) -> None:
        raise NotImplementedError

    def finalize(self, setup, result, delivered_at) -> TelemetryReport | None:
        raise NotImplementedError


class NullCollector(TelemetryCollector):
    """The do-nothing default: disabled, records nothing, reports nothing."""

    enabled = False

    def record_services(self, links, begins, waits) -> None:  # pragma: no cover
        pass

    def finalize(self, setup, result, delivered_at) -> None:
        return None


class WindowedCollector(TelemetryCollector):
    """Buffers raw services and reduces them into a :class:`TelemetryReport`."""

    def __init__(self, config: TelemetryConfig | None = None) -> None:
        self.config = config or TelemetryConfig()
        self._links = np.empty(0, dtype=np.int64)
        self._begins = np.empty(0, dtype=np.float64)
        self._waits = np.empty(0, dtype=np.float64)
        self._len = 0

    def reserve(self, num_services: int) -> None:
        self._grow(self._len + num_services)

    def _grow(self, capacity: int) -> None:
        if capacity <= len(self._links):
            return
        capacity = max(capacity, 2 * len(self._links))
        for name in ("_links", "_begins", "_waits"):
            old = getattr(self, name)
            buf = np.empty(capacity, dtype=old.dtype)
            buf[: self._len] = old[: self._len]
            setattr(self, name, buf)

    def record_services(
        self, links: np.ndarray, begins: np.ndarray, waits: np.ndarray
    ) -> None:
        end = self._len + len(links)
        self._grow(end)
        self._links[self._len : end] = links
        self._begins[self._len : end] = begins
        self._waits[self._len : end] = waits
        self._len = end

    def _gather(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The recorded services, in emission order.

        Both engines emit each link's services in strictly increasing begin
        order, so restricting the buffer to one link already yields the
        canonical (link, begin) order — a stable sort by link alone
        recovers it wherever a float reduction needs it.
        """
        n = self._len
        return self._links[:n], self._begins[:n], self._waits[:n]

    def finalize(self, setup, result, delivered_at) -> TelemetryReport:
        cfg = self.config
        span = float(result.makespan)
        num_windows = cfg.windows
        dt = span / num_windows if span > 0 else 0.0
        links, begins, waits = self._gather()
        num_links = setup.num_links
        service = float(setup.service)

        inv_dt = 1.0 / dt if dt > 0 else 0.0

        def window_of(times: np.ndarray) -> np.ndarray:
            if dt <= 0:
                return np.zeros(len(times), dtype=np.int64)
            return np.minimum((times * inv_dt).astype(np.int64), num_windows - 1)

        # Serve counts: integer bincount over (link, window) cells.
        win = window_of(begins)
        cells = links * num_windows
        cells += win
        serve_flat = np.bincount(cells, minlength=num_links * num_windows)
        serve_series = serve_flat.reshape(num_links, num_windows)

        # Occupancy: each service holds its link for exactly ``service``
        # seconds.  Attribute all of it to the begin window (an exact
        # count x service product), then move the post-boundary share of
        # the few boundary-straddling services into the windows it falls
        # in.  Only those corrections are float sums; they run over the
        # canonical (link, begin) order — recovered by a stable sort on
        # link alone, per :meth:`_gather` — so the result is
        # engine-independent.
        occupancy = serve_flat * service
        if dt > 0 and len(links):
            # Spill candidates in one subtraction against a scalar: a
            # service ends past its begin window's upper edge iff
            # begins - win*dt > dt - service.  The few matches are then
            # re-filtered with the exact boundary predicate, so ULP
            # disagreement between the two forms can only drop
            # corrections of rounding-error magnitude.
            frac = win * dt
            np.subtract(begins, frac, out=frac)
            spill = np.nonzero(frac >= dt - service)[0]
            spill = spill[win[spill] < num_windows - 1]
            boundary = (win[spill] + 1) * dt
            d_sp = begins[spill] + service
            keep = d_sp > boundary
            spill, boundary, d_sp = spill[keep], boundary[keep], d_sp[keep]
            if spill.size:
                order = np.argsort(links[spill], kind="stable")
                spill = spill[order]
                boundary = boundary[order]
                d_sp = d_sp[order]
                l_sp = links[spill]
                occupancy -= np.bincount(
                    l_sp * num_windows + win[spill],
                    weights=d_sp - boundary,
                    minlength=num_links * num_windows,
                )
                w = win[spill] + 1
                active = np.arange(len(spill))
                while active.size:
                    wa = w[active]
                    hi = np.minimum(d_sp[active], (wa + 1) * dt)
                    # The last window absorbs any rounding tail past W*dt.
                    last = wa == num_windows - 1
                    hi[last] = d_sp[active][last]
                    occupancy += np.bincount(
                        l_sp[active] * num_windows + wa,
                        weights=hi - wa * dt,
                        minlength=num_links * num_windows,
                    )
                    w[active] += 1
                    active = active[
                        (w[active] < num_windows)
                        & (d_sp[active] > w[active] * dt)
                    ]
        occupancy = occupancy.reshape(num_links, num_windows)

        # Per-node counters and per-window packet flow.  Injection data come
        # from the shared SimSetup and delivery times are bit-identical
        # between engines, so integer binning needs no canonicalization.
        num_nodes = (
            int(max(setup.pair_src.max(), setup.pair_dst.max())) + 1
            if len(setup.pair_src)
            else 0
        )
        injections = np.bincount(
            setup.pair_src[setup.inject_pair], minlength=num_nodes
        )
        ejections = np.bincount(
            setup.pair_dst[setup.inject_pair], minlength=num_nodes
        )
        injected_series = np.bincount(
            window_of(setup.inject_time), minlength=num_windows
        )
        delivered_series = np.bincount(
            window_of(np.asarray(delivered_at, dtype=np.float64)),
            minlength=num_windows,
        )

        # Queue-depth and stall-time histograms share one integer
        # reduction: a hop that waited ``wait`` had q = ceil(wait /
        # service) packets ahead of it, and its stall octave is the k
        # with q in (2^(k-2), 2^(k-1)] — so a single capped bincount of
        # q yields both, instead of a per-hop float searchsorted.
        stall_edges = service * np.exp2(np.arange(cfg.stall_octaves))
        num_depth = cfg.queue_depth_bins
        num_oct = cfg.stall_octaves
        if service > 0 and len(waits):
            # Most hops never queue; run the quanta arithmetic over the
            # nonzero waits only and credit the rest to q = 0 directly.
            nz = np.nonzero(waits)[0]
            q = waits[nz] * (1.0 / service)
            np.ceil(q, out=q)
            q = q.astype(np.int64)
            cap = max(1 << (num_oct - 1), num_depth - 1) + 1
            np.minimum(q, cap, out=q)
            cnt = np.bincount(q, minlength=cap + 1)
            cnt[0] += len(waits) - len(nz)
            queue_depth_hist = np.concatenate(
                [cnt[: num_depth - 1], [cnt[num_depth - 1 :].sum()]]
            )
            # Octave bin starts over q: 0 | 1 | 2 | 2^(k-2)+1 ... | cap.
            starts = np.concatenate(
                [[0, 1, 2], (1 << np.arange(1, num_oct, dtype=np.int64)) + 1]
            )
            stall_hist = np.add.reduceat(cnt, starts)
        else:
            queue_depth_hist = np.zeros(num_depth, dtype=np.int64)
            queue_depth_hist[0] = len(waits)
            stall_bin = np.searchsorted(
                np.concatenate([[0.0], stall_edges]), waits, side="left"
            )
            stall_hist = np.bincount(stall_bin, minlength=num_oct + 2)

        i64 = np.int64
        return TelemetryReport(
            span=span,
            window_dt=dt,
            service=service,
            link_ids=np.asarray(setup.link_ids, dtype=i64),
            serve_series=serve_series.astype(i64, copy=False),
            occupancy=occupancy,
            injections=injections.astype(i64, copy=False),
            ejections=ejections.astype(i64, copy=False),
            injected_series=injected_series.astype(i64, copy=False),
            delivered_series=delivered_series.astype(i64, copy=False),
            queue_depth_hist=queue_depth_hist.astype(i64, copy=False),
            stall_hist=stall_hist.astype(i64, copy=False),
            stall_edges=stall_edges,
        )
