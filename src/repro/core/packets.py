"""Packetization model.

The network model splits every MPI message into packets with a maximum
payload of 4 kB (paper §4.2.1).  The number of hops a *message* contributes
is then ``num_packets(message) * hops(route)``, which is what Eq. 3 sums.

All helpers are exact integer arithmetic; vectorized variants operate on
NumPy arrays without Python-level loops.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MAX_PAYLOAD_BYTES", "packets_for_bytes", "packets_for_bytes_array"]

#: Maximum packet payload in bytes (paper §4.2.1).
MAX_PAYLOAD_BYTES = 4096


def packets_for_bytes(nbytes: int, payload: int = MAX_PAYLOAD_BYTES) -> int:
    """Number of packets needed to carry ``nbytes`` of payload.

    A zero-byte message still occupies one packet (headers/sync travel the
    network), matching the convention that every MPI message is at least one
    packet on the wire.
    """
    if nbytes < 0:
        raise ValueError(f"byte count must be >= 0, got {nbytes}")
    if payload <= 0:
        raise ValueError(f"payload must be positive, got {payload}")
    if nbytes == 0:
        return 1
    return -(-nbytes // payload)  # ceil division


def packets_for_bytes_array(
    nbytes: np.ndarray, payload: int = MAX_PAYLOAD_BYTES
) -> np.ndarray:
    """Vectorized :func:`packets_for_bytes` over an integer array."""
    if payload <= 0:
        raise ValueError(f"payload must be positive, got {payload}")
    arr = np.asarray(nbytes, dtype=np.int64)
    if np.any(arr < 0):
        raise ValueError("byte counts must be >= 0")
    return np.maximum(-(-arr // payload), 1)
