"""MPI communicator model.

A communicator defines the group of ranks eligible to take part in a
communication and the mapping between *communicator-local* rank IDs and
*global* (``MPI_COMM_WORLD``) rank IDs.

The paper restricts its analysis to traces that only use **global
communicators** (§4.3): traces with ``MPI_Cart_create`` / ``MPI_Cart_sub``
style communicators are excluded, because dumpi traces do not record enough
information to keep the local→global rank mapping consistent.  We model the
general structure anyway — sub-communicators with explicit member lists and
Cartesian communicators — so that the exclusion rule can be *checked* rather
than assumed, and so the library remains usable on traces that do carry the
mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

__all__ = ["Communicator", "CartesianCommunicator", "CommunicatorTable", "WORLD_NAME"]

#: Conventional name for the world communicator in traces.
WORLD_NAME = "MPI_COMM_WORLD"


@dataclass(frozen=True)
class Communicator:
    """A group of global ranks with local rank numbering.

    ``members[i]`` is the global rank of local rank ``i``.  The world
    communicator of an N-rank job is ``Communicator.world(N)`` with
    ``members = (0, 1, ..., N-1)``.
    """

    name: str
    members: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.members)) != len(self.members):
            raise ValueError(f"communicator {self.name!r} has duplicate members")
        if any(m < 0 for m in self.members):
            raise ValueError(f"communicator {self.name!r} has negative rank IDs")

    @staticmethod
    def world(num_ranks: int, name: str = WORLD_NAME) -> "Communicator":
        if num_ranks <= 0:
            raise ValueError(f"world communicator needs >= 1 rank, got {num_ranks}")
        return Communicator(name, tuple(range(num_ranks)))

    @property
    def size(self) -> int:
        return len(self.members)

    def to_global(self, local_rank: int) -> int:
        """Translate a communicator-local rank to a global rank."""
        try:
            return self.members[local_rank]
        except IndexError:
            raise ValueError(
                f"local rank {local_rank} out of range for communicator "
                f"{self.name!r} of size {self.size}"
            ) from None

    def to_local(self, global_rank: int) -> int:
        """Translate a global rank to this communicator's local rank."""
        try:
            return self.members.index(global_rank)
        except ValueError:
            raise ValueError(
                f"global rank {global_rank} is not a member of {self.name!r}"
            ) from None

    @property
    def is_world_like(self) -> bool:
        """True when local and global numbering coincide (identity mapping)."""
        return self.members == tuple(range(len(self.members)))

    def __iter__(self) -> Iterator[int]:
        return iter(self.members)

    def __len__(self) -> int:
        return self.size


@dataclass(frozen=True)
class CartesianCommunicator(Communicator):
    """A communicator created by ``MPI_Cart_create``.

    Carries the Cartesian grid shape and periodicity so locality analyses can
    recover the application's logical decomposition.  ``dims`` multiplies out
    to ``len(members)``; ordering is row-major (C order, last dim fastest), as
    MPI specifies.
    """

    dims: tuple[int, ...] = ()
    periods: tuple[bool, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.dims:
            raise ValueError("Cartesian communicator requires at least one dim")
        prod = 1
        for d in self.dims:
            if d <= 0:
                raise ValueError(f"Cartesian dims must be positive, got {self.dims}")
            prod *= d
        if prod != len(self.members):
            raise ValueError(
                f"Cartesian dims {self.dims} imply {prod} ranks, "
                f"but communicator has {len(self.members)}"
            )
        if self.periods and len(self.periods) != len(self.dims):
            raise ValueError("periods must match dims in length")

    def coords_of(self, local_rank: int) -> tuple[int, ...]:
        """Cartesian coordinates of a local rank (row-major)."""
        if not 0 <= local_rank < self.size:
            raise ValueError(f"local rank {local_rank} out of range")
        coords = []
        rem = local_rank
        for d in reversed(self.dims):
            coords.append(rem % d)
            rem //= d
        return tuple(reversed(coords))

    def rank_of(self, coords: Sequence[int]) -> int:
        """Local rank at the given Cartesian coordinates."""
        if len(coords) != len(self.dims):
            raise ValueError("coordinate arity does not match dims")
        rank = 0
        for c, d, periodic in zip(
            coords, self.dims, self.periods or (False,) * len(self.dims)
        ):
            if periodic:
                c %= d
            if not 0 <= c < d:
                raise ValueError(f"coordinate {coords} out of bounds for dims {self.dims}")
            rank = rank * d + c
        return rank


@dataclass
class CommunicatorTable:
    """All communicators seen in one trace, keyed by name/handle.

    Tracks whether any *non-world-like* communicator was used, which is the
    paper's exclusion criterion (§4.3): when the local→global mapping of a
    sub-communicator cannot be trusted, the trace is rejected for locality
    analysis.
    """

    world: Communicator
    _table: dict[str, Communicator] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._table.setdefault(self.world.name, self.world)

    @staticmethod
    def for_world(num_ranks: int) -> "CommunicatorTable":
        return CommunicatorTable(Communicator.world(num_ranks))

    def add(self, comm: Communicator) -> Communicator:
        if comm.name in self._table and self._table[comm.name] != comm:
            raise ValueError(f"communicator {comm.name!r} already defined differently")
        members = set(comm.members)
        if not members <= set(self.world.members):
            raise ValueError(
                f"communicator {comm.name!r} contains ranks outside the world group"
            )
        self._table[comm.name] = comm
        return comm

    def get(self, name: str) -> Communicator:
        try:
            return self._table[name]
        except KeyError:
            raise KeyError(f"unknown communicator {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._table

    def names(self) -> list[str]:
        return sorted(self._table)

    @property
    def uses_only_global(self) -> bool:
        """True iff every communicator is world-like (paper §4.3 criterion)."""
        return all(c.is_world_like for c in self._table.values())
