"""Core MPI trace data model: datatypes, communicators, events, traces, packets."""

from .blocks import (
    EventBlock,
    KIND_COLLECTIVE,
    KIND_P2P_RECV,
    KIND_P2P_SEND,
    OPS,
    OP_CODE,
)
from .communicator import CartesianCommunicator, Communicator, CommunicatorTable
from .datatypes import (
    DERIVED_SIZE_CONVENTION,
    DatatypeRegistry,
    DerivedDatatype,
    DerivedKind,
    MPIDatatype,
)
from .events import (
    CollectiveEvent,
    CollectiveOp,
    Direction,
    P2PEvent,
    ROOTED_OPS,
    TraceEvent,
    VECTOR_OPS,
)
from .packets import MAX_PAYLOAD_BYTES, packets_for_bytes, packets_for_bytes_array
from .stream import (
    DEFAULT_CHUNK_BYTES,
    ROW_BYTES,
    BlockStream,
    load_spill_trace,
    open_spill,
    rechunk_blocks,
    slice_block,
    write_spill,
)
from .trace import Trace, TraceMetadata

__all__ = [
    "EventBlock",
    "KIND_COLLECTIVE",
    "KIND_P2P_RECV",
    "KIND_P2P_SEND",
    "OPS",
    "OP_CODE",
    "CartesianCommunicator",
    "Communicator",
    "CommunicatorTable",
    "DatatypeRegistry",
    "DerivedDatatype",
    "DerivedKind",
    "MPIDatatype",
    "DERIVED_SIZE_CONVENTION",
    "CollectiveEvent",
    "CollectiveOp",
    "Direction",
    "P2PEvent",
    "ROOTED_OPS",
    "TraceEvent",
    "VECTOR_OPS",
    "MAX_PAYLOAD_BYTES",
    "packets_for_bytes",
    "packets_for_bytes_array",
    "BlockStream",
    "DEFAULT_CHUNK_BYTES",
    "ROW_BYTES",
    "load_spill_trace",
    "open_spill",
    "rechunk_blocks",
    "slice_block",
    "write_spill",
    "Trace",
    "TraceMetadata",
]
