"""Bounded-memory streaming over :class:`~repro.core.blocks.EventBlock` runs.

A :class:`BlockStream` is a trace whose records never have to fit in RAM: it
carries the same identity a :class:`~repro.core.trace.Trace` does (metadata,
datatype registry, communicator table) but yields its event blocks from a
re-invocable factory, one bounded chunk at a time.  Three sources feed it:

- **generators** — every synthetic app can emit its plan in chunk-size
  slices (:meth:`repro.apps.base.SyntheticApp.iter_blocks`), so a
  million-rank trace is produced without ever materializing it;
- **spill files** — :func:`write_spill` persists a stream as one ``.npy``
  segment file per chunk column plus a JSON manifest, and
  :func:`open_spill` memory-maps those segments back, so warm reads cost
  page-cache traffic instead of heap (NumPy's ``mmap_mode`` is silently
  ignored for ``.npz`` zip archives, which is why the spill format is a
  directory of flat ``.npy`` files);
- **in-memory traces** — :meth:`BlockStream.from_trace` wraps an existing
  trace, and :meth:`BlockStream.rechunk` re-slices any stream to a byte
  budget, which is how the streaming-equivalence invariant replays the
  in-memory path chunk by chunk.

Chunking is pure row slicing: the per-row columns of a sliced block are
views of the source block, and every streaming consumer (traffic matrix,
collective expansion, sim ingestion) is pinned bit-identical to the
monolithic path — summation over int64 per-pair keys is associative, so the
partition never shows in any result.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Callable, Iterable, Iterator

import numpy as np

from .blocks import EventBlock
from .communicator import CommunicatorTable
from .datatypes import DatatypeRegistry
from .trace import Trace, TraceMetadata

__all__ = [
    "ROW_BYTES",
    "DEFAULT_CHUNK_BYTES",
    "BlockStream",
    "slice_block",
    "rechunk_blocks",
    "rows_per_chunk",
    "write_spill",
    "open_spill",
    "load_spill_trace",
    "SPILL_MANIFEST",
    "SPILL_FORMAT_VERSION",
]

#: Bytes one row occupies across the 13 parallel columns (name tables and
#: array headers excluded — they are O(1) per block).
ROW_BYTES = sum(
    np.dtype(dtype).itemsize for dtype in EventBlock._COLUMN_DTYPES.values()
)

#: Default per-chunk byte budget.  8 MiB ≈ 100k rows: large enough that
#: per-chunk NumPy dispatch overhead is negligible, small enough that a
#: dozen chunks in flight stay far under any practical RSS budget.
DEFAULT_CHUNK_BYTES = 8 * 1024 * 1024

SPILL_MANIFEST = "manifest.json"
SPILL_FORMAT_VERSION = 1


def rows_per_chunk(chunk_bytes: int) -> int:
    """Row budget for a byte budget (at least one row per chunk)."""
    if chunk_bytes <= 0:
        raise ValueError("chunk_bytes must be positive")
    return max(1, int(chunk_bytes) // ROW_BYTES)


def slice_block(block: EventBlock, start: int, stop: int) -> EventBlock:
    """Rows ``[start, stop)`` of a block as a new block (columns are views)."""
    return EventBlock(
        **{
            name: getattr(block, name)[start:stop]
            for name in EventBlock._COLUMN_DTYPES
        },
        dtype_names=block.dtype_names,
        comm_names=block.comm_names,
        func_names=block.func_names,
    )


def rechunk_blocks(
    blocks: Iterable[EventBlock], chunk_bytes: int = DEFAULT_CHUNK_BYTES
) -> Iterator[EventBlock]:
    """Re-slice a block sequence so no yielded block exceeds the byte budget.

    Blocks already within budget pass through untouched (no copy); empty
    blocks are dropped.  Row order is preserved exactly.
    """
    max_rows = rows_per_chunk(chunk_bytes)
    for block in blocks:
        k = len(block)
        if k == 0:
            continue
        if k <= max_rows:
            yield block
            continue
        for start in range(0, k, max_rows):
            yield slice_block(block, start, min(start + max_rows, k))


class BlockStream:
    """An ordered, re-iterable stream of event blocks plus trace identity.

    ``blocks_factory`` is called anew on every iteration, so the stream can
    be consumed multiple times (each pass regenerates or re-reads the
    chunks); nothing obliges the factory to keep more than one chunk alive.
    """

    def __init__(
        self,
        meta: TraceMetadata,
        blocks_factory: Callable[[], Iterable[EventBlock]],
        datatypes: DatatypeRegistry | None = None,
        communicators: CommunicatorTable | None = None,
    ) -> None:
        self.meta = meta
        self.datatypes = DatatypeRegistry() if datatypes is None else datatypes
        self.communicators = (
            CommunicatorTable.for_world(meta.num_ranks)
            if communicators is None
            else communicators
        )
        self._factory = blocks_factory

    def __iter__(self) -> Iterator[EventBlock]:
        for block in self._factory():
            if len(block):
                yield block

    # -- construction -------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: Trace) -> "BlockStream":
        """Wrap an in-memory trace (blocks are shared, not copied)."""
        return cls(
            trace.meta,
            trace.blocks,
            datatypes=trace.datatypes,
            communicators=trace.communicators,
        )

    @classmethod
    def from_blocks(
        cls,
        meta: TraceMetadata,
        blocks: Iterable[EventBlock],
        datatypes: DatatypeRegistry | None = None,
        communicators: CommunicatorTable | None = None,
    ) -> "BlockStream":
        """Stream over a fixed block list (mostly for tests)."""
        blocks = list(blocks)
        return cls(
            meta, lambda: blocks, datatypes=datatypes, communicators=communicators
        )

    # -- transforms ---------------------------------------------------------

    def rechunk(self, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> "BlockStream":
        """The same records re-sliced to the byte budget."""
        factory = self._factory
        return BlockStream(
            self.meta,
            lambda: rechunk_blocks(factory(), chunk_bytes),
            datatypes=self.datatypes,
            communicators=self.communicators,
        )

    def to_trace(self, validate: bool = False) -> Trace:
        """Materialize the whole stream as an in-memory block-native trace."""
        return Trace.from_blocks(
            self.meta,
            list(self),
            datatypes=self.datatypes,
            communicators=self.communicators,
            validate=validate,
        )

    # -- summaries ----------------------------------------------------------

    def num_rows(self) -> int:
        """Total block rows (consumes one pass over the stream)."""
        return sum(len(block) for block in self)


# ------------------------------------------------------------------- spill


def _reconstruction_context(
    meta: TraceMetadata,
    datatypes: DatatypeRegistry,
    communicators: CommunicatorTable,
    seen_dtype_names: Iterable[str],
) -> dict | None:
    """How a spill load would rebuild (datatypes, communicators), or None.

    Mirrors the trace-cache representability rule: the communicator table
    must be the plain world table, and the datatype registry either fresh
    (names resolve lazily downstream) or exactly the result of resolving the
    spilled blocks' dtype names.  Anything else is not spill-representable.
    """
    if CommunicatorTable.for_world(meta.num_ranks) != communicators:
        return None
    if DatatypeRegistry() == datatypes:
        return {"resolve_dtypes": False}
    registry = DatatypeRegistry()
    for name in seen_dtype_names:
        registry.resolve(name)
    if registry == datatypes:
        return {"resolve_dtypes": True}
    return None


def write_spill(stream: BlockStream, directory: str | os.PathLike) -> Path | None:
    """Persist a stream as chunked ``.npy`` segments under ``directory``.

    One pass over the stream; at no point is more than one chunk resident.
    The write is atomic (temp directory + rename): readers either see the
    complete spill or nothing.  Returns the directory path, or ``None`` when
    the stream's registry/communicators cannot be reconstructed from a spill
    (callers fall back to another serialization).
    """
    directory = Path(directory)
    directory.parent.mkdir(parents=True, exist_ok=True)
    tmp = Path(
        tempfile.mkdtemp(dir=directory.parent, prefix=directory.name + ".tmp")
    )
    try:
        chunks: list[dict] = []
        seen_dtypes: dict[str, None] = {}
        for i, block in enumerate(stream):
            for column in EventBlock._COLUMN_DTYPES:
                np.save(tmp / f"c{i}_{column}.npy", getattr(block, column))
            chunks.append(
                {
                    "rows": len(block),
                    "dtype_names": list(block.dtype_names),
                    "comm_names": list(block.comm_names),
                    "func_names": list(block.func_names),
                }
            )
            for name in block.dtype_names:
                seen_dtypes[name] = None
        context = _reconstruction_context(
            stream.meta, stream.datatypes, stream.communicators, seen_dtypes
        )
        if context is None:
            shutil.rmtree(tmp, ignore_errors=True)
            return None
        meta = stream.meta
        manifest = {
            "format": "repro-spill",
            "version": SPILL_FORMAT_VERSION,
            "meta": {
                "app": meta.app,
                "num_ranks": meta.num_ranks,
                "execution_time": meta.execution_time,
                "variant": meta.variant,
                "uses_derived_types": meta.uses_derived_types,
            },
            "resolve_dtypes": context["resolve_dtypes"],
            "chunks": chunks,
        }
        # fsync the manifest before the rename: without it a system crash
        # can persist the rename but not the data, leaving a torn spill
        # that every later reader would evict and recompute.
        with (tmp / SPILL_MANIFEST).open("w") as fh:
            fh.write(json.dumps(manifest, indent=1, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        try:
            os.replace(tmp, directory)
        except OSError:
            # A concurrent writer won the rename race; its spill has the
            # same content key, so ours is redundant.
            shutil.rmtree(tmp, ignore_errors=True)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return directory


def _read_manifest(directory: Path) -> dict:
    manifest = json.loads((directory / SPILL_MANIFEST).read_text())
    if manifest.get("format") != "repro-spill":
        raise ValueError(f"{directory} is not a repro spill directory")
    if manifest.get("version") != SPILL_FORMAT_VERSION:
        raise ValueError(
            f"unsupported spill version {manifest.get('version')!r} "
            f"(expected {SPILL_FORMAT_VERSION})"
        )
    return manifest


def _spill_chunks(
    directory: Path, chunk_entries: list[dict], mmap: bool
) -> Iterator[EventBlock]:
    mode = "r" if mmap else None
    for i, entry in enumerate(chunk_entries):
        columns = {
            column: np.load(directory / f"c{i}_{column}.npy", mmap_mode=mode)
            for column in EventBlock._COLUMN_DTYPES
        }
        yield EventBlock(
            **columns,
            dtype_names=tuple(entry["dtype_names"]),
            comm_names=tuple(entry["comm_names"]),
            func_names=tuple(entry["func_names"]),
        )


def open_spill(directory: str | os.PathLike, mmap: bool = True) -> BlockStream:
    """Open a spill directory as a lazy :class:`BlockStream`.

    With ``mmap=True`` (the default) each chunk's columns are memory-mapped:
    iterating the stream touches pages on demand and the OS may drop them
    under pressure, so reading an arbitrarily large spill needs only one
    chunk's worth of resident memory.
    """
    directory = Path(directory)
    manifest = _read_manifest(directory)
    m = manifest["meta"]
    meta = TraceMetadata(
        app=m["app"],
        num_ranks=int(m["num_ranks"]),
        execution_time=float(m["execution_time"]),
        variant=m["variant"],
        uses_derived_types=bool(m["uses_derived_types"]),
    )
    datatypes = DatatypeRegistry()
    if manifest["resolve_dtypes"]:
        for entry in manifest["chunks"]:
            for name in entry["dtype_names"]:
                datatypes.resolve(name)
    chunks = manifest["chunks"]
    return BlockStream(
        meta,
        lambda: _spill_chunks(directory, chunks, mmap),
        datatypes=datatypes,
    )


def load_spill_trace(directory: str | os.PathLike, mmap: bool = True) -> Trace:
    """A block-native :class:`Trace` over a spill's (possibly mapped) chunks.

    The trace holds every chunk's column arrays, but with ``mmap=True``
    those are memory-mapped views — constructing the trace reads only the
    manifest and array headers, and column data is paged in (and reclaimable)
    as consumers touch it.
    """
    stream = open_spill(directory, mmap=mmap)
    return stream.to_trace(validate=False)
