"""MPI datatype model.

The dumpi trace format records, for every MPI call, the datatype handle and
element count of each buffer.  To turn those into byte volumes we need the
size (extent, for our purposes) of every datatype.  This module models the
MPI predefined datatypes with their conventional sizes on LP64 systems and
*derived* datatypes built from them (contiguous, vector, indexed, struct).

Following the paper (§4.3), applications that use MPI Derived Data Types are
traced without the type-construction metadata, so the size of a derived type
cannot be recovered from the trace.  The paper assigns **one byte** per
derived-type element; :data:`DERIVED_SIZE_CONVENTION` encodes the same
convention and :class:`DatatypeRegistry` applies it for unknown handles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable

__all__ = [
    "MPIDatatype",
    "DatatypeRegistry",
    "DerivedKind",
    "DerivedDatatype",
    "DERIVED_SIZE_CONVENTION",
    "PREDEFINED_SIZES",
]

#: Size (in bytes) assigned to a derived-type element whose layout is not
#: recorded in the trace, matching the paper's one-byte convention.
DERIVED_SIZE_CONVENTION = 1

#: Conventional sizes of the MPI predefined datatypes (LP64).
PREDEFINED_SIZES: dict[str, int] = {
    "MPI_CHAR": 1,
    "MPI_SIGNED_CHAR": 1,
    "MPI_UNSIGNED_CHAR": 1,
    "MPI_BYTE": 1,
    "MPI_PACKED": 1,
    "MPI_SHORT": 2,
    "MPI_UNSIGNED_SHORT": 2,
    "MPI_INT": 4,
    "MPI_UNSIGNED": 4,
    "MPI_LONG": 8,
    "MPI_UNSIGNED_LONG": 8,
    "MPI_LONG_LONG": 8,
    "MPI_LONG_LONG_INT": 8,
    "MPI_UNSIGNED_LONG_LONG": 8,
    "MPI_FLOAT": 4,
    "MPI_DOUBLE": 8,
    "MPI_LONG_DOUBLE": 16,
    "MPI_WCHAR": 4,
    "MPI_C_BOOL": 1,
    "MPI_INT8_T": 1,
    "MPI_INT16_T": 2,
    "MPI_INT32_T": 4,
    "MPI_INT64_T": 8,
    "MPI_UINT8_T": 1,
    "MPI_UINT16_T": 2,
    "MPI_UINT32_T": 4,
    "MPI_UINT64_T": 8,
    "MPI_C_COMPLEX": 8,
    "MPI_C_DOUBLE_COMPLEX": 16,
    "MPI_FLOAT_INT": 8,
    "MPI_DOUBLE_INT": 12,
    "MPI_LONG_INT": 12,
    "MPI_2INT": 8,
    "MPI_SHORT_INT": 6,
    "MPI_LONG_DOUBLE_INT": 20,
}


@dataclass(frozen=True, slots=True)
class MPIDatatype:
    """A resolved MPI datatype: a name and a per-element size in bytes.

    ``size`` is the number of bytes one element of this type contributes to a
    message payload.  For predefined types this is the true size; for derived
    types whose layout is known it is the aggregate size of the constructed
    type; for *opaque* derived types (seen in traces without construction
    records) it is :data:`DERIVED_SIZE_CONVENTION`.
    """

    name: str
    size: int
    derived: bool = False

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"datatype size must be >= 0, got {self.size}")

    def volume(self, count: int) -> int:
        """Payload bytes for ``count`` elements of this type."""
        if count < 0:
            raise ValueError(f"element count must be >= 0, got {count}")
        return self.size * count


class DerivedKind(Enum):
    """Constructors for MPI derived datatypes we can model explicitly."""

    CONTIGUOUS = "contiguous"
    VECTOR = "vector"
    INDEXED = "indexed"
    STRUCT = "struct"


@dataclass(frozen=True, slots=True)
class DerivedDatatype:
    """A derived datatype with a known construction.

    Only the *payload size* matters for volume accounting, so each
    constructor reduces to a single number:

    - ``contiguous(count, base)``        -> count * base.size
    - ``vector(count, blocklen, base)``  -> count * blocklen * base.size
    - ``indexed(blocklens, base)``       -> sum(blocklens) * base.size
    - ``struct(blocklens, bases)``       -> sum(bl * b.size)
    """

    kind: DerivedKind
    name: str
    size: int

    @staticmethod
    def contiguous(name: str, count: int, base: MPIDatatype) -> "DerivedDatatype":
        if count < 0:
            raise ValueError("contiguous count must be >= 0")
        return DerivedDatatype(DerivedKind.CONTIGUOUS, name, count * base.size)

    @staticmethod
    def vector(
        name: str, count: int, blocklength: int, base: MPIDatatype
    ) -> "DerivedDatatype":
        if count < 0 or blocklength < 0:
            raise ValueError("vector count/blocklength must be >= 0")
        return DerivedDatatype(DerivedKind.VECTOR, name, count * blocklength * base.size)

    @staticmethod
    def indexed(
        name: str, blocklengths: Iterable[int], base: MPIDatatype
    ) -> "DerivedDatatype":
        lens = list(blocklengths)
        if any(b < 0 for b in lens):
            raise ValueError("indexed blocklengths must be >= 0")
        return DerivedDatatype(DerivedKind.INDEXED, name, sum(lens) * base.size)

    @staticmethod
    def struct(
        name: str,
        blocklengths: Iterable[int],
        bases: Iterable[MPIDatatype],
    ) -> "DerivedDatatype":
        lens = list(blocklengths)
        types = list(bases)
        if len(lens) != len(types):
            raise ValueError("struct blocklengths and bases must align")
        if any(b < 0 for b in lens):
            raise ValueError("struct blocklengths must be >= 0")
        return DerivedDatatype(
            DerivedKind.STRUCT, name, sum(n * t.size for n, t in zip(lens, types))
        )

    def as_datatype(self) -> MPIDatatype:
        """View this derived construction as a plain resolvable datatype."""
        return MPIDatatype(self.name, self.size, derived=True)


@dataclass
class DatatypeRegistry:
    """Maps datatype names/handles to :class:`MPIDatatype` instances.

    A registry starts with all MPI predefined types.  Derived types may be
    committed explicitly (when the construction is known) or resolved lazily:
    any unknown name is treated as an opaque derived type with the paper's
    one-byte convention.  Lazily-resolved names are remembered so repeated
    lookups return the same object and callers can audit which types were
    guessed (``opaque_names``).
    """

    _types: dict[str, MPIDatatype] = field(default_factory=dict)
    opaque_names: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        for name, size in PREDEFINED_SIZES.items():
            self._types[name] = MPIDatatype(name, size)

    def commit(self, dtype: MPIDatatype | DerivedDatatype) -> MPIDatatype:
        """Register a datatype, returning the stored :class:`MPIDatatype`."""
        if isinstance(dtype, DerivedDatatype):
            dtype = dtype.as_datatype()
        existing = self._types.get(dtype.name)
        if existing is not None and existing != dtype:
            raise ValueError(
                f"datatype {dtype.name!r} already committed with size "
                f"{existing.size}, refusing to rebind to {dtype.size}"
            )
        self._types[dtype.name] = dtype
        return dtype

    def resolve(self, name: str) -> MPIDatatype:
        """Look up a datatype by name, applying the opaque convention."""
        dtype = self._types.get(name)
        if dtype is None:
            dtype = MPIDatatype(name, DERIVED_SIZE_CONVENTION, derived=True)
            self._types[name] = dtype
            self.opaque_names.add(name)
        return dtype

    def size_of(self, name: str) -> int:
        """Per-element size in bytes of the named datatype."""
        return self.resolve(name).size

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def known_names(self) -> list[str]:
        return sorted(self._types)
