"""Trace container.

A :class:`Trace` bundles everything one analyzed run contributes:

- metadata (application name, rank count, traced execution time),
- the datatype registry used to resolve element sizes,
- the communicator table,
- the MPI call records, stored either as a flat list of
  :class:`~repro.core.events.TraceEvent` objects or as columnar
  :class:`~repro.core.blocks.EventBlock` arrays.

The two storages are interchangeable: :meth:`Trace.blocks` converts an
event-object trace to columns on demand, and the :attr:`Trace.events`
property lazily materializes event objects from native blocks.  Synthetic
generators and the dumpi loader produce block-native traces; all existing
per-event call sites keep working through the lazy view, while the hot
consumers (traffic matrix, collective translation, statistics) read the
columns directly.

Execution time is taken from trace timestamps, exactly as the paper takes it
from dumpi wall-clock records; synthetic generators stamp it from their
calibrated duration model.  It is the ``t_execution`` of the utilization
formula (Eq. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from .blocks import KIND_COLLECTIVE, KIND_P2P_SEND, EventBlock
from .communicator import CommunicatorTable
from .datatypes import DatatypeRegistry
from .events import CollectiveEvent, Direction, P2PEvent, TraceEvent

__all__ = ["TraceMetadata", "Trace"]


@dataclass(frozen=True, slots=True)
class TraceMetadata:
    """Identifying metadata of one traced run."""

    app: str
    num_ranks: int
    execution_time: float
    variant: str = ""
    uses_derived_types: bool = False

    def __post_init__(self) -> None:
        if self.num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        if self.execution_time <= 0:
            raise ValueError("execution_time must be positive")

    @property
    def label(self) -> str:
        """Human-readable ``app@ranks`` label, with variant if present."""
        base = f"{self.app}@{self.num_ranks}"
        return f"{base}/{self.variant}" if self.variant else base


class Trace:
    """An ordered stream of MPI call records plus run metadata."""

    def __init__(
        self,
        meta: TraceMetadata,
        datatypes: DatatypeRegistry | None = None,
        communicators: CommunicatorTable | None = None,
        events: Iterable[TraceEvent] | None = None,
    ) -> None:
        self.meta = meta
        self.datatypes = DatatypeRegistry() if datatypes is None else datatypes
        self.communicators = (
            CommunicatorTable.for_world(meta.num_ranks)
            if communicators is None
            else communicators
        )
        self._events: list[TraceEvent] | None = (
            list(events) if events is not None else []
        )
        self._blocks: list[EventBlock] | None = None

    @classmethod
    def from_blocks(
        cls,
        meta: TraceMetadata,
        blocks: Sequence[EventBlock],
        datatypes: DatatypeRegistry | None = None,
        communicators: CommunicatorTable | None = None,
        validate: bool = True,
    ) -> "Trace":
        """Build a block-native trace (no per-event objects allocated)."""
        trace = cls(meta, datatypes, communicators)
        trace._events = None
        trace._blocks = [b for b in blocks if len(b)]
        if validate:
            assert trace.communicators is not None
            for block in trace._blocks:
                block.check(meta.num_ranks, trace.communicators)
        return trace

    # -- storage ----------------------------------------------------------

    @property
    def has_native_blocks(self) -> bool:
        """True when columnar storage is authoritative (fast paths apply)."""
        return self._blocks is not None

    def blocks(self) -> list[EventBlock]:
        """Columnar view of the trace; converts from events on first use."""
        if self._blocks is None:
            assert self._events is not None
            self._blocks = (
                [EventBlock.from_events(self._events)] if self._events else []
            )
        return self._blocks

    @property
    def events(self) -> list[TraceEvent]:
        """Legacy flat event list; materialized lazily from native blocks.

        Treat the returned list as read-only — use :meth:`add` /
        :meth:`extend` to append records so the columnar view stays in sync.
        """
        if self._events is None:
            assert self._blocks is not None
            evs: list[TraceEvent] = []
            for block in self._blocks:
                evs.extend(block.to_events())
            self._events = evs
        return self._events

    # -- construction -----------------------------------------------------

    def add(self, event: TraceEvent) -> None:
        """Append one event after validating its ranks and communicator."""
        self._validate(event)
        self.events.append(event)
        self._blocks = None  # columnar view is stale; rebuild on demand

    def extend(self, events: Iterable[TraceEvent]) -> None:
        for ev in events:
            self.add(ev)

    def _validate(self, event: TraceEvent) -> None:
        n = self.meta.num_ranks
        if event.caller >= n:
            raise ValueError(
                f"event caller {event.caller} out of range for {n}-rank trace"
            )
        if isinstance(event, P2PEvent) and event.peer >= n:
            raise ValueError(
                f"event peer {event.peer} out of range for {n}-rank trace"
            )
        assert self.communicators is not None
        if event.comm not in self.communicators:
            raise ValueError(f"event references unknown communicator {event.comm!r}")

    # -- iteration --------------------------------------------------------

    def __len__(self) -> int:
        if self._events is None:
            assert self._blocks is not None
            return sum(len(b) for b in self._blocks)
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            self.meta == other.meta
            and self.datatypes == other.datatypes
            and self.communicators == other.communicators
            and self.events == other.events
        )

    def __repr__(self) -> str:
        return f"Trace(meta={self.meta!r}, records={len(self)})"

    def iter_p2p_sends(self) -> Iterator[P2PEvent]:
        """All point-to-point records that inject traffic."""
        for ev in self.events:
            if isinstance(ev, P2PEvent) and ev.direction is Direction.SEND:
                yield ev

    def iter_collectives(self) -> Iterator[CollectiveEvent]:
        for ev in self.events:
            if isinstance(ev, CollectiveEvent):
                yield ev

    # -- summary properties ------------------------------------------------

    @property
    def num_calls(self) -> int:
        """Total MPI calls represented (repeat-expanded count)."""
        if self._events is None:
            assert self._blocks is not None
            return sum(b.num_calls for b in self._blocks)
        return sum(ev.repeat for ev in self._events)

    def p2p_bytes(self) -> int:
        """Total bytes injected by point-to-point sends (repeat-expanded)."""
        if self._events is None:
            assert self._blocks is not None
            total = 0
            for block in self._blocks:
                mask = block.kind == KIND_P2P_SEND
                if not mask.any():
                    continue
                sizes = np.array(
                    [self.datatypes.size_of(n) for n in block.dtype_names],
                    dtype=np.int64,
                )
                total += int(
                    (
                        block.count[mask]
                        * sizes[block.dtype_id[mask]]
                        * block.repeat[mask]
                    ).sum()
                )
            return total
        total = 0
        for ev in self.iter_p2p_sends():
            total += ev.total_bytes(self.datatypes.size_of(ev.dtype))
        return total

    def active_ranks(self) -> set[int]:
        """Ranks that appear as caller or peer of any record."""
        if self._events is None:
            assert self._blocks is not None
            ranks: set[int] = set()
            for block in self._blocks:
                ranks.update(np.unique(block.caller).tolist())
                p2p = block.kind != KIND_COLLECTIVE
                if p2p.any():
                    ranks.update(np.unique(block.peer[p2p]).tolist())
            return ranks
        ranks = set()
        for ev in self._events:
            ranks.add(ev.caller)
            if isinstance(ev, P2PEvent):
                ranks.add(ev.peer)
        return ranks

    @property
    def uses_only_global_communicators(self) -> bool:
        """Paper §4.3 inclusion criterion."""
        assert self.communicators is not None
        return self.communicators.uses_only_global
