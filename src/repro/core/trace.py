"""Trace container.

A :class:`Trace` bundles everything one analyzed run contributes:

- metadata (application name, rank count, traced execution time),
- the datatype registry used to resolve element sizes,
- the communicator table,
- a flat stream of :class:`~repro.core.events.TraceEvent` records.

Execution time is taken from trace timestamps, exactly as the paper takes it
from dumpi wall-clock records; synthetic generators stamp it from their
calibrated duration model.  It is the ``t_execution`` of the utilization
formula (Eq. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .communicator import CommunicatorTable
from .datatypes import DatatypeRegistry
from .events import CollectiveEvent, Direction, P2PEvent, TraceEvent

__all__ = ["TraceMetadata", "Trace"]


@dataclass(frozen=True, slots=True)
class TraceMetadata:
    """Identifying metadata of one traced run."""

    app: str
    num_ranks: int
    execution_time: float
    variant: str = ""
    uses_derived_types: bool = False

    def __post_init__(self) -> None:
        if self.num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        if self.execution_time <= 0:
            raise ValueError("execution_time must be positive")

    @property
    def label(self) -> str:
        """Human-readable ``app@ranks`` label, with variant if present."""
        base = f"{self.app}@{self.num_ranks}"
        return f"{base}/{self.variant}" if self.variant else base


@dataclass
class Trace:
    """An ordered stream of MPI call records plus run metadata."""

    meta: TraceMetadata
    datatypes: DatatypeRegistry = field(default_factory=DatatypeRegistry)
    communicators: CommunicatorTable | None = None
    events: list[TraceEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.communicators is None:
            self.communicators = CommunicatorTable.for_world(self.meta.num_ranks)

    # -- construction -----------------------------------------------------

    def add(self, event: TraceEvent) -> None:
        """Append one event after validating its ranks and communicator."""
        self._validate(event)
        self.events.append(event)

    def extend(self, events: Iterable[TraceEvent]) -> None:
        for ev in events:
            self.add(ev)

    def _validate(self, event: TraceEvent) -> None:
        n = self.meta.num_ranks
        if event.caller >= n:
            raise ValueError(
                f"event caller {event.caller} out of range for {n}-rank trace"
            )
        if isinstance(event, P2PEvent) and event.peer >= n:
            raise ValueError(
                f"event peer {event.peer} out of range for {n}-rank trace"
            )
        assert self.communicators is not None
        if event.comm not in self.communicators:
            raise ValueError(f"event references unknown communicator {event.comm!r}")

    # -- iteration --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def iter_p2p_sends(self) -> Iterator[P2PEvent]:
        """All point-to-point records that inject traffic."""
        for ev in self.events:
            if isinstance(ev, P2PEvent) and ev.direction is Direction.SEND:
                yield ev

    def iter_collectives(self) -> Iterator[CollectiveEvent]:
        for ev in self.events:
            if isinstance(ev, CollectiveEvent):
                yield ev

    # -- summary properties ------------------------------------------------

    @property
    def num_calls(self) -> int:
        """Total MPI calls represented (repeat-expanded count)."""
        return sum(ev.repeat for ev in self.events)

    def p2p_bytes(self) -> int:
        """Total bytes injected by point-to-point sends (repeat-expanded)."""
        total = 0
        for ev in self.iter_p2p_sends():
            total += ev.total_bytes(self.datatypes.size_of(ev.dtype))
        return total

    def active_ranks(self) -> set[int]:
        """Ranks that appear as caller or peer of any record."""
        ranks: set[int] = set()
        for ev in self.events:
            ranks.add(ev.caller)
            if isinstance(ev, P2PEvent):
                ranks.add(ev.peer)
        return ranks

    @property
    def uses_only_global_communicators(self) -> bool:
        """Paper §4.3 inclusion criterion."""
        assert self.communicators is not None
        return self.communicators.uses_only_global
