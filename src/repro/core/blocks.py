"""Columnar (structure-of-arrays) event storage.

An :class:`EventBlock` holds a run of trace records as parallel NumPy
arrays instead of one Python object per MPI call.  The columnar layout is
what makes the front-end scale: synthetic generators emit whole channel
sets as arrays, the collective translator expands entire blocks at once,
and the traffic-matrix builder consumes the columns without ever touching
an individual message from Python.

The representation is **lossless** with respect to the event objects of
:mod:`repro.core.events`: :meth:`EventBlock.from_events` /
:meth:`EventBlock.to_events` round-trip every field (including tags,
function names, timestamps, and repeat compression), so the legacy
``Trace.events`` view can always be materialized bit-for-bit.

Row encoding
------------

``kind`` selects the record family per row:

- :data:`KIND_P2P_SEND` / :data:`KIND_P2P_RECV` — point-to-point records;
  ``peer``/``tag``/``func_id`` are meaningful, ``op`` is ``-1`` and
  ``root`` is 0.
- :data:`KIND_COLLECTIVE` — collective records; ``op`` indexes
  :data:`OPS`, ``root`` is the communicator-local root, ``peer`` is ``-1``
  and ``func_id`` is ``-1``.

String-valued fields (datatype, communicator, MPI function name) are
interned per block: the integer columns ``dtype_id`` / ``comm_id`` /
``func_id`` index the block's ``dtype_names`` / ``comm_names`` /
``func_names`` tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .events import (
    CollectiveEvent,
    CollectiveOp,
    Direction,
    P2PEvent,
    TraceEvent,
)

__all__ = [
    "KIND_P2P_SEND",
    "KIND_P2P_RECV",
    "KIND_COLLECTIVE",
    "OPS",
    "OP_CODE",
    "EventBlock",
]

#: ``kind`` column values.
KIND_P2P_SEND = 0
KIND_P2P_RECV = 1
KIND_COLLECTIVE = 2

#: Stable collective-op encoding: ``op`` column value ``i`` means ``OPS[i]``.
OPS: tuple[CollectiveOp, ...] = tuple(CollectiveOp)
OP_CODE: dict[CollectiveOp, int] = {op: i for i, op in enumerate(OPS)}

_KIND_OF_DIRECTION = {
    Direction.SEND: KIND_P2P_SEND,
    Direction.RECV: KIND_P2P_RECV,
}
_DIRECTION_OF_KIND = {
    KIND_P2P_SEND: Direction.SEND,
    KIND_P2P_RECV: Direction.RECV,
}


class _Interner:
    """Assigns dense integer ids to strings, preserving first-seen order."""

    __slots__ = ("_ids",)

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}

    def __call__(self, name: str) -> int:
        ids = self._ids
        idx = ids.get(name)
        if idx is None:
            idx = len(ids)
            ids[name] = idx
        return idx

    def names(self) -> tuple[str, ...]:
        return tuple(self._ids)


@dataclass
class EventBlock:
    """A run of trace records stored column-wise.

    All array fields are parallel; row ``i`` is one (possibly repeated) MPI
    call record.  Blocks are immutable by convention — consumers may keep
    references to the columns.
    """

    kind: np.ndarray  # uint8[k]
    caller: np.ndarray  # int64[k]
    peer: np.ndarray  # int64[k]   (-1 on collective rows)
    count: np.ndarray  # int64[k]
    dtype_id: np.ndarray  # int32[k]  -> dtype_names
    op: np.ndarray  # int16[k]  -> OPS  (-1 on p2p rows)
    root: np.ndarray  # int64[k]  (0 on p2p rows)
    comm_id: np.ndarray  # int32[k]  -> comm_names
    tag: np.ndarray  # int64[k]  (0 on collective rows)
    func_id: np.ndarray  # int16[k]  -> func_names  (-1 on collective rows)
    repeat: np.ndarray  # int64[k]
    t_enter: np.ndarray  # float64[k]
    t_leave: np.ndarray  # float64[k]
    dtype_names: tuple[str, ...] = ("MPI_BYTE",)
    comm_names: tuple[str, ...] = ("MPI_COMM_WORLD",)
    func_names: tuple[str, ...] = field(default_factory=tuple)

    _COLUMN_DTYPES = {
        "kind": np.uint8,
        "caller": np.int64,
        "peer": np.int64,
        "count": np.int64,
        "dtype_id": np.int32,
        "op": np.int16,
        "root": np.int64,
        "comm_id": np.int32,
        "tag": np.int64,
        "func_id": np.int16,
        "repeat": np.int64,
        "t_enter": np.float64,
        "t_leave": np.float64,
    }

    def __post_init__(self) -> None:
        k = None
        for name, dtype in self._COLUMN_DTYPES.items():
            arr = np.asarray(getattr(self, name), dtype=dtype)
            setattr(self, name, arr)
            if arr.ndim != 1:
                raise ValueError(f"column {name!r} must be one-dimensional")
            if k is None:
                k = len(arr)
            elif len(arr) != k:
                raise ValueError("EventBlock columns must be parallel arrays")
        self.dtype_names = tuple(self.dtype_names)
        self.comm_names = tuple(self.comm_names)
        self.func_names = tuple(self.func_names)

    # -- shape / totals -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.kind)

    @property
    def num_calls(self) -> int:
        """Repeat-expanded number of MPI calls in this block."""
        return int(self.repeat.sum())

    # -- row masks ----------------------------------------------------------

    def p2p_send_mask(self) -> np.ndarray:
        return self.kind == KIND_P2P_SEND

    def collective_mask(self) -> np.ndarray:
        return self.kind == KIND_COLLECTIVE

    # -- validation ---------------------------------------------------------

    def check(self, num_ranks: int, known_comms) -> None:
        """Vectorized equivalent of per-event ``Trace.add`` validation.

        Raises ``ValueError`` on the first violated invariant, mirroring the
        checks in :class:`~repro.core.events` ``__post_init__`` methods and
        ``Trace._validate``.
        """
        if len(self) == 0:
            return
        if self.caller.min() < 0:
            raise ValueError("ranks must be non-negative")
        if self.caller.max() >= num_ranks:
            raise ValueError(
                f"event caller {int(self.caller.max())} out of range for "
                f"{num_ranks}-rank trace"
            )
        p2p = self.kind != KIND_COLLECTIVE
        if p2p.any():
            peers = self.peer[p2p]
            if peers.min() < 0:
                raise ValueError("ranks must be non-negative")
            if peers.max() >= num_ranks:
                raise ValueError(
                    f"event peer {int(peers.max())} out of range for "
                    f"{num_ranks}-rank trace"
                )
        if self.count.min() < 0:
            raise ValueError("count must be non-negative")
        if self.repeat.min() < 1:
            raise ValueError("repeat must be >= 1")
        if self.root.min() < 0:
            raise ValueError("root rank must be non-negative")
        coll = ~p2p
        if coll.any():
            codes = self.op[coll]
            if codes.min() < 0 or codes.max() >= len(OPS):
                raise ValueError("collective rows carry an unknown op code")
            barrier = codes == OP_CODE[CollectiveOp.BARRIER]
            if barrier.any() and self.count[coll][barrier].max() != 0:
                raise ValueError("MPI_Barrier carries no payload")
        for name in self.comm_names:
            if name not in known_comms:
                raise ValueError(
                    f"event references unknown communicator {name!r}"
                )

    # -- conversion ---------------------------------------------------------

    @staticmethod
    def from_events(events) -> "EventBlock":
        """Build a block from a sequence of event objects (lossless)."""
        k = len(events)
        kind = np.empty(k, dtype=np.uint8)
        caller = np.empty(k, dtype=np.int64)
        peer = np.full(k, -1, dtype=np.int64)
        count = np.empty(k, dtype=np.int64)
        dtype_id = np.empty(k, dtype=np.int32)
        op = np.full(k, -1, dtype=np.int16)
        root = np.zeros(k, dtype=np.int64)
        comm_id = np.empty(k, dtype=np.int32)
        tag = np.zeros(k, dtype=np.int64)
        func_id = np.full(k, -1, dtype=np.int16)
        repeat = np.empty(k, dtype=np.int64)
        t_enter = np.empty(k, dtype=np.float64)
        t_leave = np.empty(k, dtype=np.float64)
        dtypes = _Interner()
        comms = _Interner()
        funcs = _Interner()

        for i, ev in enumerate(events):
            caller[i] = ev.caller
            count[i] = ev.count
            dtype_id[i] = dtypes(ev.dtype)
            comm_id[i] = comms(ev.comm)
            repeat[i] = ev.repeat
            t_enter[i] = ev.t_enter
            t_leave[i] = ev.t_leave
            if isinstance(ev, P2PEvent):
                kind[i] = _KIND_OF_DIRECTION[ev.direction]
                peer[i] = ev.peer
                tag[i] = ev.tag
                func_id[i] = funcs(ev.func)
            elif isinstance(ev, CollectiveEvent):
                kind[i] = KIND_COLLECTIVE
                op[i] = OP_CODE[ev.op]
                root[i] = ev.root
            else:
                raise TypeError(f"cannot blockify event of type {type(ev)}")

        return EventBlock(
            kind, caller, peer, count, dtype_id, op, root, comm_id, tag,
            func_id, repeat, t_enter, t_leave,
            dtype_names=dtypes.names() or ("MPI_BYTE",),
            comm_names=comms.names() or ("MPI_COMM_WORLD",),
            func_names=funcs.names(),
        )

    def to_events(self) -> list[TraceEvent]:
        """Materialize the legacy event objects, row order preserved."""
        # Scalarize columns once; constructing half a million dataclasses is
        # the unavoidable cost of the legacy view, but attribute-by-attribute
        # NumPy indexing would triple it.
        kind = self.kind.tolist()
        caller = self.caller.tolist()
        peer = self.peer.tolist()
        count = self.count.tolist()
        dtype_id = self.dtype_id.tolist()
        op = self.op.tolist()
        root = self.root.tolist()
        comm_id = self.comm_id.tolist()
        tag = self.tag.tolist()
        func_id = self.func_id.tolist()
        repeat = self.repeat.tolist()
        t_enter = self.t_enter.tolist()
        t_leave = self.t_leave.tolist()
        dtype_names = self.dtype_names
        comm_names = self.comm_names
        func_names = self.func_names

        events: list[TraceEvent] = []
        append = events.append
        for i in range(len(kind)):
            if kind[i] == KIND_COLLECTIVE:
                append(
                    CollectiveEvent(
                        caller=caller[i],
                        op=OPS[op[i]],
                        count=count[i],
                        dtype=dtype_names[dtype_id[i]],
                        root=root[i],
                        comm=comm_names[comm_id[i]],
                        t_enter=t_enter[i],
                        t_leave=t_leave[i],
                        repeat=repeat[i],
                    )
                )
            else:
                append(
                    P2PEvent(
                        caller=caller[i],
                        peer=peer[i],
                        count=count[i],
                        dtype=dtype_names[dtype_id[i]],
                        direction=_DIRECTION_OF_KIND[kind[i]],
                        func=func_names[func_id[i]],
                        tag=tag[i],
                        comm=comm_names[comm_id[i]],
                        t_enter=t_enter[i],
                        t_leave=t_leave[i],
                        repeat=repeat[i],
                    )
                )
        return events

    # -- convenience constructors ------------------------------------------

    @staticmethod
    def empty() -> "EventBlock":
        z = np.zeros(0, dtype=np.int64)
        return EventBlock(
            z, z, z, z, z, z, z, z, z, z, z,
            np.zeros(0), np.zeros(0),
            func_names=(),
        )
