"""MPI call event records.

Every record in a trace corresponds to one MPI call issued by one rank
(the *caller*).  Two families matter for traffic analysis:

- **point-to-point** sends/receives (``MPI_Send``/``MPI_Isend``/...): carry a
  peer rank, an element count, and a datatype;
- **collectives** (``MPI_Bcast``/``MPI_Alltoall``/...): carry a communicator,
  counts, a datatype, and (for rooted operations) a root rank.

Traffic is always accounted on the *sending* side: a ``P2PEvent`` with
``direction=SEND`` injects bytes, the matching ``RECV`` does not (it is kept
because dumpi traces record both and parsers must accept them).

A ``repeat`` field compresses ``repeat`` identical back-to-back calls into
one record.  Real dumpi traces store each call separately; our ASCII format
records the repeat count explicitly, and parsers treat a missing annotation
as ``repeat=1``, so the compressed and expanded forms are interchangeable
for every static analysis in this library.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Union

__all__ = [
    "Direction",
    "CollectiveOp",
    "P2P_CALLS",
    "P2PEvent",
    "CollectiveEvent",
    "TraceEvent",
    "ROOTED_OPS",
    "VECTOR_OPS",
]


class Direction(enum.Enum):
    """Whether a point-to-point record injects or absorbs traffic."""

    SEND = "send"
    RECV = "recv"


#: MPI function names treated as point-to-point, mapped to their direction.
P2P_CALLS: dict[str, Direction] = {
    "MPI_Send": Direction.SEND,
    "MPI_Isend": Direction.SEND,
    "MPI_Ssend": Direction.SEND,
    "MPI_Rsend": Direction.SEND,
    "MPI_Bsend": Direction.SEND,
    "MPI_Recv": Direction.RECV,
    "MPI_Irecv": Direction.RECV,
}


class CollectiveOp(enum.Enum):
    """Collective operations with a defined point-to-point translation."""

    BARRIER = "MPI_Barrier"
    BCAST = "MPI_Bcast"
    REDUCE = "MPI_Reduce"
    ALLREDUCE = "MPI_Allreduce"
    GATHER = "MPI_Gather"
    GATHERV = "MPI_Gatherv"
    SCATTER = "MPI_Scatter"
    SCATTERV = "MPI_Scatterv"
    ALLGATHER = "MPI_Allgather"
    ALLGATHERV = "MPI_Allgatherv"
    ALLTOALL = "MPI_Alltoall"
    ALLTOALLV = "MPI_Alltoallv"
    REDUCE_SCATTER = "MPI_Reduce_scatter"
    SCAN = "MPI_Scan"
    EXSCAN = "MPI_Exscan"


#: Collectives with a root parameter.
ROOTED_OPS = frozenset(
    {
        CollectiveOp.BCAST,
        CollectiveOp.REDUCE,
        CollectiveOp.GATHER,
        CollectiveOp.GATHERV,
        CollectiveOp.SCATTER,
        CollectiveOp.SCATTERV,
    }
)

#: Vector collectives whose data the paper splits evenly across ranks (§4.4).
VECTOR_OPS = frozenset(
    {
        CollectiveOp.GATHERV,
        CollectiveOp.SCATTERV,
        CollectiveOp.ALLGATHERV,
        CollectiveOp.ALLTOALLV,
    }
)


@dataclass(frozen=True, slots=True)
class P2PEvent:
    """One point-to-point MPI call (possibly repeated).

    Attributes
    ----------
    caller:
        Global rank issuing the call.
    peer:
        Global rank of the destination (for sends) or source (for receives).
    count:
        Number of datatype elements in the buffer.
    dtype:
        Datatype name; resolved against a :class:`~repro.core.datatypes.DatatypeRegistry`.
    direction:
        SEND records inject traffic; RECV records are bookkeeping only.
    func:
        The MPI function name as recorded in the trace (``MPI_Send``, ...).
    tag, comm:
        MPI message tag and communicator name.
    t_enter, t_leave:
        Wall-clock seconds of call entry/exit (first occurrence if repeated).
    repeat:
        Number of identical back-to-back calls this record stands for.
    """

    caller: int
    peer: int
    count: int
    dtype: str
    direction: Direction = Direction.SEND
    func: str = "MPI_Send"
    tag: int = 0
    comm: str = "MPI_COMM_WORLD"
    t_enter: float = 0.0
    t_leave: float = 0.0
    repeat: int = 1

    def __post_init__(self) -> None:
        if self.caller < 0 or self.peer < 0:
            raise ValueError("ranks must be non-negative")
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if self.repeat < 1:
            raise ValueError("repeat must be >= 1")
        expected = P2P_CALLS.get(self.func)
        if expected is not None and expected is not self.direction:
            raise ValueError(
                f"{self.func} is a {expected.value} call, direction says "
                f"{self.direction.value}"
            )

    @property
    def is_send(self) -> bool:
        return self.direction is Direction.SEND

    def bytes_per_call(self, element_size: int) -> int:
        """Payload bytes of one call given the datatype's element size."""
        return self.count * element_size

    def total_bytes(self, element_size: int) -> int:
        """Payload bytes across all repeats."""
        return self.bytes_per_call(element_size) * self.repeat

    def expanded(self) -> list["P2PEvent"]:
        """Expand the repeat compression into individual records."""
        return [replace(self, repeat=1) for _ in range(self.repeat)]


@dataclass(frozen=True, slots=True)
class CollectiveEvent:
    """One collective MPI call as seen by one participating rank.

    For rooted vector collectives the trace records per-peer counts only at
    the root; per the paper, vector data is split evenly across ranks, so a
    single aggregate ``count`` (total elements moved by this caller) plus the
    communicator size fully determines the translation.

    Attributes
    ----------
    caller:
        Global rank issuing the call.
    op:
        The collective operation.
    count:
        Elements *contributed by this caller* (send-side count for the
        caller's role; 0 for ``MPI_Barrier``).  For ``Alltoall`` this is the
        per-destination count, matching the MPI signature.
    dtype:
        Datatype name of the contributed elements.
    root:
        Root rank for rooted operations; ignored otherwise.
    comm:
        Communicator name.
    t_enter, t_leave:
        Wall-clock seconds of call entry/exit (first occurrence if repeated).
    repeat:
        Number of identical back-to-back calls this record stands for.
    """

    caller: int
    op: CollectiveOp
    count: int = 0
    dtype: str = "MPI_BYTE"
    root: int = 0
    comm: str = "MPI_COMM_WORLD"
    t_enter: float = 0.0
    t_leave: float = 0.0
    repeat: int = 1

    def __post_init__(self) -> None:
        if self.caller < 0:
            raise ValueError("caller rank must be non-negative")
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if self.root < 0:
            raise ValueError("root rank must be non-negative")
        if self.repeat < 1:
            raise ValueError("repeat must be >= 1")
        if self.op is CollectiveOp.BARRIER and self.count != 0:
            raise ValueError("MPI_Barrier carries no payload")

    @property
    def func(self) -> str:
        """The MPI function name (mirrors :class:`P2PEvent`)."""
        return self.op.value

    @property
    def is_rooted(self) -> bool:
        return self.op in ROOTED_OPS

    @property
    def is_vector(self) -> bool:
        return self.op in VECTOR_OPS

    def bytes_per_call(self, element_size: int) -> int:
        """Bytes contributed by this caller in one call."""
        return self.count * element_size

    def expanded(self) -> list["CollectiveEvent"]:
        """Expand the repeat compression into individual records."""
        return [replace(self, repeat=1) for _ in range(self.repeat)]


#: Any record that may appear in a trace event stream.
TraceEvent = Union[P2PEvent, CollectiveEvent]
