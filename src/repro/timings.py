"""Per-stage wall-clock accounting for study commands.

The CLI's ``--timings`` flag answers "where did the time go?" for any study
command: trace generation, matrix construction, routing, static analysis,
and dynamic simulation are each wrapped in a :func:`stage` block at the
library level, and :func:`summary` renders the per-stage totals at exit.

Stages **nest**: ``analysis`` covers :func:`repro.model.engine.analyze_network`
end to end, which internally spends time in ``routing`` (route-incidence
construction) — nested stage time is charged to both, so the column does not
sum to wall time.  The accounting is disabled by default and adds a single
boolean check per instrumented call when off.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "enable",
    "disable",
    "enabled",
    "reset",
    "stage",
    "as_dict",
    "snapshot",
    "since",
    "summary",
    "peak_rss_bytes",
]

_enabled = False
_totals: dict[str, float] = {}
_counts: dict[str, int] = {}

#: Canonical stage order for the summary (unknown stages append after).
_STAGE_ORDER = ("trace", "matrix", "mapping", "routing", "analysis", "sim")


def enable(reset_counters: bool = True) -> None:
    """Turn stage accounting on (optionally clearing previous totals)."""
    global _enabled
    if reset_counters:
        reset()
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def enabled() -> bool:
    return _enabled


def reset() -> None:
    _totals.clear()
    _counts.clear()


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Charge the wrapped block's wall time to ``name`` (no-op when disabled)."""
    if not _enabled:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        dt = time.perf_counter() - t0
        _totals[name] = _totals.get(name, 0.0) + dt
        _counts[name] = _counts.get(name, 0) + 1


def snapshot() -> dict[str, float]:
    """The current per-stage totals, for later differencing with :func:`since`."""
    return dict(_totals)


def since(snap: dict[str, float]) -> dict[str, float]:
    """Per-stage seconds accumulated after ``snap`` (zero-delta stages omitted).

    The sweep-service workers wrap each cell evaluation in a
    snapshot/since pair, so the server can attribute aggregate time to
    trace/matrix/mapping/routing/analysis stages across all worker
    processes without any extra instrumentation in the library.
    """
    return {
        name: total - snap.get(name, 0.0)
        for name, total in _totals.items()
        if total - snap.get(name, 0.0) > 0.0
    }


def peak_rss_bytes() -> int | None:
    """Lifetime peak resident-set size of this process, in bytes.

    Reads ``resource.getrusage``'s ``ru_maxrss``, which the kernel reports
    in kilobytes on Linux and bytes on macOS.  The counter is a
    process-lifetime high-water mark (it never goes down), so a clean
    measurement of one workload needs a fresh process — the scale bench
    runs its pipeline in a subprocess for exactly that reason.  Returns
    ``None`` on platforms without the ``resource`` module.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - Linux CI
        return int(maxrss)
    return int(maxrss) * 1024


def as_dict() -> dict[str, dict[str, float]]:
    """Per-stage totals: ``{stage: {"seconds": ..., "calls": ...}}``."""
    return {
        name: {"seconds": _totals[name], "calls": float(_counts[name])}
        for name in _ordered_stages()
    }


def _ordered_stages() -> list[str]:
    known = [s for s in _STAGE_ORDER if s in _totals]
    extra = sorted(s for s in _totals if s not in _STAGE_ORDER)
    return known + extra


def summary() -> str:
    """Human-readable per-stage breakdown (empty string if nothing timed)."""
    stages = _ordered_stages()
    if not stages:
        return "timings: no instrumented stages ran"
    lines = [
        "per-stage timings (stages nest; columns do not sum to wall time)",
        f"{'stage':<12} {'calls':>7} {'seconds':>10} {'ms/call':>10}",
        "-" * 42,
    ]
    for name in stages:
        secs = _totals[name]
        calls = _counts[name]
        lines.append(
            f"{name:<12} {calls:>7d} {secs:>10.3f} {1e3 * secs / calls:>10.3f}"
        )
    peak = peak_rss_bytes()
    if peak is not None:
        lines.append(f"peak RSS: {peak / (1024 * 1024):.1f} MB (process lifetime)")
    return "\n".join(lines)
