"""Traffic-matrix extraction and trace statistics."""

from .matrix import CommMatrix, CommMatrixBuilder, matrix_from_stream, matrix_from_trace
from .stats import TraceStats, trace_stats

__all__ = [
    "CommMatrix",
    "CommMatrixBuilder",
    "matrix_from_stream",
    "matrix_from_trace",
    "TraceStats",
    "trace_stats",
]
