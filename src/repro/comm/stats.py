"""Trace-level traffic statistics (Table 1 columns).

For each trace the paper reports: rank count, execution time, total volume,
the point-to-point and collective shares of that volume, and throughput
(volume / time).

Collective volume comes in two flavours:

- **logical** — what a trace-side extraction sees: the sum over callers of
  the recorded ``count * element_size``.  This is the Table-1 figure.
- **wire** — what the flattened point-to-point expansion (paper §4.4) puts
  on the network.  For fan-out collectives this is much larger (factor ~N
  for an alltoall), which is why all-collective apps like BigFFT show
  network utilizations far above what their Table-1 volume alone suggests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collectives.translate import TrafficClass, iter_send_batches, iter_send_groups
from ..core.blocks import KIND_COLLECTIVE
from ..core.trace import Trace

__all__ = ["TraceStats", "trace_stats"]

MB = 1024 * 1024


@dataclass(frozen=True)
class TraceStats:
    """One Table-1 row."""

    app: str
    variant: str
    num_ranks: int
    execution_time: float
    p2p_bytes: int
    collective_logical_bytes: int
    collective_wire_bytes: int

    @property
    def total_bytes(self) -> int:
        """Table-1 total: p2p plus trace-level (logical) collective volume."""
        return self.p2p_bytes + self.collective_logical_bytes

    @property
    def wire_total_bytes(self) -> int:
        """Network-level total: p2p plus flattened collective volume."""
        return self.p2p_bytes + self.collective_wire_bytes

    @property
    def total_mb(self) -> float:
        return self.total_bytes / MB

    @property
    def p2p_share(self) -> float:
        """Point-to-point fraction of the Table-1 volume, in [0, 1]."""
        total = self.total_bytes
        return self.p2p_bytes / total if total else 0.0

    @property
    def collective_share(self) -> float:
        """Collective fraction of the Table-1 volume, in [0, 1]."""
        total = self.total_bytes
        return self.collective_logical_bytes / total if total else 0.0

    @property
    def throughput_mb_per_s(self) -> float:
        """Aggregate volume over traced execution time (MB/s, Table 1)."""
        return self.total_mb / self.execution_time

    @property
    def label(self) -> str:
        base = f"{self.app}@{self.num_ranks}"
        return f"{base}/{self.variant}" if self.variant else base

    def format_row(self) -> str:
        """One aligned text row matching Table 1's columns."""
        return (
            f"{self.label:<28} {self.num_ranks:>6d} {self.execution_time:>10.2f} "
            f"{self.total_mb:>12.1f} {100 * self.p2p_share:>7.2f} "
            f"{100 * self.collective_share:>7.2f} {self.throughput_mb_per_s:>10.2f}"
        )


def trace_stats(trace: Trace) -> TraceStats:
    """Compute the Table-1 row of one trace."""
    p2p = 0
    wire = 0
    logical = 0
    if trace.has_native_blocks:
        for batch in iter_send_batches(trace):
            if batch.traffic_class is TrafficClass.P2P:
                p2p += batch.total_bytes
            else:
                wire += batch.total_bytes
        for block in trace.blocks():
            mask = block.kind == KIND_COLLECTIVE
            if not mask.any():
                continue
            sizes = np.array(
                [trace.datatypes.size_of(n) for n in block.dtype_names],
                dtype=np.int64,
            )
            logical += int(
                (
                    block.count[mask]
                    * sizes[block.dtype_id[mask]]
                    * block.repeat[mask]
                ).sum()
            )
    else:
        for classified in iter_send_groups(trace):
            if classified.traffic_class is TrafficClass.P2P:
                p2p += classified.group.total_bytes
            else:
                wire += classified.group.total_bytes
        for ev in trace.iter_collectives():
            elem = trace.datatypes.size_of(ev.dtype)
            logical += ev.count * elem * ev.repeat

    return TraceStats(
        app=trace.meta.app,
        variant=trace.meta.variant,
        num_ranks=trace.meta.num_ranks,
        execution_time=trace.meta.execution_time,
        p2p_bytes=p2p,
        collective_logical_bytes=logical,
        collective_wire_bytes=wire,
    )
