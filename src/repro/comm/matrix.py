"""Rank-pair traffic matrices.

A :class:`CommMatrix` holds, for every (source, destination) rank pair with
traffic, the transferred **bytes**, the number of **messages**, and the
number of **packets** (4 kB max payload, paper §4.2.1).  It is the single
input of every static analysis in this library: MPI-level metrics consume it
directly; topology models consume it after rank→node mapping.

Matrices are built incrementally from :class:`SendGroup` fan-outs and then
*finalized* into sorted columnar NumPy arrays (``src``, ``dst``, ``nbytes``,
``messages``, ``packets``).  Accumulation is vectorized per fan-out; the
finalize step merges duplicate pairs with ``np.add.at`` so no Python-level
loop ever touches individual messages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import timings
from ..collectives.patterns import SendGroup
from ..collectives.translate import (
    SendBatch,
    iter_send_batches,
    iter_send_groups,
    iter_stream_send_batches,
)
from ..core.packets import MAX_PAYLOAD_BYTES, packets_for_bytes_array
from ..core.trace import Trace

__all__ = [
    "CommMatrix",
    "CommMatrixBuilder",
    "matrix_from_trace",
    "matrix_from_stream",
    "DEFAULT_COMPACT_ROWS",
]

#: Pending-row threshold at which the streaming builder folds duplicates
#: (~2M rows of five int64 columns ≈ 80 MB of working set).
DEFAULT_COMPACT_ROWS = 1 << 21


@dataclass(frozen=True)
class CommMatrix:
    """Finalized sparse rank-pair traffic matrix.

    All five arrays are parallel and sorted by ``(src, dst)``.  Pairs with no
    traffic are absent; self-pairs (``src == dst``) may be present (they
    represent rank-local MPI messages and are skipped by network analyses).
    """

    num_ranks: int
    src: np.ndarray  # int64[k]
    dst: np.ndarray  # int64[k]
    nbytes: np.ndarray  # int64[k]
    messages: np.ndarray  # int64[k]
    packets: np.ndarray  # int64[k]

    def __post_init__(self) -> None:
        k = len(self.src)
        for name in ("dst", "nbytes", "messages", "packets"):
            if len(getattr(self, name)) != k:
                raise ValueError("CommMatrix columns must be parallel arrays")
        if k and (self.src.max() >= self.num_ranks or self.dst.max() >= self.num_ranks):
            raise ValueError("rank IDs exceed num_ranks")

    # -- totals -------------------------------------------------------------

    @property
    def num_pairs(self) -> int:
        return len(self.src)

    @property
    def total_bytes(self) -> int:
        return int(self.nbytes.sum())

    @property
    def total_messages(self) -> int:
        return int(self.messages.sum())

    @property
    def total_packets(self) -> int:
        return int(self.packets.sum())

    # -- views --------------------------------------------------------------

    def dense(self, column: str = "nbytes") -> np.ndarray:
        """Dense ``(num_ranks, num_ranks)`` matrix of the given column.

        Intended for small rank counts (heat-map style inspection); memory is
        quadratic in ``num_ranks``.
        """
        values = getattr(self, column)
        out = np.zeros((self.num_ranks, self.num_ranks), dtype=np.int64)
        out[self.src, self.dst] = values
        return out

    def row(self, source: int) -> tuple[np.ndarray, np.ndarray]:
        """Destinations and byte volumes sent by ``source``."""
        mask = self.src == source
        return self.dst[mask], self.nbytes[mask]

    def out_bytes_per_rank(self) -> np.ndarray:
        """Total bytes sent by each rank, shape ``(num_ranks,)``."""
        out = np.zeros(self.num_ranks, dtype=np.int64)
        np.add.at(out, self.src, self.nbytes)
        return out

    def in_bytes_per_rank(self) -> np.ndarray:
        """Total bytes received by each rank, shape ``(num_ranks,)``."""
        out = np.zeros(self.num_ranks, dtype=np.int64)
        np.add.at(out, self.dst, self.nbytes)
        return out

    def partners_per_rank(self) -> np.ndarray:
        """Number of distinct destinations each rank sends to (self excluded)."""
        out = np.zeros(self.num_ranks, dtype=np.int64)
        off = self.src != self.dst
        np.add.at(out, self.src[off], 1)
        return out

    # -- transforms -----------------------------------------------------------

    def without_self_traffic(self) -> "CommMatrix":
        """Drop ``src == dst`` pairs (rank-local messages never hit the wire)."""
        mask = self.src != self.dst
        if mask.all():
            return self
        return CommMatrix(
            self.num_ranks,
            self.src[mask],
            self.dst[mask],
            self.nbytes[mask],
            self.messages[mask],
            self.packets[mask],
        )

    def remapped(self, permutation: np.ndarray) -> "CommMatrix":
        """Apply a rank permutation: new rank of old rank ``r`` is ``permutation[r]``.

        Used by the dimensionality study (re-linearizing rank IDs on a 2D/3D
        grid) and by mapping experiments.  The permutation must be a
        bijection on ``range(num_ranks)``.
        """
        perm = np.asarray(permutation, dtype=np.int64)
        if perm.shape != (self.num_ranks,):
            raise ValueError(
                f"permutation must have shape ({self.num_ranks},), got {perm.shape}"
            )
        if not np.array_equal(np.sort(perm), np.arange(self.num_ranks)):
            raise ValueError("permutation must be a bijection on rank IDs")
        builder = CommMatrixBuilder(self.num_ranks)
        builder.add_arrays(
            perm[self.src], perm[self.dst], self.nbytes, self.messages, self.packets
        )
        return builder.finalize()

    def merged_with(self, other: "CommMatrix") -> "CommMatrix":
        """Sum two matrices over the same rank space."""
        if other.num_ranks != self.num_ranks:
            raise ValueError("cannot merge matrices over different rank counts")
        builder = CommMatrixBuilder(self.num_ranks)
        builder.add_arrays(self.src, self.dst, self.nbytes, self.messages, self.packets)
        builder.add_arrays(
            other.src, other.dst, other.nbytes, other.messages, other.packets
        )
        return builder.finalize()

    @staticmethod
    def empty(num_ranks: int) -> "CommMatrix":
        z = np.zeros(0, dtype=np.int64)
        return CommMatrix(num_ranks, z, z.copy(), z.copy(), z.copy(), z.copy())


class CommMatrixBuilder:
    """Accumulates fan-outs into a :class:`CommMatrix`.

    Chunks of (src, dst, bytes, messages, packets) are appended as arrays and
    merged once at :meth:`finalize`; duplicate pairs are summed.
    """

    def __init__(self, num_ranks: int, payload: int = MAX_PAYLOAD_BYTES) -> None:
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        self.num_ranks = num_ranks
        self.payload = payload
        self._src: list[np.ndarray] = []
        self._dst: list[np.ndarray] = []
        self._nbytes: list[np.ndarray] = []
        self._messages: list[np.ndarray] = []
        self._packets: list[np.ndarray] = []
        self._rows = 0

    @property
    def pending_rows(self) -> int:
        """Unmerged accumulated rows (bounds the builder's working set)."""
        return self._rows

    def add_group(self, group: SendGroup) -> None:
        """Add one fan-out: ``calls`` messages of ``bytes_per_msg[i]`` to ``dsts[i]``."""
        k = len(group.dsts)
        if k == 0:
            return
        calls = group.calls
        pkts_per_msg = packets_for_bytes_array(group.bytes_per_msg, self.payload)
        self.add_arrays(
            np.full(k, group.src, dtype=np.int64),
            group.dsts,
            group.bytes_per_msg * calls,
            np.full(k, calls, dtype=np.int64),
            pkts_per_msg * calls,
        )

    def add_arrays(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        nbytes: np.ndarray,
        messages: np.ndarray,
        packets: np.ndarray,
    ) -> None:
        """Add pre-aggregated pair data (packets already computed)."""
        self._src.append(np.asarray(src, dtype=np.int64))
        self._dst.append(np.asarray(dst, dtype=np.int64))
        self._nbytes.append(np.asarray(nbytes, dtype=np.int64))
        self._messages.append(np.asarray(messages, dtype=np.int64))
        self._packets.append(np.asarray(packets, dtype=np.int64))
        self._rows += len(self._src[-1])

    def add_batch(self, batch: SendBatch) -> None:
        """Add a columnar message batch (one row = one message shape)."""
        if len(batch.src) == 0:
            return
        pkts_per_msg = packets_for_bytes_array(batch.bytes_per_msg, self.payload)
        self.add_arrays(
            batch.src,
            batch.dst,
            batch.bytes_per_msg * batch.calls,
            batch.calls,
            pkts_per_msg * batch.calls,
        )

    def add_message(self, src: int, dst: int, nbytes: int, calls: int = 1) -> None:
        """Convenience scalar form: ``calls`` messages of ``nbytes`` from src to dst."""
        group = SendGroup(
            src=src,
            dsts=np.array([dst], dtype=np.int64),
            bytes_per_msg=np.array([nbytes], dtype=np.int64),
            calls=calls,
        )
        self.add_group(group)

    def compact(self) -> None:
        """Fold pending rows in place, summing duplicate pairs.

        Per-pair int64 sums are associative, so compacting mid-build can
        never change the finalized matrix — it only bounds the pending
        working set near the distinct-pair count.  The streaming matrix
        build calls this whenever :attr:`pending_rows` crosses its
        threshold.
        """
        if not self._src:
            return
        unique_keys, out_bytes, out_msgs, out_pkts = self._merged_columns()
        self._src = [unique_keys // self.num_ranks]
        self._dst = [unique_keys % self.num_ranks]
        self._nbytes = [out_bytes]
        self._messages = [out_msgs]
        self._packets = [out_pkts]
        self._rows = len(unique_keys)

    def _merged_columns(self):
        """Merge pending chunks into sorted-unique keyed columns."""
        src = np.concatenate(self._src)
        dst = np.concatenate(self._dst)
        if len(src) and (src.max() >= self.num_ranks or dst.max() >= self.num_ranks):
            raise ValueError("rank IDs exceed num_ranks")
        if len(src) and (src.min() < 0 or dst.min() < 0):
            raise ValueError("rank IDs must be non-negative")
        nbytes = np.concatenate(self._nbytes)
        messages = np.concatenate(self._messages)
        packets = np.concatenate(self._packets)

        key = src * self.num_ranks + dst
        nsq = self.num_ranks * self.num_ranks
        if nsq <= (1 << 22) and nsq <= 32 * len(key):
            # Dense merge: O(rows) scatter-adds into flat rank-pair tables,
            # no sort.  Ascending flatnonzero == sorted (src, dst) keys, so
            # the result is identical to the sparse path below.
            present = np.zeros(nsq, dtype=bool)
            present[key] = True
            dense_bytes = np.zeros(nsq, dtype=np.int64)
            dense_msgs = np.zeros(nsq, dtype=np.int64)
            dense_pkts = np.zeros(nsq, dtype=np.int64)
            np.add.at(dense_bytes, key, nbytes)
            np.add.at(dense_msgs, key, messages)
            np.add.at(dense_pkts, key, packets)
            unique_keys = np.flatnonzero(present)
            out_bytes = dense_bytes[unique_keys]
            out_msgs = dense_msgs[unique_keys]
            out_pkts = dense_pkts[unique_keys]
        else:
            unique_keys, inverse = np.unique(key, return_inverse=True)
            k = len(unique_keys)
            out_bytes = np.zeros(k, dtype=np.int64)
            out_msgs = np.zeros(k, dtype=np.int64)
            out_pkts = np.zeros(k, dtype=np.int64)
            np.add.at(out_bytes, inverse, nbytes)
            np.add.at(out_msgs, inverse, messages)
            np.add.at(out_pkts, inverse, packets)

        return unique_keys, out_bytes, out_msgs, out_pkts

    def finalize(self) -> CommMatrix:
        """Merge all accumulated chunks, summing duplicate pairs."""
        if not self._src:
            return CommMatrix.empty(self.num_ranks)
        unique_keys, out_bytes, out_msgs, out_pkts = self._merged_columns()
        return CommMatrix(
            self.num_ranks,
            unique_keys // self.num_ranks,
            unique_keys % self.num_ranks,
            out_bytes,
            out_msgs,
            out_pkts,
        )


def matrix_from_trace(
    trace: Trace,
    include_p2p: bool = True,
    include_collectives: bool = True,
    payload: int = MAX_PAYLOAD_BYTES,
    collective: str = "flat",
) -> CommMatrix:
    """Build a traffic matrix from a trace.

    MPI-level metric analyses (§5) use ``include_collectives=False`` — the
    paper considers only point-to-point messages there, treating collectives
    on global communicators as a uniform bias.  Topology analyses (§6) use
    both, with collectives expanded through the ``collective`` engine
    (default the paper's flat §4.4 patterns).
    """
    with timings.stage("matrix"):
        builder = CommMatrixBuilder(trace.meta.num_ranks, payload=payload)

        # Columnar fast path: block-native traces expand straight from their
        # arrays — no event objects, no per-message allocation.
        if trace.has_native_blocks:
            for batch in iter_send_batches(
                trace, include_p2p, include_collectives, collective=collective
            ):
                builder.add_batch(batch)
            return builder.finalize()

        # Fast path: point-to-point sends are by far the most numerous records
        # (hundreds of thousands at the largest scales); gather them into
        # columnar arrays in one pass instead of one SendGroup per event.
        if include_p2p:
            src: list[int] = []
            dst: list[int] = []
            per_msg: list[int] = []
            calls: list[int] = []
            size_of = trace.datatypes.size_of
            for ev in trace.iter_p2p_sends():
                src.append(ev.caller)
                dst.append(ev.peer)
                per_msg.append(ev.count * size_of(ev.dtype))
                calls.append(ev.repeat)
            if src:
                per_msg_arr = np.array(per_msg, dtype=np.int64)
                calls_arr = np.array(calls, dtype=np.int64)
                builder.add_arrays(
                    np.array(src, dtype=np.int64),
                    np.array(dst, dtype=np.int64),
                    per_msg_arr * calls_arr,
                    calls_arr,
                    packets_for_bytes_array(per_msg_arr, payload) * calls_arr,
                )

        if include_collectives:
            for classified in iter_send_groups(
                trace, include_p2p=False, collective=collective
            ):
                builder.add_group(classified.group)
        return builder.finalize()


def matrix_from_stream(
    stream,
    include_p2p: bool = True,
    include_collectives: bool = True,
    payload: int = MAX_PAYLOAD_BYTES,
    compact_rows: int = DEFAULT_COMPACT_ROWS,
    collective: str = "flat",
) -> CommMatrix:
    """Build a traffic matrix incrementally from a :class:`BlockStream`.

    Chunks are expanded and accumulated one at a time; whenever the pending
    row count crosses ``compact_rows`` the builder folds duplicates in
    place, so peak memory is bounded by ``O(chunk + distinct pairs)``
    rather than the total translated message count.  Compaction is an
    exact int64 fold, so the result is bit-identical to
    :func:`matrix_from_trace` over the materialized trace.
    """
    with timings.stage("matrix"):
        builder = CommMatrixBuilder(stream.meta.num_ranks, payload=payload)
        # Re-arm above the post-compact row count so a matrix whose
        # distinct-pair count exceeds the threshold still amortizes
        # (never recompacts until the pending set doubles).
        next_compact = compact_rows
        for batch in iter_stream_send_batches(
            stream, include_p2p, include_collectives, collective=collective
        ):
            builder.add_batch(batch)
            if builder.pending_rows >= next_compact:
                builder.compact()
                next_compact = max(compact_rows, 2 * builder.pending_rows)
        return builder.finalize()
