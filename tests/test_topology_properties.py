"""Property-based tests over randomized topology instances.

Hypothesis drives random torus boxes, fat-tree stages, and dragonfly
parameters through the metric-space and routing invariants every topology
must satisfy: identity, symmetry, triangle inequality, route-length/hop
agreement, and link-id validity.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.dragonfly import Dragonfly
from repro.topology.fattree import FatTree
from repro.topology.mesh import Mesh3D
from repro.topology.torus import Torus3D

dims_strategy = st.tuples(
    st.integers(1, 6), st.integers(1, 6), st.integers(1, 6)
).filter(lambda d: 2 <= d[0] * d[1] * d[2] <= 216)

dragonfly_strategy = st.tuples(st.integers(1, 6), st.integers(1, 3), st.integers(1, 3))


def _random_pairs(rng, n, k=60):
    return rng.integers(0, n, k), rng.integers(0, n, k)


def check_metric_axioms(topo, seed=0):
    rng = np.random.default_rng(seed)
    n = topo.num_nodes
    src, dst = _random_pairs(rng, n)

    # identity
    same = rng.integers(0, n, 20)
    assert np.all(topo.hops_array(same, same) == 0)
    # positivity for distinct nodes
    distinct = src != dst
    assert np.all(topo.hops_array(src, dst)[distinct] >= 1)
    # symmetry
    assert np.array_equal(topo.hops_array(src, dst), topo.hops_array(dst, src))
    # diameter bound
    assert topo.hops_array(src, dst).max() <= topo.diameter
    # triangle inequality through random midpoints
    mid = rng.integers(0, n, len(src))
    d_direct = topo.hops_array(src, dst)
    d_via = topo.hops_array(src, mid) + topo.hops_array(mid, dst)
    assert np.all(d_direct <= d_via)


def check_routes(topo, seed=1):
    rng = np.random.default_rng(seed)
    n = topo.num_nodes
    src, dst = _random_pairs(rng, n)
    inc = topo.route_incidence(src, dst)
    counted = np.bincount(inc.pair_index, minlength=len(src))
    assert np.array_equal(counted, topo.hops_array(src, dst))
    if inc.num_incidences:
        assert inc.link_id.min() >= 0


class TestTorusProperties:
    @settings(max_examples=25, deadline=None)
    @given(dims_strategy)
    def test_metric_axioms(self, dims):
        check_metric_axioms(Torus3D(dims))

    @settings(max_examples=25, deadline=None)
    @given(dims_strategy)
    def test_routes(self, dims):
        check_routes(Torus3D(dims))

    @settings(max_examples=25, deadline=None)
    @given(dims_strategy)
    def test_snake_order_adjacency(self, dims):
        topo = Torus3D(dims)
        order = topo.snake_order()
        assert sorted(order.tolist()) == list(range(topo.num_nodes))
        if topo.num_nodes > 1:
            hops = topo.hops_array(order[:-1], order[1:])
            assert np.all(hops == 1)


class TestMeshProperties:
    @settings(max_examples=20, deadline=None)
    @given(dims_strategy)
    def test_metric_axioms(self, dims):
        check_metric_axioms(Mesh3D(dims))

    @settings(max_examples=20, deadline=None)
    @given(dims_strategy)
    def test_mesh_dominates_torus(self, dims):
        mesh, torus = Mesh3D(dims), Torus3D(dims)
        rng = np.random.default_rng(2)
        src, dst = _random_pairs(rng, mesh.num_nodes)
        assert np.all(mesh.hops_array(src, dst) >= torus.hops_array(src, dst))


class TestFatTreeProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 3), st.sampled_from([4, 8, 16, 48]))
    def test_metric_axioms(self, stages, radix):
        check_metric_axioms(FatTree(radix, stages))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 3), st.sampled_from([4, 8, 48]))
    def test_routes(self, stages, radix):
        check_routes(FatTree(radix, stages))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 3), st.sampled_from([4, 8, 16]))
    def test_hops_always_even(self, stages, radix):
        topo = FatTree(radix, stages)
        rng = np.random.default_rng(3)
        src, dst = _random_pairs(rng, topo.num_nodes)
        assert np.all(topo.hops_array(src, dst) % 2 == 0)


class TestDragonflyProperties:
    @settings(max_examples=20, deadline=None)
    @given(dragonfly_strategy)
    def test_metric_axioms(self, ahp):
        check_metric_axioms(Dragonfly(*ahp))

    @settings(max_examples=20, deadline=None)
    @given(dragonfly_strategy)
    def test_routes(self, ahp):
        check_routes(Dragonfly(*ahp))

    @settings(max_examples=20, deadline=None)
    @given(dragonfly_strategy)
    def test_cross_group_exactly_one_global_link(self, ahp):
        topo = Dragonfly(*ahp)
        rng = np.random.default_rng(4)
        src, dst = _random_pairs(rng, topo.num_nodes)
        inc = topo.route_incidence(src, dst)
        global_per_pair = np.bincount(
            inc.pair_index[topo.is_global_link(inc.link_id)], minlength=len(src)
        )
        crosses = topo.crosses_groups(src, dst)
        assert np.array_equal(global_per_pair > 0, crosses)
        assert np.all(global_per_pair <= 1)
