"""Tests for the table/figure builders and headline-claim evaluation."""

import numpy as np
import pytest

from repro.analysis.claims import evaluate_claims, render_claims
from repro.analysis.figures import (
    build_figure1,
    build_figure3,
    build_figure4,
    build_figure5,
    render_curves,
)
from repro.analysis.tables import (
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)

CAP = 130  # keep analysis sweeps quick


@pytest.fixture(scope="module")
def table3_rows():
    return build_table3(max_ranks=CAP)


class TestTable1:
    def test_row_count_matches_configs(self):
        rows = build_table1(max_ranks=CAP)
        assert len(rows) == 17  # all configs <= 130 ranks (incl. LULESH variant)

    def test_render_contains_apps(self):
        text = render_table1(build_table1(max_ranks=30))
        assert "AMG@8" in text and "Vol[MB]" in text

    def test_volumes_positive(self):
        for row in build_table1(max_ranks=CAP):
            assert row.stats.total_bytes > 0


class TestTable2:
    def test_all_17_sizes(self):
        assert len(build_table2()) == 17

    def test_render(self):
        text = render_table2()
        assert "(12,12,12)" in text and "13824" in text


class TestTable3:
    def test_rows_have_three_topologies(self, table3_rows):
        for row in table3_rows:
            assert set(row.network) == {"torus3d", "fattree", "dragonfly"}

    def test_na_rows_for_collective_apps(self, table3_rows):
        bigfft = [r for r in table3_rows if r.metrics.app == "BigFFT"]
        assert bigfft and all(not r.metrics.has_p2p for r in bigfft)

    def test_render(self, table3_rows):
        text = render_table3(table3_rows)
        assert "N/A" in text and "torus" in text

    def test_packet_hops_positive(self, table3_rows):
        for row in table3_rows:
            for net in row.network.values():
                assert net.packet_hops > 0
                assert net.total_packets > 0


class TestTable4:
    def test_builds_capped(self):
        rows = build_table4(max_ranks=200)
        labels = {row.label for row in rows}
        assert "LULESH@64" in labels and "PARTISN@168" in labels

    def test_localities_in_unit_range(self):
        for row in build_table4(max_ranks=200):
            for v in row.locality.values():
                assert 0.0 < v <= 1.0

    def test_render(self):
        text = render_table4(build_table4(max_ranks=70))
        assert "LULESH" in text and "%" in text


class TestFigures:
    def test_figure1_lulesh_rank0(self):
        series = build_figure1("LULESH", 64, 0)
        assert len(series.volumes) == 7  # corner rank of a 4^3 halo
        assert np.all(np.diff(series.volumes) <= 0)
        assert series.cumulative_share[-1] == pytest.approx(1.0)

    def test_figure3_excludes_collective_apps(self):
        curves = build_figure3(max_ranks=CAP)
        apps = {c.app for c in curves}
        assert "BigFFT" not in apps and "CMC_2D" not in apps
        assert "LULESH@64" in {c.label for c in curves}

    def test_figure3_crossings_match_selectivity_scale(self):
        for c in build_figure3(max_ranks=70):
            assert 1 <= c.partners_for_share(0.9) <= 30

    def test_figure4_amg_scaling(self):
        curves = build_figure4("AMG")
        assert [c.ranks for c in curves] == [8, 27, 216, 1728]
        # paper Figure 4: curves shift right (more partners needed) with scale
        crossings = [c.partners_for_share(0.9) for c in curves]
        assert crossings[0] <= crossings[-1]

    def test_figure5_min_ranks_cut(self):
        series = build_figure5(min_ranks=500, max_ranks=600)
        assert {s.ranks for s in series} == {512}
        for s in series:
            assert s.points[0].relative_traffic == 1.0

    def test_render_curves(self):
        text = render_curves(build_figure3(max_ranks=30))
        assert "partners@90%" in text


class TestClaims:
    def test_report_structure(self, table3_rows):
        report = evaluate_claims(table3_rows)
        assert report.num_configs == len(table3_rows)
        assert 0.0 <= report.selectivity_le_10_share <= 1.0
        assert report.small_configs + report.large_configs == report.num_configs

    def test_small_scale_claims_hold(self, table3_rows):
        report = evaluate_claims(table3_rows)
        # at <= 130 ranks every config is "small": torus mostly wins
        assert report.torus_wins_small >= report.small_configs * 0.6
        # utilization < 1% everywhere except BigFFT
        assert report.utilization_below_1pct_share >= 0.7
        assert report.selectivity_le_10_share >= 0.7

    def test_render(self, table3_rows):
        text = render_claims(evaluate_claims(table3_rows))
        assert "selectivity" in text and "dragonfly" in text

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            evaluate_claims([])
