"""run_sweep(workers=N): deterministic records regardless of worker count."""

from __future__ import annotations

import pytest

from repro.analysis.sweep import SweepSpec, run_sweep


@pytest.fixture(scope="module")
def spec() -> SweepSpec:
    return SweepSpec(
        apps=(("LULESH", 64), ("AMG", 27)),
        topologies=("torus3d", "fattree", "dragonfly"),
        mappings=("consecutive", "random"),
        payloads=(4096, 1024),
        bandwidths=(12e9, 1e9),
    )


@pytest.fixture(scope="module")
def sequential(spec) -> list[dict]:
    return run_sweep(spec, workers=1)


class TestParallelIdentity:
    def test_worker_counts_produce_identical_records(self, spec, sequential):
        # identical = same order AND same values, not merely same set
        assert run_sweep(spec, workers=2) == sequential
        assert run_sweep(spec, workers=4) == sequential

    def test_record_count_and_order(self, spec, sequential):
        assert len(sequential) == spec.num_points  # includes the bandwidth axis
        # canonical order: apps > payloads > topologies > mappings > bandwidths
        first = sequential[0]
        assert (first["app"], first["payload"]) == ("LULESH", 4096)
        assert (first["topology"], first["mapping"]) == ("torus3d", "consecutive")
        assert first["bandwidth"] == 12e9
        second = sequential[1]
        assert second["bandwidth"] == 1e9
        assert {k: second[k] for k in ("app", "topology", "mapping", "payload")} == {
            k: first[k] for k in ("app", "topology", "mapping", "payload")
        }

    def test_workers_must_be_positive(self, spec):
        with pytest.raises(ValueError, match="workers"):
            run_sweep(spec, workers=0)

    def test_single_point_grid(self):
        tiny = SweepSpec(apps=(("LULESH", 64),), topologies=("torus3d",))
        assert run_sweep(tiny, workers=4) == run_sweep(tiny, workers=1)

    def test_routing_axis_parallel_identity(self):
        """Multi-policy sweeps stay deterministic across worker counts."""
        spec = SweepSpec(
            apps=(("LULESH", 64),),
            topologies=("dragonfly", "torus3d"),
            routings=("minimal", "valiant", "ugal"),
        )
        sequential = run_sweep(spec, workers=1)
        assert run_sweep(spec, workers=2) == sequential
        assert run_sweep(spec, workers=4) == sequential
        assert len(sequential) == spec.num_points == 6
        # routing is the innermost axis of the canonical grid order
        assert [r["routing"] for r in sequential[:3]] == [
            "minimal",
            "valiant",
            "ugal",
        ]
        assert all(r["topology"] == "dragonfly" for r in sequential[:3])
        # non-minimal detours show up in the records
        by_routing = {r["routing"]: r for r in sequential[:3]}
        assert by_routing["valiant"]["avg_hops"] > by_routing["minimal"]["avg_hops"]

    def test_unknown_routing_rejected(self):
        with pytest.raises(ValueError, match="routing"):
            SweepSpec(routings=("minimal", "shortest"))

    def test_progress_sequential_counts_every_cell(self):
        spec = SweepSpec(
            apps=(("LULESH", 64),), topologies=("torus3d", "fattree")
        )
        calls: list[tuple[int, int]] = []
        run_sweep(spec, workers=1, progress=lambda d, t: calls.append((d, t)))
        total = len(spec.points())
        assert calls == [(i + 1, total) for i in range(total)]

    def test_progress_parallel_monotonic_to_total(self):
        spec = SweepSpec(
            apps=(("LULESH", 64),),
            topologies=("torus3d", "fattree", "dragonfly"),
            mappings=("consecutive", "random"),
        )
        calls: list[tuple[int, int]] = []
        records = run_sweep(
            spec, workers=3, progress=lambda d, t: calls.append((d, t))
        )
        total = len(spec.points())
        done = [d for d, _ in calls]
        assert all(t == total for _, t in calls)
        assert done == sorted(done)
        assert done[-1] == total
        assert records == run_sweep(spec, workers=1)

    def test_bandwidth_only_affects_utilization(self, sequential):
        by_key: dict[tuple, list[dict]] = {}
        for r in sequential:
            by_key.setdefault(
                (r["app"], r["topology"], r["mapping"], r["payload"]), []
            ).append(r)
        for group in by_key.values():
            assert len(group) == 2
            a, b = group
            assert a["packet_hops"] == b["packet_hops"]
            assert a["avg_hops"] == b["avg_hops"]
            assert a["used_links"] == b["used_links"]
            if a["packet_hops"]:
                # a ran at 12 GB/s, b at 1 GB/s: same traffic, more headroom
                assert a["utilization_percent"] < b["utilization_percent"]
